//! Quickstart: build a program, randomize it, execute both variants, and
//! time them under the cycle simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vcfr::core::DrcConfig;
use vcfr::isa::{AluOp, Asm, Cond, Machine, Reg};
use vcfr::rewriter::{randomize, RandomizeConfig};
use vcfr::sim::{simulate, Mode, SimConfig};

fn main() {
    // 1. Build a small program with the label assembler: sum of squares
    //    1² + 2² + ... + 100², computed through a helper function.
    let mut a = Asm::new(0x1000);
    a.mov_ri(Reg::Rcx, 100); // n
    a.mov_ri(Reg::R9, 0); // accumulator
    let top = a.here();
    a.mov_rr(Reg::Rax, Reg::Rcx);
    a.call_named("square");
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, top);
    a.emit_output(Reg::R9);
    a.halt();
    a.func("square");
    a.alu_rr(AluOp::Mul, Reg::Rax, Reg::Rax);
    a.ret();
    let image = a.finish().expect("assembles");

    // 2. Run it natively on the functional interpreter.
    let native = Machine::new(&image).run(100_000).expect("runs");
    println!("native output:      {:?}", native.output);
    assert_eq!(native.output, vec![338_350]);

    // 3. Randomize at per-instruction granularity.
    let rp = randomize(&image, &RandomizeConfig::with_seed(42)).expect("randomizes");
    println!(
        "randomized:         {} instructions scattered over {} KiB (tables: {} entries)",
        rp.stats.randomized,
        (rp.region.1 - rp.region.0) / 1024,
        rp.table.len(),
    );

    // 4. The scattered binary computes the same thing at new addresses.
    let scattered = rp.scattered_machine().run(100_000).expect("runs");
    assert_eq!(scattered.output, native.output);
    let entry_moved = rp.rand_or_orig(image.entry);
    println!("entry point moved:  {:#x} -> {entry_moved:#x}", image.entry);

    // 5. Time all three machines under the cycle simulator.
    let cfg = SimConfig::default();
    let base = simulate(Mode::Baseline(&image), &cfg, 100_000).expect("simulates");
    let naive = simulate(Mode::NaiveIlr(&rp), &cfg, 100_000).expect("simulates");
    let vcfr = simulate(
        Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
        &cfg,
        100_000,
    )
    .expect("simulates");

    println!("\n{:<22} {:>8} {:>10} {:>12}", "machine", "IPC", "cycles", "IL1 misses");
    for (name, out) in
        [("baseline", &base), ("naive hardware ILR", &naive), ("VCFR (DRC 128)", &vcfr)]
    {
        println!(
            "{:<22} {:>8.3} {:>10} {:>12}",
            name,
            out.stats.ipc(),
            out.stats.cycles,
            out.stats.il1.misses
        );
    }
    let drc = vcfr.stats.drc.expect("vcfr has DRC stats");
    println!(
        "\nDRC: {} lookups, {:.1}% miss rate — locality preserved, control flow randomized.",
        drc.lookups,
        100.0 * drc.miss_rate()
    );
}
