//! Phase-behaviour trace: per-interval IPC of the three machines over a
//! workload's execution, as an ASCII time series.
//!
//! ```text
//! cargo run --release --example phase_trace [workload]
//! ```

use vcfr::core::DrcConfig;
use vcfr::rewriter::{randomize, RandomizeConfig};
use vcfr::sim::{simulate_sampled, IntervalSample, Mode, SimConfig};

fn bar(v: f64, max: f64) -> String {
    let cells = ((v / max) * 40.0).round() as usize;
    "#".repeat(cells.min(40))
}

fn render(name: &str, samples: &[IntervalSample]) {
    println!("\n{name}:");
    for s in samples.iter().take(24) {
        println!(
            "  @{:>8}  ipc {:>5.2} |{:<40}| il1 {:>5.2}%  drc {:>5.1}%",
            s.first_inst,
            s.ipc,
            bar(s.ipc, 1.0),
            100.0 * s.il1_miss_rate,
            100.0 * s.drc_miss_rate,
        );
    }
}

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bzip2".into());
    let w = vcfr::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}"));
    let cfg = SimConfig::default();
    let interval = w.max_insts / 24;
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(3)).expect("randomizes");

    let (_, base) =
        simulate_sampled(Mode::Baseline(&w.image), &cfg, w.max_insts, interval).expect("runs");
    let (_, naive) =
        simulate_sampled(Mode::NaiveIlr(&rp), &cfg, w.max_insts, interval).expect("runs");
    let (_, vcfr) = simulate_sampled(
        Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
        &cfg,
        w.max_insts,
        interval,
    )
    .expect("runs");

    println!("workload: {} — {} (interval = {} insts)", w.name, w.description, interval);
    render("baseline", &base);
    render("naive hardware ILR", &naive);
    render("VCFR (DRC 128)", &vcfr);
}
