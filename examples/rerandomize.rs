//! Periodic re-randomization (§V-C): even a *leaked* translation table is
//! stale after the next re-randomization epoch.
//!
//! ```text
//! cargo run --release --example rerandomize
//! ```

use vcfr::core::{rerandomize, OrigAddr, TranslationTable};
use vcfr::isa::{AluOp, Asm, Cond, Reg};
use vcfr::rewriter::{randomize, RandomizeConfig};

fn main() {
    // A small service we re-randomize across "epochs".
    let mut a = Asm::new(0x1000);
    a.mov_ri(Reg::Rcx, 10);
    let top = a.here();
    a.call_named("work");
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, top);
    a.emit_output(Reg::Rax);
    a.halt();
    a.func("work");
    a.alu_ri(AluOp::Add, Reg::Rax, 3);
    a.ret();
    let image = a.finish().expect("assembles");

    let rp = randomize(&image, &RandomizeConfig::with_seed(1)).expect("randomizes");
    let work = image.symbol("work").expect("symbol").addr;
    let epoch0 = rp.layout.to_rand(OrigAddr(work)).expect("mapped");
    println!("epoch 0: work() lives at {epoch0}");

    // Suppose the attacker somehow exfiltrated the epoch-0 table. The
    // defender re-randomizes on a timer:
    let (lo, hi) = rp.region;
    let mut leaked_still_valid = 0;
    let mut current = rp.layout.clone();
    for epoch in 1..=5u64 {
        current = rerandomize(&current, lo, hi, epoch);
        let now = current.to_rand(OrigAddr(work)).expect("mapped");
        let table = TranslationTable::from_layout(&current, 0x4000_0000);
        // Does the attacker's stale knowledge still translate?
        let stale_hit = table.derand(vcfr::core::RandAddr(epoch0.raw())).is_ok();
        if stale_hit {
            leaked_still_valid += 1;
        }
        println!(
            "epoch {epoch}: work() moved to {now}; leaked epoch-0 address {} usable: {}",
            epoch0, stale_hit
        );
    }
    println!(
        "\nleaked knowledge remained usable in {leaked_still_valid}/5 epochs — \
         re-randomization invalidates exfiltrated tables."
    );
    assert_eq!(leaked_still_valid, 0, "stale addresses must die across epochs");
}
