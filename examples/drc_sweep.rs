//! DRC design-space sweep: size and associativity ablation (§VII and the
//! paper's claim that a small *direct-mapped* DRC suffices because the
//! miss penalty is only an L2 access).
//!
//! ```text
//! cargo run --release --example drc_sweep [workload]
//! ```

use vcfr::core::DrcConfig;
use vcfr::rewriter::{randomize, RandomizeConfig};
use vcfr::sim::{simulate, Mode, SimConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".into());
    let w = vcfr::workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload {name:?}; try one of {:?}", vcfr::workloads::SPEC_NAMES));

    let cfg = SimConfig::default();
    let rp = randomize(&w.image, &RandomizeConfig::with_seed(7)).expect("randomizes");
    let base = simulate(Mode::Baseline(&w.image), &cfg, w.max_insts).expect("baseline");

    println!("workload: {} — {}", w.name, w.description);
    println!("baseline IPC: {:.3}\n", base.stats.ipc());
    println!(
        "{:>8} {:>6} {:>12} {:>12} {:>14}",
        "entries", "ways", "miss rate", "norm. IPC", "walk cycles"
    );

    // Size sweep at the paper's direct-mapped design point, then the
    // associativity ablation the paper argues is unnecessary.
    let sweep: &[(usize, usize)] = &[
        (16, 1),
        (32, 1),
        (64, 1),
        (128, 1),
        (256, 1),
        (512, 1),
        (128, 2),
        (128, 4),
    ];
    for &(entries, ways) in sweep {
        let out = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig { entries, ways } },
            &cfg,
            w.max_insts,
        )
        .expect("vcfr");
        let drc = out.stats.drc.expect("drc stats");
        println!(
            "{:>8} {:>6} {:>11.1}% {:>12.3} {:>14}",
            entries,
            ways,
            100.0 * drc.miss_rate(),
            out.stats.ipc() / base.stats.ipc(),
            out.stats.drc_walk_cycles,
        );
    }
    println!(
        "\nEven at 64 direct-mapped entries the slowdown stays small: DRC misses\n\
         are serviced by the unified L2, so the penalty per miss is ~{} cycles.",
        cfg.l2.latency
    );
}
