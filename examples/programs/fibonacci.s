; Iterative Fibonacci: prints fib(1)..fib(12).
.entry main

main:
    mov  rsi, 1        ; fib(i-1)
    mov  rdi, 0        ; fib(i-2)
    mov  rcx, 12
top:
    mov  rax, rsi
    add  rax, rdi      ; fib(i)
    out  rax
    mov  rdi, rsi
    mov  rsi, rax
    sub  rcx, 1
    cmp  rcx, 0
    jne  top
    halt
