; Table-free CRC-ish checksum of a data blob, with a helper function
; and a jump-table dispatch on the low bits.
.words input 7 1 9 4 4 2 8 5
.ptrs  disp  even odd
.entry main

main:
    mov  rbx, input
    mov  rcx, 8
    mov  r9, 0
loop:
    load rax, [rbx+0]
    call fold
    mov  rdx, rax
    and  rdx, 1
    mov  r8, disp
    loadx r10, [r8+rdx*8+0]
    call r10
    add  rbx, 8
    sub  rcx, 1
    cmp  rcx, 0
    jne  loop
    out  r9
    halt

fold:                   ; rax = (rax * 31) ^ (rax >> 3)
    mov  r10, rax
    mul  rax, 31
    shr  r10, 3
    xor  rax, r10
    ret

even:                   ; accumulate evens additively
    add  r9, rax
    ret

odd:                    ; fold odds with xor
    xor  r9, rax
    ret
