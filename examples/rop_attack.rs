//! End-to-end ROP attack demo (§II threat model, §V security analysis).
//!
//! A vulnerable service copies attacker-controlled input into a
//! fixed-size stack buffer without a bounds check, overwriting its own
//! return address. The attacker aims the corrupted return address at an
//! *unintended* gadget — a `sys 3` ("spawn shell") hiding inside the
//! bytes of an immediate — using addresses read from the publicly
//! distributed binary.
//!
//! The attack succeeds against the original layout and is contained by
//! instruction address space randomization: the injected address no
//! longer names executable code in the randomized instruction space.
//!
//! ```text
//! cargo run --release --example rop_attack
//! ```

use vcfr::gadget::{fuzz_params, AttackSurface, Capability, FuzzConfig};
use vcfr::isa::{Addr, AluOp, Asm, ExecError, Image, Machine, Reg, StopReason};
use vcfr::rewriter::{randomize, RandomizeConfig};

const INPUT_WORDS: usize = 7;

/// Builds the vulnerable service. Returns the image and the address of
/// the attacker-writable input buffer.
fn vulnerable_service() -> (Image, Addr) {
    let mut a = Asm::new(0x1000);
    let input = a.data_zeroed(INPUT_WORDS * 8);

    // main: process the request, then report success.
    a.call_named("process_input");
    a.mov_ri(Reg::Rax, 200); // "HTTP 200", so to speak
    a.emit_output(Reg::Rax);
    a.halt();

    // process_input: reads a length word, then copies that many words
    // into a 5-word stack buffer — with no bounds check. A length of 6
    // lands the last word on the saved return address. (The classic bug.)
    a.func("process_input");
    a.mov_ri(Reg::Rbx, input.0 as i64);
    a.load(Reg::Rcx, Reg::Rbx, 0); // attacker-controlled length
    a.mov_ri(Reg::Rdx, 0);
    let copy = a.here();
    let done = a.label();
    a.cmp(Reg::Rdx, Reg::Rcx);
    a.jcc(vcfr::isa::Cond::Ge, done);
    a.load_idx(Reg::Rax, Reg::Rbx, Reg::Rdx, 3, 8);
    a.store_idx(Reg::Rsp, Reg::Rdx, 3, -40, Reg::Rax);
    a.alu_ri(AluOp::Add, Reg::Rdx, 1);
    a.jmp(copy);
    a.bind(done);
    a.ret();

    // An innocent helper whose immediate bytes hide `sys 3` at +2 — the
    // unintended-instruction phenomenon of variable-length encodings.
    a.func("crc_step");
    a.alu_ri(AluOp::And, Reg::R10, 0x0303);
    a.ret();

    (a.finish().expect("assembles"), input.0)
}

fn main() {
    let (image, input_addr) = vulnerable_service();

    // -- The attacker studies the public binary offline. ----------------
    let surface = AttackSurface::scan(&image);
    let shell_gadget =
        surface.find(Capability::Syscall).expect("the binary leaks a syscall gadget");
    println!("attacker found a syscall gadget at {:#x}:", shell_gadget.addr);
    for inst in &shell_gadget.insts {
        println!("    {inst}");
    }

    // Payload: length 6 (overflowing the 5-word buffer), 5 words of
    // filler, then the gadget address over the saved return address.
    let mut payload = [0u64; INPUT_WORDS];
    payload[0] = 6;
    payload[1..6].fill(0x4141_4141_4141_4141);
    payload[6] = shell_gadget.addr as u64;

    // -- Attack 1: the original binary. ----------------------------------
    let mut victim = Machine::new(&image);
    for (i, w) in payload.iter().enumerate() {
        victim.mem_mut().write_u64(input_addr + (i * 8) as Addr, *w);
    }
    match victim.run(10_000) {
        Ok(out) if out.stop == StopReason::Shell => {
            println!("\n[original layout]   ATTACK SUCCEEDED: shell spawned via ROP");
        }
        other => panic!("expected the attack to succeed on the original binary: {other:?}"),
    }

    // -- Attack 2: the same payload against the randomized binary. -------
    let rp = randomize(&image, &RandomizeConfig::with_seed(0xc0ffee)).expect("randomizes");
    // First, the honest run still works:
    let honest = rp.scattered_machine().run(10_000).expect("honest run");
    assert_eq!(honest.output, vec![200]);

    let mut victim = rp.scattered_machine();
    for (i, w) in payload.iter().enumerate() {
        victim.mem_mut().write_u64(input_addr + (i * 8) as Addr, *w);
    }
    match victim.run(10_000) {
        Err(ExecError::BadJumpTarget { target, .. }) => {
            println!(
                "[randomized layout] ATTACK CONTAINED: {target:#x} is not executable code \
                 in the randomized instruction space"
            );
        }
        Ok(out) if out.stop == StopReason::Shell => {
            panic!("randomization failed to stop the attack");
        }
        other => println!("[randomized layout] attack failed differently: {other:?}"),
    }

    // The translation tables agree: the address the attacker needs is
    // tagged as randomized, so hardware refuses to enter it.
    let verdict = rp.table.derand(vcfr::core::RandAddr(shell_gadget.addr));
    println!("table verdict for {:#x}: {verdict:?}", shell_gadget.addr);
    assert!(verdict.is_err());

    // -- Attack 3: an adaptive attacker guessing inside the region. ------
    // The coverage-guided fuzzer mounts this same payload methodology as
    // a seed corpus and probes fresh randomized layouts for entry points.
    let fz = FuzzConfig { trials: 8, probes_per_trial: 64, ..FuzzConfig::default() };
    let report = fuzz_params(&image, &vcfr::core::RandParams::default(), &fz);
    println!(
        "[fuzzing attacker]  {} of {} layouts cracked (success probability {:.3}, \
         {} mapped pages leaked)",
        report.successes(),
        report.trials.len(),
        report.success_probability(),
        report.pages_discovered(),
    );
}
