//! The full toolchain on a hand-written assembly program: assemble,
//! execute, randomize, re-execute, scan for gadgets and time all three
//! machines.
//!
//! ```text
//! cargo run --release --example custom_program [path/to/prog.s]
//! ```

use vcfr::core::DrcConfig;
use vcfr::gadget::{compare_surface, scan};
use vcfr::isa::{parse_asm, Machine};
use vcfr::rewriter::{randomize, RandomizeConfig};
use vcfr::sim::{simulate, Mode, SimConfig};

const DEFAULT_SOURCE: &str = "examples/programs/crc.s";

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| DEFAULT_SOURCE.into());
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let image = parse_asm(&source, 0x1000).unwrap_or_else(|e| panic!("{path}: {e}"));
    println!(
        "assembled {path}: {} bytes of text, {} symbols, {} relocations",
        image.text().bytes.len(),
        image.symbols.len(),
        image.relocs.len()
    );

    let native = Machine::new(&image).run(1_000_000).expect("runs");
    println!("native output: {:?} ({} instructions)", native.output, native.steps);

    let rp = randomize(&image, &RandomizeConfig::with_seed(0x5eed)).expect("randomizes");
    let randomized = rp.scattered_machine().run(1_000_000).expect("runs");
    assert_eq!(randomized.output, native.output, "semantics preserved");
    println!(
        "randomized: {} instructions scattered, {} pinned; output unchanged",
        rp.stats.randomized, rp.stats.unrandomized
    );

    let surface = compare_surface(&image, &rp);
    println!(
        "gadgets: {} found, {:.1}% removed by randomization",
        surface.total_gadgets,
        surface.removal_pct()
    );
    let _ = scan(&image);

    let cfg = SimConfig::default();
    let budget = native.steps + 10;
    println!("\n{:<22} {:>8} {:>10}", "machine", "IPC", "cycles");
    for (name, out) in [
        ("baseline", simulate(Mode::Baseline(&image), &cfg, budget).expect("simulates")),
        ("naive hardware ILR", simulate(Mode::NaiveIlr(&rp), &cfg, budget).expect("simulates")),
        (
            "VCFR (DRC 128)",
            simulate(
                Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                &cfg,
                budget,
            )
            .expect("simulates"),
        ),
    ] {
        println!("{:<22} {:>8.3} {:>10}", name, out.stats.ipc(), out.stats.cycles);
    }
}
