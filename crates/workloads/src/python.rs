//! `python` stand-in (Figure 2 set): a stack-machine bytecode
//! interpreter.
//!
//! An interpreter interpreting — the workload the paper uses to show how
//! catastrophic *another* layer of per-instruction emulation is. The
//! stand-in dispatches a linear bytecode program through a 32-entry
//! opcode table, manipulating an operand stack held in memory.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const OPCODES: usize = 32;
const PROGRAM: usize = 512;
const RUNS: usize = 50;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");

    let code: Vec<u64> =
        util::pseudo_u64s(PROGRAM, 0x9731).into_iter().map(|v| v % OPCODES as u64).collect();
    let code_data = a.data_u64s(&code);
    let operand_stack = a.data_zeroed(256 * 8);
    let op_labels: Vec<_> = (0..OPCODES).map(|_| a.label()).collect();
    let table = a.data_ptr_table(&op_labels);

    // r12 = bytecode, r13 = op table, r14 = operand stack top pointer,
    // r15 = dispatch continuation, r9 = accumulator, rbx = vpc,
    // rbp = run counter.
    a.mov_ri(Reg::R12, code_data.0 as i64);
    a.mov_ri(Reg::R13, table.0 as i64);
    a.mov_ri(Reg::R9, 0);
    a.mov_ri(Reg::Rbp, (RUNS as i64).saturating_mul(scale as i64));

    let run_top = a.here();
    // Reset the operand stack: push two seed values.
    a.mov_ri(Reg::R14, operand_stack.0 as i64);
    a.mov_ri(Reg::Rax, 0x1234);
    a.store(Reg::R14, 0, Reg::Rax);
    a.mov_ri(Reg::Rax, 0x5678);
    a.store(Reg::R14, 8, Reg::Rax);
    a.alu_ri(AluOp::Add, Reg::R14, 16);
    a.mov_ri(Reg::Rbx, 0);

    let dispatch = a.here();
    let cont = a.label();
    a.mov_label(Reg::R15, cont);
    a.load_idx(Reg::Rax, Reg::R12, Reg::Rbx, 3, 0);
    a.load_idx(Reg::R10, Reg::R13, Reg::Rax, 3, 0);
    a.jmp_r(Reg::R10);
    a.bind(cont);
    a.alu_ri(AluOp::Add, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, PROGRAM as i32);
    a.jcc(Cond::Ne, dispatch);
    a.alu_ri(AluOp::Sub, Reg::Rbp, 1);
    a.cmp_i(Reg::Rbp, 0);
    a.jcc(Cond::Ne, run_top);

    a.emit_output(Reg::R9);
    a.halt();

    // Opcode handlers. The operand stack keeps at least two live slots
    // (handlers that pop two always push one, and pushes are bounded by
    // periodic binary ops), so depth stays within the reserved region:
    // net effect is engineered per opcode class below.
    for (i, l) in op_labels.iter().enumerate() {
        a.bind(*l);
        match i % 4 {
            // PUSH_CONST-like: push a constant (but fold the stack when
            // it grows past 128 slots to bound depth).
            0 => {
                a.mov_ri(Reg::Rax, (i as i64) * 17 + 5);
                a.store(Reg::R14, 0, Reg::Rax);
                a.alu_ri(AluOp::Add, Reg::R14, 8);
                // Fold if deep: tos = tos ^ base slot, reset pointer.
                a.mov_rr(Reg::R10, Reg::R14);
                a.alu_ri(AluOp::Sub, Reg::R10, operand_stack.0 as i32);
                a.cmp_i(Reg::R10, 128 * 8);
                let ok = a.label();
                a.jcc(Cond::B, ok);
                a.mov_ri(Reg::R14, operand_stack.0 as i64 + 16);
                a.bind(ok);
            }
            // BINOP-like: pop two, push one (only when at least three
            // slots are live, so depth never drops below two).
            1 => {
                a.mov_rr(Reg::R10, Reg::R14);
                a.alu_ri(AluOp::Sub, Reg::R10, operand_stack.0 as i32);
                a.cmp_i(Reg::R10, 24);
                let shallow = a.label();
                a.jcc(Cond::B, shallow);
                a.load(Reg::Rax, Reg::R14, -8);
                a.load(Reg::R10, Reg::R14, -16);
                a.alu_rr(AluOp::Add, Reg::Rax, Reg::R10);
                a.alu_ri(AluOp::Sub, Reg::R14, 8);
                a.store(Reg::R14, -8, Reg::Rax);
                a.alu_rr(AluOp::Xor, Reg::R9, Reg::Rax);
                a.bind(shallow);
            }
            // UNOP-like: transform the top of stack in place.
            2 => {
                a.load(Reg::Rax, Reg::R14, -8);
                a.alu_ri(AluOp::Mul, Reg::Rax, 5);
                a.alu_ri(AluOp::And, Reg::Rax, 0xff_ffff);
                a.store(Reg::R14, -8, Reg::Rax);
            }
            // ACC-like: fold the top of stack into the accumulator.
            _ => {
                a.load(Reg::Rax, Reg::R14, -8);
                a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
                a.mov_rr(Reg::R10, Reg::R9);
                a.alu_ri(AluOp::Shr, Reg::R10, 7);
                a.alu_rr(AluOp::Xor, Reg::R9, Reg::R10);
            }
        }
        a.jmp_r(Reg::R15);
    }

    util::emit_runtime_lib(&mut a, 64, 13);
    Workload {
        name: "python",
        description: "stack-machine bytecode interpreter with table dispatch",
        image: a.finish().expect("python assembles"),
        max_insts: 900_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_is_deterministic() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }

    #[test]
    fn opcode_table_is_fully_relocated() {
        let w = build(1);
        assert_eq!(w.image.relocs.len(), OPCODES);
    }

    #[test]
    fn stack_stays_in_bounds() {
        // Bounded-depth folding means the run completes without faulting;
        // running to completion IS the bounds check (wild stores would
        // corrupt the code-adjacent data and diverge between runs).
        let w = build(1);
        assert!(w.run_reference().is_ok());
    }
}
