//! `libquantum` stand-in: quantum register gate simulation.
//!
//! libquantum applies gates as streaming passes over a large amplitude
//! array with bit manipulation — a tiny, perfectly-predictable hot loop
//! over a big sequential data set. The stand-in applies NOT / CNOT /
//! phase-flip style transforms (xor, shift, conditional flip) pass by
//! pass.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const AMPS: usize = 8192;
const PASSES: usize = 8;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let reg = util::data_random_u64s(&mut a, AMPS, 0x9a37);

    a.mov_ri(Reg::R9, 0); // checksum
    let rep = util::scale_loop_begin(&mut a, scale, Reg::Rbp);
    for p in 0..PASSES {
        // Gate setup helpers before each streaming pass.
        for k in 0..8 {
            a.call_named(&format!("lib{}", (k * 3 + p) % 48));
        }
        a.mov_ri(Reg::Rsi, reg.0 as i64);
        a.mov_ri(Reg::Rcx, (AMPS / 4) as i64);
        let gate = a.here();
        for u in 0..4u8 {
        a.load(Reg::Rax, Reg::Rsi, u as i32 * 8);
        match p % 4 {
            0 => {
                // sigma-x: flip target bit.
                a.alu_ri(AluOp::Xor, Reg::Rax, 1 << (p % 16));
            }
            1 => {
                // controlled flip: if control bit set, flip target.
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Shr, Reg::R10, (p % 8) as i32);
                a.alu_ri(AluOp::And, Reg::R10, 1);
                let skip = a.label();
                a.cmp_i(Reg::R10, 0);
                a.jcc(Cond::Eq, skip);
                a.alu_ri(AluOp::Xor, Reg::Rax, 0x100);
                a.bind(skip);
            }
            2 => {
                // phase rotation surrogate: rotate-ish mix.
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Shl, Reg::R10, 7);
                a.alu_rr(AluOp::Xor, Reg::Rax, Reg::R10);
            }
            _ => {
                // amplitude decay surrogate.
                a.alu_ri(AluOp::Shr, Reg::Rax, 1);
                a.alu_ri(AluOp::Add, Reg::Rax, 0x5555);
            }
        }
        a.store(Reg::Rsi, u as i32 * 8, Reg::Rax);
        a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
        }
        a.alu_ri(AluOp::Add, Reg::Rsi, 32);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, gate);
    }
    util::scale_loop_end(&mut a, rep, Reg::Rbp);
    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 48, 6);
    Workload {
        name: "libquantum",
        description: "streaming gate passes over an amplitude array",
        image: a.finish().expect("libquantum assembles"),
        max_insts: 900_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_is_deterministic() {
        let w = build(1);
        let a = w.run_reference().unwrap();
        let b = w.run_reference().unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.output.len(), 1);
        assert_ne!(a.output[0], 0);
    }
}
