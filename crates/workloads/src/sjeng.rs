//! `sjeng` stand-in: recursive game-tree search.
//!
//! sjeng (chess) is recursion- and branch-heavy: deep call chains
//! exercising the return-address stack, data-dependent evaluation
//! branches and table lookups. The stand-in runs a fixed-depth negamax
//! over a synthetic move tree with a table-driven leaf evaluator.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const DEPTH: i64 = 4;
const BRANCHING: i64 = 7;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let piece_table = util::data_random_u64s(&mut a, 256, 0x53e6);
    let board = a.data_zeroed(64 * 8);

    // r13 = piece table, r14 = board.
    a.mov_ri(Reg::R13, piece_table.0 as i64);
    a.mov_ri(Reg::R14, board.0 as i64);
    let rep = util::scale_loop_begin(&mut a, scale, Reg::Rbp);
    a.mov_ri(Reg::Rdi, DEPTH);
    a.mov_ri(Reg::Rsi, 0x1a2b); // position hash seed
    a.call_named("search");
    util::scale_loop_end(&mut a, rep, Reg::Rbp);
    a.emit_output(Reg::Rax);
    a.halt();

    // search(depth=rdi, hash=rsi) -> rax
    a.func("search");
    a.cmp_i(Reg::Rdi, 0);
    let recurse = a.label();
    a.jcc(Cond::Ne, recurse);
    a.call_named("evaluate");
    a.ret();
    a.bind(recurse);
    a.call_named("movegen");
    // Save caller state.
    a.push(Reg::Rbx);
    a.push(Reg::R12);
    a.push(Reg::Rdi);
    a.push(Reg::Rsi);
    a.mov_ri(Reg::Rbx, 0); // move index
    a.mov_ri(Reg::R12, i64::MIN + 1); // best score

    let move_loop = a.here();
    // "Make move": mutate one board square derived from (hash, move).
    a.load(Reg::Rdi, Reg::Rsp, 8); // reload depth
    a.load(Reg::Rsi, Reg::Rsp, 0); // reload hash
    a.mov_rr(Reg::Rax, Reg::Rsi);
    a.alu_rr(AluOp::Add, Reg::Rax, Reg::Rbx);
    a.alu_ri(AluOp::Mul, Reg::Rax, 0x45d9)
    ;
    a.alu_ri(AluOp::And, Reg::Rax, 63);
    a.store_idx(Reg::R14, Reg::Rax, 3, 0, Reg::Rsi);
    // Recurse with depth-1 and a new hash.
    a.alu_ri(AluOp::Sub, Reg::Rdi, 1);
    a.mov_rr(Reg::R10, Reg::Rsi);
    a.alu_ri(AluOp::Shl, Reg::R10, 3);
    a.alu_rr(AluOp::Xor, Reg::Rsi, Reg::R10);
    a.alu_rr(AluOp::Add, Reg::Rsi, Reg::Rbx);
    a.call_named("search");
    // Negamax fold: best = max(best, -score) via compare.
    a.neg(Reg::Rax);
    a.cmp(Reg::Rax, Reg::R12);
    let not_better = a.label();
    a.jcc(Cond::Le, not_better);
    a.mov_rr(Reg::R12, Reg::Rax);
    a.bind(not_better);
    a.alu_ri(AluOp::Add, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, BRANCHING as i32);
    a.jcc(Cond::Ne, move_loop);

    a.mov_rr(Reg::Rax, Reg::R12);
    a.pop(Reg::Rsi);
    a.pop(Reg::Rdi);
    a.pop(Reg::R12);
    a.pop(Reg::Rbx);
    a.ret();

    // movegen(hash=rsi): scores candidate moves into the board scratch
    // area (pure bookkeeping; clobbers rax/r10/r11 only).
    a.func("movegen");
    for k in 0..8 {
        a.mov_rr(Reg::Rax, Reg::Rsi);
        a.alu_ri(AluOp::Shr, Reg::Rax, k % 5);
        a.alu_ri(AluOp::And, Reg::Rax, 255);
        a.load_idx(Reg::R10, Reg::R13, Reg::Rax, 3, 0);
        a.alu_ri(AluOp::And, Reg::R10, 0xff);
        a.mov_rr(Reg::R11, Reg::Rax);
        a.alu_ri(AluOp::And, Reg::R11, 63);
        a.store_idx(Reg::R14, Reg::R11, 3, 0, Reg::R10);
    }
    a.ret();

    // evaluate(hash=rsi) -> rax: table-driven leaf score.
    a.func("evaluate");
    a.mov_rr(Reg::Rax, Reg::Rsi);
    a.alu_ri(AluOp::And, Reg::Rax, 255);
    a.load_idx(Reg::Rax, Reg::R13, Reg::Rax, 3, 0);
    a.alu_ri(AluOp::And, Reg::Rax, 0xffff);
    // Positional term from the board.
    a.mov_rr(Reg::R10, Reg::Rsi);
    a.alu_ri(AluOp::Shr, Reg::R10, 4);
    a.alu_ri(AluOp::And, Reg::R10, 63);
    a.load_idx(Reg::R10, Reg::R14, Reg::R10, 3, 0);
    a.alu_ri(AluOp::And, Reg::R10, 0xff);
    a.alu_rr(AluOp::Add, Reg::Rax, Reg::R10);
    // Mobility bonus: biased data-dependent branch.
    a.test(Reg::Rsi, Reg::Rsi);
    let no_bonus = a.label();
    a.jcc(Cond::S, no_bonus);
    a.alu_ri(AluOp::Add, Reg::Rax, 64);
    a.bind(no_bonus);
    a.ret();

    util::emit_runtime_lib(&mut a, 64, 5);
    Workload {
        name: "sjeng",
        description: "fixed-depth negamax with table-driven evaluation",
        image: a.finish().expect("sjeng assembles"),
        max_insts: 1_200_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_returns_a_stable_score() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }

    #[test]
    fn search_and_evaluate_are_symbols() {
        let w = build(1);
        for name in ["search", "evaluate", "movegen", "lib_init"] {
            assert!(w.image.symbol(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn tree_size_is_as_designed() {
        // Nodes = (B^(D+1)-1)/(B-1); instruction count scales with it.
        let w = build(1);
        let out = w.run_reference().unwrap();
        let nodes: u64 = (0..=DEPTH).map(|d| (BRANCHING as u64).pow(d as u32)).sum();
        assert!(out.steps > nodes * 10, "steps {} nodes {nodes}", out.steps);
    }
}
