//! `h264ref` stand-in: block motion estimation.
//!
//! h264ref's encoder spends its time computing sums of absolute
//! differences (SAD) between a current macroblock and candidate positions
//! in the reference frame: dense byte loads, an abs() branch per pixel,
//! and a family of per-mode block comparison routines (widening the hot
//! code footprint).

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const FRAME_DIM: usize = 128;
const BLOCK: usize = 16;
const SEARCH_STEP: usize = 3;
const SEARCH_SPAN: usize = 21; // ±10 around the block origin
const MODES: usize = 8;
const BLOCKS: usize = 3;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let frame = util::data_random_bytes(&mut a, FRAME_DIM * FRAME_DIM, 0x264);
    let cur = util::data_random_bytes(&mut a, BLOCK * BLOCK, 0x265);

    // r14 = frame, r15 = current block, r9 = best-SAD accumulator.
    a.mov_ri(Reg::R14, frame.0 as i64);
    a.mov_ri(Reg::R15, cur.0 as i64);
    a.mov_ri(Reg::R9, 0);

    let rep = util::scale_loop_begin(&mut a, scale, Reg::Rbp);
    for b in 0..BLOCKS {
        let origin = (b * 24 + 12) * FRAME_DIM + (b * 16 + 10);
        a.mov_ri(Reg::Rbx, 0); // dy step index
        let dy_loop = a.here();
        // Rate-control helpers per search row.
        for k in 0..4 {
            a.call_named(&format!("lib{}", (k * 11 + 3) % 64));
        }
        a.mov_ri(Reg::Rdx, 0); // dx step index
        let dx_loop = a.here();
        // rdi = &frame[origin + dy*STEP*DIM + dx*STEP]
        a.mov_rr(Reg::Rdi, Reg::Rbx);
        a.alu_ri(AluOp::Mul, Reg::Rdi, (SEARCH_STEP * FRAME_DIM) as i32);
        a.mov_rr(Reg::R10, Reg::Rdx);
        a.alu_ri(AluOp::Mul, Reg::R10, SEARCH_STEP as i32);
        a.alu_rr(AluOp::Add, Reg::Rdi, Reg::R10);
        a.alu_ri(AluOp::Add, Reg::Rdi, origin as i32);
        a.alu_rr(AluOp::Add, Reg::Rdi, Reg::R14);
        // rsi = current block; dispatch to the per-mode SAD routine.
        a.mov_rr(Reg::Rsi, Reg::R15);
        let mode = (b + 1) % MODES;
        a.call_named(&format!("sad_mode{mode}"));
        a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
        a.alu_ri(AluOp::Add, Reg::Rdx, 1);
        a.cmp_i(Reg::Rdx, (SEARCH_SPAN / SEARCH_STEP) as i32);
        a.jcc(Cond::Ne, dx_loop);
        a.alu_ri(AluOp::Add, Reg::Rbx, 1);
        a.cmp_i(Reg::Rbx, (SEARCH_SPAN / SEARCH_STEP) as i32);
        a.jcc(Cond::Ne, dy_loop);
    }
    util::scale_loop_end(&mut a, rep, Reg::Rbp);
    a.emit_output(Reg::R9);
    a.halt();

    // Row SAD: 16 pixels of |cur[i] - ref[i]|.
    // rsi = cur row, rdi = ref row → rax = row SAD. Clobbers r10, r11.
    a.func("sad_row16");
    a.mov_ri(Reg::Rax, 0);
    for px in 0..BLOCK {
        a.load_b(Reg::R10, Reg::Rsi, px as i32);
        a.load_b(Reg::R11, Reg::Rdi, px as i32);
        a.alu_rr(AluOp::Sub, Reg::R10, Reg::R11);
        let non_neg = a.label();
        a.test(Reg::R10, Reg::R10);
        a.jcc(Cond::Ns, non_neg);
        a.neg(Reg::R10);
        a.bind(non_neg);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::R10);
    }
    a.ret();

    // Per-mode block SAD: walk 16 rows with mode-specific bookkeeping.
    // rsi = cur block, rdi = ref position → rax = block SAD.
    for m in 0..MODES {
        a.func(&format!("sad_mode{m}"));
        a.push(Reg::Rbx);
        a.push(Reg::R12);
        a.push(Reg::Rsi);
        a.push(Reg::Rdi);
        a.mov_ri(Reg::R12, 0); // block SAD
        a.mov_ri(Reg::Rbx, BLOCK as i64); // row counter
        let row_loop = a.here();
        a.call_named("sad_row16");
        a.alu_rr(AluOp::Add, Reg::R12, Reg::Rax);
        // Mode flavour: early-skip heuristics differ per mode (adds
        // distinct static code without changing the result).
        a.alu_ri(AluOp::Add, Reg::R12, 0); // anchor
        for _ in 0..m {
            a.nop();
        }
        a.alu_ri(AluOp::Add, Reg::Rsi, BLOCK as i32);
        a.alu_ri(AluOp::Add, Reg::Rdi, FRAME_DIM as i32);
        a.alu_ri(AluOp::Sub, Reg::Rbx, 1);
        a.cmp_i(Reg::Rbx, 0);
        a.jcc(Cond::Ne, row_loop);
        a.mov_rr(Reg::Rax, Reg::R12);
        a.pop(Reg::Rdi);
        a.pop(Reg::Rsi);
        a.pop(Reg::R12);
        a.pop(Reg::Rbx);
        a.ret();
    }

    util::emit_runtime_lib(&mut a, 64, 7);
    Workload {
        name: "h264ref",
        description: "SAD motion search over a reference frame",
        image: a.finish().expect("h264ref assembles"),
        max_insts: 900_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sad_checksum_matches_host_model() {
        let out = build(1).run_reference().unwrap();
        // Host model of the same search.
        let frame = util::pseudo_bytes(FRAME_DIM * FRAME_DIM, 0x264);
        let cur = util::pseudo_bytes(BLOCK * BLOCK, 0x265);
        let mut total = 0u64;
        for b in 0..BLOCKS {
            let origin = (b * 24 + 12) * FRAME_DIM + (b * 16 + 10);
            for dy in 0..SEARCH_SPAN / SEARCH_STEP {
                for dx in 0..SEARCH_SPAN / SEARCH_STEP {
                    let pos = origin + dy * SEARCH_STEP * FRAME_DIM + dx * SEARCH_STEP;
                    let mut sad = 0u64;
                    for r in 0..BLOCK {
                        for c in 0..BLOCK {
                            let a = cur[r * BLOCK + c] as i64;
                            let bb = frame[pos + r * FRAME_DIM + c] as i64;
                            sad += (a - bb).unsigned_abs();
                        }
                    }
                    total = total.wrapping_add(sad);
                }
            }
        }
        assert_eq!(out.output, vec![total]);
    }
}
