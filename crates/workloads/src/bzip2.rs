//! `bzip2` stand-in: block compression front-end.
//!
//! Mimics bzip2's hot phase: byte-granular scans over a block buffer with
//! a frequency histogram (data-dependent indexed stores) and run-length
//! detection (data-dependent branches), plus a per-block summarisation
//! pass. Moderate instruction footprint, high IL1 locality in the
//! original layout, byte loads dominating the data side.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const BLOCK_BYTES: usize = 4096;
const BLOCKS: i64 = 6;
const UNROLL: usize = 16;

/// Builds the workload. `scale` multiplies the block count (the outer
/// trip count) and the instruction budget; scale 1 is byte-identical to
/// the historical unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let buf = util::data_random_bytes(&mut a, BLOCK_BYTES, 0xb21b);
    let hist = a.data_zeroed(256 * 8);

    // r9 = grand checksum, r8 = run count, r11 = hist base.
    a.mov_ri(Reg::R9, 0);
    a.mov_ri(Reg::R8, 0);
    a.mov_ri(Reg::R11, hist.0 as i64);
    a.mov_ri(Reg::Rbx, BLOCKS.saturating_mul(scale as i64));

    let block_loop = a.here();
    a.mov_ri(Reg::Rsi, buf.0 as i64);
    a.mov_ri(Reg::Rcx, (BLOCK_BYTES / UNROLL) as i64);
    a.mov_ri(Reg::Rdx, 256); // impossible "previous byte"

    let inner = a.here();
    a.call_named("lib2");
    a.call_named("lib6");
    for k in 0..UNROLL {
        // rax = buf[k]
        a.load_b(Reg::Rax, Reg::Rsi, k as i32);
        // hist[rax]++
        a.load_idx(Reg::R10, Reg::R11, Reg::Rax, 3, 0);
        a.alu_ri(AluOp::Add, Reg::R10, 1);
        a.store_idx(Reg::R11, Reg::Rax, 3, 0, Reg::R10);
        // run detection
        a.cmp(Reg::Rax, Reg::Rdx);
        let no_run = a.label();
        a.jcc(Cond::Ne, no_run);
        a.alu_ri(AluOp::Add, Reg::R8, 1);
        a.bind(no_run);
        a.mov_rr(Reg::Rdx, Reg::Rax);
    }
    a.alu_ri(AluOp::Add, Reg::Rsi, UNROLL as i32);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, inner);

    a.call_named("summarize");
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    // Per-block helper sweep: widens the hot code footprint and adds the
    // steady call/return traffic real compressors have.
    for k in 0..16 {
        a.call_named(&format!("lib{}", (k * 5 + 1) % 64));
    }

    a.alu_ri(AluOp::Sub, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, 0);
    a.jcc(Cond::Ne, block_loop);

    a.emit_output(Reg::R9);
    a.emit_output(Reg::R8);
    a.halt();

    // summarize: fold the histogram into rax (weighted by index so
    // ordering matters).
    a.func("summarize");
    a.mov_ri(Reg::Rax, 0);
    a.mov_ri(Reg::R12, 0);
    let s_loop = a.here();
    a.load_idx(Reg::R10, Reg::R11, Reg::R12, 3, 0);
    a.alu_rr(AluOp::Mul, Reg::R10, Reg::R12);
    a.alu_rr(AluOp::Add, Reg::Rax, Reg::R10);
    a.alu_ri(AluOp::Add, Reg::R12, 1);
    a.cmp_i(Reg::R12, 256);
    a.jcc(Cond::Ne, s_loop);
    a.ret();

    util::emit_runtime_lib(&mut a, 64, 1);
    Workload {
        name: "bzip2",
        description: "block compression front-end: histogram + run-length scan",
        image: a.finish().expect("bzip2 assembles"),
        max_insts: 800_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_checksums() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 2);
        // Histogram total is weighted and block count fixed: the checksum
        // is stable for the fixed seed.
        let again = w.run_reference().unwrap();
        assert_eq!(out.output, again.output);
        // Runs exist in pseudo-random data but are rare.
        assert!(out.output[1] < (BLOCK_BYTES as u64) * (BLOCKS as u64) / 16);
    }

    #[test]
    fn scale_multiplies_work_without_changing_the_kernel() {
        let w1 = build(1);
        let w3 = build(3);
        let s1 = w1.run_reference().unwrap().steps;
        let s3 = w3.run_reference().unwrap().steps;
        assert_eq!(w3.max_insts, 3 * w1.max_insts);
        assert!(s3 > 2 * s1, "scale 3 ran {s3} vs {s1} at scale 1");
    }
}
