//! `gcc` stand-in: IR interpretation over a large, irregular code base.
//!
//! gcc stresses the front end with a huge instruction footprint, dense
//! direct calls, and switch dispatch (jump tables). The stand-in runs an
//! IR "optimizer": a dispatch loop over a pseudo-random opcode stream
//! jumping through a 64-entry handler table, plus a battery of 96 pass
//! functions called round-robin each pass to keep the static footprint
//! large and the hot set wide.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const HANDLERS: usize = 48;
const PASS_FUNCS: usize = 96;
const IR_LEN: usize = 4096;
const PASSES: usize = 5;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");

    let ir: Vec<u64> = util::pseudo_u64s(IR_LEN, 0x6cc).into_iter().map(|v| v % HANDLERS as u64).collect();
    let ir_data = a.data_u64s(&ir);
    let handler_labels: Vec<_> = (0..HANDLERS).map(|_| a.label()).collect();
    let table = a.data_ptr_table(&handler_labels);

    // r12 = IR base, r13 = handler table, r15 = dispatch continuation,
    // r9 = checksum, rbx = IR cursor, rbp = pass counter.
    a.mov_ri(Reg::R12, ir_data.0 as i64);
    a.mov_ri(Reg::R13, table.0 as i64);
    a.mov_ri(Reg::R9, 0);
    a.mov_ri(Reg::Rbp, (PASSES as i64).saturating_mul(scale as i64));

    let pass_top = a.here();
    // A few optimizer passes (direct calls into the wide code base).
    for k in 0..12 {
        let f = (k * 7 + 3) % PASS_FUNCS;
        a.call_named(&format!("pass{f}"));
    }
    // Dispatch loop.
    a.mov_ri(Reg::Rbx, 0);
    let dispatch = a.here();
    let cont = a.label();
    a.mov_label(Reg::R15, cont);
    a.load_idx(Reg::Rax, Reg::R12, Reg::Rbx, 3, 0); // opcode
    a.load_idx(Reg::R10, Reg::R13, Reg::Rax, 3, 0); // handler ptr
    a.jmp_r(Reg::R10);
    a.bind(cont);
    a.alu_ri(AluOp::Add, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, IR_LEN as i32);
    a.jcc(Cond::Ne, dispatch);
    a.alu_ri(AluOp::Sub, Reg::Rbp, 1);
    a.cmp_i(Reg::Rbp, 0);
    a.jcc(Cond::Ne, pass_top);

    a.emit_output(Reg::R9);
    a.halt();

    // Handlers: distinct little transformations on the checksum; each
    // ends with an indirect jump back to the dispatch continuation.
    for (i, l) in handler_labels.iter().enumerate() {
        a.bind(*l);
        a.alu_ri(AluOp::Add, Reg::R9, (i as i32) * 3 + 1);
        // Realistic handler bulk: compiled IR transforms are dozens of
        // instructions, which keeps the indirect-dispatch rate low and
        // the footprint wide.
        for r in 0..2 {
            a.mov_rr(Reg::R11, Reg::R9);
            a.alu_ri(AluOp::Shr, Reg::R11, ((i + r) % 11 + 1) as i32);
            a.alu_rr(AluOp::Xor, Reg::R9, Reg::R11);
            a.alu_ri(AluOp::And, Reg::R9, 0x3fff_ffff);
        }
        match i % 4 {
            0 => {
                a.mov_rr(Reg::R11, Reg::R9);
                a.alu_ri(AluOp::Shr, Reg::R11, 3);
                a.alu_rr(AluOp::Xor, Reg::R9, Reg::R11);
            }
            1 => {
                a.alu_ri(AluOp::Mul, Reg::R9, 3);
                a.alu_ri(AluOp::And, Reg::R9, 0x7fff_ffff);
            }
            2 => {
                a.mov_rr(Reg::R11, Reg::R9);
                a.alu_ri(AluOp::Shl, Reg::R11, 2);
                a.alu_rr(AluOp::Add, Reg::R9, Reg::R11);
                a.alu_ri(AluOp::And, Reg::R9, 0x3fff_ffff);
            }
            _ => {
                a.not(Reg::R9);
                a.alu_ri(AluOp::And, Reg::R9, 0xfff_ffff);
            }
        }
        a.jmp_r(Reg::R15);
    }

    // The optimizer pass battery: direct-call targets with bodies large
    // enough to matter for the instruction footprint.
    for f in 0..PASS_FUNCS {
        a.func(&format!("pass{f}"));
        a.alu_ri(AluOp::Add, Reg::R9, f as i32);
        for r in 0..6 {
            a.mov_rr(Reg::R11, Reg::R9);
            a.alu_ri(AluOp::Shr, Reg::R11, ((f + r) % 13 + 1) as i32);
            a.alu_rr(AluOp::Xor, Reg::R9, Reg::R11);
        }
        a.alu_ri(AluOp::And, Reg::R9, 0x7fff_ffff);
        a.ret();
    }

    util::emit_runtime_lib(&mut a, 96, 2);
    Workload {
        name: "gcc",
        description: "IR dispatch over a jump table plus a wide battery of pass functions",
        image: a.finish().expect("gcc assembles"),
        max_insts: 1_500_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reaches_every_handler_class() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }

    #[test]
    fn dispatch_is_table_driven() {
        // One reloc per handler: the jump table the paper's Table II
        // counts as computed control transfers.
        let w = build(1);
        assert_eq!(w.image.relocs.len(), HANDLERS);
        let d = vcfr_isa_disasm(&w.image);
        assert!(d > 2000, "instructions: {d}");
    }

    fn vcfr_isa_disasm(img: &vcfr_isa::Image) -> usize {
        // Local linear count of decoded instructions.
        let text = img.text();
        let mut off = 0;
        let mut n = 0;
        while off < text.bytes.len() {
            match vcfr_isa::decode(&text.bytes[off..]) {
                Ok(i) => {
                    off += i.len();
                    n += 1;
                }
                Err(_) => off += 1,
            }
        }
        n
    }

    #[test]
    fn static_footprint_is_large() {
        let w = build(1);
        // gcc is the big-code benchmark: several thousand instructions.
        assert!(w.image.text().bytes.len() > 4000, "{}", w.image.text().bytes.len());
    }
}
