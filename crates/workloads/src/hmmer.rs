//! `hmmer` stand-in: profile-HMM dynamic programming.
//!
//! hmmer's hot loop is the Viterbi recurrence over match/insert/delete
//! score rows — sequential array walks with a three-way max implemented
//! as compare-and-branch. Medium, very regular hot loop with
//! data-dependent (but statistically biased) branches.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const SEQ: usize = 160;
const MODEL: usize = 48;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let emis = util::data_random_u64s(&mut a, MODEL * 2, 0x4a11);
    let row_m = a.data_zeroed((MODEL + 1) * 8);
    let row_i = a.data_zeroed((MODEL + 1) * 8);

    // r14 = emis base, r12 = row_m base, r13 = row_i base.
    a.mov_ri(Reg::R14, emis.0 as i64);
    a.mov_ri(Reg::R12, row_m.0 as i64);
    a.mov_ri(Reg::R13, row_i.0 as i64);
    a.mov_ri(Reg::R9, 0); // best score accumulator
    a.mov_ri(Reg::Rbx, (SEQ as i64).saturating_mul(scale as i64)); // sequence position loop

    let seq_loop = a.here();
    // Per-position helper calls (post-processing, trace-back bookkeeping).
    for k in 0..12 {
        a.call_named(&format!("lib{}", (k * 7 + 2) % 64));
    }
    a.mov_ri(Reg::Rcx, (MODEL / 6) as i64); // model state loop, x6 unrolled
    a.mov_ri(Reg::Rdx, 0); // j (state index)
    let state_loop = a.here();
    for _u in 0..6 {
    // m_prev = row_m[j], i_prev = row_i[j]
    a.load_idx(Reg::Rax, Reg::R12, Reg::Rdx, 3, 0);
    a.load_idx(Reg::R10, Reg::R13, Reg::Rdx, 3, 0);
    // three-way max surrogate: max(m_prev + e0, i_prev + e1)
    a.load_idx(Reg::R11, Reg::R14, Reg::Rdx, 3, 0);
    a.alu_ri(AluOp::And, Reg::R11, 0xffff);
    a.alu_rr(AluOp::Add, Reg::Rax, Reg::R11);
    a.load_idx(Reg::R11, Reg::R14, Reg::Rdx, 3, (MODEL * 8) as i32);
    a.alu_ri(AluOp::And, Reg::R11, 0xffff);
    a.alu_rr(AluOp::Add, Reg::R10, Reg::R11);
    a.cmp(Reg::Rax, Reg::R10);
    let keep_m = a.label();
    a.jcc(Cond::Ae, keep_m);
    a.mov_rr(Reg::Rax, Reg::R10);
    a.bind(keep_m);
    // Score decay keeps values bounded across the whole run.
    a.alu_ri(AluOp::Shr, Reg::Rax, 1);
    // row_m[j+1] = max, row_i[j] = max - gap
    a.store_idx(Reg::R12, Reg::Rdx, 3, 8, Reg::Rax);
    a.mov_rr(Reg::R10, Reg::Rax);
    a.alu_ri(AluOp::Shr, Reg::R10, 2);
    a.store_idx(Reg::R13, Reg::Rdx, 3, 0, Reg::R10);
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    a.alu_ri(AluOp::Add, Reg::Rdx, 1);
    }
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, state_loop);
    a.alu_ri(AluOp::Sub, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, 0);
    a.jcc(Cond::Ne, seq_loop);

    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 64, 4);
    Workload {
        name: "hmmer",
        description: "profile-HMM Viterbi recurrence (DP array walks)",
        image: a.finish().expect("hmmer assembles"),
        max_insts: 400_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_is_deterministic_and_nontrivial() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert!(out.output[0] > 0);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }
}
