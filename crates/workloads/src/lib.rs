//! Synthetic SPEC CPU2006-like benchmark programs.
//!
//! SPEC CPU2006 is proprietary, so the evaluation substitutes thirteen
//! synthetic kernels that mimic, per benchmark, the characteristics the
//! paper's experiments are sensitive to: *instruction footprint* (how
//! much hot code competes for the 32 KB IL1 once scattered), *control
//! transfer mix* (direct vs indirect, call density — Table II), *data
//! access pattern* (streaming, pointer chasing, gather), and *branch
//! predictability*. See `DESIGN.md` for the substitution argument.
//!
//! The eleven SPEC stand-ins match the paper's list (bzip2, gcc, mcf,
//! hmmer, sjeng, libquantum, h264ref, lbm, xalan, namd, soplex);
//! `memcpy` and `python` complete the Figure 2 set.
//!
//! Every program is deterministic and self-checking: it emits checksum
//! values through the output syscall and halts, so functional equivalence
//! between the original and any rewritten variant is directly testable.
//!
//! # Example
//!
//! ```
//! let w = vcfr_workloads::by_name("bzip2").unwrap();
//! let out = w.run_reference().unwrap();
//! assert!(!out.output.is_empty());
//! ```

#![warn(missing_docs)]

mod bzip2;
mod gcc;
mod h264ref;
mod hmmer;
mod lbm;
mod libquantum;
mod mcf;
mod memcpy;
mod namd;
mod python;
mod sjeng;
mod soplex;
mod util;
mod xalan;

use vcfr_isa::{ExecError, Image, Machine, RunOutcome};

/// One synthetic benchmark: a built program image plus its run budget.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (matches the paper's figures).
    pub name: &'static str,
    /// What the kernel mimics and why.
    pub description: &'static str,
    /// The program.
    pub image: Image,
    /// Instruction budget that comfortably covers a full run.
    pub max_insts: u64,
}

impl Workload {
    /// Runs the program to completion on the functional interpreter.
    ///
    /// # Errors
    ///
    /// Propagates architectural faults; a correct workload never faults.
    pub fn run_reference(&self) -> Result<RunOutcome, ExecError> {
        Machine::new(&self.image).run(self.max_insts)
    }
}

/// Names of the eleven SPEC CPU2006 stand-ins, in the paper's order.
pub const SPEC_NAMES: [&str; 11] = [
    "bzip2",
    "gcc",
    "mcf",
    "hmmer",
    "sjeng",
    "libquantum",
    "h264ref",
    "lbm",
    "xalan",
    "namd",
    "soplex",
];

/// Names of the Figure 2 emulation-slowdown set.
pub const FIG2_NAMES: [&str; 6] = ["bzip2", "h264ref", "hmmer", "memcpy", "python", "xalan"];

/// Builds the workload with the given name at scale 1 (the historical
/// program, byte for byte).
pub fn by_name(name: &str) -> Option<Workload> {
    by_name_scaled(name, 1)
}

/// Builds the workload with the given name, with its outer repeat count
/// and instruction budget multiplied by `scale` (clamped to at least 1).
/// Scale 1 reproduces the unscaled program byte-identically; larger
/// scales lengthen the run without changing the hot-code footprint or
/// the per-iteration kernel.
pub fn by_name_scaled(name: &str, scale: u64) -> Option<Workload> {
    Some(match name {
        "bzip2" => bzip2::build(scale),
        "gcc" => gcc::build(scale),
        "mcf" => mcf::build(scale),
        "hmmer" => hmmer::build(scale),
        "sjeng" => sjeng::build(scale),
        "libquantum" => libquantum::build(scale),
        "h264ref" => h264ref::build(scale),
        "lbm" => lbm::build(scale),
        "xalan" => xalan::build(scale),
        "namd" => namd::build(scale),
        "soplex" => soplex::build(scale),
        "memcpy" => memcpy::build(scale),
        "python" => python::build(scale),
        _ => return None,
    })
}

/// Builds the eleven SPEC-like workloads the performance experiments use.
pub fn spec_suite() -> Vec<Workload> {
    spec_suite_scaled(1)
}

/// Builds the SPEC-like suite at the given scale.
pub fn spec_suite_scaled(scale: u64) -> Vec<Workload> {
    SPEC_NAMES.iter().map(|n| by_name_scaled(n, scale).expect("known name")).collect()
}

/// Builds the six Figure 2 workloads.
pub fn fig2_suite() -> Vec<Workload> {
    FIG2_NAMES.iter().map(|n| by_name(n).expect("known name")).collect()
}

/// Builds every workload.
pub fn all() -> Vec<Workload> {
    all_scaled(1)
}

/// Builds every workload at the given scale.
pub fn all_scaled(scale: u64) -> Vec<Workload> {
    let mut v = spec_suite_scaled(scale);
    v.push(memcpy::build(scale));
    v.push(python::build(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_runs_to_completion_and_outputs() {
        for w in all() {
            let out = w.run_reference().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(!out.output.is_empty(), "{} produced no output", w.name);
            assert!(out.steps <= w.max_insts, "{} exceeded its budget", w.name);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        for w in [by_name("bzip2").unwrap(), by_name("xalan").unwrap()] {
            let a = w.run_reference().unwrap();
            let b = w.run_reference().unwrap();
            assert_eq!(a.output, b.output, "{}", w.name);
        }
    }

    #[test]
    fn suites_have_the_paper_membership() {
        assert_eq!(spec_suite().len(), 11);
        assert_eq!(fig2_suite().len(), 6);
        assert_eq!(all().len(), 13);
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn scale_one_is_byte_identical_to_the_unscaled_build() {
        for name in ["bzip2", "h264ref", "sjeng", "lbm"] {
            let base = by_name(name).unwrap();
            let scaled = by_name_scaled(name, 1).unwrap();
            assert_eq!(base.image.sections.len(), scaled.image.sections.len(), "{name}");
            for (a, b) in base.image.sections.iter().zip(&scaled.image.sections) {
                assert_eq!(a.bytes, b.bytes, "{name}: scale-1 image bytes changed");
            }
            assert_eq!(base.max_insts, scaled.max_insts, "{name}");
        }
    }

    #[test]
    fn every_workload_scales_its_run_length() {
        for name in SPEC_NAMES.iter().chain(["memcpy", "python"].iter()) {
            let w1 = by_name_scaled(name, 1).unwrap();
            let w4 = by_name_scaled(name, 4).unwrap();
            assert_eq!(w4.max_insts, 4 * w1.max_insts, "{name}");
            let s1 = w1.run_reference().unwrap_or_else(|e| panic!("{name}: {e}")).steps;
            let s4 = w4.run_reference().unwrap_or_else(|e| panic!("{name}: {e}")).steps;
            assert!(s4 > 3 * s1, "{name}: scale 4 ran {s4} steps vs {s1} at scale 1");
        }
    }
}
