//! `namd` stand-in: molecular-dynamics force kernel.
//!
//! namd's inner loop accumulates pairwise force contributions —
//! multiply-add chains over coordinate arrays with a cutoff test. The
//! stand-in walks particle pairs from a neighbour list and accumulates a
//! squared-distance-weighted sum; multiply-heavy with highly predictable
//! control.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const PARTICLES: usize = 1024;
const NEIGHBOURS: usize = 12;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let xs = util::data_random_u64s(&mut a, PARTICLES, 0x11a);
    let ys = util::data_random_u64s(&mut a, PARTICLES, 0x22b);
    let zs = util::data_random_u64s(&mut a, PARTICLES, 0x33c);
    // Neighbour list: pseudo-random partner indices.
    let nl: Vec<u64> = util::pseudo_u64s(PARTICLES * NEIGHBOURS, 0x44d)
        .into_iter()
        .map(|v| v % PARTICLES as u64)
        .collect();
    let neigh = a.data_u64s(&nl);

    a.mov_ri(Reg::R12, xs.0 as i64);
    a.mov_ri(Reg::R13, ys.0 as i64);
    a.mov_ri(Reg::R14, zs.0 as i64);
    a.mov_ri(Reg::R15, neigh.0 as i64);
    a.mov_ri(Reg::R9, 0); // energy accumulator
    let rep = util::scale_loop_begin(&mut a, scale, Reg::Rbp);
    a.mov_ri(Reg::Rbx, 0); // particle index i

    let i_loop = a.here();
    // Per-particle bookkeeping helpers (exclusion lists, cell updates).
    for k in 0..4 {
        a.call_named(&format!("lib{}", (k * 9 + 1) % 64));
    }
    // Load coordinates of i (masked to keep products in range).
    a.load_idx(Reg::Rsi, Reg::R12, Reg::Rbx, 3, 0);
    a.alu_ri(AluOp::And, Reg::Rsi, 0xfff);
    a.load_idx(Reg::Rdi, Reg::R13, Reg::Rbx, 3, 0);
    a.alu_ri(AluOp::And, Reg::Rdi, 0xfff);
    a.load_idx(Reg::R8, Reg::R14, Reg::Rbx, 3, 0);
    a.alu_ri(AluOp::And, Reg::R8, 0xfff);
    // rdx = &neigh[i * NEIGHBOURS]; the neighbour loop is fully
    // unrolled, as compiled MD force kernels are — a large flat body.
    a.mov_rr(Reg::Rdx, Reg::Rbx);
    a.alu_ri(AluOp::Mul, Reg::Rdx, NEIGHBOURS as i32);
    for k in 0..NEIGHBOURS {
    a.load_idx(Reg::Rax, Reg::R15, Reg::Rdx, 3, (k * 8) as i32); // j = neigh[k]
    // dx² + dy² + dz²
    a.load_idx(Reg::R10, Reg::R12, Reg::Rax, 3, 0);
    a.alu_ri(AluOp::And, Reg::R10, 0xfff);
    a.alu_rr(AluOp::Sub, Reg::R10, Reg::Rsi);
    a.alu_rr(AluOp::Mul, Reg::R10, Reg::R10);
    a.mov_rr(Reg::R11, Reg::R10);
    a.load_idx(Reg::R10, Reg::R13, Reg::Rax, 3, 0);
    a.alu_ri(AluOp::And, Reg::R10, 0xfff);
    a.alu_rr(AluOp::Sub, Reg::R10, Reg::Rdi);
    a.alu_rr(AluOp::Mul, Reg::R10, Reg::R10);
    a.alu_rr(AluOp::Add, Reg::R11, Reg::R10);
    a.load_idx(Reg::R10, Reg::R14, Reg::Rax, 3, 0);
    a.alu_ri(AluOp::And, Reg::R10, 0xfff);
    a.alu_rr(AluOp::Sub, Reg::R10, Reg::R8);
    a.alu_rr(AluOp::Mul, Reg::R10, Reg::R10);
    a.alu_rr(AluOp::Add, Reg::R11, Reg::R10);
    // Cutoff: only near pairs contribute (biased branch).
    a.cmp_i(Reg::R11, 0x40_0000);
    let skip = a.label();
    a.jcc(Cond::A, skip);
    a.alu_rr(AluOp::Add, Reg::R9, Reg::R11);
    a.bind(skip);
    }
    a.alu_ri(AluOp::Add, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, PARTICLES as i32);
    a.jcc(Cond::Ne, i_loop);
    util::scale_loop_end(&mut a, rep, Reg::Rbp);

    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 64, 10);
    Workload {
        name: "namd",
        description: "pairwise force accumulation over a neighbour list",
        image: a.finish().expect("namd assembles"),
        max_insts: 600_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_deterministic() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert!(out.output[0] > 0);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }
}
