//! `lbm` stand-in: lattice-Boltzmann stencil sweep.
//!
//! lbm streams a 3-D fluid grid with neighbour gathers; the stand-in is a
//! 2-D five-point stencil alternating between two grids. Regular, highly
//! predictable, with a medium hot loop and large sequential data.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const DIM: usize = 48;
const STEPS: usize = 6;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let grid_a = util::data_random_u64s(&mut a, DIM * DIM, 0x1b31);
    let grid_b = a.data_zeroed(DIM * DIM * 8);
    let row_bytes = (DIM * 8) as i32;

    let rep = util::scale_loop_begin(&mut a, scale, Reg::Rbp);
    for step in 0..STEPS {
        let (src, dst) =
            if step % 2 == 0 { (grid_a.0, grid_b.0) } else { (grid_b.0, grid_a.0) };
        // rsi = &src[row 1], rdi = &dst[row 1].
        a.mov_ri(Reg::Rsi, src as i64 + row_bytes as i64);
        a.mov_ri(Reg::Rdi, dst as i64 + row_bytes as i64);
        a.mov_ri(Reg::Rbx, (DIM - 2) as i64); // rows
        let row_loop = a.here();
        // Boundary-handling helpers per row.
        for k in 0..6 {
            a.call_named(&format!("lib{}", (k * 7 + step) % 48));
        }
        a.mov_ri(Reg::Rcx, (DIM - 2) as i64); // cols
        a.mov_ri(Reg::Rdx, 8); // byte offset of column 1
        let col_loop = a.here();
        // centre + four neighbours.
        a.lea(Reg::R10, Reg::Rsi, 0);
        a.alu_rr(AluOp::Add, Reg::R10, Reg::Rdx);
        a.load(Reg::Rax, Reg::R10, 0);
        a.load(Reg::R11, Reg::R10, -8);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::R11);
        a.load(Reg::R11, Reg::R10, 8);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::R11);
        a.load(Reg::R11, Reg::R10, -row_bytes);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::R11);
        a.load(Reg::R11, Reg::R10, row_bytes);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::R11);
        // Relaxation: divide by 4 (shift) to keep values bounded.
        a.alu_ri(AluOp::Shr, Reg::Rax, 2);
        a.lea(Reg::R10, Reg::Rdi, 0);
        a.alu_rr(AluOp::Add, Reg::R10, Reg::Rdx);
        a.store(Reg::R10, 0, Reg::Rax);
        a.alu_ri(AluOp::Add, Reg::Rdx, 8);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, col_loop);
        a.alu_ri(AluOp::Add, Reg::Rsi, row_bytes);
        a.alu_ri(AluOp::Add, Reg::Rdi, row_bytes);
        a.alu_ri(AluOp::Sub, Reg::Rbx, 1);
        a.cmp_i(Reg::Rbx, 0);
        a.jcc(Cond::Ne, row_loop);
    }
    util::scale_loop_end(&mut a, rep, Reg::Rbp);

    // Checksum the final grid.
    let final_grid = if STEPS.is_multiple_of(2) { grid_a.0 } else { grid_b.0 };
    a.mov_ri(Reg::Rsi, final_grid as i64);
    a.mov_ri(Reg::Rcx, (DIM * DIM) as i64);
    a.mov_ri(Reg::R9, 0);
    let sum = a.here();
    a.load(Reg::Rax, Reg::Rsi, 0);
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    a.alu_ri(AluOp::Add, Reg::Rsi, 8);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, sum);
    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 48, 8);
    Workload {
        name: "lbm",
        description: "five-point stencil sweeps over alternating grids",
        image: a.finish().expect("lbm assembles"),
        max_insts: 600_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_converges_deterministically() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }
}
