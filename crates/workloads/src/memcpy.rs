//! `memcpy` micro-kernel (Figure 2 set): a tight word-copy loop.
//!
//! The smallest instruction footprint in the suite — a handful of lines —
//! which makes it the extreme case for per-instruction emulation overhead
//! (Figure 2) while being nearly immune to scattering (its few
//! instructions fit any cache even when randomized).

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const WORDS: usize = 1024;
const PASSES: i64 = 24;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let src = util::data_random_u64s(&mut a, WORDS, 0x3333);
    let dst = a.data_zeroed(WORDS * 8);

    a.mov_ri(Reg::Rbx, PASSES.saturating_mul(scale as i64));
    let pass = a.here();
    a.mov_ri(Reg::Rsi, src.0 as i64);
    a.mov_ri(Reg::Rdi, dst.0 as i64);
    a.mov_ri(Reg::Rcx, (WORDS / 4) as i64);
    let copy = a.here();
    for k in 0..4 {
        a.load(Reg::Rax, Reg::Rsi, k * 8);
        a.store(Reg::Rdi, k * 8, Reg::Rax);
    }
    a.alu_ri(AluOp::Add, Reg::Rsi, 32);
    a.alu_ri(AluOp::Add, Reg::Rdi, 32);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, copy);
    a.alu_ri(AluOp::Sub, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, 0);
    a.jcc(Cond::Ne, pass);

    // Checksum the destination.
    a.mov_ri(Reg::Rdi, dst.0 as i64);
    a.mov_ri(Reg::Rcx, WORDS as i64);
    a.mov_ri(Reg::R9, 0);
    let sum = a.here();
    a.load(Reg::Rax, Reg::Rdi, 0);
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    a.alu_ri(AluOp::Add, Reg::Rdi, 8);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, sum);
    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 48, 12);
    Workload {
        name: "memcpy",
        description: "tight word-copy loop (minimal instruction footprint)",
        image: a.finish().expect("memcpy assembles"),
        max_insts: 300_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_matches_source_sum() {
        let out = build(1).run_reference().unwrap();
        let want: u64 = util::pseudo_u64s(WORDS, 0x3333).iter().fold(0u64, |s, v| s.wrapping_add(*v));
        assert_eq!(out.output, vec![want]);
    }
}
