//! `xalan` stand-in: XSLT-style virtual dispatch over a node tree.
//!
//! xalancbmk is the indirect-call champion of the paper's Table II
//! (15,465 static indirect calls). The stand-in walks a "DOM" of 4096
//! nodes, each carrying a function pointer to one of 48 type handlers
//! (`call [node]` — memory-indirect virtual dispatch), and additionally
//! touches a wide battery of template functions each pass to keep the
//! code footprint large.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const NODE_TYPES: usize = 48;
const NODES: usize = 4096;
const TEMPLATES: usize = 144;
const PASSES: usize = 4;
/// Node layout: { handler: fn ptr, value: u64 }.
const NODE_STRIDE: i32 = 16;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");

    let handler_labels: Vec<_> = (0..NODE_TYPES).map(|_| a.label()).collect();
    // Interleave per-node records: [handler ptr, value].
    let types: Vec<u64> =
        util::pseudo_u64s(NODES, 0xa1a).into_iter().map(|v| v % NODE_TYPES as u64).collect();
    let values = util::pseudo_u64s(NODES, 0xb2b);
    let mut first_node = None;
    for n in 0..NODES {
        let r = a.data_ptr_table(&[handler_labels[types[n] as usize]]);
        a.data_u64s(&[values[n] & 0xffff]);
        if n == 0 {
            first_node = Some(r);
        }
    }
    let nodes_base = first_node.expect("at least one node").0;

    // r12 = node cursor, r9 = checksum, rbp = pass counter.
    a.mov_ri(Reg::R9, 0);
    a.mov_ri(Reg::Rbp, (PASSES as i64).saturating_mul(scale as i64));
    let pass_top = a.here();
    // Touch a slice of the template battery (direct calls).
    for k in 0..6 {
        a.call_named(&format!("template{}", (k * 29 + 7) % TEMPLATES));
    }
    a.mov_ri(Reg::R12, nodes_base as i64);
    a.mov_ri(Reg::Rcx, (NODES / 8) as i64);
    let walk = a.here();
    // Eight distinct virtual-call sites per iteration: real xalancbmk is
    // the static indirect-call champion of the paper's Table II, so the
    // stand-in carries many call sites, not just many dynamic calls.
    for _ in 0..8 {
        a.call_m(Reg::R12, 0); // virtual dispatch on the node's handler
        a.alu_ri(AluOp::Add, Reg::R12, NODE_STRIDE);
    }
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, walk);
    a.alu_ri(AluOp::Sub, Reg::Rbp, 1);
    a.cmp_i(Reg::Rbp, 0);
    a.jcc(Cond::Ne, pass_top);

    a.emit_output(Reg::R9);
    a.halt();

    // Type handlers: read the node's value ([r12 + 8]) and fold it into
    // the checksum in a type-specific way; return to the walker.
    for (i, l) in handler_labels.iter().enumerate() {
        a.bind(*l);
        // The label marks a function entry for the stats machinery.
        a.load(Reg::Rax, Reg::R12, 8);
        a.alu_ri(AluOp::Add, Reg::Rax, (i as i32) * 11 + 1);
        // Template-instantiation bulk: real handlers format, test and
        // copy — dozens of instructions per virtual call.
        for r in 0..2 {
            a.mov_rr(Reg::R10, Reg::Rax);
            a.alu_ri(AluOp::Shl, Reg::R10, ((i + r) % 9 + 1) as i32);
            a.alu_rr(AluOp::Xor, Reg::Rax, Reg::R10);
            a.alu_ri(AluOp::And, Reg::Rax, 0x3fff_ffff);
        }
        match i % 3 {
            0 => a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax),
            1 => a.alu_rr(AluOp::Xor, Reg::R9, Reg::Rax),
            _ => {
                a.alu_ri(AluOp::And, Reg::Rax, 0xffff);
                a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
                a.mov_rr(Reg::R10, Reg::R9);
                a.alu_ri(AluOp::Shr, Reg::R10, 5);
                a.alu_rr(AluOp::Xor, Reg::R9, Reg::R10);
            }
        }
        a.ret();
    }

    // Template battery: direct-call targets inflating the footprint.
    for t in 0..TEMPLATES {
        a.func(&format!("template{t}"));
        a.alu_ri(AluOp::Add, Reg::R9, t as i32);
        for r in 0..5 {
            a.mov_rr(Reg::R10, Reg::R9);
            a.alu_ri(AluOp::Shl, Reg::R10, ((t + r) % 7 + 1) as i32);
            a.alu_rr(AluOp::Xor, Reg::R9, Reg::R10);
            a.alu_ri(AluOp::And, Reg::R9, 0x7fff_ffff);
        }
        a.ret();
    }

    util::emit_runtime_lib(&mut a, 96, 9);
    Workload {
        name: "xalan",
        description: "virtual dispatch over a node tree (indirect-call heavy)",
        image: a.finish().expect("xalan assembles"),
        max_insts: 1_200_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_dispatch_completes() {
        let w = build(1);
        let out = w.run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        assert_eq!(out.output, w.run_reference().unwrap().output);
    }

    #[test]
    fn every_node_has_a_relocated_handler() {
        let w = build(1);
        assert_eq!(w.image.relocs.len(), NODES);
    }
}
