//! Shared helpers for the workload generators.

use vcfr_isa::{AluOp, Asm, Cond, DataRef, Label, Reg};

/// Opens a runtime repeat loop counted down in `counter`, returning the
/// loop-top label — or emits nothing and returns `None` at `scale <= 1`,
/// so scale-1 images stay byte-identical to the historical unscaled
/// programs. Close with [`scale_loop_end`].
///
/// Used by the generators whose outer iteration is unrolled host-side
/// (no runtime trip-count register to multiply). `counter` must be a
/// register the wrapped body and every function it calls leave
/// untouched.
pub fn scale_loop_begin(a: &mut Asm, scale: u64, counter: Reg) -> Option<Label> {
    if scale <= 1 {
        return None;
    }
    a.mov_ri(counter, scale as i64);
    Some(a.here())
}

/// Closes a repeat loop opened by [`scale_loop_begin`] (no-op when that
/// call returned `None`).
pub fn scale_loop_end(a: &mut Asm, top: Option<Label>, counter: Reg) {
    if let Some(top) = top {
        a.alu_ri(AluOp::Sub, counter, 1);
        a.cmp_i(counter, 0);
        a.jcc(Cond::Ne, top);
    }
}

/// Deterministic pseudo-random byte buffer (xorshift-based, host side).
pub fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        out.push((s >> 32) as u8);
    }
    out
}

/// Deterministic pseudo-random u64 buffer.
pub fn pseudo_u64s(len: usize, seed: u64) -> Vec<u64> {
    let mut s = seed | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        out.push(s);
    }
    out
}

/// Emits a pseudo-random byte buffer into the data section.
pub fn data_random_bytes(a: &mut Asm, len: usize, seed: u64) -> DataRef {
    let bytes = pseudo_bytes(len, seed);
    a.data_bytes(&bytes)
}

/// Emits a pseudo-random word buffer into the data section.
pub fn data_random_u64s(a: &mut Asm, len: usize, seed: u64) -> DataRef {
    let words = pseudo_u64s(len, seed);
    a.data_u64s(&words)
}

/// Emits a synthetic statically-linked runtime library: `funcs` small
/// utility functions plus a `lib_init` that calls the first eight of
/// them once at program start.
///
/// Real SPEC binaries are statically linked (§VI-A: "the rewriter only
/// works for statically linked binary with all the libraries embedded"),
/// so their text contains thousands of mostly-cold library functions —
/// which is exactly where ROP gadgets live and what Table II / Figure 9
/// count. The function bodies rotate through realistic shapes:
///
/// * push/pop prologue-epilogue pairs (the classic `pop r; ret` gadget
///   tails),
/// * stack-relative spills (write-memory gadgets),
/// * ALU helper chains,
/// * an immediate whose bytes decode, unaligned, to `sys 3` — the
///   unintended-instruction phenomenon of variable-length ISAs that
///   yields "syscall gadgets",
/// * occasional tail-jump exits (functions *without* `ret`, Figure 9).
///
/// The caller must invoke `a.call_named("lib_init")` near its entry.
pub fn emit_runtime_lib(a: &mut Asm, funcs: usize, seed: u64) {
    assert!(funcs >= 8, "need at least the eight warm functions");

    a.func("lib_init");
    a.push(Reg::Rbx);
    for f in 0..8 {
        a.call_named(&format!("lib{f}"));
    }
    a.pop(Reg::Rbx);
    a.ret();

    let mix = pseudo_u64s(funcs, seed ^ 0x11b);
    for (f, m) in mix.iter().enumerate() {
        a.func(&format!("lib{f}"));
        match m % 6 {
            // Prologue/epilogue: pop-reg gadget tails.
            0 => {
                a.push(Reg::Rbx);
                a.push(Reg::R12);
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Add, Reg::R10, (f as i32) + 1);
                a.pop(Reg::R12);
                a.pop(Reg::Rbx);
                a.ret();
            }
            // Stack spill: write-memory gadget.
            1 => {
                a.store(Reg::Rsp, -16, Reg::Rax);
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Xor, Reg::R10, f as i32);
                a.load(Reg::Rax, Reg::Rsp, -16);
                a.ret();
            }
            // ALU helper.
            2 => {
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Shl, Reg::R10, ((f % 5) + 1) as i32);
                a.alu_rr(AluOp::Xor, Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::And, Reg::R10, 0x7fff_ffff);
                a.ret();
            }
            // The "0x0303" immediate: bytes that decode unaligned to
            // `sys 3` — a syscall gadget hiding in plain data.
            3 => {
                a.alu_ri(AluOp::And, Reg::R10, 0x0303);
                a.ret();
            }
            // Conditional helper with an early exit.
            4 => {
                a.test(Reg::Rax, Reg::Rax);
                let early = a.label();
                a.jcc(Cond::S, early);
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Add, Reg::R10, 7);
                a.bind(early);
                a.ret();
            }
            // Tail-jump exit: a function WITHOUT ret (Figure 9's
            // second population). Jumps to the next function's entry.
            _ => {
                a.mov_rr(Reg::R10, Reg::Rax);
                a.alu_ri(AluOp::Or, Reg::R10, 1);
                let next = a.named_label(&format!("lib{}", (f + 1) % funcs));
                a.jmp(next);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(pseudo_bytes(64, 7), pseudo_bytes(64, 7));
        assert_ne!(pseudo_bytes(64, 7), pseudo_bytes(64, 8));
        assert_eq!(pseudo_u64s(8, 1), pseudo_u64s(8, 1));
    }

    #[test]
    fn lengths_respected() {
        assert_eq!(pseudo_bytes(1000, 3).len(), 1000);
        assert_eq!(pseudo_u64s(17, 3).len(), 17);
    }
}
