//! `mcf` stand-in: pointer-chasing network simplex.
//!
//! mcf is famously memory-latency bound: it chases arc/node pointers
//! through a working set far larger than the caches. The stand-in builds
//! a randomly-permuted linked list (64-byte nodes, one per cache line)
//! and traverses it repeatedly, accumulating node payloads — tiny code,
//! dreadful data locality.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const NODES: usize = 4096;
const PASSES: i64 = 10;
/// Node layout: { next_ptr: u64, payload: u64, pad: 48 bytes }.
const NODE_BYTES: usize = 64;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");

    // Host-side: build node storage whose next pointers follow a
    // pseudo-random cyclic permutation (Fisher–Yates with our xorshift).
    let mut order: Vec<usize> = (0..NODES).collect();
    let rnd = util::pseudo_u64s(NODES, 0x3cf5);
    for i in (1..NODES).rev() {
        let j = (rnd[i] as usize) % (i + 1);
        order.swap(i, j);
    }
    let nodes = a.data_zeroed(NODES * NODE_BYTES);
    let node_addr = |i: usize| nodes.0 as u64 + (i * NODE_BYTES) as u64;
    let mut raw = vec![0u8; NODES * NODE_BYTES];
    for w in 0..NODES {
        let cur = order[w];
        let next = order[(w + 1) % NODES];
        let off = cur * NODE_BYTES;
        raw[off..off + 8].copy_from_slice(&node_addr(next).to_le_bytes());
        raw[off + 8..off + 16].copy_from_slice(&(rnd[cur] & 0xffff).to_le_bytes());
    }

    // rsi = cursor, r9 = checksum.
    a.mov_ri(Reg::R9, 0);
    a.mov_ri(Reg::Rbx, PASSES.saturating_mul(scale as i64));
    let pass = a.here();
    // Pricing helpers between iterations (call/return traffic).
    for k in 0..8 {
        a.call_named(&format!("lib{}", (k * 5 + 2) % 48));
    }
    a.mov_ri(Reg::Rsi, node_addr(order[0]) as i64);
    a.mov_ri(Reg::Rcx, NODES as i64);
    let chase = a.here();
    a.load(Reg::Rax, Reg::Rsi, 8); // payload
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    a.load(Reg::Rsi, Reg::Rsi, 0); // next
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, chase);
    // Arc-pricing phase: a wide, flat scan over the node array (the
    // primal pricing loops of real mcf are similarly large code bodies).
    a.mov_ri(Reg::Rsi, nodes.0 as i64);
    a.mov_ri(Reg::Rcx, (NODES / 16) as i64);
    let price = a.here();
    a.call_named("lib5");
    a.call_named("lib9");
    for k in 0..16 {
        a.load(Reg::Rax, Reg::Rsi, (k * NODE_BYTES) as i32 + 8);
        a.mov_rr(Reg::R10, Reg::Rax);
        a.alu_ri(AluOp::Shr, Reg::R10, 3);
        a.alu_rr(AluOp::Xor, Reg::Rax, Reg::R10);
        a.alu_ri(AluOp::And, Reg::Rax, 0xffff);
        a.mov_rr(Reg::R11, Reg::Rax);
        a.alu_ri(AluOp::Shl, Reg::R11, 2);
        a.alu_rr(AluOp::Add, Reg::R11, Reg::Rax);
        a.alu_ri(AluOp::And, Reg::R11, 0x3_ffff);
        a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    }
    a.alu_ri(AluOp::Add, Reg::Rsi, (16 * NODE_BYTES) as i32);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, price);
    a.alu_ri(AluOp::Sub, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, 0);
    a.jcc(Cond::Ne, pass);
    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 48, 3);
    let mut image = a.finish().expect("mcf assembles");
    // Patch the node storage bytes in place (data_zeroed reserved them).
    let data = image
        .sections
        .iter_mut()
        .find(|s| s.kind == vcfr_isa::SectionKind::Data)
        .expect("mcf has data");
    let off = (nodes.0 - data.base) as usize;
    data.bytes[off..off + raw.len()].copy_from_slice(&raw);

    Workload {
        name: "mcf",
        description: "randomly-permuted linked-list traversal (latency bound)",
        image,
        max_insts: 1_500_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traverses_every_node_each_pass() {
        let out = build(1).run_reference().unwrap();
        assert_eq!(out.output.len(), 1);
        // Traversal payload sum plus the pricing-phase folds, per pass.
        let rnd = util::pseudo_u64s(NODES, 0x3cf5);
        let chase: u64 = (0..NODES).map(|i| rnd[i] & 0xffff).sum();
        let price: u64 = (0..NODES)
            .map(|i| {
                let payload = rnd[i] & 0xffff;
                (payload ^ (payload >> 3)) & 0xffff
            })
            .sum();
        assert_eq!(out.output[0], (chase + price) * PASSES as u64);
    }
}
