//! `soplex` stand-in: sparse linear-algebra pivoting.
//!
//! soplex's simplex iterations are dominated by sparse matrix-vector
//! products: compressed-row walks with indexed gathers from the dense
//! vector. The stand-in runs CSR SpMV passes — short inner loops, gather
//! loads with poor locality, nested loop control.

use crate::util;
use crate::Workload;
use vcfr_isa::{AluOp, Cond, Reg};

const ROWS: usize = 1200;
const NNZ_PER_ROW: usize = 8;
const COLS: usize = 4096;
const PASSES: i64 = 4;

/// Builds the workload. `scale` multiplies the outer repeat count and
/// the instruction budget; scale 1 is byte-identical to the historical
/// unscaled program.
pub fn build(scale: u64) -> Workload {
    let scale = scale.max(1);
    let mut a = vcfr_isa::Asm::new(0x1000);
    a.call_named("lib_init");
    let col_idx: Vec<u64> = util::pseudo_u64s(ROWS * NNZ_PER_ROW, 0x50e1)
        .into_iter()
        .map(|v| v % COLS as u64)
        .collect();
    let cols = a.data_u64s(&col_idx);
    let vals = util::data_random_u64s(&mut a, ROWS * NNZ_PER_ROW, 0x50e2);
    let x = util::data_random_u64s(&mut a, COLS, 0x50e3);
    let y = a.data_zeroed(ROWS * 8);

    a.mov_ri(Reg::R12, cols.0 as i64);
    a.mov_ri(Reg::R13, vals.0 as i64);
    a.mov_ri(Reg::R14, x.0 as i64);
    a.mov_ri(Reg::R15, y.0 as i64);
    a.mov_ri(Reg::R9, 0);
    a.mov_ri(Reg::Rbp, PASSES.saturating_mul(scale as i64));

    let pass = a.here();
    a.mov_ri(Reg::Rbx, 0); // row
    a.mov_ri(Reg::Rdx, 0); // flat nnz cursor
    let row_loop = a.here();
    // Per-row pricing helpers.
    a.call_named("lib3");
    a.call_named("lib11");
    a.call_named("lib21");
    a.call_named("lib33");
    a.mov_ri(Reg::Rax, 0); // dot accumulator
    // The row's gathers are fully unrolled (compiled CSR kernels are
    // flat code over the row's nonzeros).
    for k in 0..NNZ_PER_ROW {
        a.load_idx(Reg::R10, Reg::R12, Reg::Rdx, 3, (k * 8) as i32); // column index
        a.load_idx(Reg::R10, Reg::R14, Reg::R10, 3, 0); // x[col] (gather)
        a.alu_ri(AluOp::And, Reg::R10, 0xffff);
        a.load_idx(Reg::R11, Reg::R13, Reg::Rdx, 3, (k * 8) as i32); // val
        a.alu_ri(AluOp::And, Reg::R11, 0xffff);
        a.alu_rr(AluOp::Mul, Reg::R10, Reg::R11);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::R10);
    }
    a.alu_ri(AluOp::Add, Reg::Rdx, NNZ_PER_ROW as i32);
    a.store_idx(Reg::R15, Reg::Rbx, 3, 0, Reg::Rax);
    a.alu_rr(AluOp::Add, Reg::R9, Reg::Rax);
    a.alu_ri(AluOp::Add, Reg::Rbx, 1);
    a.cmp_i(Reg::Rbx, ROWS as i32);
    a.jcc(Cond::Ne, row_loop);
    // Dense vector update (the simplex ratio-test sweep), x16 unrolled.
    a.mov_ri(Reg::Rsi, x.0 as i64);
    a.mov_ri(Reg::Rcx, (COLS / 32) as i64);
    let update = a.here();
    for k in 0..32 {
        a.load(Reg::R10, Reg::Rsi, k * 8);
        a.alu_ri(AluOp::Mul, Reg::R10, 3);
        a.alu_ri(AluOp::And, Reg::R10, 0x3_ffff);
        a.mov_rr(Reg::R11, Reg::R10);
        a.alu_ri(AluOp::Shr, Reg::R11, 5);
        a.alu_rr(AluOp::Xor, Reg::R10, Reg::R11);
        a.alu_ri(AluOp::And, Reg::R10, 0x3_ffff);
        a.alu_rr(AluOp::Add, Reg::R9, Reg::R10);
    }
    a.alu_ri(AluOp::Add, Reg::Rsi, 256);
    a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
    a.cmp_i(Reg::Rcx, 0);
    a.jcc(Cond::Ne, update);
    a.alu_ri(AluOp::Sub, Reg::Rbp, 1);
    a.cmp_i(Reg::Rbp, 0);
    a.jcc(Cond::Ne, pass);

    a.emit_output(Reg::R9);
    a.halt();

    util::emit_runtime_lib(&mut a, 64, 11);
    Workload {
        name: "soplex",
        description: "CSR sparse matrix-vector products (gather loads)",
        image: a.finish().expect("soplex assembles"),
        max_insts: 1_200_000u64.saturating_mul(scale),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_checksum_matches_host_model() {
        let out = build(1).run_reference().unwrap();
        // Recompute on the host.
        let col_idx: Vec<u64> = util::pseudo_u64s(ROWS * NNZ_PER_ROW, 0x50e1)
            .into_iter()
            .map(|v| v % COLS as u64)
            .collect();
        let vals = util::pseudo_u64s(ROWS * NNZ_PER_ROW, 0x50e2);
        let x = util::pseudo_u64s(COLS, 0x50e3);
        let mut sum = 0u64;
        for _ in 0..PASSES {
            for r in 0..ROWS {
                let mut dot = 0u64;
                for k in 0..NNZ_PER_ROW {
                    let f = r * NNZ_PER_ROW + k;
                    let xv = x[col_idx[f] as usize] & 0xffff;
                    let vv = vals[f] & 0xffff;
                    dot = dot.wrapping_add(xv.wrapping_mul(vv));
                }
                sum = sum.wrapping_add(dot);
            }
            // Dense-update sweep.
            for xv in &x {
                let v = xv.wrapping_mul(3) & 0x3_ffff;
                sum = sum.wrapping_add((v ^ (v >> 5)) & 0x3_ffff);
            }
        }
        assert_eq!(out.output, vec![sum]);
    }
}
