//! A McPAT-style analytic dynamic power model.
//!
//! The paper integrates a modified McPAT with XIOSim and reports the DRC's
//! dynamic power as a fraction of total CPU dynamic power (Figure 15:
//! 0.18% on average for a 128-entry DRC). This crate reproduces that
//! pipeline: per-access energies for every SRAM structure from a
//! CACTI-style size/associativity scaling law, activity counts from the
//! cycle simulator, and a per-component dynamic power breakdown.
//!
//! Absolute watts are not the point (we model no specific process node);
//! the *ratio* between a tiny direct-mapped DRC and the rest of the core
//! is what Figure 15 reports, and the scaling law preserves it.
//!
//! # Example
//!
//! ```
//! use vcfr_power::sram_access_energy_pj;
//! // A 512 KB 8-way L2 costs far more per access than a 2 KB DRC.
//! assert!(sram_access_energy_pj(512 * 1024, 8) > 10.0 * sram_access_energy_pj(2048, 1));
//! ```

#![warn(missing_docs)]

use vcfr_core::DrcConfig;
use vcfr_sim::{SimConfig, SimStats};

/// Per-access dynamic energy of an SRAM structure, in picojoules.
///
/// CACTI-style scaling: energy grows with the square root of capacity
/// (bitline/wordline length) and linearly with the ways probed in
/// parallel. A constant term covers decoders and sense amplifiers.
pub fn sram_access_energy_pj(size_bytes: usize, ways: usize) -> f64 {
    0.08 * (size_bytes as f64).sqrt() * (1.0 + 0.15 * (ways.saturating_sub(1)) as f64) + 0.4
}

/// Bytes per DRC entry (two 32-bit addresses plus tag/valid bits).
const DRC_ENTRY_BYTES: usize = 8;

/// Fixed per-instruction energy of the execution engine (decode, rename-
/// free in-order control, register file, bypass, ALU), in pJ.
const EXEC_PJ_PER_INST: f64 = 6.5;
/// Clock tree and pipeline latch energy per cycle, in pJ.
const CLOCK_PJ_PER_CYCLE: f64 = 9.0;

/// One component's contribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    /// Component name.
    pub name: &'static str,
    /// Total dynamic energy over the run, in picojoules.
    pub energy_pj: f64,
}

/// A dynamic power breakdown for one simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerBreakdown {
    /// Per-component energies.
    pub components: Vec<Component>,
    /// Total dynamic power in milliwatts at the configured frequency.
    pub total_mw: f64,
    /// DRC dynamic power in milliwatts (0 for non-VCFR runs).
    pub drc_mw: f64,
    /// Run length in seconds (for power conversion).
    pub seconds: f64,
}

impl PowerBreakdown {
    /// DRC dynamic power as a percentage of total CPU dynamic power —
    /// Figure 15's y-axis.
    pub fn drc_overhead_pct(&self) -> f64 {
        if self.total_mw == 0.0 {
            0.0
        } else {
            100.0 * self.drc_mw / self.total_mw
        }
    }

    /// Looks up one component's energy share (0..1).
    pub fn share(&self, name: &str) -> f64 {
        let total: f64 = self.components.iter().map(|c| c.energy_pj).sum();
        if total == 0.0 {
            return 0.0;
        }
        self.components
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.energy_pj / total)
            .unwrap_or(0.0)
    }
}

/// Computes the dynamic power breakdown of one simulation.
///
/// `drc` describes the DRC geometry when the run used VCFR; pass `None`
/// for baseline and naive-ILR runs.
pub fn analyze(stats: &SimStats, cfg: &SimConfig, drc: Option<DrcConfig>) -> PowerBreakdown {
    let il1_e = sram_access_energy_pj(cfg.il1.size_bytes, cfg.il1.ways);
    let dl1_e = sram_access_energy_pj(cfg.dl1.size_bytes, cfg.dl1.ways);
    let l2_e = sram_access_energy_pj(cfg.l2.size_bytes, cfg.l2.ways);
    let btb_e = sram_access_energy_pj(cfg.btb.entries * 8, cfg.btb.ways);
    let pht_e = sram_access_energy_pj(1 << (cfg.gshare.history_bits.saturating_sub(2)), 1);
    let itlb_e = sram_access_energy_pj(cfg.itlb_entries * 8, cfg.itlb_entries);
    let dtlb_e = sram_access_energy_pj(cfg.dtlb_entries * 8, cfg.dtlb_entries);
    let iq_e = sram_access_energy_pj(cfg.iq_entries * 16, 1);
    let lsq_e = sram_access_energy_pj(cfg.lsq_entries * 16, 2);

    let insts = stats.instructions as f64;
    let mem_ops = (stats.dl1.accesses) as f64;

    let mut components = vec![
        Component { name: "il1", energy_pj: stats.il1.accesses as f64 * il1_e },
        Component { name: "dl1", energy_pj: stats.dl1.accesses as f64 * dl1_e },
        Component { name: "l2", energy_pj: stats.l2.accesses as f64 * l2_e },
        Component {
            name: "btb",
            energy_pj: (stats.branch.btb_lookups * 2) as f64 * btb_e,
        },
        Component {
            name: "bpred",
            energy_pj: (stats.branch.predictions * 2) as f64 * pht_e,
        },
        Component { name: "itlb", energy_pj: stats.itlb.accesses as f64 * itlb_e },
        Component { name: "dtlb", energy_pj: stats.dtlb.accesses as f64 * dtlb_e },
        Component { name: "iq", energy_pj: insts * 2.0 * iq_e },
        Component { name: "lsq", energy_pj: mem_ops * 2.0 * lsq_e },
        Component { name: "exec", energy_pj: insts * EXEC_PJ_PER_INST },
        Component { name: "clock", energy_pj: stats.cycles as f64 * CLOCK_PJ_PER_CYCLE },
    ];

    let mut drc_pj = 0.0;
    if let (Some(dcfg), Some(dstats)) = (drc, stats.drc) {
        let drc_e = sram_access_energy_pj(dcfg.entries * DRC_ENTRY_BYTES, dcfg.ways);
        drc_pj = dstats.lookups as f64 * drc_e;
        components.push(Component { name: "drc", energy_pj: drc_pj });
    }

    let seconds = stats.seconds(cfg.freq_ghz).max(1e-12);
    let total_pj: f64 = components.iter().map(|c| c.energy_pj).sum();
    PowerBreakdown {
        components,
        total_mw: total_pj * 1e-12 / seconds * 1e3,
        drc_mw: drc_pj * 1e-12 / seconds * 1e3,
        seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_core::DrcStats;
    use vcfr_sim::CacheStats;

    fn fake_stats(vcfr: bool) -> SimStats {
        SimStats {
            instructions: 1_000_000,
            cycles: 1_200_000,
            il1: CacheStats { accesses: 400_000, misses: 2_000, ..CacheStats::default() },
            dl1: CacheStats { accesses: 300_000, misses: 9_000, ..CacheStats::default() },
            l2: CacheStats { accesses: 12_000, misses: 1_500, ..CacheStats::default() },
            drc: vcfr.then_some(DrcStats {
                lookups: 30_000,
                misses: 2_000,
                derand_lookups: 15_000,
                rand_lookups: 15_000,
            }),
            ..SimStats::default()
        }
    }

    #[test]
    fn energy_scaling_is_monotone() {
        assert!(sram_access_energy_pj(64 * 1024, 2) > sram_access_energy_pj(32 * 1024, 2));
        assert!(sram_access_energy_pj(32 * 1024, 4) > sram_access_energy_pj(32 * 1024, 2));
    }

    #[test]
    fn drc_overhead_is_sub_percent() {
        let cfg = SimConfig::default();
        let b = analyze(&fake_stats(true), &cfg, Some(DrcConfig::direct_mapped(128)));
        let pct = b.drc_overhead_pct();
        assert!(pct > 0.0 && pct < 1.0, "DRC overhead {pct}%");
    }

    #[test]
    fn baseline_has_no_drc_component() {
        let cfg = SimConfig::default();
        let b = analyze(&fake_stats(false), &cfg, None);
        assert_eq!(b.drc_mw, 0.0);
        assert_eq!(b.drc_overhead_pct(), 0.0);
        assert_eq!(b.share("drc"), 0.0);
        assert!(b.total_mw > 0.0);
    }

    #[test]
    fn bigger_drc_costs_more_per_lookup() {
        let cfg = SimConfig::default();
        let small = analyze(&fake_stats(true), &cfg, Some(DrcConfig::direct_mapped(64)));
        let large = analyze(&fake_stats(true), &cfg, Some(DrcConfig::direct_mapped(512)));
        assert!(large.drc_mw > small.drc_mw);
    }

    #[test]
    fn shares_sum_to_one() {
        let cfg = SimConfig::default();
        let b = analyze(&fake_stats(true), &cfg, Some(DrcConfig::direct_mapped(128)));
        let sum: f64 = ["il1", "dl1", "l2", "btb", "bpred", "itlb", "dtlb", "iq", "lsq", "exec", "clock", "drc"]
            .iter()
            .map(|n| b.share(n))
            .sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
