//! Property-based tests: encode/decode is a bijection on valid
//! instructions, and decoding never panics on arbitrary bytes.

use proptest::prelude::*;
use vcfr_isa::{decode, encode, AluOp, Cond, Inst, Reg, ALL_ALU_OPS, ALL_CONDS, ALL_REGS};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(|i| ALL_REGS[i])
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0usize..ALL_ALU_OPS.len()).prop_map(|i| ALL_ALU_OPS[i])
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0usize..ALL_CONDS.len()).prop_map(|i| ALL_CONDS[i])
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        Just(Inst::Ret),
        any::<u8>().prop_map(|num| Inst::Sys { num }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovRR { dst, src }),
        (arb_reg(), any::<i64>()).prop_map(|(dst, imm)| Inst::MovRI { dst, imm }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, disp)| Inst::Lea {
            dst,
            base,
            disp
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, disp)| Inst::Load {
            dst,
            base,
            disp
        }),
        (arb_reg(), any::<i32>(), arb_reg()).prop_map(|(base, disp, src)| Inst::Store {
            base,
            disp,
            src
        }),
        (arb_reg(), arb_reg(), arb_reg(), 0u8..4, any::<i32>()).prop_map(
            |(dst, base, index, scale, disp)| Inst::LoadIdx { dst, base, index, scale, disp }
        ),
        (arb_reg(), arb_reg(), arb_reg(), 0u8..4, any::<i32>()).prop_map(
            |(base, index, src, scale, disp)| Inst::StoreIdx { base, index, scale, disp, src }
        ),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, disp)| Inst::LoadB {
            dst,
            base,
            disp
        }),
        (arb_reg(), any::<i32>(), arb_reg()).prop_map(|(base, disp, src)| Inst::StoreB {
            base,
            disp,
            src
        }),
        arb_reg().prop_map(|src| Inst::Push { src }),
        arb_reg().prop_map(|dst| Inst::Pop { dst }),
        any::<i32>().prop_map(|imm| Inst::PushI { imm }),
        (arb_alu(), arb_reg(), arb_reg()).prop_map(|(op, dst, src)| Inst::AluRR { op, dst, src }),
        (arb_alu(), arb_reg(), any::<i32>()).prop_map(|(op, dst, imm)| Inst::AluRI {
            op,
            dst,
            imm
        }),
        (arb_reg(), arb_reg()).prop_map(|(lhs, rhs)| Inst::Cmp { lhs, rhs }),
        (arb_reg(), any::<i32>()).prop_map(|(lhs, imm)| Inst::CmpI { lhs, imm }),
        (arb_reg(), arb_reg()).prop_map(|(lhs, rhs)| Inst::Test { lhs, rhs }),
        arb_reg().prop_map(|dst| Inst::Neg { dst }),
        arb_reg().prop_map(|dst| Inst::Not { dst }),
        any::<i32>().prop_map(|rel| Inst::Jmp { rel }),
        (arb_cond(), any::<i32>()).prop_map(|(cc, rel)| Inst::Jcc { cc, rel }),
        any::<i32>().prop_map(|rel| Inst::Call { rel }),
        arb_reg().prop_map(|target| Inst::CallR { target }),
        (arb_reg(), any::<i32>()).prop_map(|(base, disp)| Inst::CallM { base, disp }),
        arb_reg().prop_map(|target| Inst::JmpR { target }),
        (arb_reg(), any::<i32>()).prop_map(|(base, disp)| Inst::JmpM { base, disp }),
    ]
}

proptest! {
    /// encode → decode recovers the exact instruction.
    #[test]
    fn roundtrip(inst in arb_inst()) {
        let bytes = encode(&inst);
        prop_assert_eq!(bytes.len(), inst.len());
        let back = decode(&bytes).unwrap();
        prop_assert_eq!(back, inst);
    }

    /// Decoding arbitrary byte soup never panics, and any successful
    /// decode re-encodes to a prefix of the input.
    #[test]
    fn decode_total(bytes in proptest::collection::vec(any::<u8>(), 0..16)) {
        if let Ok(inst) = decode(&bytes) {
            let re = encode(&inst);
            prop_assert!(re.len() <= bytes.len());
            prop_assert_eq!(&bytes[..re.len()], &re[..]);
        }
    }

    /// Instruction streams decode instruction-by-instruction at the
    /// offsets the encoder produced.
    #[test]
    fn stream_walk(insts in proptest::collection::vec(arb_inst(), 1..64)) {
        let mut bytes = Vec::new();
        let mut offsets = Vec::new();
        for i in &insts {
            offsets.push(bytes.len());
            bytes.extend_from_slice(&encode(i));
        }
        for (i, off) in insts.iter().zip(offsets) {
            let (got, _) = vcfr_isa::decode_at(&bytes, off).unwrap();
            prop_assert_eq!(got, *i);
        }
    }
}
