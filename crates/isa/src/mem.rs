//! Sparse, page-granular flat memory.

use crate::Addr;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: Addr = (PAGE_SIZE as Addr) - 1;

/// A sparse byte-addressable memory covering the full 32-bit address space.
///
/// Pages (4 KiB) are allocated lazily on first touch; reads of untouched
/// memory return zero, as a freshly mapped anonymous page would.
///
/// # Example
///
/// ```
/// use vcfr_isa::Mem;
/// let mut m = Mem::new();
/// m.write_u64(0x8000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x8000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9000), 0); // untouched page reads as zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mem {
    pages: HashMap<Addr, Box<[u8; PAGE_SIZE]>>,
}

impl Mem {
    /// Creates an empty memory.
    pub fn new() -> Mem {
        Mem::default()
    }

    /// Number of 4 KiB pages currently materialised.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, val: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = val;
    }

    /// Reads a little-endian 64-bit word (may straddle pages).
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian 64-bit word (may straddle pages).
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        self.write_bytes(addr, &val.to_le_bytes());
    }

    /// Fills `out` with the bytes starting at `addr` (wrapping at the top
    /// of the address space).
    pub fn read_bytes(&self, addr: Addr, out: &mut [u8]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.read_u8(addr.wrapping_add(i as Addr));
        }
    }

    /// Writes `bytes` starting at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as Addr), *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Mem::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xffff_fff0), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn byte_and_word_access_agree() {
        let mut m = Mem::new();
        m.write_u64(100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(100), 0x08); // little endian
        assert_eq!(m.read_u8(107), 0x01);
    }

    #[test]
    fn cross_page_word() {
        let mut m = Mem::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles first/second page
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Mem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x5000 - 128, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(0x5000 - 128, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn wrapping_at_address_space_top() {
        let mut m = Mem::new();
        m.write_bytes(Addr::MAX, &[1, 2]);
        assert_eq!(m.read_u8(Addr::MAX), 1);
        assert_eq!(m.read_u8(0), 2);
    }
}
