//! Sparse, page-granular flat memory.

use crate::wire::{Reader, WireError, Writer};
use crate::Addr;
use std::fmt;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: Addr = (PAGE_SIZE as Addr) - 1;
/// Pages in the 32-bit address space.
const NUM_PAGES: usize = 1 << (32 - PAGE_SHIFT);

/// A sparse byte-addressable memory covering the full 32-bit address space.
///
/// Pages (4 KiB) are allocated lazily on first touch; reads of untouched
/// memory return zero, as a freshly mapped anonymous page would.
///
/// The page table is a directly-indexed vector (one slot per possible
/// page), so every access resolves in O(1) with no hashing; word and bulk
/// accesses that stay within one page go through a single page lookup and
/// a slice copy.
///
/// # Example
///
/// ```
/// use vcfr_isa::Mem;
/// let mut m = Mem::new();
/// m.write_u64(0x8000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x8000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x9000), 0); // untouched page reads as zero
/// ```
#[derive(Clone)]
pub struct Mem {
    pages: Vec<Option<Box<[u8; PAGE_SIZE]>>>,
    live: usize,
}

impl Default for Mem {
    fn default() -> Mem {
        Mem { pages: vec![None; NUM_PAGES], live: 0 }
    }
}

impl fmt::Debug for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mem").field("pages", &self.live).finish()
    }
}

impl Mem {
    /// Creates an empty memory.
    pub fn new() -> Mem {
        Mem::default()
    }

    /// Number of 4 KiB pages currently materialised.
    pub fn page_count(&self) -> usize {
        self.live
    }

    #[inline]
    fn page(&self, addr: Addr) -> Option<&[u8; PAGE_SIZE]> {
        self.pages[(addr >> PAGE_SHIFT) as usize].as_deref()
    }

    #[inline]
    fn page_mut(&mut self, addr: Addr) -> &mut [u8; PAGE_SIZE] {
        let slot = &mut self.pages[(addr >> PAGE_SHIFT) as usize];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE]));
            self.live += 1;
        }
        slot.as_deref_mut().expect("slot just filled")
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.page(addr) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: Addr, val: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = val;
    }

    /// Reads a little-endian 64-bit word (may straddle pages).
    #[inline]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let off = (addr & PAGE_MASK) as usize;
        if off <= PAGE_SIZE - 8 {
            match self.page(addr) {
                Some(p) => {
                    u64::from_le_bytes(p[off..off + 8].try_into().expect("8-byte slice"))
                }
                None => 0,
            }
        } else {
            let mut b = [0u8; 8];
            self.read_bytes(addr, &mut b);
            u64::from_le_bytes(b)
        }
    }

    /// Writes a little-endian 64-bit word (may straddle pages).
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, val: u64) {
        let off = (addr & PAGE_MASK) as usize;
        if off <= PAGE_SIZE - 8 {
            self.page_mut(addr)[off..off + 8].copy_from_slice(&val.to_le_bytes());
        } else {
            self.write_bytes(addr, &val.to_le_bytes());
        }
    }

    /// Fills `out` with the bytes starting at `addr` (wrapping at the top
    /// of the address space).
    pub fn read_bytes(&self, addr: Addr, out: &mut [u8]) {
        let mut addr = addr;
        let mut out = out;
        while !out.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = out.len().min(PAGE_SIZE - off);
            let (chunk, rest) = out.split_at_mut(n);
            match self.page(addr) {
                Some(p) => chunk.copy_from_slice(&p[off..off + n]),
                None => chunk.fill(0),
            }
            out = rest;
            addr = addr.wrapping_add(n as Addr);
        }
    }

    /// Serialises the materialised pages (checkpoint support): the page
    /// count followed by each live page's index and raw bytes, in index
    /// order, so the byte form is deterministic.
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.live as u64);
        for (idx, page) in self.pages.iter().enumerate() {
            if let Some(p) = page {
                w.u32(idx as u32);
                w.bytes(&p[..]);
            }
        }
    }

    /// Rebuilds a memory from [`Mem::save`] output, restoring the exact
    /// set of materialised pages.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or malformed input.
    pub fn restore(r: &mut Reader<'_>) -> Result<Mem, WireError> {
        let live = r.u64()?;
        if live > NUM_PAGES as u64 {
            return Err(WireError::LengthOutOfRange { len: live });
        }
        let mut mem = Mem::new();
        for _ in 0..live {
            let idx = r.u32()? as usize;
            let bytes = r.bytes()?;
            if idx >= NUM_PAGES || bytes.len() != PAGE_SIZE {
                return Err(WireError::LengthOutOfRange { len: bytes.len() as u64 });
            }
            let mut page = Box::new([0u8; PAGE_SIZE]);
            page.copy_from_slice(bytes);
            if mem.pages[idx].replace(page).is_none() {
                mem.live += 1;
            }
        }
        Ok(mem)
    }

    /// Writes `bytes` starting at `addr` (wrapping at the top of the
    /// address space).
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) {
        let mut addr = addr;
        let mut bytes = bytes;
        while !bytes.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = bytes.len().min(PAGE_SIZE - off);
            let (chunk, rest) = bytes.split_at(n);
            self.page_mut(addr)[off..off + n].copy_from_slice(chunk);
            bytes = rest;
            addr = addr.wrapping_add(n as Addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Mem::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(0xffff_fff0), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn byte_and_word_access_agree() {
        let mut m = Mem::new();
        m.write_u64(100, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(100), 0x08); // little endian
        assert_eq!(m.read_u8(107), 0x01);
    }

    #[test]
    fn cross_page_word() {
        let mut m = Mem::new();
        let addr = (1 << PAGE_SHIFT) - 4; // straddles first/second page
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Mem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x5000 - 128, &data);
        let mut back = vec![0u8; 256];
        m.read_bytes(0x5000 - 128, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn wrapping_at_address_space_top() {
        let mut m = Mem::new();
        m.write_bytes(Addr::MAX, &[1, 2]);
        assert_eq!(m.read_u8(Addr::MAX), 1);
        assert_eq!(m.read_u8(0), 2);
    }

    #[test]
    fn word_straddling_the_address_space_top_wraps() {
        let mut m = Mem::new();
        m.write_u64(Addr::MAX - 3, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(Addr::MAX - 3), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0), 0x44); // bytes 4..8 wrapped to page zero
    }

    #[test]
    fn save_restore_roundtrip_preserves_pages() {
        let mut m = Mem::new();
        m.write_u64(0x8000, 0xdead_beef);
        m.write_bytes(Addr::MAX - 1, &[1, 2, 3]); // wraps to page zero
        m.write_u8(0x123_4567, 0x5a);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let back = Mem::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.page_count(), m.page_count());
        assert_eq!(back.read_u64(0x8000), 0xdead_beef);
        assert_eq!(back.read_u8(Addr::MAX - 1), 1);
        assert_eq!(back.read_u8(0), 3);
        assert_eq!(back.read_u8(0x123_4567), 0x5a);
        assert_eq!(back.read_u8(0x9999), 0);
    }

    #[test]
    fn restore_rejects_truncated_input() {
        let mut m = Mem::new();
        m.write_u8(0x1000, 7);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf[..buf.len() - 3], *b"VCFRTEST").unwrap();
        assert!(Mem::restore(&mut r).is_err());
    }

    #[test]
    fn bulk_read_spans_mapped_and_unmapped_pages() {
        let mut m = Mem::new();
        m.write_u8(0x1fff, 0xaa); // page 1 mapped, page 2 untouched
        let mut back = [0xffu8; 4];
        m.read_bytes(0x1ffe, &mut back);
        assert_eq!(back, [0x00, 0xaa, 0x00, 0x00]);
    }
}
