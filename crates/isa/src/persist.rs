//! On-disk persistence for [`Image`] (the randomizer's input/output
//! container format).

use crate::image::{Image, Reloc, Section, SectionKind, Symbol, SymbolKind};
use crate::wire::{Reader, WireError, Writer};

/// Magic/version header of serialized images.
pub const IMAGE_MAGIC: [u8; 8] = *b"VCFRIMG1";

impl Image {
    /// Serializes the image to the versioned wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_magic(IMAGE_MAGIC);
        w.u32(self.entry);
        w.u32(self.stack_top);
        w.u64(self.sections.len() as u64);
        for s in &self.sections {
            w.u8(match s.kind {
                SectionKind::Text => 0,
                SectionKind::Data => 1,
            });
            w.u32(s.base);
            w.bytes(&s.bytes);
        }
        w.u64(self.symbols.len() as u64);
        for s in &self.symbols {
            w.string(&s.name);
            w.u32(s.addr);
            w.u32(s.size);
            w.u8(match s.kind {
                SymbolKind::Func => 0,
                SymbolKind::Object => 1,
            });
        }
        w.u64(self.relocs.len() as u64);
        for r in &self.relocs {
            w.u32(r.at);
            w.u32(r.target);
        }
        w.into_bytes()
    }

    /// Deserializes an image written by [`Image::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, corruption or a version
    /// mismatch.
    ///
    /// # Example
    ///
    /// ```
    /// use vcfr_isa::{Asm, Image, Reg};
    /// let mut a = Asm::new(0x1000);
    /// a.mov_ri(Reg::Rax, 5);
    /// a.halt();
    /// let img = a.finish().unwrap();
    /// let bytes = img.to_bytes();
    /// assert_eq!(Image::from_bytes(&bytes).unwrap(), img);
    /// ```
    pub fn from_bytes(buf: &[u8]) -> Result<Image, WireError> {
        let mut r = Reader::with_magic(buf, IMAGE_MAGIC)?;
        let entry = r.u32()?;
        let stack_top = r.u32()?;
        let nsec = r.u64()?;
        let mut sections = Vec::with_capacity(nsec.min(1024) as usize);
        for _ in 0..nsec {
            let kind = match r.u8()? {
                0 => SectionKind::Text,
                1 => SectionKind::Data,
                tag => return Err(WireError::BadTag { tag }),
            };
            let base = r.u32()?;
            let bytes = r.bytes()?.to_vec();
            sections.push(Section { kind, base, bytes });
        }
        let nsym = r.u64()?;
        let mut symbols = Vec::with_capacity(nsym.min(1 << 20) as usize);
        for _ in 0..nsym {
            let name = r.string()?;
            let addr = r.u32()?;
            let size = r.u32()?;
            let kind = match r.u8()? {
                0 => SymbolKind::Func,
                1 => SymbolKind::Object,
                tag => return Err(WireError::BadTag { tag }),
            };
            symbols.push(Symbol { name, addr, size, kind });
        }
        let nrel = r.u64()?;
        let mut relocs = Vec::with_capacity(nrel.min(1 << 24) as usize);
        for _ in 0..nrel {
            let at = r.u32()?;
            let target = r.u32()?;
            relocs.push(Reloc { at, target });
        }
        Ok(Image { sections, entry, stack_top, symbols, relocs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn sample() -> Image {
        let mut a = Asm::new(0x1000);
        let f = a.label();
        let _t = a.data_ptr_table(&[f]);
        a.call_named("main_body");
        a.halt();
        a.func("main_body");
        a.mov_ri(Reg::Rax, 9);
        a.ret();
        a.bind(f);
        a.nop();
        a.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let img = sample();
        let back = Image::from_bytes(&img.to_bytes()).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn truncated_files_error() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 8, 16, bytes.len() - 1] {
            assert!(Image::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn foreign_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xff;
        assert!(matches!(Image::from_bytes(&bytes), Err(WireError::BadMagic { .. })));
    }

    #[test]
    fn bad_section_tag_rejected() {
        let img = sample();
        let mut bytes = img.to_bytes();
        // First section tag sits right after magic + entry + stack + count.
        let off = 8 + 4 + 4 + 8;
        bytes[off] = 9;
        assert!(matches!(Image::from_bytes(&bytes), Err(WireError::BadTag { tag: 9 })));
    }
}
