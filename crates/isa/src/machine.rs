//! Functional (architectural) interpreter for program [`Image`]s.
//!
//! The machine executes instructions with exact architectural semantics and
//! emits a per-instruction [`StepInfo`] record. The cycle simulator in
//! `vcfr-sim` is trace-driven: it replays these records through its timing
//! model, so the interpreter here is the single source of architectural
//! truth (used both for correctness tests of the binary rewriter and as
//! the execution engine underneath every timing experiment).
//!
//! The interpreter assumes W^X: programs do not modify their own text.
//! Decoded instructions are memoised per program counter.

use crate::decoded::DecodedImage;
use crate::error::{DecodeError, ExecError};
use crate::image::Image;
use crate::inst::{AluOp, Cond, Inst};
use crate::mem::Mem;
use crate::superblock::{superblock_eligible, SbInst, Superblock, SUPERBLOCK_MIN_INSTS};
use crate::wire::{Reader, WireError, Writer};
use crate::{decode, Addr, Reg, MAX_INST_LEN, SYS_EXIT, SYS_OUTPUT, SYS_SHELL};
use std::collections::HashMap;

/// Why the machine stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A `halt` instruction was executed.
    Halt,
    /// The exit syscall (`sys 0`) was executed.
    Exit,
    /// The attack-marker syscall (`sys 3`) was executed — a ROP payload
    /// "spawned a shell".
    Shell,
}

/// A single data-memory access performed by an instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAccess {
    /// Accessed virtual address.
    pub addr: Addr,
    /// Access size in bytes (1 or 8).
    pub size: u8,
    /// `true` for stores.
    pub write: bool,
}

/// The control-flow outcome of one executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlFlow {
    /// A conditional direct branch.
    Branch {
        /// Whether the branch was taken.
        taken: bool,
        /// The (static) branch target.
        target: Addr,
    },
    /// An unconditional direct jump.
    Jump {
        /// Jump target.
        target: Addr,
    },
    /// An indirect jump (`jmp reg` / `jmp [m]`).
    IndirectJump {
        /// Resolved target.
        target: Addr,
    },
    /// A direct call.
    Call {
        /// Call target.
        target: Addr,
        /// Return address pushed to the stack.
        ret_addr: Addr,
    },
    /// An indirect call (`call reg` / `call [m]`).
    IndirectCall {
        /// Resolved target.
        target: Addr,
        /// Return address pushed to the stack.
        ret_addr: Addr,
    },
    /// A `ret`.
    Return {
        /// Popped return target.
        target: Addr,
    },
}

impl ControlFlow {
    /// The address control actually transferred to, if the transfer was
    /// taken.
    pub fn taken_target(&self) -> Option<Addr> {
        match *self {
            ControlFlow::Branch { taken: true, target }
            | ControlFlow::Jump { target }
            | ControlFlow::IndirectJump { target }
            | ControlFlow::Call { target, .. }
            | ControlFlow::IndirectCall { target, .. }
            | ControlFlow::Return { target } => Some(target),
            ControlFlow::Branch { taken: false, .. } => None,
        }
    }
}

/// Everything the timing model needs to know about one executed
/// instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// Address of the instruction.
    pub pc: Addr,
    /// The decoded instruction.
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: u8,
    /// Program counter after this instruction.
    pub next_pc: Addr,
    /// Control-flow outcome, when the instruction is a transfer.
    pub control: Option<ControlFlow>,
    /// Up to two data-memory accesses (e.g. `call [m]` loads the target
    /// and stores the return address).
    pub mem: [Option<MemAccess>; 2],
}

impl StepInfo {
    /// Iterates over the instruction's data-memory accesses.
    pub fn mem_accesses(&self) -> impl Iterator<Item = MemAccess> + '_ {
        self.mem.iter().flatten().copied()
    }
}

/// Summary of a completed [`Machine::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Values emitted through the output syscall, in order.
    pub output: Vec<u64>,
    /// Number of instructions executed.
    pub steps: u64,
    /// Why execution stopped.
    pub stop: StopReason,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Flags {
    zf: bool,
    sf: bool,
    cf: bool,
    of: bool,
}

/// The functional interpreter.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Machine, Reg};
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rax, 99);
/// a.emit_output(Reg::Rax);
/// a.halt();
/// let img = a.finish().unwrap();
/// let outcome = Machine::new(&img).run(100).unwrap();
/// assert_eq!(outcome.output, vec![99]);
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    regs: [u64; 16],
    flags: Flags,
    pc: Addr,
    mem: Mem,
    output: Vec<u64>,
    stopped: Option<StopReason>,
    steps: u64,
    decoded: DecodedImage,
}

impl Machine {
    /// Creates a machine with `image` loaded, the stack pointer set to the
    /// image's stack top and the program counter at its entry point.
    pub fn new(image: &Image) -> Machine {
        let mut mem = Mem::new();
        image.load_into(&mut mem);
        let mut regs = [0u64; 16];
        regs[Reg::Rsp.index()] = image.stack_top as u64;
        Machine {
            regs,
            flags: Flags::default(),
            pc: image.entry,
            mem,
            output: Vec::new(),
            stopped: None,
            steps: 0,
            decoded: DecodedImage::new(image),
        }
    }

    /// Installs an ILR-style fall-through successor map ("rewrite rules"
    /// in Hiser et al.'s terms): when the instruction at `pc` does not
    /// transfer control, execution continues at `map[pc]` instead of
    /// `pc + len`. Return addresses pushed by `call` follow the map too —
    /// which is exactly how ILR randomizes return addresses.
    ///
    /// Branch displacement arithmetic is *not* affected: direct-branch
    /// targets stay anchored at `pc + len`, so a rewriter computing
    /// scattered-space displacements keeps full control.
    pub fn set_fallthrough_map(&mut self, map: HashMap<Addr, Addr>) {
        self.decoded.set_fallthrough(&map);
    }

    /// Additionally permits control transfers into `[lo, hi)`. Used when a
    /// program legitimately spans several code regions (e.g. a scattered
    /// ILR layout plus an un-randomized fail-over region).
    pub fn allow_code_range(&mut self, lo: Addr, hi: Addr) {
        self.decoded.add_range(lo, hi);
    }

    /// Current program counter.
    pub fn pc(&self) -> Addr {
        self.pc
    }

    /// Redirects execution (used by attack drivers and tests).
    pub fn set_pc(&mut self, pc: Addr) {
        self.pc = pc;
    }

    /// Reads register `r`.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes register `r`.
    pub fn set_reg(&mut self, r: Reg, val: u64) {
        self.regs[r.index()] = val;
    }

    /// Immutable view of memory.
    pub fn mem(&self) -> &Mem {
        &self.mem
    }

    /// Mutable view of memory (attack drivers overwrite the stack through
    /// this, playing the role of a memory-corruption vulnerability).
    pub fn mem_mut(&mut self) -> &mut Mem {
        &mut self.mem
    }

    /// Values emitted so far through the output syscall.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Number of instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Why the machine stopped, once it has.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Serialises the architectural state (checkpoint support):
    /// registers, flags, program counter, step/output history, stop
    /// reason and the full memory contents. The decoded-instruction
    /// memo is *not* saved — it is a pure function of the image and is
    /// rebuilt on restore.
    pub fn save(&self, w: &mut Writer) {
        for r in self.regs {
            w.u64(r);
        }
        let f = self.flags;
        w.u8(u8::from(f.zf) | u8::from(f.sf) << 1 | u8::from(f.cf) << 2 | u8::from(f.of) << 3);
        w.u32(self.pc);
        w.u64(self.steps);
        w.u64(self.output.len() as u64);
        for v in &self.output {
            w.u64(*v);
        }
        w.u8(match self.stopped {
            None => 0,
            Some(StopReason::Halt) => 1,
            Some(StopReason::Exit) => 2,
            Some(StopReason::Shell) => 3,
        });
        self.mem.save(w);
    }

    /// Rebuilds a machine from [`Machine::save`] output. `image` must be
    /// the image the saved machine was created from (it seeds the decoded
    /// instruction memo; the architectural state comes from the reader).
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or malformed input.
    pub fn restore(image: &Image, r: &mut Reader<'_>) -> Result<Machine, WireError> {
        let mut regs = [0u64; 16];
        for reg in &mut regs {
            *reg = r.u64()?;
        }
        let fb = r.u8()?;
        let flags = Flags {
            zf: fb & 1 != 0,
            sf: fb & 2 != 0,
            cf: fb & 4 != 0,
            of: fb & 8 != 0,
        };
        let pc = r.u32()?;
        let steps = r.u64()?;
        let out_len = r.u64()?;
        if out_len > steps {
            return Err(WireError::LengthOutOfRange { len: out_len });
        }
        let mut output = Vec::with_capacity(out_len as usize);
        for _ in 0..out_len {
            output.push(r.u64()?);
        }
        let stopped = match r.u8()? {
            0 => None,
            1 => Some(StopReason::Halt),
            2 => Some(StopReason::Exit),
            3 => Some(StopReason::Shell),
            tag => return Err(WireError::BadTag { tag }),
        };
        let mem = Mem::restore(r)?;
        Ok(Machine {
            regs,
            flags,
            pc,
            mem,
            output,
            stopped,
            steps,
            decoded: DecodedImage::new(image),
        })
    }

    fn in_code(&self, addr: Addr) -> bool {
        self.decoded.contains(addr)
    }

    fn fetch_decode(&mut self, pc: Addr) -> Result<Inst, ExecError> {
        if let Some(inst) = self.decoded.get(pc) {
            return Ok(inst);
        }
        let mut buf = [0u8; MAX_INST_LEN];
        self.mem.read_bytes(pc, &mut buf);
        let inst = decode(&buf).map_err(|source| ExecError::Decode { pc, source })?;
        self.decoded.insert(pc, inst);
        Ok(inst)
    }

    fn eval_cond(&self, cc: Cond) -> bool {
        let f = self.flags;
        match cc {
            Cond::Eq => f.zf,
            Cond::Ne => !f.zf,
            Cond::Lt => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::Gt => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Ae => !f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    fn set_zs(&mut self, r: u64) {
        self.flags.zf = r == 0;
        self.flags.sf = (r as i64) < 0;
    }

    fn flags_add(&mut self, a: u64, b: u64) -> u64 {
        let r = a.wrapping_add(b);
        self.flags.cf = r < a;
        self.flags.of = ((a ^ r) & (b ^ r)) >> 63 != 0;
        self.set_zs(r);
        r
    }

    fn flags_sub(&mut self, a: u64, b: u64) -> u64 {
        let r = a.wrapping_sub(b);
        self.flags.cf = a < b;
        self.flags.of = ((a ^ b) & (a ^ r)) >> 63 != 0;
        self.set_zs(r);
        r
    }

    fn flags_logic(&mut self, r: u64) -> u64 {
        self.flags.cf = false;
        self.flags.of = false;
        self.set_zs(r);
        r
    }

    fn alu(&mut self, op: AluOp, a: u64, b: u64, pc: Addr) -> Result<u64, ExecError> {
        Ok(match op {
            AluOp::Add => self.flags_add(a, b),
            AluOp::Sub => self.flags_sub(a, b),
            AluOp::And => self.flags_logic(a & b),
            AluOp::Or => self.flags_logic(a | b),
            AluOp::Xor => self.flags_logic(a ^ b),
            AluOp::Shl => self.flags_logic(a.wrapping_shl((b & 63) as u32)),
            AluOp::Shr => self.flags_logic(a.wrapping_shr((b & 63) as u32)),
            AluOp::Sar => self.flags_logic(((a as i64).wrapping_shr((b & 63) as u32)) as u64),
            AluOp::Mul => self.flags_logic(a.wrapping_mul(b)),
            AluOp::Div => {
                if b == 0 {
                    return Err(ExecError::DivideByZero { pc });
                }
                self.flags_logic(a / b)
            }
            AluOp::Rem => {
                if b == 0 {
                    return Err(ExecError::DivideByZero { pc });
                }
                self.flags_logic(a % b)
            }
        })
    }

    fn push64(&mut self, val: u64) -> MemAccess {
        let sp = (self.regs[Reg::Rsp.index()] as Addr).wrapping_sub(8);
        self.regs[Reg::Rsp.index()] = sp as u64;
        self.mem.write_u64(sp, val);
        MemAccess { addr: sp, size: 8, write: true }
    }

    fn pop64(&mut self) -> (u64, MemAccess) {
        let sp = self.regs[Reg::Rsp.index()] as Addr;
        let val = self.mem.read_u64(sp);
        self.regs[Reg::Rsp.index()] = sp.wrapping_add(8) as u64;
        (val, MemAccess { addr: sp, size: 8, write: false })
    }

    fn check_target(&self, pc: Addr, target: Addr) -> Result<Addr, ExecError> {
        if self.in_code(target) {
            Ok(target)
        } else {
            Err(ExecError::BadJumpTarget { pc, target })
        }
    }

    /// Executes one instruction.
    ///
    /// Returns `Ok(None)` once the machine has stopped.
    ///
    /// # Errors
    ///
    /// Propagates architectural faults ([`ExecError`]).
    pub fn step(&mut self) -> Result<Option<StepInfo>, ExecError> {
        if self.stopped.is_some() {
            return Ok(None);
        }
        let pc = self.pc;
        let inst = self.fetch_decode(pc)?;
        let len = inst.len() as u8;
        // Anchor for pc-relative displacements (always the encoding end).
        let anchor = pc.wrapping_add(len as Addr);
        // Sequential successor and call return address: follows the ILR
        // fall-through map when one is installed.
        let fall = self.decoded.fall(pc).unwrap_or(anchor);
        let mut next = fall;
        let mut control = None;
        let mut mem: [Option<MemAccess>; 2] = [None, None];

        macro_rules! addr_of {
            ($base:expr, $disp:expr) => {
                (self.regs[$base.index()] as Addr).wrapping_add($disp as Addr)
            };
        }

        match inst {
            Inst::Nop => {}
            Inst::Halt => self.stopped = Some(StopReason::Halt),
            Inst::Sys { num } => match num {
                SYS_EXIT => self.stopped = Some(StopReason::Exit),
                SYS_OUTPUT => self.output.push(self.regs[Reg::Rax.index()]),
                SYS_SHELL => self.stopped = Some(StopReason::Shell),
                _ => {}
            },
            Inst::MovRR { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
            Inst::MovRI { dst, imm } => self.regs[dst.index()] = imm as u64,
            Inst::Lea { dst, base, disp } => {
                self.regs[dst.index()] = addr_of!(base, disp) as u64;
            }
            Inst::Load { dst, base, disp } => {
                let a = addr_of!(base, disp);
                self.regs[dst.index()] = self.mem.read_u64(a);
                mem[0] = Some(MemAccess { addr: a, size: 8, write: false });
            }
            Inst::Store { base, disp, src } => {
                let a = addr_of!(base, disp);
                self.mem.write_u64(a, self.regs[src.index()]);
                mem[0] = Some(MemAccess { addr: a, size: 8, write: true });
            }
            Inst::LoadIdx { dst, base, index, scale, disp } => {
                let a = addr_of!(base, disp)
                    .wrapping_add((self.regs[index.index()] << scale) as Addr);
                self.regs[dst.index()] = self.mem.read_u64(a);
                mem[0] = Some(MemAccess { addr: a, size: 8, write: false });
            }
            Inst::StoreIdx { base, index, scale, disp, src } => {
                let a = addr_of!(base, disp)
                    .wrapping_add((self.regs[index.index()] << scale) as Addr);
                self.mem.write_u64(a, self.regs[src.index()]);
                mem[0] = Some(MemAccess { addr: a, size: 8, write: true });
            }
            Inst::LoadB { dst, base, disp } => {
                let a = addr_of!(base, disp);
                self.regs[dst.index()] = self.mem.read_u8(a) as u64;
                mem[0] = Some(MemAccess { addr: a, size: 1, write: false });
            }
            Inst::StoreB { base, disp, src } => {
                let a = addr_of!(base, disp);
                self.mem.write_u8(a, self.regs[src.index()] as u8);
                mem[0] = Some(MemAccess { addr: a, size: 1, write: true });
            }
            Inst::Push { src } => {
                let v = self.regs[src.index()];
                mem[0] = Some(self.push64(v));
            }
            Inst::Pop { dst } => {
                let (v, acc) = self.pop64();
                self.regs[dst.index()] = v;
                mem[0] = Some(acc);
            }
            Inst::PushI { imm } => {
                mem[0] = Some(self.push64(imm as i64 as u64));
            }
            Inst::AluRR { op, dst, src } => {
                let r = self.alu(op, self.regs[dst.index()], self.regs[src.index()], pc)?;
                self.regs[dst.index()] = r;
            }
            Inst::AluRI { op, dst, imm } => {
                let r = self.alu(op, self.regs[dst.index()], imm as i64 as u64, pc)?;
                self.regs[dst.index()] = r;
            }
            Inst::Cmp { lhs, rhs } => {
                self.flags_sub(self.regs[lhs.index()], self.regs[rhs.index()]);
            }
            Inst::CmpI { lhs, imm } => {
                self.flags_sub(self.regs[lhs.index()], imm as i64 as u64);
            }
            Inst::Test { lhs, rhs } => {
                self.flags_logic(self.regs[lhs.index()] & self.regs[rhs.index()]);
            }
            Inst::Neg { dst } => {
                let r = self.flags_sub(0, self.regs[dst.index()]);
                self.regs[dst.index()] = r;
            }
            Inst::Not { dst } => self.regs[dst.index()] = !self.regs[dst.index()],
            Inst::Jmp { rel } => {
                let t = self.check_target(pc, anchor.wrapping_add(rel as Addr))?;
                next = t;
                control = Some(ControlFlow::Jump { target: t });
            }
            Inst::Jcc { cc, rel } => {
                let t = anchor.wrapping_add(rel as Addr);
                let taken = self.eval_cond(cc);
                if taken {
                    next = self.check_target(pc, t)?;
                }
                control = Some(ControlFlow::Branch { taken, target: t });
            }
            Inst::Call { rel } => {
                let t = self.check_target(pc, anchor.wrapping_add(rel as Addr))?;
                mem[0] = Some(self.push64(fall as u64));
                next = t;
                control = Some(ControlFlow::Call { target: t, ret_addr: fall });
            }
            Inst::CallR { target } => {
                let t = self.check_target(pc, self.regs[target.index()] as Addr)?;
                mem[0] = Some(self.push64(fall as u64));
                next = t;
                control = Some(ControlFlow::IndirectCall { target: t, ret_addr: fall });
            }
            Inst::CallM { base, disp } => {
                let a = addr_of!(base, disp);
                let t = self.mem.read_u64(a) as Addr;
                mem[0] = Some(MemAccess { addr: a, size: 8, write: false });
                let t = self.check_target(pc, t)?;
                mem[1] = Some(self.push64(fall as u64));
                next = t;
                control = Some(ControlFlow::IndirectCall { target: t, ret_addr: fall });
            }
            Inst::JmpR { target } => {
                let t = self.check_target(pc, self.regs[target.index()] as Addr)?;
                next = t;
                control = Some(ControlFlow::IndirectJump { target: t });
            }
            Inst::JmpM { base, disp } => {
                let a = addr_of!(base, disp);
                let t = self.mem.read_u64(a) as Addr;
                mem[0] = Some(MemAccess { addr: a, size: 8, write: false });
                let t = self.check_target(pc, t)?;
                next = t;
                control = Some(ControlFlow::IndirectJump { target: t });
            }
            Inst::Ret => {
                let (v, acc) = self.pop64();
                mem[0] = Some(acc);
                let t = self.check_target(pc, v as Addr)?;
                next = t;
                control = Some(ControlFlow::Return { target: t });
            }
        }

        self.pc = next;
        self.steps += 1;
        Ok(Some(StepInfo { pc, inst, len, next_pc: next, control, mem }))
    }

    /// Decodes the maximal superblock starting at `pc`: a straight-line
    /// run of [`superblock_eligible`] instructions, capped at
    /// `max_insts`. Formation stops at the first ineligible or
    /// undecodable instruction, at the edge of the indexed code ranges,
    /// and at any address with an ILR fall-through override (the
    /// successor is no longer `pc + len` there). Returns `None` for runs
    /// shorter than [`SUPERBLOCK_MIN_INSTS`].
    ///
    /// Formation is a read-only probe of the image bytes (plus the
    /// decoded-instruction memo, which is a pure function of the image),
    /// so attempting it never changes architectural state or when a
    /// fault would surface.
    pub fn form_superblock(&mut self, pc: Addr, max_insts: usize) -> Option<Superblock> {
        let mut insts = Vec::new();
        let mut cur = pc;
        while insts.len() < max_insts {
            if !self.decoded.contains(cur) || self.decoded.fall(cur).is_some() {
                break;
            }
            let Ok(inst) = self.fetch_decode(cur) else {
                break;
            };
            if !superblock_eligible(&inst) {
                break;
            }
            let len = inst.len() as u8;
            insts.push(SbInst { pc: cur, inst, len });
            cur = cur.wrapping_add(len as Addr);
        }
        if insts.len() < SUPERBLOCK_MIN_INSTS {
            return None;
        }
        Some(Superblock { start: pc, end: cur, insts })
    }

    /// Replays the first `n` instructions of `sb` through a reduced
    /// dispatch loop. The caller must be at the block's entry
    /// (`self.pc == sb.start`) with `1 <= n <= sb.len()`; the effect is
    /// bit-identical to `n` calls of [`Machine::step`] — eligible
    /// instructions touch only registers and flags, advance the program
    /// counter by their encoded length, and cannot fault or stop.
    pub fn replay_superblock(&mut self, sb: &Superblock, n: usize) {
        debug_assert_eq!(self.pc, sb.start);
        debug_assert!(n >= 1 && n <= sb.insts.len());
        for s in &sb.insts[..n] {
            match s.inst {
                Inst::Nop => {}
                Inst::MovRR { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
                Inst::MovRI { dst, imm } => self.regs[dst.index()] = imm as u64,
                Inst::Lea { dst, base, disp } => {
                    self.regs[dst.index()] =
                        (self.regs[base.index()] as Addr).wrapping_add(disp as Addr) as u64;
                }
                Inst::AluRR { op, dst, src } => {
                    let r = self.alu_nofault(op, self.regs[dst.index()], self.regs[src.index()]);
                    self.regs[dst.index()] = r;
                }
                Inst::AluRI { op, dst, imm } => {
                    let r = self.alu_nofault(op, self.regs[dst.index()], imm as i64 as u64);
                    self.regs[dst.index()] = r;
                }
                Inst::Cmp { lhs, rhs } => {
                    self.flags_sub(self.regs[lhs.index()], self.regs[rhs.index()]);
                }
                Inst::CmpI { lhs, imm } => {
                    self.flags_sub(self.regs[lhs.index()], imm as i64 as u64);
                }
                Inst::Test { lhs, rhs } => {
                    self.flags_logic(self.regs[lhs.index()] & self.regs[rhs.index()]);
                }
                Inst::Neg { dst } => {
                    let r = self.flags_sub(0, self.regs[dst.index()]);
                    self.regs[dst.index()] = r;
                }
                Inst::Not { dst } => self.regs[dst.index()] = !self.regs[dst.index()],
                _ => unreachable!("superblocks hold only eligible instructions"),
            }
        }
        let last = &sb.insts[n - 1];
        self.pc = last.pc.wrapping_add(last.len as Addr);
        self.steps += n as u64;
    }

    /// [`Machine::alu`] restricted to the operations that cannot fault
    /// (everything but `Div`/`Rem`), for the superblock replay path.
    fn alu_nofault(&mut self, op: AluOp, a: u64, b: u64) -> u64 {
        match op {
            AluOp::Add => self.flags_add(a, b),
            AluOp::Sub => self.flags_sub(a, b),
            AluOp::And => self.flags_logic(a & b),
            AluOp::Or => self.flags_logic(a | b),
            AluOp::Xor => self.flags_logic(a ^ b),
            AluOp::Shl => self.flags_logic(a.wrapping_shl((b & 63) as u32)),
            AluOp::Shr => self.flags_logic(a.wrapping_shr((b & 63) as u32)),
            AluOp::Sar => self.flags_logic(((a as i64).wrapping_shr((b & 63) as u32)) as u64),
            AluOp::Mul => self.flags_logic(a.wrapping_mul(b)),
            AluOp::Div | AluOp::Rem => unreachable!("superblocks exclude faulting ALU ops"),
        }
    }

    /// Runs until the program stops or `max_steps` instructions have
    /// executed.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepLimit`] when the budget is exhausted, or
    /// any architectural fault raised along the way.
    pub fn run(&mut self, max_steps: u64) -> Result<RunOutcome, ExecError> {
        self.run_with(max_steps, |_| {})
    }

    /// Like [`Machine::run`] but invokes `observer` with every
    /// [`StepInfo`] — the hook the trace-driven cycle simulator uses.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::run`].
    pub fn run_with(
        &mut self,
        max_steps: u64,
        mut observer: impl FnMut(&StepInfo),
    ) -> Result<RunOutcome, ExecError> {
        let budget_end = self.steps + max_steps;
        while self.steps < budget_end {
            match self.step()? {
                Some(info) => observer(&info),
                None => {
                    return Ok(RunOutcome {
                        output: self.output.clone(),
                        steps: self.steps,
                        stop: self.stopped.expect("stopped machine has a reason"),
                    })
                }
            }
        }
        // One more poll: the stop may have landed exactly on the budget.
        if let Some(stop) = self.stopped {
            return Ok(RunOutcome { output: self.output.clone(), steps: self.steps, stop });
        }
        Err(ExecError::StepLimit { pc: self.pc })
    }
}

/// Convenience: decode errors at a pc wrap into [`ExecError::Decode`].
impl From<(Addr, DecodeError)> for ExecError {
    fn from((pc, source): (Addr, DecodeError)) -> Self {
        ExecError::Decode { pc, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    fn run_asm(build: impl FnOnce(&mut Asm)) -> RunOutcome {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let img = a.finish().unwrap();
        Machine::new(&img).run(100_000).unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let out = run_asm(|a| {
            a.mov_ri(Reg::Rax, 10);
            a.alu_ri(AluOp::Add, Reg::Rax, 32);
            a.emit_output(Reg::Rax);
            a.mov_ri(Reg::Rbx, 6);
            a.alu_rr(AluOp::Mul, Reg::Rax, Reg::Rbx);
            a.emit_output(Reg::Rax);
            a.halt();
        });
        assert_eq!(out.output, vec![42, 252]);
        assert_eq!(out.stop, StopReason::Halt);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        let out = run_asm(|a| {
            // -1 < 1 signed, but -1 > 1 unsigned.
            a.mov_ri(Reg::Rax, -1);
            a.mov_ri(Reg::Rbx, 1);
            a.cmp(Reg::Rax, Reg::Rbx);
            let signed_lt = a.label();
            let done = a.label();
            a.jcc(Cond::Lt, signed_lt);
            a.jmp(done);
            a.bind(signed_lt);
            a.mov_ri(Reg::Rcx, 1);
            a.emit_output(Reg::Rcx);
            a.cmp(Reg::Rax, Reg::Rbx);
            let unsigned_above = a.label();
            a.jcc(Cond::A, unsigned_above);
            a.jmp(done);
            a.bind(unsigned_above);
            a.mov_ri(Reg::Rcx, 2);
            a.emit_output(Reg::Rcx);
            a.bind(done);
            a.halt();
        });
        assert_eq!(out.output, vec![1, 2]);
    }

    #[test]
    fn call_ret_roundtrip() {
        let out = run_asm(|a| {
            a.mov_ri(Reg::Rax, 5);
            a.call_named("double");
            a.emit_output(Reg::Rax);
            a.halt();
            a.func("double");
            a.alu_rr(AluOp::Add, Reg::Rax, Reg::Rax);
            a.ret();
        });
        assert_eq!(out.output, vec![10]);
    }

    #[test]
    fn recursion_factorial() {
        let out = run_asm(|a| {
            a.mov_ri(Reg::Rdi, 6);
            a.call_named("fact");
            a.emit_output(Reg::Rax);
            a.halt();
            a.func("fact");
            a.cmp_i(Reg::Rdi, 1);
            let rec = a.label();
            a.jcc(Cond::Gt, rec);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(rec);
            a.push(Reg::Rdi);
            a.alu_ri(AluOp::Sub, Reg::Rdi, 1);
            a.call_named("fact");
            a.pop(Reg::Rdi);
            a.alu_rr(AluOp::Mul, Reg::Rax, Reg::Rdi);
            a.ret();
        });
        assert_eq!(out.output, vec![720]);
    }

    #[test]
    fn jump_table_dispatch() {
        let out = run_asm(|a| {
            let c0 = a.label();
            let c1 = a.label();
            let c2 = a.label();
            let table = a.data_ptr_table(&[c0, c1, c2]);
            // select case rcx
            a.mov_ri(Reg::Rcx, 1);
            a.mov_ri(Reg::Rbx, table.0 as i64);
            a.load_idx(Reg::Rdx, Reg::Rbx, Reg::Rcx, 3, 0);
            a.jmp_r(Reg::Rdx);
            a.bind(c0);
            a.mov_ri(Reg::Rax, 100);
            a.emit_output(Reg::Rax);
            a.halt();
            a.bind(c1);
            a.mov_ri(Reg::Rax, 101);
            a.emit_output(Reg::Rax);
            a.halt();
            a.bind(c2);
            a.mov_ri(Reg::Rax, 102);
            a.emit_output(Reg::Rax);
            a.halt();
        });
        assert_eq!(out.output, vec![101]);
    }

    #[test]
    fn indirect_call_through_memory() {
        let out = run_asm(|a| {
            let f = a.label();
            let vtable = a.data_ptr_table(&[f]);
            a.mov_ri(Reg::Rbx, vtable.0 as i64);
            a.call_m(Reg::Rbx, 0);
            a.emit_output(Reg::Rax);
            a.halt();
            a.bind(f);
            a.mov_ri(Reg::Rax, 77);
            a.ret();
        });
        assert_eq!(out.output, vec![77]);
    }

    #[test]
    fn byte_memory_ops() {
        let out = run_asm(|a| {
            let buf = a.data_bytes(&[0u8; 8]);
            a.mov_ri(Reg::Rbx, buf.0 as i64);
            a.mov_ri(Reg::Rax, 0x1ff); // truncates to 0xff on byte store
            a.store_b(Reg::Rbx, 3, Reg::Rax);
            a.load_b(Reg::Rcx, Reg::Rbx, 3);
            a.emit_output(Reg::Rcx);
            a.halt();
        });
        assert_eq!(out.output, vec![0xff]);
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 10);
        a.mov_ri(Reg::Rbx, 0);
        a.alu_rr(AluOp::Div, Reg::Rax, Reg::Rbx);
        a.halt();
        let img = a.finish().unwrap();
        let err = Machine::new(&img).run(100).unwrap_err();
        assert!(matches!(err, ExecError::DivideByZero { .. }));
    }

    #[test]
    fn wild_jump_faults() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 0xdead_0000u32 as i64);
        a.jmp_r(Reg::Rax);
        let img = a.finish().unwrap();
        let err = Machine::new(&img).run(100).unwrap_err();
        assert!(matches!(err, ExecError::BadJumpTarget { target: 0xdead_0000, .. }));
    }

    #[test]
    fn step_limit_reported() {
        let mut a = Asm::new(0x1000);
        let spin = a.here();
        a.jmp(spin);
        let img = a.finish().unwrap();
        let err = Machine::new(&img).run(10).unwrap_err();
        assert!(matches!(err, ExecError::StepLimit { .. }));
    }

    #[test]
    fn shell_syscall_stops_with_marker() {
        let out = run_asm(|a| {
            a.sys(SYS_SHELL);
            a.halt();
        });
        assert_eq!(out.stop, StopReason::Shell);
    }

    #[test]
    fn step_info_reports_memory_and_control() {
        let mut a = Asm::new(0x1000);
        a.push(Reg::Rax);
        a.call_named("f");
        a.halt();
        a.func("f");
        a.ret();
        let img = a.finish().unwrap();
        let mut m = Machine::new(&img);

        let push = m.step().unwrap().unwrap();
        assert_eq!(push.mem[0].map(|m| m.write), Some(true));
        assert!(push.control.is_none());

        let call = m.step().unwrap().unwrap();
        match call.control {
            Some(ControlFlow::Call { ret_addr, .. }) => assert_eq!(ret_addr, call.pc + 5),
            other => panic!("expected call control flow, got {other:?}"),
        }
        assert_eq!(call.next_pc, img.symbol("f").unwrap().addr);

        let ret = m.step().unwrap().unwrap();
        match ret.control {
            Some(ControlFlow::Return { target }) => assert_eq!(target, call.pc + 5),
            other => panic!("expected return control flow, got {other:?}"),
        }
    }

    #[test]
    fn run_with_observes_every_step() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 10);
        let top = a.here();
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        let img = a.finish().unwrap();
        let mut seen = 0u64;
        let out = Machine::new(&img).run_with(10_000, |_| seen += 1).unwrap();
        assert_eq!(seen, out.steps);
        assert_eq!(out.stop, StopReason::Halt);
    }

    #[test]
    fn save_restore_mid_run_resumes_identically() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 50);
        let top = a.here();
        a.call_named("leaf");
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("leaf");
        a.alu_ri(AluOp::Add, Reg::Rax, 3);
        a.ret();
        let img = a.finish().unwrap();

        let mut m = Machine::new(&img);
        for _ in 0..37 {
            m.step().unwrap();
        }
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let mut back = Machine::restore(&img, &mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.pc(), m.pc());
        assert_eq!(back.steps(), m.steps());

        let a = m.run(100_000).unwrap();
        let b = back.run(100_000).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.output, vec![150]);
    }

    #[test]
    fn restore_rejects_bad_stop_tag() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let img = a.finish().unwrap();
        let m = Machine::new(&img);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let mut buf = w.into_bytes();
        // The stop tag sits immediately before the memory section; find
        // it by re-encoding with a poisoned tag instead: corrupt the
        // byte at the known offset (16 regs + flags + pc + steps + len).
        let tag_at = 8 + 16 * 8 + 1 + 4 + 8 + 8;
        buf[tag_at] = 9;
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(matches!(Machine::restore(&img, &mut r), Err(WireError::BadTag { tag: 9 })));
    }

    #[test]
    fn superblock_formation_stops_at_ineligible_instructions() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1); // eligible
        a.alu_ri(AluOp::Add, Reg::Rax, 2); // eligible
        a.cmp_i(Reg::Rax, 3); // eligible
        a.not(Reg::Rbx); // eligible
        a.push(Reg::Rax); // memory: stops the block
        a.halt();
        let img = a.finish().unwrap();
        let mut m = Machine::new(&img);
        let sb = m.form_superblock(0x1000, 512).unwrap();
        assert_eq!(sb.start, 0x1000);
        assert_eq!(sb.insts.len(), 4);
        assert_eq!(sb.end, sb.insts.iter().map(|s| s.len as Addr).sum::<Addr>() + 0x1000);
        // Too-short runs are rejected: the last two eligible insts alone
        // are below the minimum.
        assert!(m.form_superblock(sb.insts[2].pc, 512).is_none());
    }

    #[test]
    fn superblock_replay_matches_stepping() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, -5);
        a.mov_ri(Reg::Rbx, 12);
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::Rbx); // sets CF/OF/ZF/SF
        a.lea(Reg::Rcx, Reg::Rbx, 0x30);
        a.alu_ri(AluOp::Shl, Reg::Rbx, 3);
        a.cmp(Reg::Rax, Reg::Rbx);
        a.test(Reg::Rcx, Reg::Rcx);
        a.neg(Reg::Rax);
        a.not(Reg::Rcx);
        a.alu_ri(AluOp::Xor, Reg::Rax, 0x7f);
        a.halt();
        let img = a.finish().unwrap();

        let mut stepped = Machine::new(&img);
        let mut replayed = Machine::new(&img);
        let sb = replayed.form_superblock(0x1000, 512).unwrap();
        assert_eq!(sb.insts.len(), 10);

        // Full replay after partial replay covers the n < len case too.
        replayed.replay_superblock(&sb, 4);
        for _ in 0..4 {
            stepped.step().unwrap();
        }
        assert_eq!(replayed.pc(), stepped.pc());
        // Re-form from the middle to continue (blocks are per entry pc).
        let rest = replayed.form_superblock(replayed.pc(), 512).unwrap();
        replayed.replay_superblock(&rest, rest.insts.len());
        for _ in 0..6 {
            stepped.step().unwrap();
        }
        assert_eq!(replayed.pc(), stepped.pc());
        assert_eq!(replayed.steps(), stepped.steps());
        // Full architectural state agrees: serialise both and compare.
        let mut wa = Writer::with_magic(*b"VCFRTEST");
        stepped.save(&mut wa);
        let mut wb = Writer::with_magic(*b"VCFRTEST");
        replayed.save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn superblock_formation_respects_fallthrough_maps() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.mov_ri(Reg::Rbx, 2);
        a.mov_ri(Reg::Rcx, 3);
        a.mov_ri(Reg::Rdx, 4);
        a.halt();
        let img = a.finish().unwrap();
        let mut m = Machine::new(&img);
        assert!(m.form_superblock(0x1000, 512).is_some());
        // An ILR successor override inside the run breaks contiguity:
        // formation must stop before the overridden pc.
        let mut map = HashMap::new();
        map.insert(0x1000u32 + 20, 0x1000u32); // third mov (two 10-byte movs before it)
        let mut m = Machine::new(&img);
        m.set_fallthrough_map(map);
        assert!(m.form_superblock(0x1000, 512).is_none(), "run shrinks below the minimum");
    }

    #[test]
    fn stopped_machine_steps_to_none() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let img = a.finish().unwrap();
        let mut m = Machine::new(&img);
        assert!(m.step().unwrap().is_some());
        assert!(m.step().unwrap().is_none());
        assert_eq!(m.stop_reason(), Some(StopReason::Halt));
    }
}
