//! A minimal, versioned, little-endian wire format used to persist
//! images and randomization artefacts to disk (no external
//! serialization dependency).

use std::fmt;

/// A wire-format decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// The magic/version header did not match.
    BadMagic {
        /// What was expected.
        expected: [u8; 8],
        /// What was found.
        found: [u8; 8],
    },
    /// A length field exceeded sanity bounds.
    LengthOutOfRange {
        /// The offending length.
        len: u64,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// An enum discriminant was unknown.
    BadTag {
        /// The offending tag byte.
        tag: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated input"),
            WireError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            WireError::LengthOutOfRange { len } => write!(f, "length field {len} out of range"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
            WireError::BadTag { tag } => write!(f, "unknown tag byte {tag:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Maximum accepted collection/byte-array length (guards corrupt files).
const MAX_LEN: u64 = 1 << 32;

/// An append-only encoder.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an encoder beginning with the 8-byte `magic` header.
    pub fn with_magic(magic: [u8; 8]) -> Writer {
        let mut w = Writer::default();
        w.buf.extend_from_slice(&magic);
        w
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte array.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
}

/// A cursor-based decoder.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a decoder, checking the 8-byte `magic` header.
    ///
    /// # Errors
    ///
    /// [`WireError::BadMagic`] when the header mismatches,
    /// [`WireError::Truncated`] when the input is shorter than a header.
    pub fn with_magic(buf: &'a [u8], magic: [u8; 8]) -> Result<Reader<'a>, WireError> {
        if buf.len() < 8 {
            return Err(WireError::Truncated);
        }
        let mut found = [0u8; 8];
        found.copy_from_slice(&buf[..8]);
        if found != magic {
            return Err(WireError::BadMagic { expected: magic, found });
        }
        Ok(Reader { buf, pos: 8 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed byte array.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] / [`WireError::LengthOutOfRange`].
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(WireError::LengthOutOfRange { len });
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`WireError::BadUtf8`] plus the byte-array errors.
    pub fn string(&mut self) -> Result<String, WireError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"VCFRTEST";

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = Writer::with_magic(MAGIC);
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.bytes(&[1, 2, 3]);
        w.string("héllo");
        let buf = w.into_bytes();

        let mut r = Reader::with_magic(&buf, MAGIC).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.string().unwrap(), "héllo");
        assert!(r.is_exhausted());
    }

    #[test]
    fn bad_magic_rejected() {
        let w = Writer::with_magic(MAGIC);
        let buf = w.into_bytes();
        let err = Reader::with_magic(&buf, *b"OTHERMAG").unwrap_err();
        assert!(matches!(err, WireError::BadMagic { .. }));
    }

    #[test]
    fn truncation_detected_everywhere() {
        let mut w = Writer::with_magic(MAGIC);
        w.u64(42);
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let r = Reader::with_magic(&buf[..cut], MAGIC);
            match r {
                Ok(mut r) => assert!(r.u64().is_err()),
                Err(e) => assert_eq!(e, WireError::Truncated),
            }
        }
    }

    #[test]
    fn corrupt_length_rejected() {
        let mut w = Writer::with_magic(MAGIC);
        w.u64(u64::MAX); // absurd length prefix
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, MAGIC).unwrap();
        assert!(matches!(r.bytes(), Err(WireError::LengthOutOfRange { .. })));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut w = Writer::with_magic(MAGIC);
        w.bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, MAGIC).unwrap();
        assert_eq!(r.string().unwrap_err(), WireError::BadUtf8);
    }
}
