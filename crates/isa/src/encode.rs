//! Instruction encoder: [`Inst`] → machine bytes.
//!
//! The encoding is a single opcode byte followed by operand bytes. All
//! multi-byte immediates and displacements are little-endian. Register
//! pairs pack into one byte (`a << 4 | b`).

use crate::inst::Inst;
use crate::Reg;

pub(crate) mod op {
    //! Opcode byte assignments, shared by the encoder and decoder.
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0x01;
    pub const RET: u8 = 0x02;
    pub const SYS: u8 = 0x03;
    pub const MOV_RR: u8 = 0x10;
    pub const MOV_RI: u8 = 0x11;
    pub const LEA: u8 = 0x12;
    pub const LOAD: u8 = 0x13;
    pub const STORE: u8 = 0x14;
    pub const LOAD_IDX: u8 = 0x15;
    pub const STORE_IDX: u8 = 0x16;
    pub const PUSH: u8 = 0x17;
    pub const POP: u8 = 0x18;
    pub const PUSH_I: u8 = 0x19;
    pub const LOAD_B: u8 = 0x1a;
    pub const STORE_B: u8 = 0x1b;
    /// ALU register-register block: `0x20 + AluOp`.
    pub const ALU_RR_BASE: u8 = 0x20;
    /// ALU register-immediate block: `0x30 + AluOp`.
    pub const ALU_RI_BASE: u8 = 0x30;
    pub const CMP: u8 = 0x40;
    pub const CMP_I: u8 = 0x41;
    pub const TEST: u8 = 0x42;
    pub const NEG: u8 = 0x43;
    pub const NOT: u8 = 0x44;
    pub const JMP: u8 = 0x50;
    /// Conditional branch block: `0x51 + Cond` (12 condition codes).
    pub const JCC_BASE: u8 = 0x51;
    pub const CALL: u8 = 0x60;
    pub const CALL_R: u8 = 0x61;
    pub const CALL_M: u8 = 0x62;
    pub const JMP_R: u8 = 0x63;
    pub const JMP_M: u8 = 0x64;
}

fn pair(a: Reg, b: Reg) -> u8 {
    ((a.index() as u8) << 4) | (b.index() as u8)
}

/// Appends the encoding of `inst` to `out` and returns the number of bytes
/// written.
///
/// # Example
///
/// ```
/// use vcfr_isa::{encode_into, Inst};
/// let mut buf = Vec::new();
/// let n = encode_into(&Inst::Ret, &mut buf);
/// assert_eq!((n, buf.as_slice()), (1, &[0x02u8][..]));
/// ```
pub fn encode_into(inst: &Inst, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match *inst {
        Inst::Nop => out.push(op::NOP),
        Inst::Halt => out.push(op::HALT),
        Inst::Ret => out.push(op::RET),
        Inst::Sys { num } => {
            out.push(op::SYS);
            out.push(num);
        }
        Inst::MovRR { dst, src } => {
            out.push(op::MOV_RR);
            out.push(pair(dst, src));
        }
        Inst::MovRI { dst, imm } => {
            out.push(op::MOV_RI);
            out.push(dst.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Lea { dst, base, disp } => {
            out.push(op::LEA);
            out.push(pair(dst, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::Load { dst, base, disp } => {
            out.push(op::LOAD);
            out.push(pair(dst, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::Store { base, disp, src } => {
            out.push(op::STORE);
            out.push(pair(src, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::LoadIdx { dst, base, index, scale, disp } => {
            out.push(op::LOAD_IDX);
            out.push(pair(dst, base));
            out.push(((index.index() as u8) << 2) | (scale & 0x3));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::StoreIdx { base, index, scale, disp, src } => {
            out.push(op::STORE_IDX);
            out.push(pair(src, base));
            out.push(((index.index() as u8) << 2) | (scale & 0x3));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::LoadB { dst, base, disp } => {
            out.push(op::LOAD_B);
            out.push(pair(dst, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::StoreB { base, disp, src } => {
            out.push(op::STORE_B);
            out.push(pair(src, base));
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::Push { src } => {
            out.push(op::PUSH);
            out.push(src.index() as u8);
        }
        Inst::Pop { dst } => {
            out.push(op::POP);
            out.push(dst.index() as u8);
        }
        Inst::PushI { imm } => {
            out.push(op::PUSH_I);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::AluRR { op: alu, dst, src } => {
            out.push(op::ALU_RR_BASE + alu as u8);
            out.push(pair(dst, src));
        }
        Inst::AluRI { op: alu, dst, imm } => {
            out.push(op::ALU_RI_BASE + alu as u8);
            out.push(dst.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Cmp { lhs, rhs } => {
            out.push(op::CMP);
            out.push(pair(lhs, rhs));
        }
        Inst::CmpI { lhs, imm } => {
            out.push(op::CMP_I);
            out.push(lhs.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Inst::Test { lhs, rhs } => {
            out.push(op::TEST);
            out.push(pair(lhs, rhs));
        }
        Inst::Neg { dst } => {
            out.push(op::NEG);
            out.push(dst.index() as u8);
        }
        Inst::Not { dst } => {
            out.push(op::NOT);
            out.push(dst.index() as u8);
        }
        Inst::Jmp { rel } => {
            out.push(op::JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Jcc { cc, rel } => {
            out.push(op::JCC_BASE + cc as u8);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::Call { rel } => {
            out.push(op::CALL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Inst::CallR { target } => {
            out.push(op::CALL_R);
            out.push(target.index() as u8);
        }
        Inst::CallM { base, disp } => {
            out.push(op::CALL_M);
            out.push(base.index() as u8);
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Inst::JmpR { target } => {
            out.push(op::JMP_R);
            out.push(target.index() as u8);
        }
        Inst::JmpM { base, disp } => {
            out.push(op::JMP_M);
            out.push(base.index() as u8);
            out.extend_from_slice(&disp.to_le_bytes());
        }
    }
    let written = out.len() - start;
    debug_assert_eq!(written, inst.len(), "encoded length mismatch for {inst}");
    written
}

/// Encodes a single instruction into a fresh byte vector.
///
/// # Example
///
/// ```
/// use vcfr_isa::{decode, encode, Inst, Reg};
/// let inst = Inst::Push { src: Reg::Rbp };
/// let bytes = encode(&inst);
/// assert_eq!(decode(&bytes).unwrap(), inst);
/// ```
pub fn encode(inst: &Inst) -> Vec<u8> {
    let mut out = Vec::with_capacity(inst.len());
    encode_into(inst, &mut out);
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::inst::{ALL_ALU_OPS, ALL_CONDS};

    #[test]
    fn encoded_length_matches_inst_len() {
        let samples = sample_insts();
        for inst in samples {
            assert_eq!(encode(&inst).len(), inst.len(), "{inst}");
        }
    }

    #[test]
    fn alu_opcode_blocks_do_not_collide() {
        // ALU RR block must stay below the ALU RI block, which must stay
        // below the CMP opcode.
        let top_rr = op::ALU_RR_BASE + (ALL_ALU_OPS.len() as u8 - 1);
        let top_ri = op::ALU_RI_BASE + (ALL_ALU_OPS.len() as u8 - 1);
        assert!(top_rr < op::ALU_RI_BASE);
        assert!(top_ri < op::CMP);
        let top_jcc = op::JCC_BASE + (ALL_CONDS.len() as u8 - 1);
        assert!(top_jcc < op::CALL);
    }

    pub(crate) fn sample_insts() -> Vec<Inst> {
        use crate::Reg::*;
        let mut v = vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Ret,
            Inst::Sys { num: 3 },
            Inst::MovRR { dst: Rax, src: R15 },
            Inst::MovRI { dst: Rbx, imm: -1 },
            Inst::MovRI { dst: Rbx, imm: i64::MAX },
            Inst::Lea { dst: Rsi, base: Rbp, disp: -640 },
            Inst::Load { dst: Rax, base: Rsp, disp: 8 },
            Inst::Store { base: Rbp, disp: -16, src: Rdx },
            Inst::LoadIdx { dst: R9, base: Rbx, index: Rcx, scale: 3, disp: 64 },
            Inst::StoreIdx { base: Rbx, index: Rcx, scale: 0, disp: -1, src: R10 },
            Inst::LoadB { dst: Rax, base: Rsi, disp: 0 },
            Inst::StoreB { base: Rdi, disp: 1, src: Rax },
            Inst::Push { src: Rbp },
            Inst::Pop { dst: Rbp },
            Inst::PushI { imm: 0x1234_5678 },
            Inst::Cmp { lhs: Rax, rhs: Rbx },
            Inst::CmpI { lhs: Rax, imm: 100 },
            Inst::Test { lhs: Rax, rhs: Rax },
            Inst::Neg { dst: Rcx },
            Inst::Not { dst: Rcx },
            Inst::Jmp { rel: -5 },
            Inst::Call { rel: 1000 },
            Inst::CallR { target: R11 },
            Inst::CallM { base: Rbx, disp: 24 },
            Inst::JmpR { target: Rax },
            Inst::JmpM { base: R14, disp: -8 },
        ];
        for op in ALL_ALU_OPS {
            v.push(Inst::AluRR { op, dst: Rax, src: Rcx });
            v.push(Inst::AluRI { op, dst: Rdx, imm: 7 });
        }
        for cc in ALL_CONDS {
            v.push(Inst::Jcc { cc, rel: 42 });
        }
        v
    }
}
