//! Instruction definitions: opcodes, operands and static properties.

use crate::{Addr, Reg};
use std::fmt;

/// Maximum encoded length of any instruction, in bytes.
///
/// `mov reg, imm64` is the longest at 10 bytes (opcode + register byte +
/// 8 immediate bytes), mirroring x86's 10-byte `movabs`.
pub const MAX_INST_LEN: usize = 10;

/// An ALU operation used by [`Inst::AluRR`] and [`Inst::AluRI`].
///
/// All operations are destructive two-operand forms (`dst = dst op src`)
/// and update the ZF/SF/CF/OF flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Wrapping addition.
    Add = 0,
    /// Wrapping subtraction.
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR.
    Xor = 4,
    /// Logical shift left (count masked to 63).
    Shl = 5,
    /// Logical shift right (count masked to 63).
    Shr = 6,
    /// Arithmetic shift right (count masked to 63).
    Sar = 7,
    /// Wrapping multiplication (low 64 bits).
    Mul = 8,
    /// Unsigned division; division by zero faults.
    Div = 9,
    /// Unsigned remainder; division by zero faults.
    Rem = 10,
}

/// All ALU operations, in encoding order.
pub const ALL_ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
];

impl AluOp {
    /// Returns the operation with encoding value `v`, if any.
    pub fn from_u8(v: u8) -> Option<AluOp> {
        ALL_ALU_OPS.get(v as usize).copied()
    }

    /// Returns the lower-case mnemonic of the operation.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 11] = [
            "add", "sub", "and", "or", "xor", "shl", "shr", "sar", "mul", "div", "rem",
        ];
        NAMES[self as usize]
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A condition code for conditional branches, evaluated against the flags
/// register exactly as on x86.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (ZF).
    Eq = 0,
    /// Not equal (!ZF).
    Ne = 1,
    /// Signed less-than (SF != OF).
    Lt = 2,
    /// Signed less-or-equal (ZF || SF != OF).
    Le = 3,
    /// Signed greater-than (!ZF && SF == OF).
    Gt = 4,
    /// Signed greater-or-equal (SF == OF).
    Ge = 5,
    /// Unsigned below (CF).
    B = 6,
    /// Unsigned above-or-equal (!CF).
    Ae = 7,
    /// Unsigned below-or-equal (CF || ZF).
    Be = 8,
    /// Unsigned above (!CF && !ZF).
    A = 9,
    /// Sign set (SF).
    S = 10,
    /// Sign clear (!SF).
    Ns = 11,
}

/// All condition codes, in encoding order.
pub const ALL_CONDS: [Cond; 12] = [
    Cond::Eq,
    Cond::Ne,
    Cond::Lt,
    Cond::Le,
    Cond::Gt,
    Cond::Ge,
    Cond::B,
    Cond::Ae,
    Cond::Be,
    Cond::A,
    Cond::S,
    Cond::Ns,
];

impl Cond {
    /// Returns the condition with encoding value `v`, if any.
    pub fn from_u8(v: u8) -> Option<Cond> {
        ALL_CONDS.get(v as usize).copied()
    }

    /// Returns the logically inverted condition (`Eq` ↔ `Ne`, …).
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
        }
    }

    /// Returns the branch mnemonic suffix (`"eq"`, `"ne"`, …).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 12] = [
            "eq", "ne", "lt", "le", "gt", "ge", "b", "ae", "be", "a", "s", "ns",
        ];
        NAMES[self as usize]
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One decoded machine instruction.
///
/// Relative branch displacements (`rel`) are measured from the address of
/// the *next* instruction, as on x86. Memory operands address 64-bit
/// quantities except for [`Inst::LoadB`]/[`Inst::StoreB`], which move a
/// single zero-extended byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
    /// Pop the return address and jump to it.
    Ret,
    /// Software interrupt. `sys 0` exits, `sys 1` appends `rax` to the
    /// output sink, `sys 3` is the attack-demo "shell" marker.
    Sys {
        /// Syscall number.
        num: u8,
    },
    /// `dst = src`.
    MovRR {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = imm` (full 64-bit immediate).
    MovRI {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `dst = base + disp` (address computation; no memory access).
    Lea {
        /// Destination register.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Displacement added to the base.
        disp: i32,
    },
    /// `dst = mem64[base + disp]`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
    /// `mem64[base + disp] = src`.
    Store {
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
        /// Source register.
        src: Reg,
    },
    /// `dst = mem64[base + index * scale + disp]`, `scale ∈ {1,2,4,8}`.
    LoadIdx {
        /// Destination register.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Index register.
        index: Reg,
        /// log2 of the scale factor (0–3).
        scale: u8,
        /// Displacement.
        disp: i32,
    },
    /// `mem64[base + index * scale + disp] = src`.
    StoreIdx {
        /// Base register.
        base: Reg,
        /// Index register.
        index: Reg,
        /// log2 of the scale factor (0–3).
        scale: u8,
        /// Displacement.
        disp: i32,
        /// Source register.
        src: Reg,
    },
    /// `dst = zext(mem8[base + disp])`.
    LoadB {
        /// Destination register.
        dst: Reg,
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
    /// `mem8[base + disp] = src & 0xff`.
    StoreB {
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
        /// Source register.
        src: Reg,
    },
    /// `rsp -= 8; mem64[rsp] = src`.
    Push {
        /// Source register.
        src: Reg,
    },
    /// `dst = mem64[rsp]; rsp += 8`.
    Pop {
        /// Destination register.
        dst: Reg,
    },
    /// `rsp -= 8; mem64[rsp] = sext(imm)`.
    PushI {
        /// Immediate value pushed (sign-extended to 64 bits).
        imm: i32,
    },
    /// `dst = dst op src`, setting flags.
    AluRR {
        /// Operation.
        op: AluOp,
        /// Destination (and left) operand.
        dst: Reg,
        /// Right operand.
        src: Reg,
    },
    /// `dst = dst op sext(imm)`, setting flags.
    AluRI {
        /// Operation.
        op: AluOp,
        /// Destination (and left) operand.
        dst: Reg,
        /// Right operand immediate.
        imm: i32,
    },
    /// Set flags from `lhs - rhs` without writing a register.
    Cmp {
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// Set flags from `lhs - sext(imm)`.
    CmpI {
        /// Left operand.
        lhs: Reg,
        /// Right operand immediate.
        imm: i32,
    },
    /// Set ZF/SF from `lhs & rhs` (CF and OF are cleared).
    Test {
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = -dst` (two's complement), setting flags.
    Neg {
        /// Operand register.
        dst: Reg,
    },
    /// `dst = !dst` (bitwise complement); flags unaffected.
    Not {
        /// Operand register.
        dst: Reg,
    },
    /// Unconditional direct jump to `next_pc + rel`.
    Jmp {
        /// Displacement from the next instruction address.
        rel: i32,
    },
    /// Conditional direct jump to `next_pc + rel` when `cc` holds.
    Jcc {
        /// Condition.
        cc: Cond,
        /// Displacement from the next instruction address.
        rel: i32,
    },
    /// Direct call: push `next_pc`, jump to `next_pc + rel`.
    Call {
        /// Displacement from the next instruction address.
        rel: i32,
    },
    /// Indirect call through a register.
    CallR {
        /// Register holding the target address.
        target: Reg,
    },
    /// Indirect call through memory (`call [base + disp]`).
    CallM {
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
    /// Indirect jump through a register.
    JmpR {
        /// Register holding the target address.
        target: Reg,
    },
    /// Indirect jump through memory (`jmp [base + disp]`, e.g. jump tables).
    JmpM {
        /// Base register.
        base: Reg,
        /// Displacement.
        disp: i32,
    },
}

impl Inst {
    /// Returns the encoded length of the instruction in bytes (1–10).
    pub fn len(&self) -> usize {
        match self {
            Inst::Nop | Inst::Halt | Inst::Ret => 1,
            Inst::Sys { .. }
            | Inst::MovRR { .. }
            | Inst::Push { .. }
            | Inst::Pop { .. }
            | Inst::AluRR { .. }
            | Inst::Cmp { .. }
            | Inst::Test { .. }
            | Inst::Neg { .. }
            | Inst::Not { .. }
            | Inst::CallR { .. }
            | Inst::JmpR { .. } => 2,
            Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. } | Inst::PushI { .. } => 5,
            Inst::Lea { .. }
            | Inst::Load { .. }
            | Inst::Store { .. }
            | Inst::LoadB { .. }
            | Inst::StoreB { .. }
            | Inst::AluRI { .. }
            | Inst::CmpI { .. }
            | Inst::CallM { .. }
            | Inst::JmpM { .. } => 6,
            Inst::LoadIdx { .. } | Inst::StoreIdx { .. } => 7,
            Inst::MovRI { .. } => 10,
        }
    }

    /// Returns `true` for the canonical "empty" check mandated by clippy;
    /// instructions are never zero-length.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` when the instruction can redirect control flow
    /// (branches, calls, returns — not `halt`/`sys`).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::Call { .. }
                | Inst::CallR { .. }
                | Inst::CallM { .. }
                | Inst::JmpR { .. }
                | Inst::JmpM { .. }
                | Inst::Ret
        )
    }

    /// Returns `true` for control transfers whose target is encoded in the
    /// instruction itself (`jmp`, `jcc`, `call`).
    pub fn is_direct_transfer(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. })
    }

    /// Returns `true` for control transfers whose target comes from a
    /// register, memory, or the stack (`jmp reg/[m]`, `call reg/[m]`, `ret`).
    pub fn is_indirect_transfer(&self) -> bool {
        matches!(
            self,
            Inst::CallR { .. }
                | Inst::CallM { .. }
                | Inst::JmpR { .. }
                | Inst::JmpM { .. }
                | Inst::Ret
        )
    }

    /// Returns `true` for any call (direct or indirect).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallR { .. } | Inst::CallM { .. })
    }

    /// Returns `true` when execution can fall through to the next
    /// sequential instruction (everything except unconditional transfers
    /// and `halt`).
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Inst::Jmp { .. } | Inst::JmpR { .. } | Inst::JmpM { .. } | Inst::Ret | Inst::Halt
        )
    }

    /// For direct transfers, the absolute target given the instruction's
    /// address `pc`; `None` for everything else.
    pub fn direct_target(&self, pc: Addr) -> Option<Addr> {
        let next = pc.wrapping_add(self.len() as Addr);
        match self {
            Inst::Jmp { rel } | Inst::Jcc { rel, .. } | Inst::Call { rel } => {
                Some(next.wrapping_add(*rel as Addr))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::Ret => write!(f, "ret"),
            Inst::Sys { num } => write!(f, "sys {num}"),
            Inst::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::MovRI { dst, imm } => write!(f, "mov {dst}, {imm}"),
            Inst::Lea { dst, base, disp } => write!(f, "lea {dst}, [{base}{disp:+}]"),
            Inst::Load { dst, base, disp } => write!(f, "mov {dst}, [{base}{disp:+}]"),
            Inst::Store { base, disp, src } => write!(f, "mov [{base}{disp:+}], {src}"),
            Inst::LoadIdx { dst, base, index, scale, disp } => {
                write!(f, "mov {dst}, [{base}+{index}*{}{disp:+}]", 1u32 << scale)
            }
            Inst::StoreIdx { base, index, scale, disp, src } => {
                write!(f, "mov [{base}+{index}*{}{disp:+}], {src}", 1u32 << scale)
            }
            Inst::LoadB { dst, base, disp } => write!(f, "movb {dst}, [{base}{disp:+}]"),
            Inst::StoreB { base, disp, src } => write!(f, "movb [{base}{disp:+}], {src}"),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::PushI { imm } => write!(f, "push {imm}"),
            Inst::AluRR { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Inst::AluRI { op, dst, imm } => write!(f, "{op} {dst}, {imm}"),
            Inst::Cmp { lhs, rhs } => write!(f, "cmp {lhs}, {rhs}"),
            Inst::CmpI { lhs, imm } => write!(f, "cmp {lhs}, {imm}"),
            Inst::Test { lhs, rhs } => write!(f, "test {lhs}, {rhs}"),
            Inst::Neg { dst } => write!(f, "neg {dst}"),
            Inst::Not { dst } => write!(f, "not {dst}"),
            Inst::Jmp { rel } => write!(f, "jmp {rel:+}"),
            Inst::Jcc { cc, rel } => write!(f, "j{cc} {rel:+}"),
            Inst::Call { rel } => write!(f, "call {rel:+}"),
            Inst::CallR { target } => write!(f, "call {target}"),
            Inst::CallM { base, disp } => write!(f, "call [{base}{disp:+}]"),
            Inst::JmpR { target } => write!(f, "jmp {target}"),
            Inst::JmpM { base, disp } => write!(f, "jmp [{base}{disp:+}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_are_in_range() {
        let samples = [
            Inst::Nop,
            Inst::Sys { num: 1 },
            Inst::Jmp { rel: -4 },
            Inst::Load { dst: Reg::Rax, base: Reg::Rbp, disp: -8 },
            Inst::LoadIdx { dst: Reg::Rax, base: Reg::Rbx, index: Reg::Rcx, scale: 3, disp: 0 },
            Inst::MovRI { dst: Reg::Rax, imm: i64::MIN },
        ];
        for inst in samples {
            assert!((1..=MAX_INST_LEN).contains(&inst.len()), "{inst}");
            assert!(!inst.is_empty());
        }
    }

    #[test]
    fn control_classification() {
        assert!(Inst::Ret.is_control());
        assert!(Inst::Ret.is_indirect_transfer());
        assert!(!Inst::Ret.is_direct_transfer());
        assert!(Inst::Jmp { rel: 0 }.is_direct_transfer());
        assert!(Inst::Call { rel: 0 }.is_call());
        assert!(Inst::CallM { base: Reg::Rbx, disp: 8 }.is_indirect_transfer());
        assert!(!Inst::Nop.is_control());
        assert!(!Inst::Halt.is_control());
    }

    #[test]
    fn fall_through() {
        assert!(Inst::Jcc { cc: Cond::Eq, rel: 4 }.falls_through());
        assert!(Inst::Call { rel: 4 }.falls_through());
        assert!(!Inst::Jmp { rel: 4 }.falls_through());
        assert!(!Inst::Ret.falls_through());
        assert!(!Inst::Halt.falls_through());
        assert!(Inst::Nop.falls_through());
    }

    #[test]
    fn direct_target_relative_to_next() {
        let j = Inst::Jmp { rel: 6 };
        assert_eq!(j.direct_target(0x100), Some(0x100 + 5 + 6));
        let b = Inst::Jcc { cc: Cond::Ne, rel: -11 };
        assert_eq!(b.direct_target(0x100), Some(0x100 + 5 - 11));
        assert_eq!(Inst::Ret.direct_target(0x100), None);
    }

    #[test]
    fn cond_negation_is_involutive() {
        for cc in ALL_CONDS {
            assert_eq!(cc.negate().negate(), cc);
            assert_ne!(cc.negate(), cc);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Inst::MovRR { dst: Reg::Rax, src: Reg::Rbx }.to_string(), "mov rax, rbx");
        assert_eq!(
            Inst::Load { dst: Reg::Rax, base: Reg::Rbp, disp: -8 }.to_string(),
            "mov rax, [rbp-8]"
        );
        assert_eq!(Inst::Jcc { cc: Cond::Ne, rel: 16 }.to_string(), "jne +16");
    }
}
