//! Register dependence metadata: which registers an instruction reads
//! and writes. Used by the out-of-order timing model to build the
//! dataflow graph.

use crate::inst::Inst;
use crate::Reg;

/// A small fixed-capacity register set (an instruction touches at most
/// four registers including the implicit stack pointer).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegSet {
    regs: [Option<Reg>; 4],
    len: u8,
}

impl RegSet {
    /// The empty set.
    pub fn new() -> RegSet {
        RegSet::default()
    }

    fn push(&mut self, r: Reg) {
        if self.iter().any(|x| x == r) {
            return;
        }
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().flatten().copied()
    }

    /// Whether `r` is in the set.
    pub fn contains(&self, r: Reg) -> bool {
        self.iter().any(|x| x == r)
    }
}

impl FromIterator<Reg> for RegSet {
    fn from_iter<I: IntoIterator<Item = Reg>>(iter: I) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.push(r);
        }
        s
    }
}

impl Inst {
    /// Registers this instruction reads (implicit `rsp` included for
    /// stack operations).
    pub fn reads(&self) -> RegSet {
        use Inst::*;
        let mut s = RegSet::new();
        match *self {
            Nop | Halt | Jmp { .. } | Jcc { .. } | PushI { .. } | Call { .. } | Sys { .. } => {}
            MovRR { src, .. } => s.push(src),
            MovRI { .. } => {}
            Lea { base, .. } | Load { base, .. } | LoadB { base, .. } => s.push(base),
            Store { base, src, .. } | StoreB { base, src, .. } => {
                s.push(base);
                s.push(src);
            }
            LoadIdx { base, index, .. } => {
                s.push(base);
                s.push(index);
            }
            StoreIdx { base, index, src, .. } => {
                s.push(base);
                s.push(index);
                s.push(src);
            }
            Push { src } => s.push(src),
            Pop { .. } => {}
            AluRR { dst, src, .. } => {
                s.push(dst);
                s.push(src);
            }
            AluRI { dst, .. } | Neg { dst } | Not { dst } => s.push(dst),
            Cmp { lhs, rhs } | Test { lhs, rhs } => {
                s.push(lhs);
                s.push(rhs);
            }
            CmpI { lhs, .. } => s.push(lhs),
            CallR { target } | JmpR { target } => s.push(target),
            CallM { base, .. } | JmpM { base, .. } => s.push(base),
            Ret => {}
        }
        // Implicit stack pointer reads.
        if matches!(
            self,
            Push { .. } | Pop { .. } | PushI { .. } | Call { .. } | CallR { .. }
                | CallM { .. } | Ret
        ) {
            s.push(Reg::Rsp);
        }
        s
    }

    /// Registers this instruction writes (implicit `rsp` included for
    /// stack operations).
    pub fn writes(&self) -> RegSet {
        use Inst::*;
        let mut s = RegSet::new();
        match *self {
            MovRR { dst, .. }
            | MovRI { dst, .. }
            | Lea { dst, .. }
            | Load { dst, .. }
            | LoadB { dst, .. }
            | LoadIdx { dst, .. }
            | Pop { dst }
            | AluRR { dst, .. }
            | AluRI { dst, .. }
            | Neg { dst }
            | Not { dst } => s.push(dst),
            _ => {}
        }
        if matches!(
            self,
            Push { .. } | Pop { .. } | PushI { .. } | Call { .. } | CallR { .. }
                | CallM { .. } | Ret
        ) {
            s.push(Reg::Rsp);
        }
        s
    }

    /// Whether the instruction writes the flags register.
    pub fn writes_flags(&self) -> bool {
        matches!(
            self,
            Inst::AluRR { .. }
                | Inst::AluRI { .. }
                | Inst::Cmp { .. }
                | Inst::CmpI { .. }
                | Inst::Test { .. }
                | Inst::Neg { .. }
        )
    }

    /// Whether the instruction reads the flags register.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AluOp;

    #[test]
    fn alu_reads_both_writes_dst() {
        let i = Inst::AluRR { op: AluOp::Add, dst: Reg::Rax, src: Reg::Rbx };
        assert!(i.reads().contains(Reg::Rax));
        assert!(i.reads().contains(Reg::Rbx));
        assert_eq!(i.writes().iter().collect::<Vec<_>>(), vec![Reg::Rax]);
        assert!(i.writes_flags());
        assert!(!i.reads_flags());
    }

    #[test]
    fn stack_ops_touch_rsp() {
        for i in [
            Inst::Push { src: Reg::Rdi },
            Inst::Pop { dst: Reg::Rdi },
            Inst::Call { rel: 0 },
            Inst::Ret,
        ] {
            assert!(i.reads().contains(Reg::Rsp), "{i}");
            assert!(i.writes().contains(Reg::Rsp), "{i}");
        }
    }

    #[test]
    fn loads_read_address_regs_and_write_dst() {
        let i = Inst::LoadIdx { dst: Reg::Rax, base: Reg::Rbx, index: Reg::Rcx, scale: 3, disp: 0 };
        let r = i.reads();
        assert!(r.contains(Reg::Rbx) && r.contains(Reg::Rcx));
        assert!(!r.contains(Reg::Rax));
        assert!(i.writes().contains(Reg::Rax));
    }

    #[test]
    fn jcc_reads_flags_only() {
        let i = Inst::Jcc { cc: crate::Cond::Ne, rel: 4 };
        assert!(i.reads_flags());
        assert!(i.reads().is_empty());
        assert!(i.writes().is_empty());
    }

    #[test]
    fn regset_dedups() {
        let i = Inst::AluRR { op: AluOp::Mul, dst: Reg::Rax, src: Reg::Rax };
        assert_eq!(i.reads().len(), 1);
        let s: RegSet = [Reg::Rax, Reg::Rax, Reg::Rbx].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
