//! A compact, variable-length, x86-style instruction set architecture.
//!
//! This crate is the substrate every other VCFR crate builds on. It defines:
//!
//! * the instruction set itself ([`Inst`], [`Reg`], [`Cond`], [`AluOp`]),
//! * a byte-exact [`encode`]/[`decode`] pair for the variable-length
//!   (1–10 byte) machine encoding,
//! * [`Image`], the loadable binary format with sections, symbols and
//!   relocations,
//! * [`Asm`], a two-pass label assembler used by the synthetic workloads,
//! * [`Machine`], a functional (architectural) interpreter that produces
//!   per-instruction [`StepInfo`] traces consumed by the cycle simulator.
//!
//! The ISA deliberately mirrors the properties of x86 that the DSN 2015
//! paper's mechanisms depend on: variable instruction length (so gadget
//! scans at arbitrary byte offsets are meaningful and the fetch byte queue
//! has real work to do), dense direct branches, indirect jumps and calls
//! through registers and memory (jump tables, virtual dispatch), and a
//! `call`/`ret` pair that pushes return addresses to an in-memory stack.
//!
//! # Example
//!
//! ```
//! use vcfr_isa::{AluOp, Asm, Machine, Reg};
//!
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Reg::Rax, 6);
//! a.mov_ri(Reg::Rcx, 7);
//! a.alu_rr(AluOp::Mul, Reg::Rax, Reg::Rcx);
//! a.emit_output(Reg::Rax); // sys 1: append rax to the output sink
//! a.halt();
//! let image = a.finish().unwrap();
//!
//! let mut m = Machine::new(&image);
//! let outcome = m.run(1_000).unwrap();
//! assert_eq!(outcome.output, vec![42]);
//! ```

#![warn(missing_docs)]

mod asm;
mod decode;
mod decoded;
mod deps;
mod encode;
mod error;
mod image;
mod inst;
mod machine;
mod mem;
mod parse;
mod persist;
mod reg;
mod superblock;
pub mod wire;

pub use asm::{Asm, DataRef, Label};
pub use decode::{decode, decode_at};
pub use decoded::DecodedImage;
pub use deps::RegSet;
pub use encode::{encode, encode_into};
pub use error::{AsmError, DecodeError, ExecError};
pub use image::{Image, Reloc, Section, SectionKind, Symbol, SymbolKind};
pub use inst::{AluOp, Cond, Inst, ALL_ALU_OPS, ALL_CONDS, MAX_INST_LEN};
pub use machine::{ControlFlow, Machine, MemAccess, RunOutcome, StepInfo, StopReason};
pub use mem::Mem;
pub use parse::{parse_asm, ParseError};
pub use persist::IMAGE_MAGIC;
pub use reg::{Reg, ALL_REGS};
pub use superblock::{
    superblock_eligible, SbInst, Superblock, SuperblockCache, SuperblockLookup,
    SUPERBLOCK_MAX_INSTS, SUPERBLOCK_MIN_INSTS,
};

/// Virtual addresses are 32 bits wide, as in the paper's DRC entries
/// ("Each entry supports 32-bit instruction address translation").
pub type Addr = u32;

/// Number of the syscall used to terminate the program (`sys 0`).
pub const SYS_EXIT: u8 = 0;
/// Number of the syscall used to append `rax` to the output sink (`sys 1`).
pub const SYS_OUTPUT: u8 = 1;
/// Number of the syscall standing in for "spawn a shell" in attack demos
/// (`sys 3`). A well-formed program never executes it; a successful ROP
/// chain does.
pub const SYS_SHELL: u8 = 3;
