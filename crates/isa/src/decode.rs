//! Instruction decoder: machine bytes → [`Inst`].

use crate::encode::op;
use crate::error::DecodeError;
use crate::inst::{AluOp, Cond, Inst};
use crate::inst::{ALL_ALU_OPS, ALL_CONDS};
use crate::Reg;

fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated { needed: n, available: bytes.len() })
    } else {
        Ok(())
    }
}

fn reg(b: u8) -> Result<Reg, DecodeError> {
    Reg::from_index(b).ok_or(DecodeError::BadRegister { index: b })
}

fn pair(b: u8) -> Result<(Reg, Reg), DecodeError> {
    Ok((reg(b >> 4)?, reg(b & 0x0f)?))
}

fn i32_at(bytes: &[u8], off: usize) -> i32 {
    i32::from_le_bytes([bytes[off], bytes[off + 1], bytes[off + 2], bytes[off + 3]])
}

fn i64_at(bytes: &[u8], off: usize) -> i64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    i64::from_le_bytes(b)
}

/// Decodes the instruction at the start of `bytes`.
///
/// The slice may be longer than the instruction; exactly
/// [`Inst::len`] bytes are consumed.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the opcode is unknown, a register or scale
/// field is invalid, or the slice is shorter than the instruction.
///
/// # Example
///
/// ```
/// use vcfr_isa::{decode, Inst};
/// assert_eq!(decode(&[0x00, 0xff]).unwrap(), Inst::Nop);
/// assert!(decode(&[0xff]).is_err());
/// ```
pub fn decode(bytes: &[u8]) -> Result<Inst, DecodeError> {
    need(bytes, 1)?;
    let opc = bytes[0];
    let inst = match opc {
        op::NOP => Inst::Nop,
        op::HALT => Inst::Halt,
        op::RET => Inst::Ret,
        op::SYS => {
            need(bytes, 2)?;
            Inst::Sys { num: bytes[1] }
        }
        op::MOV_RR => {
            need(bytes, 2)?;
            let (dst, src) = pair(bytes[1])?;
            Inst::MovRR { dst, src }
        }
        op::MOV_RI => {
            need(bytes, 10)?;
            Inst::MovRI { dst: reg(bytes[1])?, imm: i64_at(bytes, 2) }
        }
        op::LEA => {
            need(bytes, 6)?;
            let (dst, base) = pair(bytes[1])?;
            Inst::Lea { dst, base, disp: i32_at(bytes, 2) }
        }
        op::LOAD => {
            need(bytes, 6)?;
            let (dst, base) = pair(bytes[1])?;
            Inst::Load { dst, base, disp: i32_at(bytes, 2) }
        }
        op::STORE => {
            need(bytes, 6)?;
            let (src, base) = pair(bytes[1])?;
            Inst::Store { base, disp: i32_at(bytes, 2), src }
        }
        op::LOAD_IDX => {
            need(bytes, 7)?;
            let (dst, base) = pair(bytes[1])?;
            let index = reg(bytes[2] >> 2)?;
            let scale = bytes[2] & 0x3;
            Inst::LoadIdx { dst, base, index, scale, disp: i32_at(bytes, 3) }
        }
        op::STORE_IDX => {
            need(bytes, 7)?;
            let (src, base) = pair(bytes[1])?;
            let index = reg(bytes[2] >> 2)?;
            let scale = bytes[2] & 0x3;
            Inst::StoreIdx { base, index, scale, disp: i32_at(bytes, 3), src }
        }
        op::LOAD_B => {
            need(bytes, 6)?;
            let (dst, base) = pair(bytes[1])?;
            Inst::LoadB { dst, base, disp: i32_at(bytes, 2) }
        }
        op::STORE_B => {
            need(bytes, 6)?;
            let (src, base) = pair(bytes[1])?;
            Inst::StoreB { base, disp: i32_at(bytes, 2), src }
        }
        op::PUSH => {
            need(bytes, 2)?;
            Inst::Push { src: reg(bytes[1])? }
        }
        op::POP => {
            need(bytes, 2)?;
            Inst::Pop { dst: reg(bytes[1])? }
        }
        op::PUSH_I => {
            need(bytes, 5)?;
            Inst::PushI { imm: i32_at(bytes, 1) }
        }
        op::CMP => {
            need(bytes, 2)?;
            let (lhs, rhs) = pair(bytes[1])?;
            Inst::Cmp { lhs, rhs }
        }
        op::CMP_I => {
            need(bytes, 6)?;
            Inst::CmpI { lhs: reg(bytes[1])?, imm: i32_at(bytes, 2) }
        }
        op::TEST => {
            need(bytes, 2)?;
            let (lhs, rhs) = pair(bytes[1])?;
            Inst::Test { lhs, rhs }
        }
        op::NEG => {
            need(bytes, 2)?;
            Inst::Neg { dst: reg(bytes[1])? }
        }
        op::NOT => {
            need(bytes, 2)?;
            Inst::Not { dst: reg(bytes[1])? }
        }
        op::JMP => {
            need(bytes, 5)?;
            Inst::Jmp { rel: i32_at(bytes, 1) }
        }
        op::CALL => {
            need(bytes, 5)?;
            Inst::Call { rel: i32_at(bytes, 1) }
        }
        op::CALL_R => {
            need(bytes, 2)?;
            Inst::CallR { target: reg(bytes[1])? }
        }
        op::CALL_M => {
            need(bytes, 6)?;
            Inst::CallM { base: reg(bytes[1])?, disp: i32_at(bytes, 2) }
        }
        op::JMP_R => {
            need(bytes, 2)?;
            Inst::JmpR { target: reg(bytes[1])? }
        }
        op::JMP_M => {
            need(bytes, 6)?;
            Inst::JmpM { base: reg(bytes[1])?, disp: i32_at(bytes, 2) }
        }
        _ if (op::ALU_RR_BASE..op::ALU_RR_BASE + ALL_ALU_OPS.len() as u8).contains(&opc) => {
            need(bytes, 2)?;
            let alu = AluOp::from_u8(opc - op::ALU_RR_BASE).expect("range-checked alu op");
            let (dst, src) = pair(bytes[1])?;
            Inst::AluRR { op: alu, dst, src }
        }
        _ if (op::ALU_RI_BASE..op::ALU_RI_BASE + ALL_ALU_OPS.len() as u8).contains(&opc) => {
            need(bytes, 6)?;
            let alu = AluOp::from_u8(opc - op::ALU_RI_BASE).expect("range-checked alu op");
            Inst::AluRI { op: alu, dst: reg(bytes[1])?, imm: i32_at(bytes, 2) }
        }
        _ if (op::JCC_BASE..op::JCC_BASE + ALL_CONDS.len() as u8).contains(&opc) => {
            need(bytes, 5)?;
            let cc = Cond::from_u8(opc - op::JCC_BASE).expect("range-checked cond");
            Inst::Jcc { cc, rel: i32_at(bytes, 1) }
        }
        _ => return Err(DecodeError::BadOpcode { opcode: opc }),
    };
    Ok(inst)
}

/// Decodes the instruction at byte offset `off` within `bytes`, returning
/// the instruction and the offset of the following instruction.
///
/// # Errors
///
/// Returns a [`DecodeError`] when `off` is out of bounds or the bytes at
/// `off` do not decode.
pub fn decode_at(bytes: &[u8], off: usize) -> Result<(Inst, usize), DecodeError> {
    let tail = bytes.get(off..).ok_or(DecodeError::Truncated { needed: 1, available: 0 })?;
    let inst = decode(tail)?;
    Ok((inst, off + inst.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::Reg;

    #[test]
    fn roundtrip_all_samples() {
        for inst in crate::encode::tests::sample_insts() {
            let bytes = encode(&inst);
            let back = decode(&bytes).unwrap_or_else(|e| panic!("{inst}: {e}"));
            assert_eq!(back, inst);
        }
    }

    #[test]
    fn truncated_slices_error_not_panic() {
        for inst in crate::encode::tests::sample_insts() {
            let bytes = encode(&inst);
            for cut in 0..bytes.len() {
                let r = decode(&bytes[..cut]);
                if cut == 0 {
                    assert!(matches!(r, Err(DecodeError::Truncated { .. })));
                } else {
                    assert!(r.is_err(), "{inst} decoded from {cut}/{} bytes", bytes.len());
                }
            }
        }
    }

    #[test]
    fn every_byte_value_decodes_or_errors() {
        // Feed [opcode, 0, 0, ...] for each opcode byte: must never panic.
        for opc in 0u8..=255 {
            let buf = [opc, 0, 0, 0, 0, 0, 0, 0, 0, 0];
            let _ = decode(&buf);
        }
    }

    #[test]
    fn bad_register_nibble_is_rejected_where_possible() {
        // op::PUSH with register index 16 (out of range).
        let r = decode(&[crate::encode::op::PUSH, 16]);
        assert_eq!(r, Err(DecodeError::BadRegister { index: 16 }));
    }

    #[test]
    fn decode_at_walks_a_stream() {
        let insts =
            [Inst::Nop, Inst::Push { src: Reg::Rax }, Inst::Jmp { rel: -3 }, Inst::Halt];
        let mut bytes = Vec::new();
        for i in &insts {
            crate::encode::encode_into(i, &mut bytes);
        }
        let mut off = 0;
        for want in &insts {
            let (got, next) = decode_at(&bytes, off).unwrap();
            assert_eq!(got, *want);
            off = next;
        }
        assert_eq!(off, bytes.len());
    }

    #[test]
    fn decode_at_out_of_bounds() {
        assert!(decode_at(&[0x00], 2).is_err());
    }
}
