//! Superblocks: decode-once straight-line replay regions.
//!
//! A superblock is a maximal run of *eligible* contiguous instructions —
//! no control flow, no memory accesses, no possible architectural fault,
//! no ILR fall-through override — starting at some program counter. The
//! interpreter decodes the run once ([`crate::Machine::form_superblock`])
//! and thereafter replays it through a reduced dispatch loop
//! ([`crate::Machine::replay_superblock`]) instead of taking the full
//! fetch/decode/execute state machine one instruction at a time. The
//! cycle simulator keeps a parallel per-block timing precompute and
//! batches its accounting the same way.
//!
//! Formation is a pure function of the image bytes (W^X: text never
//! changes), so blocks never invalidate for the life of a machine; the
//! cache is simply rebuilt from scratch after a checkpoint restore.
//!
//! See `docs/superblocks.md` for the formation rules and how the replay
//! path preserves bit-determinism.

use crate::inst::{AluOp, Inst};
use crate::Addr;

/// Shortest run worth caching as a superblock. Below this, the dispatch
/// overhead of entering the replay path exceeds what it saves, and the
/// cache records a [`SuperblockLookup::NoBlock`] so the address is never
/// probed again.
pub const SUPERBLOCK_MIN_INSTS: usize = 3;

/// Longest run a single superblock may hold. Replay is capped further at
/// run time (sampling intervals, fault schedules, epoch boundaries), so
/// the limit only bounds formation cost and memory.
pub const SUPERBLOCK_MAX_INSTS: usize = 512;

/// One pre-decoded instruction of a superblock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SbInst {
    /// Address of the instruction.
    pub pc: Addr,
    /// The decoded instruction (eligible by construction).
    pub inst: Inst,
    /// Encoded length in bytes.
    pub len: u8,
}

/// A decoded straight-line replay region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Superblock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Address immediately after the last instruction (the machine's
    /// program counter after a full replay).
    pub end: Addr,
    /// The instructions, in execution order.
    pub insts: Vec<SbInst>,
}

impl Superblock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the block is empty (never true for a formed block).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// Whether `inst` may be part of a superblock: it must not touch memory,
/// not transfer or stop control, not fault, and not emit output — i.e.
/// its only architectural effects are on registers and flags. `Div`/`Rem`
/// are excluded because they can raise a divide-by-zero fault, which
/// must surface at the exact per-instruction point the slow path would
/// raise it.
pub fn superblock_eligible(inst: &Inst) -> bool {
    match inst {
        Inst::Nop
        | Inst::MovRR { .. }
        | Inst::MovRI { .. }
        | Inst::Lea { .. }
        | Inst::Cmp { .. }
        | Inst::CmpI { .. }
        | Inst::Test { .. }
        | Inst::Neg { .. }
        | Inst::Not { .. } => true,
        Inst::AluRR { op, .. } | Inst::AluRI { op, .. } => {
            !matches!(op, AluOp::Div | AluOp::Rem)
        }
        _ => false,
    }
}

/// What the cache knows about a program counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuperblockLookup {
    /// Never probed: the caller should attempt formation.
    Untried,
    /// Formation was attempted and produced no (long-enough) block.
    NoBlock,
    /// A formed block, by id.
    Block(u32),
}

/// Slot value for "formation not attempted yet".
const UNTRIED: u32 = u32::MAX;
/// Slot value for "formation attempted, too short / ineligible".
const NO_BLOCK: u32 = u32::MAX - 1;

#[derive(Clone, Debug)]
struct SbRange {
    lo: Addr,
    hi: Addr,
    /// Byte offset → block id ([`UNTRIED`] / [`NO_BLOCK`] sentinels).
    slots: Vec<u32>,
}

/// A dense per-byte-slot cache of formed superblocks over a program's
/// code ranges, following the layout of [`crate::DecodedImage`]: lookup
/// is range scan + slot index, with no hashing on the replay path.
///
/// Entry points are cached *per address*: jumping into the middle of an
/// existing block simply forms a second (overlapping) block starting
/// there.
#[derive(Clone, Debug, Default)]
pub struct SuperblockCache {
    ranges: Vec<SbRange>,
    blocks: Vec<Superblock>,
}

impl SuperblockCache {
    /// An empty cache covering no addresses (every lookup misses).
    pub fn new() -> SuperblockCache {
        SuperblockCache::default()
    }

    /// Adds the code range `[lo, hi)`. Addresses outside every range are
    /// never cached (lookups return [`SuperblockLookup::NoBlock`]).
    pub fn add_range(&mut self, lo: Addr, hi: Addr) {
        let len = hi.wrapping_sub(lo) as usize;
        self.ranges.push(SbRange { lo, hi, slots: vec![UNTRIED; len] });
    }

    /// What the cache knows about `pc`.
    #[inline]
    pub fn lookup(&self, pc: Addr) -> SuperblockLookup {
        for r in &self.ranges {
            if pc >= r.lo && pc < r.hi {
                return match r.slots[pc.wrapping_sub(r.lo) as usize] {
                    UNTRIED => SuperblockLookup::Untried,
                    NO_BLOCK => SuperblockLookup::NoBlock,
                    id => SuperblockLookup::Block(id),
                };
            }
        }
        SuperblockLookup::NoBlock
    }

    /// Records the result of a formation attempt at `pc`; returns the
    /// new block's id when one was stored.
    pub fn record(&mut self, pc: Addr, formed: Option<Superblock>) -> Option<u32> {
        let id = match formed {
            Some(sb) => {
                debug_assert_eq!(sb.start, pc);
                let id = self.blocks.len() as u32;
                self.blocks.push(sb);
                id
            }
            None => NO_BLOCK,
        };
        if let Some(r) = self.ranges.iter_mut().find(|r| pc >= r.lo && pc < r.hi) {
            r.slots[pc.wrapping_sub(r.lo) as usize] = id;
        }
        (id != NO_BLOCK).then_some(id)
    }

    /// The block with the given id.
    #[inline]
    pub fn get(&self, id: u32) -> &Superblock {
        &self.blocks[id as usize]
    }

    /// Number of formed blocks.
    pub fn blocks_formed(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn eligibility_is_register_only() {
        assert!(superblock_eligible(&Inst::Nop));
        assert!(superblock_eligible(&Inst::MovRI { dst: Reg::Rax, imm: 7 }));
        assert!(superblock_eligible(&Inst::AluRI { op: AluOp::Add, dst: Reg::Rax, imm: 1 }));
        assert!(superblock_eligible(&Inst::Cmp { lhs: Reg::Rax, rhs: Reg::Rbx }));
        assert!(superblock_eligible(&Inst::Not { dst: Reg::Rax }));
        // Faultable, memory, control and stopping instructions are out.
        assert!(!superblock_eligible(&Inst::AluRR { op: AluOp::Div, dst: Reg::Rax, src: Reg::Rbx }));
        assert!(!superblock_eligible(&Inst::AluRI { op: AluOp::Rem, dst: Reg::Rax, imm: 3 }));
        assert!(!superblock_eligible(&Inst::Load { dst: Reg::Rax, base: Reg::Rbx, disp: 0 }));
        assert!(!superblock_eligible(&Inst::Push { src: Reg::Rax }));
        assert!(!superblock_eligible(&Inst::Jmp { rel: 4 }));
        assert!(!superblock_eligible(&Inst::Ret));
        assert!(!superblock_eligible(&Inst::Halt));
        assert!(!superblock_eligible(&Inst::Sys { num: 1 }));
    }

    #[test]
    fn cache_slots_track_formation_results() {
        let mut c = SuperblockCache::new();
        c.add_range(0x1000, 0x1010);
        assert_eq!(c.lookup(0x1000), SuperblockLookup::Untried);
        assert_eq!(c.lookup(0x2000), SuperblockLookup::NoBlock, "outside every range");

        assert_eq!(c.record(0x1004, None), None);
        assert_eq!(c.lookup(0x1004), SuperblockLookup::NoBlock);

        let sb = Superblock {
            start: 0x1000,
            end: 0x1002,
            insts: vec![SbInst { pc: 0x1000, inst: Inst::Nop, len: 1 }],
        };
        let id = c.record(0x1000, Some(sb)).unwrap();
        assert_eq!(c.lookup(0x1000), SuperblockLookup::Block(id));
        assert_eq!(c.get(id).start, 0x1000);
        assert_eq!(c.blocks_formed(), 1);
    }
}
