//! A textual assembly front end for [`Asm`]: parse `.s` source into an
//! [`Image`].
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line
//! .entry main              ; entry point (defaults to the first instruction)
//! .data    buf 256         ; reserve 256 zeroed bytes, symbol `buf`
//! .words   tbl 1 2 3       ; 64-bit words, symbol `tbl`
//! .ptrs    vt  f g         ; code-pointer table (relocations), symbol `vt`
//!
//! main:
//!     mov   rcx, 10
//!     mov   rbx, buf       ; data symbols become immediates
//! loop:
//!     add   rax, 2
//!     load  rdx, [rbx+8]
//!     loadx rdx, [rbx+rcx*8+0]
//!     store [rbx+16], rdx
//!     sub   rcx, 1
//!     cmp   rcx, 0
//!     jne   loop
//!     call  square
//!     out   rax            ; append rax to the output sink (sys 1)
//!     halt
//!
//! square:
//!     mul   rax, rax
//!     ret
//! ```
//!
//! Conditional jumps are `j` + the condition mnemonic (`jeq jne jlt jle
//! jgt jge jb jae jbe ja js jns`). `mov r, label` loads a *code* label's
//! absolute address (a function pointer).

use crate::asm::{Asm, DataRef, Label};
use crate::inst::{AluOp, Cond};
use crate::{AsmError, Image, Reg};
use std::collections::HashMap;
use std::fmt;

/// A textual-assembly parse failure, with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError { line: 0, message: e.to_string() }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    crate::reg::ALL_REGS.iter().copied().find(|r| r.name() == tok)
}

fn parse_int(tok: &str) -> Option<i64> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("-0x")) {
        let v = i64::from_str_radix(hex, 16).ok()?;
        Some(if tok.starts_with('-') { -v } else { v })
    } else {
        tok.parse().ok()
    }
}

/// `[base+disp]` or `[base+index*scale+disp]` (disp optional, may be
/// negative).
#[derive(Debug)]
enum MemOperand {
    Simple { base: Reg, disp: i32 },
    Indexed { base: Reg, index: Reg, scale: u8, disp: i32 },
}

fn parse_mem(tok: &str, line: usize) -> Result<MemOperand, ParseError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [mem] operand, got {tok:?}")))?;
    // Split on '+' but keep a possible leading '-' of the displacement.
    let norm = inner.replace('-', "+-");
    let parts: Vec<&str> = norm.split('+').filter(|p| !p.is_empty()).collect();
    let base = parse_reg(parts.first().copied().unwrap_or(""))
        .ok_or_else(|| err(line, format!("bad base register in {tok:?}")))?;
    match parts.len() {
        1 => Ok(MemOperand::Simple { base, disp: 0 }),
        2 => {
            if let Some((idx, scale)) = parts[1].split_once('*') {
                let index = parse_reg(idx)
                    .ok_or_else(|| err(line, format!("bad index register in {tok:?}")))?;
                let scale = parse_scale(scale, line, tok)?;
                Ok(MemOperand::Indexed { base, index, scale, disp: 0 })
            } else {
                let disp = parse_int(parts[1])
                    .ok_or_else(|| err(line, format!("bad displacement in {tok:?}")))?;
                Ok(MemOperand::Simple { base, disp: disp as i32 })
            }
        }
        3 => {
            let (idx, scale) = parts[1]
                .split_once('*')
                .ok_or_else(|| err(line, format!("expected index*scale in {tok:?}")))?;
            let index = parse_reg(idx)
                .ok_or_else(|| err(line, format!("bad index register in {tok:?}")))?;
            let scale = parse_scale(scale, line, tok)?;
            let disp = parse_int(parts[2])
                .ok_or_else(|| err(line, format!("bad displacement in {tok:?}")))?;
            Ok(MemOperand::Indexed { base, index, scale, disp: disp as i32 })
        }
        _ => Err(err(line, format!("too many terms in {tok:?}"))),
    }
}

fn parse_scale(s: &str, line: usize, tok: &str) -> Result<u8, ParseError> {
    match s {
        "1" => Ok(0),
        "2" => Ok(1),
        "4" => Ok(2),
        "8" => Ok(3),
        _ => Err(err(line, format!("scale must be 1/2/4/8 in {tok:?}"))),
    }
}

fn alu_of(mnemonic: &str) -> Option<AluOp> {
    crate::inst::ALL_ALU_OPS.iter().copied().find(|op| op.name() == mnemonic)
}

fn cond_of(mnemonic: &str) -> Option<Cond> {
    let cc = mnemonic.strip_prefix('j')?;
    crate::inst::ALL_CONDS.iter().copied().find(|c| c.name() == cc)
}

/// Parses textual assembly into an [`Image`] with text at `text_base`.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line, or an assembler
/// error (e.g. an undefined label) mapped to line 0.
///
/// # Example
///
/// ```
/// let src = "
///     mov rax, 6
///     mov rcx, 7
///     mul rax, rcx
///     out rax
///     halt
/// ";
/// let image = vcfr_isa::parse_asm(src, 0x1000).unwrap();
/// let out = vcfr_isa::Machine::new(&image).run(100).unwrap().output;
/// assert_eq!(out, vec![42]);
/// ```
pub fn parse_asm(source: &str, text_base: crate::Addr) -> Result<Image, ParseError> {
    let mut a = Asm::new(text_base);
    let mut data_syms: HashMap<String, DataRef> = HashMap::new();
    let mut entry: Option<Label> = None;

    // Operand resolution: register, integer, data symbol (immediate
    // address) or code label (absolute-address fix-up).
    enum Val {
        Reg(Reg),
        Imm(i64),
        CodeLabel(Label),
    }
    let resolve = |a: &mut Asm, data_syms: &HashMap<String, DataRef>, tok: &str| -> Val {
        if let Some(r) = parse_reg(tok) {
            Val::Reg(r)
        } else if let Some(v) = parse_int(tok) {
            Val::Imm(v)
        } else if let Some(d) = data_syms.get(tok) {
            Val::Imm(d.0 as i64)
        } else {
            Val::CodeLabel(a.named_label(tok))
        }
    };

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split(';').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = code.strip_prefix('.') {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            match toks.as_slice() {
                ["entry", name] => entry = Some(a.named_label(name)),
                ["data", name, size] => {
                    let n = parse_int(size)
                        .filter(|v| *v >= 0)
                        .ok_or_else(|| err(line, "bad .data size"))?;
                    let r = a.data_zeroed(n as usize);
                    data_syms.insert((*name).to_owned(), r);
                }
                ["words", name, vals @ ..] => {
                    let words: Option<Vec<u64>> =
                        vals.iter().map(|v| parse_int(v).map(|x| x as u64)).collect();
                    let words = words.ok_or_else(|| err(line, "bad .words value"))?;
                    let r = a.data_u64s(&words);
                    data_syms.insert((*name).to_owned(), r);
                }
                ["ptrs", name, labels @ ..] => {
                    let ls: Vec<Label> = labels.iter().map(|l| a.named_label(l)).collect();
                    let r = a.data_ptr_table(&ls);
                    data_syms.insert((*name).to_owned(), r);
                }
                _ => return Err(err(line, format!("unknown directive .{rest}"))),
            }
            continue;
        }

        // Labels (possibly followed by an instruction on the same line).
        let mut code = code;
        while let Some(colon) = code.find(':') {
            let (name, rest) = code.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            let l = a.named_label(name);
            a.bind(l);
            a.mark_symbol(name);
            code = rest[1..].trim();
        }
        if code.is_empty() {
            continue;
        }

        // Instruction.
        let (mnemonic, rest) = match code.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (code, ""),
        };
        let ops: Vec<String> = if rest.is_empty() {
            vec![]
        } else {
            rest.split(',').map(|s| s.trim().to_owned()).collect()
        };
        let want = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(err(line, format!("{mnemonic} expects {n} operand(s), got {}", ops.len())))
            }
        };

        match mnemonic {
            "nop" => a.nop(),
            "halt" => a.halt(),
            "ret" => a.ret(),
            "sys" => {
                want(1)?;
                let n = parse_int(&ops[0]).ok_or_else(|| err(line, "bad sys number"))?;
                a.sys(n as u8);
            }
            "out" => {
                want(1)?;
                match resolve(&mut a, &data_syms, &ops[0]) {
                    Val::Reg(r) => a.emit_output(r),
                    _ => return Err(err(line, "out expects a register")),
                }
            }
            "mov" => {
                want(2)?;
                let dst = parse_reg(&ops[0])
                    .ok_or_else(|| err(line, format!("bad register {:?}", ops[0])))?;
                match resolve(&mut a, &data_syms, &ops[1]) {
                    Val::Reg(src) => a.mov_rr(dst, src),
                    Val::Imm(v) => a.mov_ri(dst, v),
                    Val::CodeLabel(l) => a.mov_label(dst, l),
                }
            }
            "lea" => {
                want(2)?;
                let dst = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                match parse_mem(&ops[1], line)? {
                    MemOperand::Simple { base, disp } => a.lea(dst, base, disp),
                    _ => return Err(err(line, "lea takes [base+disp]")),
                }
            }
            "load" | "loadb" | "loadx" => {
                want(2)?;
                let dst = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                match (mnemonic, parse_mem(&ops[1], line)?) {
                    ("load", MemOperand::Simple { base, disp }) => a.load(dst, base, disp),
                    ("loadb", MemOperand::Simple { base, disp }) => a.load_b(dst, base, disp),
                    ("loadx", MemOperand::Indexed { base, index, scale, disp }) => {
                        a.load_idx(dst, base, index, scale, disp)
                    }
                    _ => return Err(err(line, format!("bad operand for {mnemonic}"))),
                }
            }
            "store" | "storeb" | "storex" => {
                want(2)?;
                let src = parse_reg(&ops[1]).ok_or_else(|| err(line, "bad register"))?;
                match (mnemonic, parse_mem(&ops[0], line)?) {
                    ("store", MemOperand::Simple { base, disp }) => a.store(base, disp, src),
                    ("storeb", MemOperand::Simple { base, disp }) => {
                        a.store_b(base, disp, src)
                    }
                    ("storex", MemOperand::Indexed { base, index, scale, disp }) => {
                        a.store_idx(base, index, scale, disp, src)
                    }
                    _ => return Err(err(line, format!("bad operand for {mnemonic}"))),
                }
            }
            "push" => {
                want(1)?;
                match resolve(&mut a, &data_syms, &ops[0]) {
                    Val::Reg(r) => a.push(r),
                    Val::Imm(v) => a.push_i(v as i32),
                    Val::CodeLabel(_) => return Err(err(line, "cannot push a code label")),
                }
            }
            "pop" => {
                want(1)?;
                let r = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                a.pop(r);
            }
            "cmp" => {
                want(2)?;
                let lhs = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                match resolve(&mut a, &data_syms, &ops[1]) {
                    Val::Reg(rhs) => a.cmp(lhs, rhs),
                    Val::Imm(v) => a.cmp_i(lhs, v as i32),
                    Val::CodeLabel(_) => return Err(err(line, "cannot compare a label")),
                }
            }
            "test" => {
                want(2)?;
                let lhs = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                let rhs = parse_reg(&ops[1]).ok_or_else(|| err(line, "bad register"))?;
                a.test(lhs, rhs);
            }
            "neg" => {
                want(1)?;
                let r = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                a.neg(r);
            }
            "not" => {
                want(1)?;
                let r = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                a.not(r);
            }
            "jmp" => {
                want(1)?;
                if ops[0].starts_with('[') {
                    match parse_mem(&ops[0], line)? {
                        MemOperand::Simple { base, disp } => a.jmp_m(base, disp),
                        _ => return Err(err(line, "jmp [m] takes [base+disp]")),
                    }
                } else {
                    match resolve(&mut a, &data_syms, &ops[0]) {
                        Val::Reg(r) => a.jmp_r(r),
                        Val::CodeLabel(l) => a.jmp(l),
                        Val::Imm(_) => return Err(err(line, "jmp needs a label or register")),
                    }
                }
            }
            "call" => {
                want(1)?;
                if ops[0].starts_with('[') {
                    match parse_mem(&ops[0], line)? {
                        MemOperand::Simple { base, disp } => a.call_m(base, disp),
                        _ => return Err(err(line, "call [m] takes [base+disp]")),
                    }
                } else {
                    match resolve(&mut a, &data_syms, &ops[0]) {
                        Val::Reg(r) => a.call_r(r),
                        Val::CodeLabel(l) => a.call(l),
                        Val::Imm(_) => return Err(err(line, "call needs a label or register")),
                    }
                }
            }
            m if alu_of(m).is_some() => {
                want(2)?;
                let op = alu_of(m).expect("checked");
                let dst = parse_reg(&ops[0]).ok_or_else(|| err(line, "bad register"))?;
                match resolve(&mut a, &data_syms, &ops[1]) {
                    Val::Reg(src) => a.alu_rr(op, dst, src),
                    Val::Imm(v) => a.alu_ri(op, dst, v as i32),
                    Val::CodeLabel(_) => return Err(err(line, "ALU ops take reg or imm")),
                }
            }
            m if cond_of(m).is_some() => {
                want(1)?;
                let cc = cond_of(m).expect("checked");
                match resolve(&mut a, &data_syms, &ops[0]) {
                    Val::CodeLabel(l) => a.jcc(cc, l),
                    _ => return Err(err(line, format!("{m} needs a label"))),
                }
            }
            other => return Err(err(line, format!("unknown mnemonic {other:?}"))),
        }
    }

    if let Some(e) = entry {
        a.set_entry(e);
    }
    a.finish().map_err(ParseError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn loops_calls_and_data() {
        let src = "
            ; sum of squares via a helper
            .words seed 5
            .entry main
        main:
            mov rbx, seed
            load rcx, [rbx+0]
            mov r9, 0
        top:
            mov rax, rcx
            call square
            add r9, rax
            sub rcx, 1
            cmp rcx, 0
            jne top
            out r9
            halt
        square:
            mul rax, rax
            ret
        ";
        let img = parse_asm(src, 0x1000).unwrap();
        let out = Machine::new(&img).run(10_000).unwrap().output;
        assert_eq!(out, vec![55]); // 25+16+9+4+1
    }

    #[test]
    fn jump_tables_and_indexed_memory() {
        let src = "
            .ptrs table c0 c1 c2
        main:
            mov rcx, 2
            mov rbx, table
            loadx rdx, [rbx+rcx*8+0]
            jmp rdx
        c0: mov rax, 100
            jmp done
        c1: mov rax, 101
            jmp done
        c2: mov rax, 102
        done:
            out rax
            halt
        ";
        let img = parse_asm(src, 0x1000).unwrap();
        assert_eq!(img.relocs.len(), 3);
        let out = Machine::new(&img).run(1_000).unwrap().output;
        assert_eq!(out, vec![102]);
    }

    #[test]
    fn negative_displacements_and_stores() {
        let src = "
            .data buf 64
        main:
            mov rbx, buf
            add rbx, 32
            mov rax, 7
            store [rbx-8], rax
            load rdx, [rbx-8]
            out rdx
            halt
        ";
        let img = parse_asm(src, 0x1000).unwrap();
        let out = Machine::new(&img).run(1_000).unwrap().output;
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn function_pointers_via_mov_label() {
        let src = "
        main:
            mov rax, target
            call rax
            out rax
            halt
        target:
            mov rax, 31
            ret
        ";
        let img = parse_asm(src, 0x1000).unwrap();
        let out = Machine::new(&img).run(1_000).unwrap().output;
        assert_eq!(out, vec![31]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("  nop\n  frobnicate rax\n", 0x1000).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse_asm("mov rax\n", 0x1000).unwrap_err();
        assert!(e.message.contains("expects 2"));

        let e = parse_asm("load rax, [nope+8]\n", 0x1000).unwrap_err();
        assert!(e.message.contains("base register"));

        let e = parse_asm("jmp unbound_label\n", 0x1000).unwrap_err();
        assert!(e.message.contains("never bound"));
    }

    #[test]
    fn hex_immediates() {
        let src = "
            mov rax, 0xff
            and rax, 0x0f
            out rax
            halt
        ";
        let out = Machine::new(&parse_asm(src, 0x1000).unwrap()).run(100).unwrap().output;
        assert_eq!(out, vec![0x0f]);
    }
}
