//! General-purpose register file definition.

use std::fmt;

/// One of the sixteen 64-bit general-purpose registers.
///
/// The names follow the x86-64 convention. [`Reg::Rsp`] is the stack
/// pointer implicitly used by `push`/`pop`/`call`/`ret`; every other
/// register is completely general.
///
/// # Example
///
/// ```
/// use vcfr_isa::Reg;
/// assert_eq!(Reg::from_index(4), Some(Reg::Rsp));
/// assert_eq!(Reg::Rsp.index(), 4);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; also the value reported by the `sys 1` output syscall.
    Rax = 0,
    /// Counter register.
    Rcx = 1,
    /// Data register.
    Rdx = 2,
    /// Base register.
    Rbx = 3,
    /// Stack pointer (implicitly used by `push`/`pop`/`call`/`ret`).
    Rsp = 4,
    /// Frame pointer by convention.
    Rbp = 5,
    /// Source index.
    Rsi = 6,
    /// Destination index.
    Rdi = 7,
    /// Extended register 8.
    R8 = 8,
    /// Extended register 9.
    R9 = 9,
    /// Extended register 10.
    R10 = 10,
    /// Extended register 11.
    R11 = 11,
    /// Extended register 12.
    R12 = 12,
    /// Extended register 13.
    R13 = 13,
    /// Extended register 14.
    R14 = 14,
    /// Extended register 15.
    R15 = 15,
}

/// All registers in index order. Useful for exhaustive iteration in tests.
pub const ALL_REGS: [Reg; 16] = [
    Reg::Rax,
    Reg::Rcx,
    Reg::Rdx,
    Reg::Rbx,
    Reg::Rsp,
    Reg::Rbp,
    Reg::Rsi,
    Reg::Rdi,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
];

impl Reg {
    /// Returns the encoding index (0–15) of the register.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns the register with encoding index `i`, or `None` when
    /// `i >= 16`.
    pub fn from_index(i: u8) -> Option<Reg> {
        ALL_REGS.get(i as usize).copied()
    }

    /// Returns the conventional lower-case mnemonic (`"rax"`, `"r12"`, …).
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, r) in ALL_REGS.iter().enumerate() {
            assert_eq!(r.index(), i);
            assert_eq!(Reg::from_index(i as u8), Some(*r));
        }
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::Rax.to_string(), "rax");
        assert_eq!(Reg::Rsp.to_string(), "rsp");
        assert_eq!(Reg::R15.to_string(), "r15");
    }

    #[test]
    fn stack_pointer_is_index_4() {
        assert_eq!(Reg::Rsp.index(), 4);
    }
}
