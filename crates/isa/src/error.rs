//! Error types for decoding, assembling and executing programs.

use crate::Addr;
use std::fmt;

/// An error produced while decoding machine bytes into an [`crate::Inst`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    BadOpcode {
        /// The offending opcode byte.
        opcode: u8,
    },
    /// A register field held a value ≥ 16.
    BadRegister {
        /// The offending register index.
        index: u8,
    },
    /// A scale field held a value ≥ 4.
    BadScale {
        /// The offending scale exponent.
        scale: u8,
    },
    /// The byte slice ended before the instruction was complete.
    Truncated {
        /// Bytes required by the opcode.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { opcode } => write!(f, "invalid opcode byte {opcode:#04x}"),
            DecodeError::BadRegister { index } => write!(f, "invalid register index {index}"),
            DecodeError::BadScale { scale } => write!(f, "invalid scale exponent {scale}"),
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated instruction: needed {needed} bytes, had {available}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// An error produced by [`crate::Asm::finish`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound with [`crate::Asm::bind`].
    UnboundLabel {
        /// Index of the unbound label.
        label: usize,
    },
    /// A label was bound twice.
    ReboundLabel {
        /// Index of the rebound label.
        label: usize,
    },
    /// A branch displacement overflowed the signed 32-bit field.
    RelOutOfRange {
        /// Address of the branch instruction.
        at: Addr,
        /// The displacement that did not fit.
        rel: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel { label } => write!(f, "label {label} was never bound"),
            AsmError::ReboundLabel { label } => write!(f, "label {label} bound more than once"),
            AsmError::RelOutOfRange { at, rel } => {
                write!(f, "branch at {at:#x} displacement {rel} exceeds 32 bits")
            }
        }
    }
}

impl std::error::Error for AsmError {}

/// An architectural fault raised by [`crate::Machine`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The program counter pointed at bytes that do not decode.
    Decode {
        /// Faulting program counter.
        pc: Addr,
        /// Underlying decode error.
        source: DecodeError,
    },
    /// Integer division by zero.
    DivideByZero {
        /// Faulting program counter.
        pc: Addr,
    },
    /// A control transfer targeted an address outside any mapped section.
    BadJumpTarget {
        /// Faulting program counter.
        pc: Addr,
        /// The invalid target address.
        target: Addr,
    },
    /// The step budget given to [`crate::Machine::run`] was exhausted.
    StepLimit {
        /// Program counter at the moment the budget ran out.
        pc: Addr,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Decode { pc, source } => write!(f, "decode fault at {pc:#x}: {source}"),
            ExecError::DivideByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            ExecError::BadJumpTarget { pc, target } => {
                write!(f, "control transfer at {pc:#x} to unmapped target {target:#x}")
            }
            ExecError::StepLimit { pc } => write!(f, "step limit exhausted at {pc:#x}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(DecodeError::BadOpcode { opcode: 0xff }),
            Box::new(AsmError::UnboundLabel { label: 3 }),
            Box::new(ExecError::DivideByZero { pc: 0x10 }),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn exec_error_exposes_decode_source() {
        let e = ExecError::Decode { pc: 4, source: DecodeError::BadOpcode { opcode: 9 } };
        assert!(std::error::Error::source(&e).is_some());
    }
}
