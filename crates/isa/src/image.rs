//! The loadable binary image format.

use crate::{Addr, Mem};

/// Classifies a [`Section`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SectionKind {
    /// Executable instructions.
    Text,
    /// Read-write data (also holds jump tables and function-pointer
    /// tables, which are what the rewriter's relocation fix-ups patch).
    Data,
}

/// A contiguous range of initialised bytes at a fixed virtual address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// What the section holds.
    pub kind: SectionKind,
    /// Base virtual address.
    pub base: Addr,
    /// Section contents.
    pub bytes: Vec<u8>,
}

impl Section {
    /// The first address past the section.
    pub fn end(&self) -> Addr {
        self.base.wrapping_add(self.bytes.len() as Addr)
    }

    /// Whether `addr` falls inside the section.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Classifies a [`Symbol`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A function entry point.
    Func,
    /// A data object.
    Object,
}

/// A named address, as a linker would record it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Address of the symbol.
    pub addr: Addr,
    /// Size in bytes (0 when unknown).
    pub size: u32,
    /// Function or object.
    pub kind: SymbolKind,
}

/// A relocation: a 64-bit slot in the data section holding an absolute
/// code address.
///
/// These are exactly the entries Hiser et al.'s ILR relies on to patch
/// jump tables and function-pointer tables after randomization, and what
/// the conservative "pointer-sized constant scan" recovers when relocation
/// information is missing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reloc {
    /// Address of the 8-byte slot holding the pointer.
    pub at: Addr,
    /// The code address stored in the slot.
    pub target: Addr,
}

/// A complete loadable program: sections, entry point, symbols and
/// relocations.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Machine, Reg};
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rax, 1);
/// a.halt();
/// let image = a.finish().unwrap();
/// assert!(image.text().contains(image.entry));
/// let mut m = Machine::new(&image);
/// m.run(10).unwrap();
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Image {
    /// All sections; exactly one [`SectionKind::Text`] section.
    pub sections: Vec<Section>,
    /// Address of the first instruction executed.
    pub entry: Addr,
    /// Initial stack pointer (stack grows down from here).
    pub stack_top: Addr,
    /// Named addresses.
    pub symbols: Vec<Symbol>,
    /// Code pointers stored in data (jump tables, vtables).
    pub relocs: Vec<Reloc>,
}

impl Image {
    /// Returns the text section.
    ///
    /// # Panics
    ///
    /// Panics if the image has no text section, which [`crate::Asm`] can
    /// never produce.
    pub fn text(&self) -> &Section {
        self.sections
            .iter()
            .find(|s| s.kind == SectionKind::Text)
            .expect("image has a text section")
    }

    /// Returns the data section, if the program has one.
    pub fn data(&self) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == SectionKind::Data)
    }

    /// Whether `addr` falls inside the text section.
    pub fn in_text(&self, addr: Addr) -> bool {
        self.text().contains(addr)
    }

    /// Looks up a function symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Copies every section into `mem` at its base address.
    pub fn load_into(&self, mem: &mut Mem) {
        for s in &self.sections {
            mem.write_bytes(s.base, &s.bytes);
        }
    }

    /// Total size of all sections in bytes.
    pub fn loaded_size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_image() -> Image {
        Image {
            sections: vec![
                Section { kind: SectionKind::Text, base: 0x1000, bytes: vec![0x00, 0x01] },
                Section { kind: SectionKind::Data, base: 0x8000, bytes: vec![7; 16] },
            ],
            entry: 0x1000,
            stack_top: 0xf000,
            symbols: vec![Symbol {
                name: "main".into(),
                addr: 0x1000,
                size: 2,
                kind: SymbolKind::Func,
            }],
            relocs: vec![],
        }
    }

    #[test]
    fn section_bounds() {
        let img = tiny_image();
        let t = img.text();
        assert!(t.contains(0x1000));
        assert!(t.contains(0x1001));
        assert!(!t.contains(0x1002));
        assert!(!t.contains(0x0fff));
        assert_eq!(t.end(), 0x1002);
    }

    #[test]
    fn symbol_lookup() {
        let img = tiny_image();
        assert_eq!(img.symbol("main").unwrap().addr, 0x1000);
        assert!(img.symbol("missing").is_none());
    }

    #[test]
    fn load_into_memory() {
        let img = tiny_image();
        let mut mem = Mem::new();
        img.load_into(&mut mem);
        assert_eq!(mem.read_u8(0x1000), 0x00);
        assert_eq!(mem.read_u8(0x1001), 0x01);
        assert_eq!(mem.read_u8(0x8003), 7);
        assert_eq!(img.loaded_size(), 18);
    }
}
