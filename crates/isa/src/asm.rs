//! A two-pass label assembler for building [`Image`]s programmatically.
//!
//! Because every instruction in the ISA has a length that does not depend
//! on its operand values, layout is final as instructions are emitted and
//! only branch displacements and absolute label immediates need a fix-up
//! pass in [`Asm::finish`].

use crate::error::AsmError;
use crate::image::{Image, Reloc, Section, SectionKind, Symbol, SymbolKind};
use crate::inst::{AluOp, Cond, Inst};
use crate::{encode_into, Addr, Reg, SYS_OUTPUT};
use std::collections::HashMap;

/// An opaque handle to a not-yet-resolved code address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// The address of a blob allocated in the data section.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DataRef(pub Addr);

#[derive(Clone, Copy, Debug)]
enum FixupKind {
    /// Patch a `rel: i32` field so the branch lands on the label.
    Rel,
    /// Patch a `MovRI` immediate with the label's absolute address.
    Abs,
}

#[derive(Clone, Copy, Debug)]
struct Fixup {
    inst: usize,
    label: Label,
    kind: FixupKind,
}

/// Default distance between the text base and the data base.
const DEFAULT_DATA_GAP: Addr = 0x10_0000;
/// Default initial stack pointer.
const DEFAULT_STACK_TOP: Addr = 0x0f00_0000;

/// Incremental builder for a program [`Image`].
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Cond, Machine, Reg};
///
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rcx, 5);
/// a.mov_ri(Reg::Rax, 0);
/// let top = a.here();
/// a.alu_ri(vcfr_isa::AluOp::Add, Reg::Rax, 2);
/// a.alu_ri(vcfr_isa::AluOp::Sub, Reg::Rcx, 1);
/// a.cmp_i(Reg::Rcx, 0);
/// a.jcc(Cond::Ne, top);
/// a.emit_output(Reg::Rax);
/// a.halt();
///
/// let image = a.finish().unwrap();
/// let out = Machine::new(&image).run(1_000).unwrap().output;
/// assert_eq!(out, vec![10]);
/// ```
#[derive(Debug)]
pub struct Asm {
    text_base: Addr,
    data_base: Addr,
    stack_top: Addr,
    insts: Vec<Inst>,
    offsets: Vec<usize>,
    cursor: usize,
    fixups: Vec<Fixup>,
    labels: Vec<Option<Addr>>,
    named: HashMap<String, Label>,
    symbols: Vec<Symbol>,
    data: Vec<u8>,
    data_relocs: Vec<(usize, Label)>,
    entry: Option<Label>,
}

impl Asm {
    /// Creates an assembler whose text section starts at `text_base`; the
    /// data section is placed `0x10_0000` bytes above it.
    pub fn new(text_base: Addr) -> Asm {
        Asm::with_layout(text_base, text_base + DEFAULT_DATA_GAP, DEFAULT_STACK_TOP)
    }

    /// Creates an assembler with explicit section bases and stack top.
    pub fn with_layout(text_base: Addr, data_base: Addr, stack_top: Addr) -> Asm {
        Asm {
            text_base,
            data_base,
            stack_top,
            insts: Vec::new(),
            offsets: Vec::new(),
            cursor: 0,
            fixups: Vec::new(),
            labels: Vec::new(),
            named: HashMap::new(),
            symbols: Vec::new(),
            data: Vec::new(),
            data_relocs: Vec::new(),
            entry: None,
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Returns the label associated with `name`, allocating it on first
    /// use. Handy for forward references to functions by name.
    pub fn named_label(&mut self, name: &str) -> Label {
        if let Some(l) = self.named.get(name) {
            return *l;
        }
        let l = self.label();
        self.named.insert(name.to_owned(), l);
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a builder bug, not an input
    /// error).
    pub fn bind(&mut self, label: Label) {
        let addr = self.addr_here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label {label:?} bound twice");
        *slot = Some(addr);
    }

    /// Allocates a label, binds it to the current position and returns it.
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Starts a named function here: binds (and returns) the function's
    /// named label and records a [`SymbolKind::Func`] symbol.
    pub fn func(&mut self, name: &str) -> Label {
        let l = self.named_label(name);
        self.bind(l);
        self.symbols.push(Symbol {
            name: name.to_owned(),
            addr: self.addr_here(),
            size: 0,
            kind: SymbolKind::Func,
        });
        l
    }

    /// Records a [`SymbolKind::Func`] symbol at the current position
    /// without touching any label (used by the textual assembler, where
    /// the label may already be bound).
    pub fn mark_symbol(&mut self, name: &str) {
        self.symbols.push(Symbol {
            name: name.to_owned(),
            addr: self.addr_here(),
            size: 0,
            kind: SymbolKind::Func,
        });
    }

    /// Marks the function label used as the program entry point; defaults
    /// to the first instruction when never called.
    pub fn set_entry(&mut self, label: Label) {
        self.entry = Some(label);
    }

    /// Current text address (the address the next instruction will get).
    pub fn addr_here(&self) -> Addr {
        self.text_base.wrapping_add(self.cursor as Addr)
    }

    /// Number of instructions emitted so far.
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    fn emit(&mut self, inst: Inst) {
        self.offsets.push(self.cursor);
        self.cursor += inst.len();
        self.insts.push(inst);
    }

    fn emit_fixed_up(&mut self, inst: Inst, label: Label, kind: FixupKind) {
        self.fixups.push(Fixup { inst: self.insts.len(), label, kind });
        self.emit(inst);
    }

    // ---- plain instructions -------------------------------------------

    /// Emits `nop`.
    pub fn nop(&mut self) {
        self.emit(Inst::Nop);
    }

    /// Emits `halt`.
    pub fn halt(&mut self) {
        self.emit(Inst::Halt);
    }

    /// Emits `ret`.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }

    /// Emits `sys num`.
    pub fn sys(&mut self, num: u8) {
        self.emit(Inst::Sys { num });
    }

    /// Emits `mov dst, src`.
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.emit(Inst::MovRR { dst, src });
    }

    /// Emits `mov dst, imm`.
    pub fn mov_ri(&mut self, dst: Reg, imm: i64) {
        self.emit(Inst::MovRI { dst, imm });
    }

    /// Emits `mov dst, &label` — loads the absolute address of a code
    /// label (a function pointer).
    pub fn mov_label(&mut self, dst: Reg, label: Label) {
        self.emit_fixed_up(Inst::MovRI { dst, imm: 0 }, label, FixupKind::Abs);
    }

    /// Emits `lea dst, [base + disp]`.
    pub fn lea(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.emit(Inst::Lea { dst, base, disp });
    }

    /// Emits a 64-bit load.
    pub fn load(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.emit(Inst::Load { dst, base, disp });
    }

    /// Emits a 64-bit store.
    pub fn store(&mut self, base: Reg, disp: i32, src: Reg) {
        self.emit(Inst::Store { base, disp, src });
    }

    /// Emits a scaled-index 64-bit load.
    pub fn load_idx(&mut self, dst: Reg, base: Reg, index: Reg, scale: u8, disp: i32) {
        self.emit(Inst::LoadIdx { dst, base, index, scale, disp });
    }

    /// Emits a scaled-index 64-bit store.
    pub fn store_idx(&mut self, base: Reg, index: Reg, scale: u8, disp: i32, src: Reg) {
        self.emit(Inst::StoreIdx { base, index, scale, disp, src });
    }

    /// Emits a byte load (zero-extending).
    pub fn load_b(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.emit(Inst::LoadB { dst, base, disp });
    }

    /// Emits a byte store.
    pub fn store_b(&mut self, base: Reg, disp: i32, src: Reg) {
        self.emit(Inst::StoreB { base, disp, src });
    }

    /// Emits `push src`.
    pub fn push(&mut self, src: Reg) {
        self.emit(Inst::Push { src });
    }

    /// Emits `pop dst`.
    pub fn pop(&mut self, dst: Reg) {
        self.emit(Inst::Pop { dst });
    }

    /// Emits `push imm`.
    pub fn push_i(&mut self, imm: i32) {
        self.emit(Inst::PushI { imm });
    }

    /// Emits `op dst, src`.
    pub fn alu_rr(&mut self, op: AluOp, dst: Reg, src: Reg) {
        self.emit(Inst::AluRR { op, dst, src });
    }

    /// Emits `op dst, imm`.
    pub fn alu_ri(&mut self, op: AluOp, dst: Reg, imm: i32) {
        self.emit(Inst::AluRI { op, dst, imm });
    }

    /// Emits `cmp lhs, rhs`.
    pub fn cmp(&mut self, lhs: Reg, rhs: Reg) {
        self.emit(Inst::Cmp { lhs, rhs });
    }

    /// Emits `cmp lhs, imm`.
    pub fn cmp_i(&mut self, lhs: Reg, imm: i32) {
        self.emit(Inst::CmpI { lhs, imm });
    }

    /// Emits `test lhs, rhs`.
    pub fn test(&mut self, lhs: Reg, rhs: Reg) {
        self.emit(Inst::Test { lhs, rhs });
    }

    /// Emits `neg dst`.
    pub fn neg(&mut self, dst: Reg) {
        self.emit(Inst::Neg { dst });
    }

    /// Emits `not dst`.
    pub fn not(&mut self, dst: Reg) {
        self.emit(Inst::Not { dst });
    }

    /// Emits `jmp label`.
    pub fn jmp(&mut self, label: Label) {
        self.emit_fixed_up(Inst::Jmp { rel: 0 }, label, FixupKind::Rel);
    }

    /// Emits `jcc label`.
    pub fn jcc(&mut self, cc: Cond, label: Label) {
        self.emit_fixed_up(Inst::Jcc { cc, rel: 0 }, label, FixupKind::Rel);
    }

    /// Emits `call label`.
    pub fn call(&mut self, label: Label) {
        self.emit_fixed_up(Inst::Call { rel: 0 }, label, FixupKind::Rel);
    }

    /// Emits `call name`, resolving the function by named label.
    pub fn call_named(&mut self, name: &str) {
        let l = self.named_label(name);
        self.call(l);
    }

    /// Emits `call reg` (indirect call).
    pub fn call_r(&mut self, target: Reg) {
        self.emit(Inst::CallR { target });
    }

    /// Emits `call [base + disp]` (indirect call through memory).
    pub fn call_m(&mut self, base: Reg, disp: i32) {
        self.emit(Inst::CallM { base, disp });
    }

    /// Emits `jmp reg` (indirect jump).
    pub fn jmp_r(&mut self, target: Reg) {
        self.emit(Inst::JmpR { target });
    }

    /// Emits `jmp [base + disp]` (jump-table dispatch).
    pub fn jmp_m(&mut self, base: Reg, disp: i32) {
        self.emit(Inst::JmpM { base, disp });
    }

    /// Emits the `sys 1` output convention: appends `reg` to the output
    /// sink, preserving every register.
    pub fn emit_output(&mut self, reg: Reg) {
        if reg == Reg::Rax {
            self.sys(SYS_OUTPUT);
        } else {
            self.push(Reg::Rax);
            self.mov_rr(Reg::Rax, reg);
            self.sys(SYS_OUTPUT);
            self.pop(Reg::Rax);
        }
    }

    /// Pads the text with `nop`s until the current address is a multiple
    /// of `align` (which must be a power of two).
    pub fn align_to(&mut self, align: Addr) {
        debug_assert!(align.is_power_of_two());
        while self.addr_here() & (align - 1) != 0 {
            self.nop();
        }
    }

    // ---- data ----------------------------------------------------------

    fn data_here(&self) -> Addr {
        self.data_base.wrapping_add(self.data.len() as Addr)
    }

    /// Appends raw bytes to the data section, returning their address.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> DataRef {
        let r = DataRef(self.data_here());
        self.data.extend_from_slice(bytes);
        r
    }

    /// Appends 64-bit words to the data section, returning their address.
    pub fn data_u64s(&mut self, vals: &[u64]) -> DataRef {
        let r = DataRef(self.data_here());
        for v in vals {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        r
    }

    /// Reserves `len` zero bytes in the data section.
    pub fn data_zeroed(&mut self, len: usize) -> DataRef {
        let r = DataRef(self.data_here());
        self.data.resize(self.data.len() + len, 0);
        r
    }

    /// Appends a table of code pointers (one 8-byte slot per label) and
    /// records a [`Reloc`] for each slot. This is how jump tables and
    /// vtables are built.
    pub fn data_ptr_table(&mut self, labels: &[Label]) -> DataRef {
        let r = DataRef(self.data_here());
        for l in labels {
            self.data_relocs.push((self.data.len(), *l));
            self.data.extend_from_slice(&0u64.to_le_bytes());
        }
        r
    }

    // ---- finish --------------------------------------------------------

    /// Resolves all fix-ups and produces the final [`Image`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was
    /// never bound, or [`AsmError::RelOutOfRange`] if a displacement
    /// cannot be encoded.
    pub fn finish(mut self) -> Result<Image, AsmError> {
        // Resolve fix-ups against final label addresses.
        for f in &self.fixups {
            let target = self.labels[f.label.0].ok_or(AsmError::UnboundLabel { label: f.label.0 })?;
            let inst = &mut self.insts[f.inst];
            let at = self.text_base.wrapping_add(self.offsets[f.inst] as Addr);
            match f.kind {
                FixupKind::Rel => {
                    let next = at.wrapping_add(inst.len() as Addr);
                    let rel = target as i64 - next as i64;
                    let rel32 =
                        i32::try_from(rel).map_err(|_| AsmError::RelOutOfRange { at, rel })?;
                    match inst {
                        Inst::Jmp { rel } | Inst::Jcc { rel, .. } | Inst::Call { rel } => {
                            *rel = rel32;
                        }
                        _ => unreachable!("rel fixup on non-branch"),
                    }
                }
                FixupKind::Abs => match inst {
                    Inst::MovRI { imm, .. } => *imm = target as i64,
                    _ => unreachable!("abs fixup on non-mov"),
                },
            }
        }

        // Encode the text section.
        let mut text = Vec::with_capacity(self.cursor);
        for inst in &self.insts {
            encode_into(inst, &mut text);
        }
        debug_assert_eq!(text.len(), self.cursor);

        // Patch data relocations and collect them.
        let mut relocs = Vec::with_capacity(self.data_relocs.len());
        for (off, l) in &self.data_relocs {
            let target = self.labels[l.0].ok_or(AsmError::UnboundLabel { label: l.0 })?;
            self.data[*off..*off + 8].copy_from_slice(&(target as u64).to_le_bytes());
            relocs.push(Reloc { at: self.data_base.wrapping_add(*off as Addr), target });
        }

        // Compute function symbol sizes from the next symbol (or text end).
        let mut symbols = self.symbols;
        symbols.sort_by_key(|s| s.addr);
        let text_end = self.text_base.wrapping_add(text.len() as Addr);
        for i in 0..symbols.len() {
            let end = symbols.get(i + 1).map(|s| s.addr).unwrap_or(text_end);
            symbols[i].size = end.wrapping_sub(symbols[i].addr);
        }

        let entry = match self.entry {
            Some(l) => self.labels[l.0].ok_or(AsmError::UnboundLabel { label: l.0 })?,
            None => self.text_base,
        };

        let mut sections = vec![Section { kind: SectionKind::Text, base: self.text_base, bytes: text }];
        if !self.data.is_empty() {
            sections.push(Section { kind: SectionKind::Data, base: self.data_base, bytes: self.data });
        }

        Ok(Image { sections, entry, stack_top: self.stack_top, symbols, relocs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode_at;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new(0x1000);
        let fwd = a.label();
        let back = a.here();
        a.jmp(fwd);
        a.nop();
        a.bind(fwd);
        a.jcc(Cond::Eq, back);
        a.halt();
        let img = a.finish().unwrap();

        let text = &img.text().bytes;
        let (jmp, next) = decode_at(text, 0).unwrap();
        // jmp skips the nop: target = 0x1000 + 5 + rel = 0x1006.
        assert_eq!(jmp.direct_target(0x1000), Some(0x1006));
        let (_nop, next) = decode_at(text, next).unwrap();
        let (jcc, _) = decode_at(text, next).unwrap();
        assert_eq!(jcc.direct_target(0x1006), Some(0x1000));
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new(0x1000);
        let l = a.label();
        a.jmp(l);
        assert!(matches!(a.finish(), Err(AsmError::UnboundLabel { .. })));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut a = Asm::new(0x1000);
        let l = a.here();
        a.bind(l);
    }

    #[test]
    fn named_labels_are_shared() {
        let mut a = Asm::new(0x1000);
        a.call_named("f"); // forward reference
        a.halt();
        a.func("f");
        a.ret();
        let img = a.finish().unwrap();
        let f = img.symbol("f").unwrap();
        assert_eq!(f.addr, 0x1000 + 5 + 1);
        assert_eq!(f.kind, SymbolKind::Func);
        assert_eq!(f.size, 1);
    }

    #[test]
    fn ptr_table_generates_relocs() {
        let mut a = Asm::new(0x1000);
        let f = a.label();
        let g = a.label();
        let table = a.data_ptr_table(&[f, g]);
        a.jmp_m(Reg::Rbx, 0);
        a.bind(f);
        a.nop();
        a.bind(g);
        a.halt();
        let img = a.finish().unwrap();
        assert_eq!(img.relocs.len(), 2);
        assert_eq!(img.relocs[0].at, table.0);
        assert_eq!(img.relocs[0].target, 0x1000 + 6);
        assert_eq!(img.relocs[1].target, 0x1000 + 7);
        // The table contents hold the same targets.
        let data = img.data().unwrap();
        let slot0 = u64::from_le_bytes(data.bytes[0..8].try_into().unwrap());
        assert_eq!(slot0, (0x1000 + 6) as u64);
    }

    #[test]
    fn align_pads_with_nops() {
        let mut a = Asm::new(0x1000);
        a.ret(); // 1 byte
        a.align_to(16);
        assert_eq!(a.addr_here() % 16, 0);
        a.halt();
        let img = a.finish().unwrap();
        assert_eq!(img.text().bytes.len(), 17);
    }

    #[test]
    fn entry_defaults_to_text_base_and_can_be_overridden() {
        let mut a = Asm::new(0x2000);
        a.nop();
        let main = a.func("main");
        a.halt();
        let mut b = Asm::new(0x2000);
        b.nop();
        b.halt();
        assert_eq!(b.finish().unwrap().entry, 0x2000);
        a.set_entry(main);
        assert_eq!(a.finish().unwrap().entry, 0x2001);
    }

    #[test]
    fn mov_label_holds_absolute_address() {
        let mut a = Asm::new(0x1000);
        let f = a.label();
        a.mov_label(Reg::Rax, f);
        a.halt();
        a.bind(f);
        a.ret();
        let img = a.finish().unwrap();
        let (mov, _) = decode_at(&img.text().bytes, 0).unwrap();
        assert_eq!(mov, Inst::MovRI { dst: Reg::Rax, imm: 0x100b });
    }
}
