//! Dense decoded-instruction index over a program's code ranges.
//!
//! The interpreter assumes W^X, so each program counter decodes to the
//! same instruction for the life of a [`crate::Machine`]. A `HashMap`
//! memo pays a hash per executed instruction; this index instead keeps
//! one `u32` slot per *byte* of every code range, pointing into a shared
//! instruction pool. A fetch is then: locate the range (programs have
//! one or two), index the slot, index the pool — no hashing anywhere on
//! the per-instruction path.
//!
//! The same byte-granular layout carries the ILR fall-through successor
//! map (the rewriter's "rewrite rules"), which the interpreter consults
//! on every instruction to compute the sequential successor.

use crate::image::{Image, SectionKind};
use crate::inst::Inst;
use crate::Addr;
use std::collections::HashMap;

/// Slot value for "not decoded yet".
const NO_SLOT: u32 = u32::MAX;
/// Fall-through value for "no explicit successor" (fall back to
/// `pc + len`). No instruction can start at the last byte of the address
/// space, so the value is unambiguous; entries that would collide go to
/// the spill map.
const NO_FALL: Addr = Addr::MAX;

#[derive(Clone, Debug)]
struct CodeRange {
    lo: Addr,
    hi: Addr,
    /// Byte offset → pool slot ([`NO_SLOT`] when not decoded).
    slots: Vec<u32>,
    /// Byte offset → fall-through successor ([`NO_FALL`] when absent).
    /// Empty until a fall-through map is installed.
    fall: Vec<Addr>,
}

impl CodeRange {
    fn new(lo: Addr, hi: Addr) -> CodeRange {
        let len = hi.wrapping_sub(lo) as usize;
        CodeRange { lo, hi, slots: vec![NO_SLOT; len], fall: Vec::new() }
    }

    #[inline]
    fn contains(&self, addr: Addr) -> bool {
        addr >= self.lo && addr < self.hi
    }
}

/// A lazily-filled dense index of decoded instructions (plus the ILR
/// fall-through successors) across a program's code ranges.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, DecodedImage, Reg};
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rax, 1);
/// a.halt();
/// let img = a.finish().unwrap();
/// let mut d = DecodedImage::new(&img);
/// assert!(d.contains(img.entry));
/// assert!(d.get(img.entry).is_none()); // not decoded yet
/// ```
#[derive(Clone, Debug, Default)]
pub struct DecodedImage {
    ranges: Vec<CodeRange>,
    pool: Vec<Inst>,
    /// Fall-through entries outside every range (or colliding with the
    /// sentinel); consulted only when range lookup fails.
    fall_spill: HashMap<Addr, Addr>,
    /// Whether any fall-through entry exists at all: lets the interpreter
    /// skip the lookup entirely in the (common) unmapped case.
    has_fall: bool,
}

impl DecodedImage {
    /// Builds an index covering `image`'s text sections.
    pub fn new(image: &Image) -> DecodedImage {
        let mut d = DecodedImage::default();
        for s in image.sections.iter().filter(|s| s.kind == SectionKind::Text) {
            d.add_range(s.base, s.end());
        }
        d
    }

    /// Adds the code range `[lo, hi)` to the index.
    pub fn add_range(&mut self, lo: Addr, hi: Addr) {
        self.ranges.push(CodeRange::new(lo, hi));
    }

    /// Whether `addr` falls inside any indexed code range.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        self.ranges.iter().any(|r| r.contains(addr))
    }

    #[inline]
    fn find(&self, addr: Addr) -> Option<&CodeRange> {
        self.ranges.iter().find(|r| r.contains(addr))
    }

    /// The memoised instruction at `pc`, when one has been recorded.
    #[inline]
    pub fn get(&self, pc: Addr) -> Option<Inst> {
        let r = self.find(pc)?;
        let slot = r.slots[pc.wrapping_sub(r.lo) as usize];
        if slot == NO_SLOT {
            None
        } else {
            Some(self.pool[slot as usize])
        }
    }

    /// Records the decoded instruction at `pc`. Addresses outside every
    /// range are not memoised (callers re-decode them; execution outside
    /// declared code ranges is a corner case for attack drivers only).
    pub fn insert(&mut self, pc: Addr, inst: Inst) {
        let slot = self.pool.len() as u32;
        let Some(r) = self.ranges.iter_mut().find(|r| r.contains(pc)) else {
            return;
        };
        let entry = &mut r.slots[pc.wrapping_sub(r.lo) as usize];
        if *entry == NO_SLOT {
            *entry = slot;
            self.pool.push(inst);
        }
    }

    /// Installs the ILR fall-through successor map.
    pub fn set_fallthrough(&mut self, map: &HashMap<Addr, Addr>) {
        for r in &mut self.ranges {
            r.fall.clear();
        }
        self.fall_spill.clear();
        self.has_fall = !map.is_empty();
        for (&pc, &succ) in map {
            match self.ranges.iter_mut().find(|r| r.contains(pc)) {
                Some(r) if succ != NO_FALL => {
                    if r.fall.is_empty() {
                        let len = r.hi.wrapping_sub(r.lo) as usize;
                        r.fall = vec![NO_FALL; len];
                    }
                    r.fall[pc.wrapping_sub(r.lo) as usize] = succ;
                }
                _ => {
                    self.fall_spill.insert(pc, succ);
                }
            }
        }
    }

    /// The fall-through successor recorded for `pc`, if any.
    #[inline]
    pub fn fall(&self, pc: Addr) -> Option<Addr> {
        if !self.has_fall {
            return None;
        }
        if let Some(r) = self.find(pc) {
            if !r.fall.is_empty() {
                let succ = r.fall[pc.wrapping_sub(r.lo) as usize];
                if succ != NO_FALL {
                    return Some(succ);
                }
            }
            // Ranges never hold sentinel-valued successors, but a spill
            // entry may shadow an in-range pc that set_fallthrough could
            // not place.
            if self.fall_spill.is_empty() {
                return None;
            }
        }
        self.fall_spill.get(&pc).copied()
    }

    /// Number of distinct instructions memoised so far.
    pub fn decoded_count(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Section;

    fn img(ranges: &[(Addr, usize)]) -> Image {
        Image {
            sections: ranges
                .iter()
                .map(|&(base, len)| Section {
                    kind: SectionKind::Text,
                    base,
                    bytes: vec![0; len],
                })
                .collect(),
            entry: ranges[0].0,
            stack_top: 0xf000,
            symbols: vec![],
            relocs: vec![],
        }
    }

    #[test]
    fn memoises_in_range_only() {
        let mut d = DecodedImage::new(&img(&[(0x1000, 16)]));
        assert!(d.get(0x1000).is_none());
        d.insert(0x1000, Inst::Nop);
        d.insert(0x9000, Inst::Halt); // outside: dropped
        assert_eq!(d.get(0x1000), Some(Inst::Nop));
        assert!(d.get(0x9000).is_none());
        assert_eq!(d.decoded_count(), 1);
    }

    #[test]
    fn first_insert_wins() {
        let mut d = DecodedImage::new(&img(&[(0x1000, 16)]));
        d.insert(0x1002, Inst::Nop);
        d.insert(0x1002, Inst::Halt);
        assert_eq!(d.get(0x1002), Some(Inst::Nop));
        assert_eq!(d.decoded_count(), 1);
    }

    #[test]
    fn multiple_ranges_and_added_ranges() {
        let mut d = DecodedImage::new(&img(&[(0x1000, 16), (0x4000, 16)]));
        d.add_range(0x8000, 0x8010);
        assert!(d.contains(0x4008) && d.contains(0x8008));
        assert!(!d.contains(0x1010));
        d.insert(0x800f, Inst::Halt);
        assert_eq!(d.get(0x800f), Some(Inst::Halt));
    }

    #[test]
    fn fallthrough_dense_and_spill() {
        let mut d = DecodedImage::new(&img(&[(0x1000, 16)]));
        assert_eq!(d.fall(0x1000), None);
        let mut m = HashMap::new();
        m.insert(0x1004u32, 0x100au32); // in range
        m.insert(0x7000u32, 0x7004u32); // outside: spills
        d.set_fallthrough(&m);
        assert_eq!(d.fall(0x1004), Some(0x100a));
        assert_eq!(d.fall(0x7000), Some(0x7004));
        assert_eq!(d.fall(0x1005), None);
        // Reinstalling replaces the previous map.
        d.set_fallthrough(&HashMap::new());
        assert_eq!(d.fall(0x1004), None);
    }

    #[test]
    fn sentinel_valued_successor_spills() {
        let mut d = DecodedImage::new(&img(&[(0x1000, 16)]));
        let mut m = HashMap::new();
        m.insert(0x1002u32, NO_FALL);
        d.set_fallthrough(&m);
        assert_eq!(d.fall(0x1002), Some(NO_FALL));
    }
}
