//! Pins wire-format backward compatibility: job specs written by
//! pre-`ModeSpec` clients — the `baseline`/`naive`/`vcfr` mode
//! vocabulary with a separate `drc` field — still admit, without any
//! alias-normalization branches left in the protocol module.

use vcfr_service::JobSpec;

fn parse(spec_json: &str) -> Result<JobSpec, Box<dyn std::error::Error>> {
    let j = vcfr_obs::parse_json(spec_json)?;
    Ok(JobSpec::from_json(&j)?)
}

#[test]
fn old_baseline_specs_still_admit() {
    let spec = parse(r#"{"workload": "bzip2", "mode": "baseline", "drc": 128}"#).unwrap();
    assert_eq!(spec.matrix_mode(), "base");
    assert_eq!(spec.manifest_file_name(), "bzip2__base.json");
}

#[test]
fn old_bare_vcfr_specs_take_the_drc_field() {
    let spec = parse(r#"{"workload": "gcc", "mode": "vcfr", "drc": 64}"#).unwrap();
    assert_eq!(spec.matrix_mode(), "vcfr64");
    let spec = parse(r#"{"workload": "gcc", "mode": "vcfr"}"#).unwrap();
    assert_eq!(spec.matrix_mode(), "vcfr128", "absent drc keeps the paper default");
}

#[test]
fn old_modeless_specs_default_to_vcfr() {
    let spec = parse(r#"{"workload": "mcf", "drc": 512}"#).unwrap();
    assert_eq!(spec.matrix_mode(), "vcfr512");
    let spec = parse(r#"{"workload": "mcf"}"#).unwrap();
    assert_eq!(spec.matrix_mode(), "vcfr128");
}

#[test]
fn canonical_modes_admit_too() {
    for (mode, expect) in [("base", "base"), ("naive", "naive"), ("vcfr64", "vcfr64")] {
        let spec = parse(&format!(r#"{{"workload": "bzip2", "mode": "{mode}"}}"#)).unwrap();
        assert_eq!(spec.matrix_mode(), expect);
    }
}

#[test]
fn unknown_modes_are_still_rejected() {
    for bad in ["turbo", "vcfr0", "vcfr96"] {
        assert!(
            parse(&format!(r#"{{"workload": "bzip2", "mode": "{bad}"}}"#)).is_err(),
            "{bad} should be rejected"
        );
    }
}
