//! `vcfr-service` — the checkpointable batch-simulation service.
//!
//! `vcfr serve` runs a long-lived daemon that listens on a localhost
//! TCP socket, accepts JSON-lines job requests, schedules them on a
//! bounded [`vcfr_bench::WorkerPool`], and streams status events back.
//! Every job is a [`vcfr_sim::Session`] driven in bounded chunks; after
//! each chunk the daemon snapshots the live engine state to disk with
//! the versioned checkpoint format, so a killed daemon resumes every
//! in-flight job bit-identically on the next start.
//!
//! The wire protocol, the on-disk job layout, and the checkpoint
//! versioning policy are documented in `docs/service.md`.

#![warn(missing_docs)]

mod client;
mod daemon;
mod metrics;
mod protocol;

pub use client::Client;
pub use daemon::{serve, ServeOptions};
pub use metrics::MetricsHub;
pub use protocol::{JobPhase, JobSpec, ServiceError, ENDPOINT_FILE};
