//! `vcfr-service` — the checkpointable batch-simulation service.
//!
//! `vcfr serve` runs a long-lived daemon that listens on a localhost
//! TCP socket, accepts JSON-lines job requests, schedules them on a
//! bounded [`vcfr_bench::WorkerPool`], and streams status events back.
//! Every job is a [`vcfr_sim::Session`] driven in bounded chunks; after
//! each chunk the daemon snapshots the live engine state to disk with
//! the versioned checkpoint format, so a killed daemon resumes every
//! in-flight job bit-identically on the next start.
//!
//! `vcfr fleet serve` runs the same protocol one level up: a
//! coordinator that shards experiment matrices and fault campaigns
//! into job chunks across registered worker daemons, heartbeats them,
//! re-dispatches lost work from checkpoints, and merges every worker's
//! manifests into one canonical tree that is byte-identical to a
//! single-daemon run.
//!
//! The wire protocol, the on-disk job layout, and the checkpoint
//! versioning policy are documented in `docs/service.md`; the fleet
//! layer (topology, heartbeat/re-dispatch semantics, failure matrix)
//! in `docs/fleet.md`.

#![warn(missing_docs)]

mod client;
mod daemon;
mod fleet;
mod metrics;
mod protocol;

pub use client::Client;
pub use daemon::{serve, ServeOptions};
pub use fleet::{serve_fleet, FleetOptions};
pub use metrics::{aggregate_node_metrics, MetricsHub};
pub use protocol::{JobPhase, JobSpec, ServiceError, ENDPOINT_FILE};
