//! The JSON-lines wire protocol and the job vocabulary shared by the
//! daemon and the client.
//!
//! Every request and every response is one JSON object per line (the
//! deterministic `vcfr-obs` emitter is the codec — no new serialization
//! machinery). Requests carry an `"op"` discriminant; responses carry
//! `"ok"` (or, on the `watch` stream, an `"event"` discriminant).

use vcfr_bench::ModeSpec;
use vcfr_obs::{Json, JsonError};
use vcfr_sim::{EngineKind, VcfrError};

/// File (inside the service state directory) holding the daemon's bound
/// `host:port`, written on startup and removed on graceful shutdown.
pub const ENDPOINT_FILE: &str = "endpoint";

/// What a submitted job should simulate. The spec is the *complete*
/// identity of a run: the daemon rebuilds the workload image and the
/// randomized layout from `(workload, seed)` deterministically, so a
/// checkpoint plus its spec is enough to resume in a fresh process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Workload name (`vcfr_workloads::by_name`).
    pub workload: String,
    /// Machine configuration. The typed [`ModeSpec`] carries the DRC
    /// size inside its `Vcfr` variant; on the wire it is still the
    /// historical `mode` word plus a `drc` field for compatibility.
    pub mode: ModeSpec,
    /// Instruction budget.
    pub max_insts: u64,
    /// Randomization seed.
    pub seed: u64,
    /// Live re-randomization epoch (VCFR only), in instructions.
    pub rerand_epoch: Option<u64>,
    /// Instructions between engine snapshots.
    pub checkpoint_every: u64,
    /// Workload scale factor (`vcfr_workloads::by_name_scaled`): multiplies
    /// the outer repeat count and the instruction budget. 1 is the
    /// historical unscaled program.
    pub scale: u64,
    /// Run the deterministic fault-injection campaign schedule for this
    /// workload (`vcfr_bench::fault_plan_for`) and emit a fault manifest
    /// (`faults-<mode>`) instead of a matrix manifest.
    pub faults: bool,
    /// Which timing engine executes the run. On the wire this is the
    /// selector vocabulary (`inorder`/`ooo`/`mcN`); absent means
    /// in-order, so pre-engine clients keep working unchanged.
    pub engine: EngineKind,
}

impl JobSpec {
    /// A VCFR run of `workload` with the standard experiment defaults.
    pub fn new(workload: &str) -> JobSpec {
        JobSpec {
            workload: workload.to_string(),
            mode: ModeSpec::vcfr_default(),
            max_insts: 1_000_000,
            seed: vcfr_bench::experiments::SEED,
            rerand_epoch: None,
            checkpoint_every: 100_000,
            scale: 1,
            faults: false,
            engine: EngineKind::InOrder,
        }
    }

    /// A spec for one shard cell ([`vcfr_bench::shard::ShardCell`]);
    /// the cell's mode word is the same [`ModeSpec`] vocabulary, so no
    /// translation happens here anymore.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] on an unknown mode or an otherwise
    /// invalid cell.
    pub fn from_cell(cell: &vcfr_bench::shard::ShardCell) -> Result<JobSpec, ServiceError> {
        let mut spec = JobSpec::new(&cell.app);
        spec.mode =
            cell.mode.parse().map_err(|e| ServiceError::Protocol(format!("{e}")))?;
        spec.max_insts = cell.max_insts;
        spec.scale = cell.scale;
        spec.checkpoint_every = cell.checkpoint_every;
        spec.faults = cell.faults;
        spec.validate()?;
        Ok(spec)
    }

    /// The experiment-matrix mode column this spec simulates:
    /// `base`, `naive`, or `vcfr<entries>` — [`ModeSpec`]'s canonical
    /// `Display` form.
    pub fn matrix_mode(&self) -> String {
        self.mode.to_string()
    }

    /// The manifest `mode` column this spec produces —
    /// [`JobSpec::matrix_mode`], prefixed `faults-` for campaign runs
    /// and `<engine>-` for non-in-order engines (so an `ooo` or `mc2`
    /// run never collides with the in-order cell of the same matrix).
    pub fn manifest_mode(&self) -> String {
        if self.faults {
            format!("faults-{}", self.matrix_mode())
        } else if self.engine != EngineKind::InOrder {
            format!("{}-{}", self.engine, self.matrix_mode())
        } else {
            self.matrix_mode()
        }
    }

    /// The conventional `results/manifests/` file name of this spec's
    /// manifest (`<app>__<mode>.json`). Two specs with the same name
    /// must produce byte-identical canonical manifests; the fleet merge
    /// treats anything else as a conflict.
    pub fn manifest_file_name(&self) -> String {
        format!("{}__{}.json", self.workload, self.manifest_mode())
    }

    /// Checks the combinations the service refuses at admission (the
    /// `Session` constructor re-checks the simulator-level ones).
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] naming the inconsistent field.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.checkpoint_every == 0 {
            return Err(ServiceError::Protocol(
                "checkpoint_every must be at least 1 instruction".to_string(),
            ));
        }
        if self.max_insts == 0 {
            return Err(ServiceError::Protocol(
                "max_insts must be at least 1 instruction".to_string(),
            ));
        }
        if self.scale == 0 || self.scale > 1024 {
            return Err(ServiceError::Protocol(format!(
                "scale must be between 1 and 1024 (got {})",
                self.scale
            )));
        }
        if let EngineKind::Multicore { cores } = self.engine {
            if !(1..=64).contains(&cores) {
                return Err(ServiceError::Protocol(format!(
                    "engine cores must be in 1..=64 (got {cores})"
                )));
            }
        }
        if self.faults && self.engine != EngineKind::InOrder {
            return Err(ServiceError::Protocol(
                "fault campaigns are only modeled on the in-order engine".to_string(),
            ));
        }
        Ok(())
    }

    /// The spec as a JSON object (field order fixed, so re-emitting is
    /// byte-stable).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("workload", Json::Str(self.workload.clone()));
        j.set("mode", Json::Str(self.mode.to_string()));
        match self.mode.drc_entries() {
            Some(entries) => j.set("drc", Json::U64(entries as u64)),
            None => j.set("drc", Json::Null),
        };
        j.set("max_insts", Json::U64(self.max_insts));
        j.set("seed", Json::U64(self.seed));
        match self.rerand_epoch {
            Some(n) => j.set("rerand_epoch", Json::U64(n)),
            None => j.set("rerand_epoch", Json::Null),
        };
        j.set("checkpoint_every", Json::U64(self.checkpoint_every));
        j.set("scale", Json::U64(self.scale));
        j.set("faults", Json::Bool(self.faults));
        j.set("engine", Json::Str(self.engine.to_string()));
        j
    }

    /// Parses a spec object, applying the [`JobSpec::new`] defaults for
    /// absent optional fields.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] on missing/ill-typed fields.
    pub fn from_json(j: &Json) -> Result<JobSpec, ServiceError> {
        let workload = j
            .get("workload")
            .and_then(Json::as_str)
            .ok_or_else(|| ServiceError::Protocol("job needs a workload name".to_string()))?;
        let mut spec = JobSpec::new(workload);
        let u64_field = |key: &str, default: u64| -> Result<u64, ServiceError> {
            match j.get(key) {
                None | Some(Json::Null) => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| {
                    ServiceError::Protocol(format!("{key} must be an unsigned integer"))
                }),
            }
        };
        // The wire carries the mode word and the DRC size separately
        // (the historical format); `ModeSpec::from_wire` folds both
        // dialects into the typed spec, so old-format specs still admit.
        let mode_word = match j.get("mode") {
            None | Some(Json::Null) => None,
            Some(m) => Some(
                m.as_str()
                    .ok_or_else(|| ServiceError::Protocol("mode must be a string".to_string()))?,
            ),
        };
        let drc = u64_field("drc", vcfr_bench::DEFAULT_DRC_ENTRIES as u64)? as usize;
        if let Some(word) = mode_word {
            spec.mode = ModeSpec::from_wire(word, drc)
                .map_err(|e| ServiceError::Protocol(format!("{e}")))?;
        } else if drc != vcfr_bench::DEFAULT_DRC_ENTRIES {
            // A bare DRC size with no mode word is a legacy VCFR spec.
            spec.mode = ModeSpec::from_wire("vcfr", drc)
                .map_err(|e| ServiceError::Protocol(format!("{e}")))?;
        }
        spec.max_insts = u64_field("max_insts", spec.max_insts)?;
        spec.seed = u64_field("seed", spec.seed)?;
        spec.checkpoint_every = u64_field("checkpoint_every", spec.checkpoint_every)?;
        spec.scale = u64_field("scale", spec.scale)?;
        spec.rerand_epoch = match j.get("rerand_epoch") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                ServiceError::Protocol("rerand_epoch must be an unsigned integer".to_string())
            })?),
        };
        spec.faults = match j.get("faults") {
            None | Some(Json::Null) => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => {
                return Err(ServiceError::Protocol("faults must be a boolean".to_string()))
            }
        };
        // Absent means in-order: pre-engine specs on disk and on the
        // wire parse unchanged (the same pattern `faults` uses).
        spec.engine = match j.get("engine") {
            None | Some(Json::Null) => EngineKind::InOrder,
            Some(v) => v
                .as_str()
                .ok_or_else(|| ServiceError::Protocol("engine must be a string".to_string()))?
                .parse()
                .map_err(|e: VcfrError| ServiceError::Protocol(e.to_string()))?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

/// Where a job is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Admitted (or re-admitted after a restart), waiting for a worker.
    Queued,
    /// A worker is simulating it right now.
    Running,
    /// Finished; its manifest is on disk.
    Done,
    /// Aborted with an error (recorded in the status).
    Failed,
}

impl JobPhase {
    /// The wire/on-disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }

    /// Parses a wire/on-disk name. `running` maps to [`JobPhase::Queued`]
    /// deliberately: on disk it can only mean the daemon died mid-run,
    /// and the job must be re-admitted.
    pub fn from_disk(s: &str) -> Option<JobPhase> {
        Some(match s {
            "queued" | "running" => JobPhase::Queued,
            "done" => JobPhase::Done,
            "failed" => JobPhase::Failed,
            _ => return None,
        })
    }

    /// Whether the job will never run again.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobPhase::Done | JobPhase::Failed)
    }
}

/// Everything that can go wrong between a client and the daemon.
#[derive(Debug)]
pub enum ServiceError {
    /// Socket or state-directory I/O failed.
    Io(std::io::Error),
    /// A malformed request/response, or an error the peer reported.
    Protocol(String),
    /// The simulator rejected or aborted a run.
    Sim(VcfrError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Protocol(msg) => write!(f, "service protocol error: {msg}"),
            ServiceError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Protocol(_) => None,
            ServiceError::Sim(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> ServiceError {
        ServiceError::Io(e)
    }
}

impl From<VcfrError> for ServiceError {
    fn from(e: VcfrError) -> ServiceError {
        ServiceError::Sim(e)
    }
}

impl From<JsonError> for ServiceError {
    fn from(e: JsonError) -> ServiceError {
        ServiceError::Protocol(format!("malformed JSON line: {e}"))
    }
}

/// A `{"ok": false, "error": …}` response line.
pub(crate) fn err_response(msg: &str) -> Json {
    let mut j = Json::obj();
    j.set("ok", Json::Bool(false));
    j.set("error", Json::Str(msg.to_string()));
    j
}

/// A `{"ok": true}` response line ready for extra fields.
pub(crate) fn ok_response() -> Json {
    let mut j = Json::obj();
    j.set("ok", Json::Bool(true));
    j
}

/// Lowercase-hex encoding for binary blobs (checkpoints) carried inside
/// JSON strings on the wire.
pub(crate) fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = std::fmt::Write::write_fmt(&mut s, format_args!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
pub(crate) fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let mut spec = JobSpec::new("bzip2");
        spec.rerand_epoch = Some(40_000);
        spec.max_insts = 123_456;
        spec.scale = 8;
        let back = JobSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
    }

    #[test]
    fn absent_scale_defaults_to_one() {
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("scale", Json::Null);
        assert_eq!(JobSpec::from_json(&j).expect("parses").scale, 1);
    }

    #[test]
    fn bad_specs_are_rejected_at_admission() {
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("mode", Json::Str("turbo".into()));
        assert!(JobSpec::from_json(&j).is_err());
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("checkpoint_every", Json::U64(0));
        assert!(JobSpec::from_json(&j).is_err());
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("scale", Json::U64(0));
        assert!(JobSpec::from_json(&j).is_err());
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("scale", Json::U64(2048));
        assert!(JobSpec::from_json(&j).is_err());
        assert!(JobSpec::from_json(&Json::obj()).is_err());
    }

    #[test]
    fn faulted_spec_round_trips_and_names_its_manifest() {
        let mut spec = JobSpec::new("bzip2");
        spec.mode = ModeSpec::Base;
        spec.faults = true;
        let back = JobSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
        assert_eq!(spec.matrix_mode(), "base");
        assert_eq!(spec.manifest_mode(), "faults-base");
        assert_eq!(spec.manifest_file_name(), "bzip2__faults-base.json");
        // Absent field defaults off (wire compatibility with PR 4 clients).
        let legacy = JobSpec::from_json(&JobSpec::new("bzip2").to_json()).expect("parses");
        assert!(!legacy.faults);
        assert_eq!(legacy.manifest_file_name(), "bzip2__vcfr128.json");
    }

    #[test]
    fn cells_translate_to_specs() {
        let cell = vcfr_bench::shard::ShardCell {
            app: "gcc".to_string(),
            mode: "vcfr64".to_string(),
            faults: false,
            max_insts: 500_000,
            scale: 2,
            checkpoint_every: 50_000,
        };
        let spec = JobSpec::from_cell(&cell).expect("valid cell");
        assert_eq!(spec.mode, ModeSpec::Vcfr { drc_entries: 64 });
        assert_eq!(spec.manifest_file_name(), "gcc__vcfr64.json");
        let mut bad = cell;
        bad.mode = "turbo".to_string();
        assert!(JobSpec::from_cell(&bad).is_err());
    }

    #[test]
    fn engine_field_selects_a_kind_and_stays_wire_compatible() {
        // Absent field defaults to the in-order engine (pre-engine specs
        // on disk parse unchanged).
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("engine", Json::Null);
        let legacy = JobSpec::from_json(&j).expect("parses");
        assert_eq!(legacy.engine, EngineKind::InOrder);
        assert_eq!(legacy.manifest_file_name(), "bzip2__vcfr128.json");

        // Explicit selectors round-trip and prefix the manifest name so
        // engine variants never collide with the in-order matrix cell.
        let mut spec = JobSpec::new("bzip2");
        spec.engine = EngineKind::Ooo;
        let back = JobSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(spec, back);
        assert_eq!(back.manifest_file_name(), "bzip2__ooo-vcfr128.json");
        spec.engine = EngineKind::Multicore { cores: 2 };
        assert_eq!(spec.manifest_file_name(), "bzip2__mc2-vcfr128.json");

        // Unknown selectors and impossible core counts are admission errors.
        for bad in ["turbo", "mc0", "mc65", "mc"] {
            let mut j = JobSpec::new("bzip2").to_json();
            j.set("engine", Json::Str(bad.into()));
            assert!(JobSpec::from_json(&j).is_err(), "{bad} should be rejected");
        }

        // Fault campaigns stay pinned to the in-order engine.
        let mut j = JobSpec::new("bzip2").to_json();
        j.set("faults", Json::Bool(true));
        j.set("engine", Json::Str("ooo".into()));
        let e = JobSpec::from_json(&j).unwrap_err();
        assert!(e.to_string().contains("in-order"), "{e}");
    }

    #[test]
    fn hex_round_trips() {
        let bytes = [0u8, 1, 0x7f, 0xff, 0xa5];
        assert_eq!(hex_decode(&hex_encode(&bytes)), Some(bytes.to_vec()));
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode(""), Some(Vec::new()));
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
    }

    #[test]
    fn on_disk_running_jobs_requeue() {
        assert_eq!(JobPhase::from_disk("running"), Some(JobPhase::Queued));
        assert_eq!(JobPhase::from_disk("done"), Some(JobPhase::Done));
        assert!(JobPhase::from_disk("done").expect("parses").is_terminal());
        assert_eq!(JobPhase::from_disk("nonsense"), None);
    }
}
