//! A blocking JSON-lines client for the daemon, used by the `vcfr
//! submit` / `vcfr jobs` subcommands and the smoke tests.

use crate::protocol::{hex_encode, JobSpec, ServiceError, ENDPOINT_FILE};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::path::Path;
use vcfr_obs::{parse_json, Json};

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects via the endpoint file in the service state directory.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] when no daemon has published an
    /// endpoint there; [`ServiceError::Io`] when the connect fails
    /// (e.g. a stale endpoint file after a hard kill).
    pub fn connect(dir: &Path) -> Result<Client, ServiceError> {
        let path = dir.join(ENDPOINT_FILE);
        let addr = std::fs::read_to_string(&path).map_err(|_| {
            ServiceError::Protocol(format!(
                "no service endpoint at {} (is `vcfr serve` running?)",
                path.display()
            ))
        })?;
        let stream = TcpStream::connect(addr.trim())?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    /// Sends one request line and reads one response line.
    fn roundtrip(&mut self, req: &Json) -> Result<Json, ServiceError> {
        writeln!(self.writer, "{}", req.compact())?;
        self.read_line()
    }

    fn read_line(&mut self) -> Result<Json, ServiceError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Protocol("daemon closed the connection".to_string()));
        }
        Ok(parse_json(&line)?)
    }

    /// Checks a `{"ok": …}` response, surfacing the daemon's error.
    fn expect_ok(resp: Json) -> Result<Json, ServiceError> {
        match resp.get("ok") {
            Some(Json::Bool(true)) => Ok(resp),
            _ => Err(ServiceError::Protocol(
                resp.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("daemon refused the request")
                    .to_string(),
            )),
        }
    }

    fn op(name: &str) -> Json {
        let mut j = Json::obj();
        j.set("op", Json::Str(name.to_string()));
        j
    }

    /// Liveness probe; returns the daemon's job count.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn ping(&mut self) -> Result<u64, ServiceError> {
        let resp = Self::expect_ok(self.roundtrip(&Self::op("ping"))?)?;
        Ok(resp.get("jobs").and_then(Json::as_u64).unwrap_or(0))
    }

    /// Submits a job; returns its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] when the daemon refuses it (invalid
    /// spec, or the bounded queue is full).
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ServiceError> {
        self.submit_with(spec, None)
    }

    /// Submits a job, optionally seeding it with a checkpoint to resume
    /// from (how the fleet coordinator re-dispatches a lost job onto
    /// another worker); returns its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] when the daemon refuses it (invalid
    /// spec, a rejected checkpoint, or the bounded queue is full).
    pub fn submit_with(
        &mut self,
        spec: &JobSpec,
        ckpt: Option<&[u8]>,
    ) -> Result<u64, ServiceError> {
        let mut req = Self::op("submit");
        req.set("job", spec.to_json());
        if let Some(bytes) = ckpt {
            req.set("ckpt", Json::Str(hex_encode(bytes)));
        }
        let resp = Self::expect_ok(self.roundtrip(&req)?)?;
        resp.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("submit response lacks an id".to_string()))
    }

    /// One job's status plus — once it is done — its canonical manifest
    /// as `(file_name, text)`.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] for unknown ids or an unreadable
    /// manifest.
    pub fn fetch(&mut self, id: u64) -> Result<(Json, Option<(String, String)>), ServiceError> {
        let mut req = Self::op("fetch");
        req.set("id", Json::U64(id));
        let resp = Self::expect_ok(self.roundtrip(&req)?)?;
        let job = resp
            .get("job")
            .cloned()
            .ok_or_else(|| ServiceError::Protocol("fetch response lacks a job".to_string()))?;
        let manifest = match (
            resp.get("file").and_then(Json::as_str),
            resp.get("manifest").and_then(Json::as_str),
        ) {
            (Some(f), Some(m)) => Some((f.to_string(), m.to_string())),
            _ => None,
        };
        Ok((job, manifest))
    }

    /// Registers a worker daemon (identified by its state directory)
    /// with a fleet coordinator; returns the worker id. Idempotent: the
    /// same directory keeps its id, and re-registering revives a worker
    /// the coordinator had declared lost.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn register(&mut self, worker_dir: &Path, slots: u64) -> Result<u64, ServiceError> {
        let mut req = Self::op("register");
        req.set("dir", Json::Str(worker_dir.display().to_string()));
        req.set("slots", Json::U64(slots));
        let resp = Self::expect_ok(self.roundtrip(&req)?)?;
        resp.get("worker")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServiceError::Protocol("register response lacks a worker id".to_string()))
    }

    /// A fleet coordinator's `status` body: worker liveness and the
    /// chunk table (see `docs/fleet.md` for the schema).
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn fleet_status(&mut self) -> Result<Json, ServiceError> {
        let resp = Self::expect_ok(self.roundtrip(&Self::op("status"))?)?;
        resp.get("fleet")
            .cloned()
            .ok_or_else(|| ServiceError::Protocol("status response lacks a fleet body".to_string()))
    }

    /// Lists every job the daemon knows about, as status objects.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn jobs(&mut self) -> Result<Vec<Json>, ServiceError> {
        let resp = Self::expect_ok(self.roundtrip(&Self::op("jobs"))?)?;
        Ok(resp.get("jobs").and_then(Json::as_arr).unwrap_or(&[]).to_vec())
    }

    /// One job's status object.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Protocol`] for unknown ids.
    pub fn status(&mut self, id: u64) -> Result<Json, ServiceError> {
        let mut req = Self::op("status");
        req.set("id", Json::U64(id));
        let resp = Self::expect_ok(self.roundtrip(&req)?)?;
        resp.get("job")
            .cloned()
            .ok_or_else(|| ServiceError::Protocol("status response lacks a job".to_string()))
    }

    /// Streams status events for `id`, invoking `on_event` per line,
    /// until the daemon sends the `end` event.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn watch(
        &mut self,
        id: u64,
        mut on_event: impl FnMut(&Json),
    ) -> Result<(), ServiceError> {
        let mut req = Self::op("watch");
        req.set("id", Json::U64(id));
        writeln!(self.writer, "{}", req.compact())?;
        loop {
            let line = self.read_line()?;
            if let Some(err) = line.get("error").and_then(Json::as_str) {
                return Err(ServiceError::Protocol(err.to_string()));
            }
            if line.get("event").and_then(Json::as_str) == Some("end") {
                return Ok(());
            }
            on_event(&line);
        }
    }

    /// The daemon-wide metrics object: queue occupancy, per-worker
    /// utilization, job counts by phase, throughput totals, and the
    /// job-latency histogram (see `docs/service.md` for the schema).
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn metrics(&mut self) -> Result<Json, ServiceError> {
        let resp = Self::expect_ok(self.roundtrip(&Self::op("metrics"))?)?;
        resp.get("metrics")
            .cloned()
            .ok_or_else(|| ServiceError::Protocol("metrics response lacks a body".to_string()))
    }

    /// Asks the daemon to checkpoint everything and exit.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn shutdown(&mut self) -> Result<(), ServiceError> {
        Self::expect_ok(self.roundtrip(&Self::op("shutdown"))?)?;
        Ok(())
    }

    /// Asks a fleet coordinator to exit; `stop_workers` also shuts down
    /// every registered worker daemon.
    ///
    /// # Errors
    ///
    /// Propagates transport and protocol failures.
    pub fn shutdown_fleet(&mut self, stop_workers: bool) -> Result<(), ServiceError> {
        let mut req = Self::op("shutdown");
        req.set("workers", Json::Bool(stop_workers));
        Self::expect_ok(self.roundtrip(&req)?)?;
        Ok(())
    }
}
