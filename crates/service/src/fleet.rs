//! The fleet coordinator: shards campaigns across registered `vcfr
//! serve` worker daemons and merges their manifests into one canonical
//! `results/` tree.
//!
//! The coordinator is a JSON-lines service of the same dialect as the
//! daemon (`docs/fleet.md` documents the protocol): workers *register*
//! with it, clients *submit* `JobSpec` chunks to it, and a scheduler
//! thread dispatches pending chunks to the least-loaded live worker,
//! polls dispatched ones, and heartbeats every worker with capped
//! exponential backoff. A worker that misses `lost_after` consecutive
//! heartbeats is declared lost and its chunks are recovered: a finished
//! manifest found in the dead worker's state directory is merged as
//! done; otherwise the worker's last on-disk checkpoint (the VCFRCKP1
//! envelope) is stashed and the chunk re-queued, resuming bit-
//! identically on whichever worker picks it up next. Since the daemon
//! only ever binds `127.0.0.1`, a fleet is a single-host construction
//! by design, and reading a dead worker's state directory is as sound
//! as the daemon reading its own after a restart.
//!
//! Determinism contract: a chunk's manifest is the canonical
//! (host-stripped) byte form, a pure function of its spec, so the
//! merged `results/manifests/` tree is byte-identical to a
//! single-daemon run of the same chunk list — kills, re-dispatches, and
//! duplicate dispatches included. The merge never overwrites: byte-
//! equal duplicates collapse, disagreements fail the chunk.

use crate::client::Client;
use crate::metrics::aggregate_node_metrics;
use crate::protocol::{err_response, ok_response, JobSpec, ServiceError, ENDPOINT_FILE};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vcfr_bench::{merge_manifest_bytes, MergeOutcome};
use vcfr_obs::{parse_json, Backoff, Json};
use vcfr_workloads::by_name;

/// How the coordinator is configured.
#[derive(Clone, Debug)]
pub struct FleetOptions {
    /// Coordinator state directory (endpoint file, worker registry,
    /// chunk table, merged `results/manifests/` tree).
    pub dir: PathBuf,
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Open (pending + dispatched) chunks admitted before `submit` is
    /// refused — the fleet-level backpressure bound.
    pub chunk_capacity: usize,
    /// Scheduler heartbeat floor in milliseconds (the backoff doubles
    /// from here while the fleet is idle).
    pub heartbeat_ms: u64,
    /// Scheduler heartbeat ceiling in milliseconds.
    pub heartbeat_cap_ms: u64,
    /// Consecutive missed heartbeats before a worker is declared lost
    /// and its chunks are recovered.
    pub lost_after: u32,
}

impl Default for FleetOptions {
    fn default() -> FleetOptions {
        FleetOptions {
            dir: PathBuf::from("results/fleet"),
            port: 0,
            chunk_capacity: 256,
            heartbeat_ms: 200,
            heartbeat_cap_ms: 2_000,
            lost_after: 3,
        }
    }
}

/// Where a chunk is in the fleet lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChunkPhase {
    /// Waiting for a worker slot.
    Pending,
    /// Running as job `remote_id` on `worker`.
    Dispatched {
        /// The worker it was handed to.
        worker: u64,
        /// The job id the worker assigned.
        remote_id: u64,
    },
    /// Its manifest is merged into the canonical tree.
    Done,
    /// Terminal failure (worker error or manifest conflict).
    Failed,
}

impl ChunkPhase {
    fn as_str(self) -> &'static str {
        match self {
            ChunkPhase::Pending => "pending",
            ChunkPhase::Dispatched { .. } => "dispatched",
            ChunkPhase::Done => "done",
            ChunkPhase::Failed => "failed",
        }
    }
}

/// One chunk of a sharded campaign.
struct ChunkState {
    spec: JobSpec,
    phase: ChunkPhase,
    /// Times this chunk was (re-)handed to a worker beyond the first.
    redispatches: u64,
    /// Whether any dispatch resumed from a recovered checkpoint.
    resumed: bool,
    error: Option<String>,
}

/// One registered worker daemon.
struct WorkerState {
    /// Its state directory — the registration identity, and where the
    /// coordinator finds its endpoint file (and, post-mortem, its
    /// checkpoints).
    dir: PathBuf,
    /// Chunks it may hold in flight at once (admission control).
    slots: u64,
    alive: bool,
    misses: u32,
    /// Chunks it completed.
    done: u64,
}

#[derive(Default)]
struct FleetState {
    workers: BTreeMap<u64, WorkerState>,
    chunks: BTreeMap<u64, ChunkState>,
    next_worker: u64,
    next_chunk: u64,
    /// Lost-worker recoveries: chunks whose finished manifest was
    /// salvaged from a dead worker's state directory.
    recovered_manifests: u64,
    /// Lost-worker recoveries: chunks re-queued with a checkpoint.
    resumed_chunks: u64,
    /// Lost-worker recoveries: chunks re-queued from scratch.
    restarted_chunks: u64,
}

struct FleetInner {
    workers_dir: PathBuf,
    chunks_dir: PathBuf,
    manifests_dir: PathBuf,
    lost_after: u32,
    stopping: AtomicBool,
    state: Mutex<FleetState>,
    /// Wakes the scheduler on registration/submission/shutdown.
    changed: Condvar,
    started: Instant,
}

impl FleetInner {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    fn stash_file(&self, chunk: u64) -> PathBuf {
        self.chunks_dir.join(format!("chunk-{chunk}.ckpt"))
    }
}

fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("fleet-write")
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

fn persist_worker(dir: &Path, id: u64, w: &WorkerState) {
    let mut j = Json::obj();
    j.set("id", Json::U64(id));
    j.set("dir", Json::Str(w.dir.display().to_string()));
    j.set("slots", Json::U64(w.slots));
    let _ = write_atomic(&dir.join(format!("worker-{id}.json")), j.pretty().as_bytes());
}

fn persist_chunk(dir: &Path, id: u64, c: &ChunkState) {
    let mut j = Json::obj();
    j.set("id", Json::U64(id));
    j.set("spec", c.spec.to_json());
    j.set("phase", Json::Str(c.phase.as_str().to_string()));
    match c.phase {
        ChunkPhase::Dispatched { worker, remote_id } => {
            j.set("worker", Json::U64(worker));
            j.set("remote_id", Json::U64(remote_id));
        }
        _ => {
            j.set("worker", Json::Null);
            j.set("remote_id", Json::Null);
        }
    }
    j.set("redispatches", Json::U64(c.redispatches));
    j.set("resumed", Json::Bool(c.resumed));
    match &c.error {
        Some(e) => {
            j.set("error", Json::Str(e.clone()));
        }
        None => {
            j.set("error", Json::Null);
        }
    }
    let _ = write_atomic(&dir.join(format!("chunk-{id}.json")), j.pretty().as_bytes());
}

/// Reloads the worker registry and chunk table after a coordinator
/// restart. Dispatched chunks stay dispatched — the first scheduler
/// round re-synchronises with the (restarted or still-running) workers,
/// and the lost-worker path covers everything else.
fn load_state(workers_dir: &Path, chunks_dir: &Path) -> FleetState {
    let mut st = FleetState::default();
    let docs = |dir: &Path, prefix: &str| -> Vec<Json> {
        let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
        let mut out = Vec::new();
        for e in entries.flatten() {
            let name = e.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(prefix) || !name.ends_with(".json") {
                continue;
            }
            if let Ok(text) = std::fs::read_to_string(e.path()) {
                if let Ok(doc) = parse_json(&text) {
                    out.push(doc);
                }
            }
        }
        out
    };
    for doc in docs(workers_dir, "worker-") {
        let (Some(id), Some(dir)) = (
            doc.get("id").and_then(Json::as_u64),
            doc.get("dir").and_then(Json::as_str),
        ) else {
            continue;
        };
        st.workers.insert(
            id,
            WorkerState {
                dir: PathBuf::from(dir),
                slots: doc.get("slots").and_then(Json::as_u64).unwrap_or(1).max(1),
                alive: true,
                misses: 0,
                done: 0,
            },
        );
        st.next_worker = st.next_worker.max(id + 1);
    }
    for doc in docs(chunks_dir, "chunk-") {
        let (Some(id), Some(spec)) = (
            doc.get("id").and_then(Json::as_u64),
            doc.get("spec").and_then(|s| JobSpec::from_json(s).ok()),
        ) else {
            continue;
        };
        let phase = match doc.get("phase").and_then(Json::as_str) {
            Some("dispatched") => match (
                doc.get("worker").and_then(Json::as_u64),
                doc.get("remote_id").and_then(Json::as_u64),
            ) {
                (Some(worker), Some(remote_id)) => ChunkPhase::Dispatched { worker, remote_id },
                _ => ChunkPhase::Pending,
            },
            Some("done") => ChunkPhase::Done,
            Some("failed") => ChunkPhase::Failed,
            _ => ChunkPhase::Pending,
        };
        st.chunks.insert(
            id,
            ChunkState {
                spec,
                phase,
                redispatches: doc.get("redispatches").and_then(Json::as_u64).unwrap_or(0),
                resumed: matches!(doc.get("resumed"), Some(Json::Bool(true))),
                error: doc.get("error").and_then(Json::as_str).map(str::to_string),
            },
        );
        st.next_chunk = st.next_chunk.max(id + 1);
    }
    st
}

/// In-flight chunk count of one worker.
fn in_flight(st: &FleetState, worker: u64) -> u64 {
    st.chunks
        .values()
        .filter(|c| matches!(c.phase, ChunkPhase::Dispatched { worker: w, .. } if w == worker))
        .count() as u64
}

/// `(chunk id, remote job id)` pairs a worker currently holds.
type HeldChunks = Vec<(u64, u64)>;

/// What one scheduler round plans to do on the network (computed under
/// the state lock, executed without it).
#[derive(Default)]
struct Plan {
    /// `(worker, dir, dispatched chunks)` per live worker.
    polls: Vec<(u64, PathBuf, HeldChunks)>,
    /// `(chunk, worker, dir, stashed checkpoint)` dispatches.
    dispatches: Vec<(u64, u64, PathBuf, Option<Vec<u8>>)>,
}

/// What the network phase observed (applied back under the lock).
#[derive(Default)]
struct RoundResult {
    /// Workers that answered the heartbeat.
    ok: Vec<u64>,
    /// Workers that did not.
    missed: Vec<u64>,
    /// `(chunk, worker, file_name, manifest text)` completions.
    done: Vec<(u64, u64, String, String)>,
    /// `(chunk, error)` remote failures.
    failed: Vec<(u64, String)>,
    /// `(chunk, worker, remote_id, resumed)` successful dispatches.
    dispatched: Vec<(u64, u64, u64, bool)>,
}

/// Phase A: snapshot the state into a network plan.
fn plan_round(inner: &FleetInner) -> Plan {
    let st = inner.state.lock().expect("fleet lock");
    let mut plan = Plan::default();
    let mut free: BTreeMap<u64, u64> = BTreeMap::new();
    for (&wid, w) in &st.workers {
        if !w.alive {
            continue;
        }
        let holding: Vec<(u64, u64)> = st
            .chunks
            .iter()
            .filter_map(|(&cid, c)| match c.phase {
                ChunkPhase::Dispatched { worker, remote_id } if worker == wid => {
                    Some((cid, remote_id))
                }
                _ => None,
            })
            .collect();
        free.insert(wid, w.slots.saturating_sub(holding.len() as u64));
        plan.polls.push((wid, w.dir.clone(), holding));
    }
    // Hand pending chunks (id order) to the least-loaded live worker
    // with a free slot; a stashed checkpoint rides along.
    for (&cid, _) in st.chunks.iter().filter(|(_, c)| c.phase == ChunkPhase::Pending) {
        let Some((&wid, _)) = free
            .iter()
            .filter(|(_, slots)| **slots > 0)
            .max_by_key(|(_, slots)| **slots)
        else {
            break;
        };
        *free.get_mut(&wid).expect("picked above") -= 1;
        let dir = st.workers[&wid].dir.clone();
        let ckpt = std::fs::read(inner.stash_file(cid)).ok();
        plan.dispatches.push((cid, wid, dir, ckpt));
    }
    plan
}

/// Phase B: talk to the workers (no locks held).
fn execute_round(inner: &FleetInner, plan: Plan) -> RoundResult {
    let mut result = RoundResult::default();
    let mut clients: BTreeMap<u64, Client> = BTreeMap::new();
    for (wid, dir, holding) in plan.polls {
        let Ok(mut client) = Client::connect(&dir) else {
            result.missed.push(wid);
            continue;
        };
        if client.ping().is_err() {
            result.missed.push(wid);
            continue;
        }
        result.ok.push(wid);
        let mut worker_died = false;
        for (cid, remote_id) in holding {
            match client.fetch(remote_id) {
                Ok((_, Some((file, text)))) => result.done.push((cid, wid, file, text)),
                Ok((job, None)) => {
                    if job.get("phase").and_then(Json::as_str) == Some("failed") {
                        let msg = job
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("worker reported failure")
                            .to_string();
                        result.failed.push((cid, msg));
                    }
                }
                // The daemon answered but no longer knows the id (it
                // restarted and lost its queue): the job is truly gone.
                Err(ServiceError::Protocol(ref msg)) if msg == "no such job" => {
                    result.failed.push((cid, "job lost by worker".to_string()));
                }
                // Transport death mid-poll — the worker was killed
                // between the ping and this fetch. Count the round as a
                // missed heartbeat and leave the chunk dispatched, so
                // lost-worker recovery can resume it from its
                // checkpoint once the worker is declared dead.
                Err(_) => {
                    worker_died = true;
                    break;
                }
            }
        }
        if worker_died {
            result.ok.retain(|&w| w != wid);
            result.missed.push(wid);
            continue;
        }
        clients.insert(wid, client);
    }
    for (cid, wid, dir, ckpt) in plan.dispatches {
        if result.missed.contains(&wid) {
            continue; // stays pending; the worker just missed a heartbeat
        }
        let client = match clients.get_mut(&wid) {
            Some(c) => c,
            None => match Client::connect(&dir) {
                Ok(c) => {
                    clients.insert(wid, c);
                    clients.get_mut(&wid).expect("just inserted")
                }
                Err(_) => {
                    result.missed.push(wid);
                    continue;
                }
            },
        };
        let resumed = ckpt.is_some();
        // A refusal (e.g. the worker's queue is full) leaves the chunk
        // pending for a later round — per-worker slots keep the fleet
        // from buffering unboundedly on any one worker.
        if let Ok(remote_id) = client.submit_with(&inner_chunk_spec(inner, cid), ckpt.as_deref())
        {
            result.dispatched.push((cid, wid, remote_id, resumed));
        }
    }
    result
}

/// The chunk's spec, cloned out of the registry.
fn inner_chunk_spec(inner: &FleetInner, chunk: u64) -> JobSpec {
    let st = inner.state.lock().expect("fleet lock");
    st.chunks[&chunk].spec.clone()
}

/// Merges one manifest into the canonical tree and returns the chunk's
/// new terminal phase.
fn merge_chunk(
    inner: &FleetInner,
    file: &str,
    text: &str,
) -> (ChunkPhase, Option<String>) {
    match merge_manifest_bytes(&inner.manifests_dir, file, text.as_bytes()) {
        Ok(MergeOutcome::Written) | Ok(MergeOutcome::Identical) => (ChunkPhase::Done, None),
        Ok(MergeOutcome::Conflict) => (
            ChunkPhase::Failed,
            Some(format!("manifest conflict: {file} differs from the canonical tree")),
        ),
        Err(e) => (ChunkPhase::Failed, Some(format!("manifest merge failed: {e}"))),
    }
}

/// Phase C: fold the round's observations back into the state. Returns
/// whether anything moved (resets the scheduler backoff).
fn apply_round(inner: &FleetInner, result: RoundResult) -> bool {
    let mut st = inner.state.lock().expect("fleet lock");
    let mut moved = false;
    for wid in result.ok {
        if let Some(w) = st.workers.get_mut(&wid) {
            if !w.alive {
                moved = true; // a lost worker came back (daemon restart)
            }
            w.alive = true;
            w.misses = 0;
        }
    }
    for (cid, wid, remote_id, resumed) in result.dispatched {
        if let Some(c) = st.chunks.get_mut(&cid) {
            if c.phase == ChunkPhase::Pending {
                c.resumed |= resumed;
                c.phase = ChunkPhase::Dispatched { worker: wid, remote_id };
                persist_chunk(&inner.chunks_dir, cid, c);
                moved = true;
            }
        }
    }
    for (cid, wid, file, text) in result.done {
        let (phase, error) = merge_chunk(inner, &file, &text);
        if phase == ChunkPhase::Done {
            let _ = std::fs::remove_file(inner.stash_file(cid));
            if let Some(w) = st.workers.get_mut(&wid) {
                w.done += 1;
            }
        }
        if let Some(c) = st.chunks.get_mut(&cid) {
            c.phase = phase;
            c.error = error;
            persist_chunk(&inner.chunks_dir, cid, c);
            moved = true;
        }
    }
    for (cid, msg) in result.failed {
        if let Some(c) = st.chunks.get_mut(&cid) {
            if matches!(c.phase, ChunkPhase::Dispatched { .. }) {
                c.phase = ChunkPhase::Failed;
                c.error = Some(msg);
                persist_chunk(&inner.chunks_dir, cid, c);
                moved = true;
            }
        }
    }
    let mut lost: Vec<u64> = Vec::new();
    for wid in result.missed {
        if let Some(w) = st.workers.get_mut(&wid) {
            if w.alive {
                w.misses += 1;
                if w.misses >= inner.lost_after {
                    w.alive = false;
                    lost.push(wid);
                    moved = true;
                }
            }
        }
    }
    for wid in lost {
        recover_lost_worker(inner, &mut st, wid);
    }
    moved
}

/// Recovers every chunk a lost worker held: merge its finished manifest
/// if the job completed before the worker died, else stash its last
/// checkpoint and re-queue the chunk to resume elsewhere, else re-queue
/// from scratch. All reads go to the dead worker's state directory —
/// sound on the single-host fleet, exactly like a daemon restart.
fn recover_lost_worker(inner: &FleetInner, st: &mut FleetState, wid: u64) {
    let jobs_dir = st.workers[&wid].dir.join("jobs");
    let held: Vec<(u64, u64)> = st
        .chunks
        .iter()
        .filter_map(|(&cid, c)| match c.phase {
            ChunkPhase::Dispatched { worker, remote_id } if worker == wid => {
                Some((cid, remote_id))
            }
            _ => None,
        })
        .collect();
    for (cid, remote_id) in held {
        let manifest = jobs_dir.join(format!("job-{remote_id}.manifest.json"));
        let ckpt = jobs_dir.join(format!("job-{remote_id}.ckpt"));
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            let file = st.chunks[&cid].spec.manifest_file_name();
            let (phase, error) = merge_chunk(inner, &file, &text);
            if phase == ChunkPhase::Done {
                st.recovered_manifests += 1;
                if let Some(w) = st.workers.get_mut(&wid) {
                    w.done += 1;
                }
            }
            let c = st.chunks.get_mut(&cid).expect("held chunk");
            c.phase = phase;
            c.error = error;
            persist_chunk(&inner.chunks_dir, cid, c);
        } else if std::fs::read(&ckpt)
            .is_ok_and(|bytes| write_atomic(&inner.stash_file(cid), &bytes).is_ok())
        {
            st.resumed_chunks += 1;
            let c = st.chunks.get_mut(&cid).expect("held chunk");
            c.phase = ChunkPhase::Pending;
            c.redispatches += 1;
            c.resumed = true;
            persist_chunk(&inner.chunks_dir, cid, c);
        } else {
            st.restarted_chunks += 1;
            let c = st.chunks.get_mut(&cid).expect("held chunk");
            c.phase = ChunkPhase::Pending;
            c.redispatches += 1;
            persist_chunk(&inner.chunks_dir, cid, c);
        }
    }
}

/// The scheduler thread: heartbeat, poll, dispatch, recover — then wait
/// with capped backoff (any op wakes it immediately).
fn scheduler(inner: &FleetInner, floor: Duration, cap: Duration) {
    let mut backoff = Backoff::new(floor, cap);
    while !inner.stopping() {
        let plan = plan_round(inner);
        let result = execute_round(inner, plan);
        if apply_round(inner, result) {
            backoff.reset();
        }
        let guard = inner.state.lock().expect("fleet lock");
        if inner.stopping() {
            return;
        }
        let _ = inner.changed.wait_timeout(guard, backoff.step()).expect("fleet lock");
    }
}

/// The fleet `status` body.
fn fleet_status_json(inner: &FleetInner, st: &FleetState) -> Json {
    let mut f = Json::obj();
    f.set("uptime_secs", Json::F64(inner.started.elapsed().as_secs_f64()));
    let mut workers = Vec::new();
    for (&wid, w) in &st.workers {
        let mut wj = Json::obj();
        wj.set("id", Json::U64(wid));
        wj.set("dir", Json::Str(w.dir.display().to_string()));
        wj.set("alive", Json::Bool(w.alive));
        wj.set("misses", Json::U64(u64::from(w.misses)));
        wj.set("slots", Json::U64(w.slots));
        wj.set("in_flight", Json::U64(in_flight(st, wid)));
        wj.set("done", Json::U64(w.done));
        workers.push(wj);
    }
    f.set("workers", Json::Arr(workers));
    let mut counts = Json::obj();
    let count = |phase: &str| {
        st.chunks.values().filter(|c| c.phase.as_str() == phase).count() as u64
    };
    for phase in ["pending", "dispatched", "done", "failed"] {
        counts.set(phase, Json::U64(count(phase)));
    }
    counts.set("total", Json::U64(st.chunks.len() as u64));
    f.set("chunks", counts);
    let mut recovery = Json::obj();
    recovery.set("manifests", Json::U64(st.recovered_manifests));
    recovery.set("resumed", Json::U64(st.resumed_chunks));
    recovery.set("restarted", Json::U64(st.restarted_chunks));
    f.set("recovery", recovery);
    let mut chunk_list = Vec::new();
    for (&cid, c) in &st.chunks {
        let mut cj = Json::obj();
        cj.set("id", Json::U64(cid));
        cj.set("file", Json::Str(c.spec.manifest_file_name()));
        cj.set("phase", Json::Str(c.phase.as_str().to_string()));
        if let ChunkPhase::Dispatched { worker, remote_id } = c.phase {
            cj.set("worker", Json::U64(worker));
            cj.set("remote_id", Json::U64(remote_id));
        }
        cj.set("redispatches", Json::U64(c.redispatches));
        cj.set("resumed", Json::Bool(c.resumed));
        if let Some(e) = &c.error {
            cj.set("error", Json::Str(e.clone()));
        }
        chunk_list.push(cj);
    }
    f.set("chunk_list", Json::Arr(chunk_list));
    f
}

/// Handles the coordinator's `register` op.
fn handle_register(inner: &FleetInner, req: &Json) -> Json {
    let Some(dir) = req.get("dir").and_then(Json::as_str) else {
        return err_response("register needs the worker's state directory");
    };
    let dir = PathBuf::from(dir);
    let dir = std::fs::canonicalize(&dir).unwrap_or(dir);
    let slots = req.get("slots").and_then(Json::as_u64).unwrap_or(1).max(1);
    let mut st = inner.state.lock().expect("fleet lock");
    let id = match st.workers.iter().find(|(_, w)| w.dir == dir).map(|(&id, _)| id) {
        Some(id) => {
            let w = st.workers.get_mut(&id).expect("found above");
            w.alive = true;
            w.misses = 0;
            w.slots = slots;
            id
        }
        None => {
            let id = st.next_worker.max(1);
            st.next_worker = id + 1;
            st.workers
                .insert(id, WorkerState { dir, slots, alive: true, misses: 0, done: 0 });
            id
        }
    };
    persist_worker(&inner.workers_dir, id, &st.workers[&id]);
    inner.changed.notify_all();
    let mut r = ok_response();
    r.set("worker", Json::U64(id));
    r
}

/// Handles the coordinator's `submit` op (admission-controlled).
fn handle_submit(inner: &FleetInner, capacity: usize, req: &Json) -> Json {
    let Some(job) = req.get("job") else {
        return err_response("submit needs a \"job\" object");
    };
    let spec = match JobSpec::from_json(job) {
        Ok(spec) => spec,
        Err(e) => return err_response(&e.to_string()),
    };
    if by_name(&spec.workload).is_none() {
        return err_response(&format!("unknown workload {:?}", spec.workload));
    }
    let mut st = inner.state.lock().expect("fleet lock");
    let open = st
        .chunks
        .values()
        .filter(|c| matches!(c.phase, ChunkPhase::Pending | ChunkPhase::Dispatched { .. }))
        .count();
    if open >= capacity {
        return err_response("fleet queue full; retry later");
    }
    let id = st.next_chunk.max(1);
    st.next_chunk = id + 1;
    let chunk = ChunkState {
        spec,
        phase: ChunkPhase::Pending,
        redispatches: 0,
        resumed: false,
        error: None,
    };
    persist_chunk(&inner.chunks_dir, id, &chunk);
    st.chunks.insert(id, chunk);
    inner.changed.notify_all();
    let mut r = ok_response();
    r.set("id", Json::U64(id));
    r
}

/// Handles the coordinator's `metrics` op: fans out to every live
/// worker and aggregates, then attaches the coordinator's own view.
fn handle_metrics(inner: &FleetInner) -> Json {
    let worker_dirs: Vec<(u64, PathBuf)> = {
        let st = inner.state.lock().expect("fleet lock");
        st.workers
            .iter()
            .filter(|(_, w)| w.alive)
            .map(|(&id, w)| (id, w.dir.clone()))
            .collect()
    };
    let mut bodies = Vec::new();
    for (id, dir) in worker_dirs {
        if let Ok(metrics) = Client::connect(&dir).and_then(|mut c| c.metrics()) {
            bodies.push((id, metrics));
        }
    }
    let refs: Vec<(u64, &Json)> = bodies.iter().map(|(id, j)| (*id, j)).collect();
    let mut m = aggregate_node_metrics(&refs);
    m.set("uptime_secs", Json::F64(inner.started.elapsed().as_secs_f64()));
    let st = inner.state.lock().expect("fleet lock");
    m.set("fleet", fleet_status_json(inner, &st));
    let mut r = ok_response();
    r.set("metrics", m);
    r
}

/// Serves one coordinator connection.
fn handle_conn(stream: TcpStream, inner: Arc<FleetInner>, opts: FleetOptions, addr: std::net::SocketAddr) {
    let Ok(reader) = stream.try_clone() else { return };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match parse_json(&line) {
            Err(e) => err_response(&format!("malformed request: {e}")),
            Ok(req) => match req.get("op").and_then(Json::as_str) {
                Some("ping") => {
                    let st = inner.state.lock().expect("fleet lock");
                    let mut r = ok_response();
                    r.set("service", Json::Str("vcfr-fleet".to_string()));
                    r.set(
                        "workers",
                        Json::U64(st.workers.values().filter(|w| w.alive).count() as u64),
                    );
                    r.set("jobs", Json::U64(st.chunks.len() as u64));
                    r
                }
                Some("register") => handle_register(&inner, &req),
                Some("submit") => handle_submit(&inner, opts.chunk_capacity, &req),
                Some("status") => {
                    let st = inner.state.lock().expect("fleet lock");
                    let mut r = ok_response();
                    r.set("fleet", fleet_status_json(&inner, &st));
                    r
                }
                Some("metrics") => handle_metrics(&inner),
                Some("shutdown") => {
                    // `workers: false` leaves the worker daemons up
                    // (they keep draining their local queues).
                    let stop_workers =
                        !matches!(req.get("workers"), Some(Json::Bool(false)));
                    if writeln!(writer, "{}", ok_response().compact()).is_err() {
                        return;
                    }
                    if stop_workers {
                        let dirs: Vec<PathBuf> = {
                            let st = inner.state.lock().expect("fleet lock");
                            st.workers
                                .values()
                                .filter(|w| w.alive)
                                .map(|w| w.dir.clone())
                                .collect()
                        };
                        for dir in dirs {
                            let _ = Client::connect(&dir).and_then(|mut c| c.shutdown());
                        }
                    }
                    inner.stopping.store(true, Ordering::SeqCst);
                    inner.changed.notify_all();
                    let _ = TcpStream::connect(addr);
                    return;
                }
                _ => err_response("unknown op"),
            },
        };
        if writeln!(writer, "{}", resp.compact()).is_err() {
            return;
        }
    }
}

/// Runs the fleet coordinator until a client sends `shutdown`: binds
/// 127.0.0.1, reloads the worker registry and chunk table, starts the
/// scheduler, writes the endpoint file last, then accepts JSON-lines
/// clients (`register` / `submit` / `status` / `metrics` / `shutdown`).
///
/// # Errors
///
/// [`ServiceError::Io`] when the state directory or socket cannot be
/// set up. Per-chunk and per-worker failures never abort the
/// coordinator — they are recorded in the chunk table.
pub fn serve_fleet(opts: &FleetOptions) -> Result<(), ServiceError> {
    let workers_dir = opts.dir.join("workers");
    let chunks_dir = opts.dir.join("chunks");
    let manifests_dir = opts.dir.join("results").join("manifests");
    std::fs::create_dir_all(&workers_dir)?;
    std::fs::create_dir_all(&chunks_dir)?;
    std::fs::create_dir_all(&manifests_dir)?;
    let state = load_state(&workers_dir, &chunks_dir);
    let inner = Arc::new(FleetInner {
        workers_dir,
        chunks_dir,
        manifests_dir,
        lost_after: opts.lost_after.max(1),
        stopping: AtomicBool::new(false),
        state: Mutex::new(state),
        changed: Condvar::new(),
        started: Instant::now(),
    });

    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;

    let sched_inner = Arc::clone(&inner);
    let floor = Duration::from_millis(opts.heartbeat_ms.max(1));
    let cap = Duration::from_millis(opts.heartbeat_cap_ms.max(opts.heartbeat_ms.max(1)));
    let sched = std::thread::spawn(move || scheduler(&sched_inner, floor, cap));

    // The endpoint file is the last thing written: once it exists,
    // workers may register and clients may submit.
    write_atomic(&opts.dir.join(ENDPOINT_FILE), format!("{addr}\n").as_bytes())?;

    for conn in listener.incoming() {
        if inner.stopping() {
            break;
        }
        let Ok(stream) = conn else { continue };
        let inner = Arc::clone(&inner);
        let opts = opts.clone();
        std::thread::spawn(move || handle_conn(stream, inner, opts, addr));
    }

    let _ = sched.join();
    let _ = std::fs::remove_file(opts.dir.join(ENDPOINT_FILE));
    Ok(())
}
