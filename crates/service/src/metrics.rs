//! Daemon-wide metrics: job-latency histograms, throughput totals, and
//! the JSON shape the `metrics` op returns.
//!
//! The split of responsibilities mirrors the determinism rule the
//! telemetry layer lives by: everything *inside* a job's progress
//! events is simulated state (deterministic), while everything here —
//! latencies, utilization, insts/sec — is wall-clock and belongs to
//! the daemon alone. None of it ever feeds back into manifests or
//! checkpoints.

use std::sync::Mutex;
use std::time::Instant;
use vcfr_bench::PoolSnapshot;
use vcfr_obs::{Histogram, Json};

/// Aggregates the worker pool publishes into across job lifecycles.
#[derive(Debug, Default)]
struct HubState {
    /// Wall-clock milliseconds from job start to completion, one
    /// sample per finished (done or failed) job.
    job_latency_ms: Histogram,
    /// Jobs that reached `done`.
    jobs_done: u64,
    /// Jobs that reached `failed`.
    jobs_failed: u64,
    /// Instructions retired by *finished* jobs (running jobs are added
    /// on top from the live registry at read time).
    insts_finished: u64,
    /// Progress events workers have emitted since daemon start.
    progress_events: u64,
}

/// The daemon's shared metrics hub. Workers record into it as jobs
/// finish; the `metrics` op reads it out together with a
/// [`PoolSnapshot`].
#[derive(Debug)]
pub struct MetricsHub {
    started: Instant,
    state: Mutex<HubState>,
}

impl Default for MetricsHub {
    fn default() -> MetricsHub {
        MetricsHub::new()
    }
}

impl MetricsHub {
    /// A hub with zeroed aggregates, anchored at "now".
    pub fn new() -> MetricsHub {
        MetricsHub { started: Instant::now(), state: Mutex::new(HubState::default()) }
    }

    /// Seconds since the daemon (hub) started.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one finished job: its wall-clock latency, outcome, and
    /// how many instructions it retired.
    pub fn record_job(&self, latency_ms: u64, ok: bool, instructions: u64) {
        let mut st = self.state.lock().expect("metrics lock");
        st.job_latency_ms.record(latency_ms);
        if ok {
            st.jobs_done += 1;
        } else {
            st.jobs_failed += 1;
        }
        st.insts_finished += instructions;
    }

    /// Counts one progress event emitted by a worker's telemetry tap.
    pub fn record_progress_event(&self) {
        self.state.lock().expect("metrics lock").progress_events += 1;
    }

    /// Builds the `metrics` response body. `pool` is the worker pool's
    /// snapshot slot; `jobs_by_phase` counts the registry's jobs as
    /// `(queued, running, done, failed)`; `insts_in_flight` is the sum
    /// of instructions retired by not-yet-finished jobs.
    pub fn to_json(
        &self,
        pool: &PoolSnapshot,
        jobs_by_phase: (u64, u64, u64, u64),
        insts_in_flight: u64,
    ) -> Json {
        let st = self.state.lock().expect("metrics lock");
        let uptime = self.uptime_secs();
        let total_insts = st.insts_finished + insts_in_flight;

        let mut m = Json::obj();
        m.set("uptime_secs", Json::F64(uptime));

        let mut queue = Json::obj();
        queue.set("depth", Json::U64(pool.queue_depth as u64));
        queue.set("in_flight", Json::U64(pool.in_flight as u64));
        queue.set("capacity", Json::U64(pool.capacity as u64));
        m.set("queue", queue);

        let mut workers = Vec::new();
        for (i, w) in pool.workers.iter().enumerate() {
            let mut wj = Json::obj();
            wj.set("jobs", Json::U64(w.jobs));
            wj.set("busy_secs", Json::F64(w.busy_secs));
            wj.set("utilization", Json::F64(pool.utilization(i)));
            workers.push(wj);
        }
        m.set("workers", Json::Arr(workers));

        let (queued, running, done, failed) = jobs_by_phase;
        let mut jobs = Json::obj();
        jobs.set("queued", Json::U64(queued));
        jobs.set("running", Json::U64(running));
        jobs.set("done", Json::U64(done));
        jobs.set("failed", Json::U64(failed));
        m.set("jobs", jobs);

        let mut tp = Json::obj();
        tp.set("instructions", Json::U64(total_insts));
        tp.set(
            "insts_per_sec",
            Json::F64(if uptime > 0.0 { total_insts as f64 / uptime } else { 0.0 }),
        );
        m.set("throughput", tp);

        m.set("job_latency_ms", st.job_latency_ms.to_json());
        m.set("progress_events", Json::U64(st.progress_events));
        m
    }
}

/// Folds the `metrics` bodies of several worker daemons into one
/// fleet-level view with the same shape a single daemon reports, so
/// `vcfr top` renders either unchanged: `queue`, `jobs`, `throughput`,
/// and `progress_events` are summed, `workers` entries are concatenated
/// (tagged with their `node` id), and the `job_latency_ms` histograms
/// are merged (associative, so any merge order yields the same bytes).
/// `uptime_secs` is deliberately absent — it belongs to whoever serves
/// the aggregate (the coordinator), not to any node.
pub fn aggregate_node_metrics(nodes: &[(u64, &Json)]) -> Json {
    let num = |j: &Json, path: &str| j.get_path(path).and_then(Json::as_u64).unwrap_or(0);
    let fnum = |j: &Json, path: &str| j.get_path(path).and_then(Json::as_f64).unwrap_or(0.0);

    let mut m = Json::obj();
    let mut queue = Json::obj();
    for k in ["depth", "in_flight", "capacity"] {
        queue.set(k, Json::U64(nodes.iter().map(|(_, j)| num(j, &format!("queue.{k}"))).sum()));
    }
    m.set("queue", queue);

    let mut workers = Vec::new();
    for (node, j) in nodes {
        for w in j.get("workers").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut wj = w.clone();
            wj.set("node", Json::U64(*node));
            workers.push(wj);
        }
    }
    m.set("workers", Json::Arr(workers));

    let mut jobs = Json::obj();
    for k in ["queued", "running", "done", "failed"] {
        jobs.set(k, Json::U64(nodes.iter().map(|(_, j)| num(j, &format!("jobs.{k}"))).sum()));
    }
    m.set("jobs", jobs);

    let mut tp = Json::obj();
    tp.set(
        "instructions",
        Json::U64(nodes.iter().map(|(_, j)| num(j, "throughput.instructions")).sum()),
    );
    tp.set(
        "insts_per_sec",
        Json::F64(nodes.iter().map(|(_, j)| fnum(j, "throughput.insts_per_sec")).sum()),
    );
    m.set("throughput", tp);

    let mut latency = Histogram::new();
    for (_, j) in nodes {
        if let Some(h) = j.get("job_latency_ms").and_then(Histogram::from_json) {
            latency.merge(&h);
        }
    }
    m.set("job_latency_ms", latency.to_json());
    m.set(
        "progress_events",
        Json::U64(nodes.iter().map(|(_, j)| num(j, "progress_events")).sum()),
    );
    m.set("nodes", Json::U64(nodes.len() as u64));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_fold_into_the_response() {
        let hub = MetricsHub::new();
        hub.record_job(10, true, 1_000);
        hub.record_job(20, false, 500);
        hub.record_progress_event();
        hub.record_progress_event();
        let pool = PoolSnapshot {
            queue_depth: 3,
            in_flight: 1,
            capacity: 16,
            uptime_secs: 1.0,
            workers: vec![vcfr_bench::WorkerStat { jobs: 2, busy_secs: 0.5 }],
        };
        let j = hub.to_json(&pool, (3, 1, 1, 1), 250);
        assert_eq!(j.get_path("queue.depth").unwrap().as_u64(), Some(3));
        assert_eq!(j.get_path("jobs.failed").unwrap().as_u64(), Some(1));
        assert_eq!(j.get_path("throughput.instructions").unwrap().as_u64(), Some(1_750));
        assert_eq!(j.get_path("job_latency_ms.count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get_path("progress_events").unwrap().as_u64(), Some(2));
        let workers = j.get("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 1);
        assert!((workers[0].get("utilization").unwrap().as_f64().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn node_metrics_aggregate_by_sum_and_histogram_merge() {
        let node = |latencies: &[u64], insts: u64| {
            let hub = MetricsHub::new();
            for l in latencies {
                hub.record_job(*l, true, insts);
            }
            hub.record_progress_event();
            let pool = PoolSnapshot {
                queue_depth: 1,
                in_flight: 1,
                capacity: 8,
                uptime_secs: 1.0,
                workers: vec![vcfr_bench::WorkerStat { jobs: 1, busy_secs: 0.5 }],
            };
            hub.to_json(&pool, (1, 1, latencies.len() as u64, 0), 0)
        };
        let (a, b) = (node(&[10, 20], 100), node(&[40], 50));
        let fleet = aggregate_node_metrics(&[(1, &a), (2, &b)]);
        assert_eq!(fleet.get_path("queue.depth").unwrap().as_u64(), Some(2));
        assert_eq!(fleet.get_path("jobs.done").unwrap().as_u64(), Some(3));
        assert_eq!(fleet.get_path("throughput.instructions").unwrap().as_u64(), Some(250));
        assert_eq!(fleet.get_path("job_latency_ms.count").unwrap().as_u64(), Some(3));
        assert_eq!(fleet.get_path("job_latency_ms.min").unwrap().as_u64(), Some(10));
        assert_eq!(fleet.get_path("job_latency_ms.max").unwrap().as_u64(), Some(40));
        assert_eq!(fleet.get("progress_events").unwrap().as_u64(), Some(2));
        assert_eq!(fleet.get("nodes").unwrap().as_u64(), Some(2));
        let workers = fleet.get("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[1].get("node").unwrap().as_u64(), Some(2));
    }
}
