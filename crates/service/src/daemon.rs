//! The `vcfr serve` daemon: a localhost TCP listener, a bounded worker
//! pool, and a checkpoint-backed job store under the state directory.
//!
//! On-disk layout (everything written atomically via tmp + rename, so a
//! hard kill never leaves a half-written file):
//!
//! ```text
//! <dir>/endpoint                   bound host:port (removed on graceful exit)
//! <dir>/jobs/job-<id>.json         job spec + phase
//! <dir>/jobs/job-<id>.ckpt         latest engine checkpoint (versioned)
//! <dir>/jobs/job-<id>.manifest.json  canonical run manifest, once done
//! ```

use crate::metrics::MetricsHub;
use crate::protocol::{
    err_response, hex_decode, ok_response, JobPhase, JobSpec, ServiceError, ENDPOINT_FILE,
};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vcfr_bench::{
    build_engine_manifest, build_fault_manifest_parts, fault_plan_for, ModeSpec, WorkerPool,
};
use vcfr_core::DrcConfig;
use vcfr_obs::{parse_json, Backoff, Json, ProgressEvent};
use vcfr_rewriter::{randomize, RandomizeConfig, RandomizedProgram};
use vcfr_sim::{Mode, Session, SessionStatus, SimConfig};
use vcfr_workloads::{by_name, by_name_scaled};

/// How the daemon is configured.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// State directory (endpoint file, job store, checkpoints).
    pub dir: PathBuf,
    /// TCP port on 127.0.0.1 (0 picks an ephemeral port).
    pub port: u16,
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Jobs the admission queue holds before `submit` is refused.
    pub queue_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            dir: PathBuf::from("results/service"),
            port: 0,
            workers: 2,
            queue_capacity: 16,
        }
    }
}

/// One job's live state (the registry entry watchers poll).
struct JobState {
    spec: JobSpec,
    phase: JobPhase,
    instructions: u64,
    cycles: u64,
    checkpoints: u64,
    error: Option<String>,
    /// Bumped on every change so watchers only emit fresh lines.
    seq: u64,
    /// The latest reading from the job's telemetry tap (deterministic
    /// fields only; never persisted).
    progress: Option<ProgressEvent>,
    /// Progress events received so far — watchers compare against it
    /// to tell a fresh reading from a mere status bump.
    progress_count: u64,
}

impl JobState {
    fn new(spec: JobSpec, phase: JobPhase, error: Option<String>) -> JobState {
        JobState {
            spec,
            phase,
            instructions: 0,
            cycles: 0,
            checkpoints: 0,
            error,
            seq: 0,
            progress: None,
            progress_count: 0,
        }
    }
}

struct Inner {
    jobs_dir: PathBuf,
    stopping: AtomicBool,
    jobs: Mutex<BTreeMap<u64, JobState>>,
    changed: Condvar,
    metrics: MetricsHub,
}

impl Inner {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Mutates one registry entry and wakes every watcher.
    fn update<F: FnOnce(&mut JobState)>(&self, id: u64, f: F) {
        let mut jobs = self.jobs.lock().expect("registry lock");
        if let Some(st) = jobs.get_mut(&id) {
            f(st);
            st.seq += 1;
        }
        self.changed.notify_all();
    }
}

fn job_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.json"))
}

fn ckpt_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.ckpt"))
}

fn manifest_file(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id}.manifest.json"))
}

/// Writes `bytes` to `path` atomically: a hard kill leaves either the
/// old file or the new one, never a torn write.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("service-write")
    ));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Persists one job's spec + phase (progress lives in the checkpoint).
fn persist_job(dir: &Path, id: u64, st: &JobState) -> std::io::Result<()> {
    let mut j = Json::obj();
    j.set("id", Json::U64(id));
    j.set("spec", st.spec.to_json());
    j.set("phase", Json::Str(st.phase.as_str().to_string()));
    match &st.error {
        Some(e) => j.set("error", Json::Str(e.clone())),
        None => j.set("error", Json::Null),
    };
    write_atomic(&job_file(dir, id), j.pretty().as_bytes())
}

/// One status object (shared by `jobs`, `status`, and `watch` lines).
fn status_json(id: u64, st: &JobState) -> Json {
    let mut j = Json::obj();
    j.set("id", Json::U64(id));
    j.set("workload", Json::Str(st.spec.workload.clone()));
    j.set("mode", Json::Str(st.spec.mode.to_string()));
    j.set("phase", Json::Str(st.phase.as_str().to_string()));
    j.set("instructions", Json::U64(st.instructions));
    j.set("max_insts", Json::U64(st.spec.max_insts));
    j.set("cycles", Json::U64(st.cycles));
    j.set("checkpoints", Json::U64(st.checkpoints));
    match &st.error {
        Some(e) => j.set("error", Json::Str(e.clone())),
        None => j.set("error", Json::Null),
    };
    j
}

/// Reloads the job store: terminal jobs keep their phase for listings,
/// everything else is re-admitted as queued (a `running` phase on disk
/// can only mean the previous daemon died mid-run).
fn load_jobs(jobs_dir: &Path) -> (BTreeMap<u64, JobState>, Vec<u64>) {
    let mut jobs = BTreeMap::new();
    let mut resumable = Vec::new();
    let Ok(entries) = std::fs::read_dir(jobs_dir) else {
        return (jobs, resumable);
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if !name.starts_with("job-") || !name.ends_with(".json") || name.contains(".manifest") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else { continue };
        let Ok(doc) = parse_json(&text) else { continue };
        let Some(id) = doc.get("id").and_then(Json::as_u64) else { continue };
        let Some(spec) = doc.get("spec").and_then(|s| JobSpec::from_json(s).ok()) else {
            continue;
        };
        let phase = doc
            .get("phase")
            .and_then(Json::as_str)
            .and_then(JobPhase::from_disk)
            .unwrap_or(JobPhase::Queued);
        let error = doc.get("error").and_then(Json::as_str).map(str::to_string);
        if !phase.is_terminal() {
            resumable.push(id);
        }
        jobs.insert(id, JobState::new(spec, phase, error));
    }
    resumable.sort_unstable();
    (jobs, resumable)
}

/// Marks a job failed, in the registry, on disk, and in the metrics
/// hub (`started` anchors its latency sample).
fn fail_job(inner: &Inner, id: u64, started: Instant, msg: String) {
    inner.metrics.record_job(started.elapsed().as_millis() as u64, false, 0);
    inner.update(id, |st| {
        st.phase = JobPhase::Failed;
        st.error = Some(msg);
    });
    let jobs = inner.jobs.lock().expect("registry lock");
    if let Some(st) = jobs.get(&id) {
        let _ = persist_job(&inner.jobs_dir, id, st);
    }
}

/// The telemetry-tap interval for a job: ~100 readings across its
/// instruction budget. A pure function of the spec, so every run of
/// the same job emits events at identical instruction boundaries.
fn progress_interval(spec: &JobSpec) -> u64 {
    (spec.max_insts / 100).max(1)
}

/// Simulates one job to completion (or to the next graceful-shutdown
/// window), checkpointing after every chunk.
fn run_job(inner: &Inner, id: u64) {
    let started = Instant::now();
    let spec = {
        let jobs = inner.jobs.lock().expect("registry lock");
        match jobs.get(&id) {
            Some(st) if !st.phase.is_terminal() => st.spec.clone(),
            _ => return,
        }
    };
    if inner.stopping() {
        return; // stays queued on disk; the next start re-admits it
    }

    let Some(w) = by_name_scaled(&spec.workload, spec.scale) else {
        fail_job(inner, id, started, format!("unknown workload {:?}", spec.workload));
        return;
    };
    let kind = spec.engine;
    let cfg = match SimConfig::builder()
        .engine(kind)
        .rerand_epoch(spec.rerand_epoch)
        .drc_entries(spec.mode.drc_entries())
        .build()
    {
        Ok(cfg) => cfg,
        Err(e) => {
            fail_job(inner, id, started, e.to_string());
            return;
        }
    };
    let rp: Option<RandomizedProgram> = if spec.mode == ModeSpec::Base {
        None
    } else {
        match randomize(&w.image, &RandomizeConfig::with_seed(spec.seed)) {
            Ok(rp) => Some(rp),
            Err(e) => {
                fail_job(inner, id, started, format!("randomization failed: {e}"));
                return;
            }
        }
    };
    let mode = match spec.mode {
        ModeSpec::Base => Mode::Baseline(&w.image),
        ModeSpec::Naive => Mode::NaiveIlr(rp.as_ref().expect("non-baseline has a layout")),
        ModeSpec::Vcfr { drc_entries } => Mode::Vcfr {
            program: rp.as_ref().expect("non-baseline has a layout"),
            drc: DrcConfig::direct_mapped(drc_entries),
        },
    };
    // Campaign cells attach the app's deterministic fault schedule —
    // the same plan `vcfr_bench::run_campaign` derives from the app
    // name — so a fleet of daemons reproduces the Figure-11 cells.
    let plan = spec.faults.then(|| fault_plan_for(&spec.workload, spec.max_insts));
    let session = Session::new(mode, &cfg, spec.max_insts)
        .map(|s| s.with_sampling((spec.max_insts / 10).max(1)))
        .map(|s| match &plan {
            Some(p) => s.with_faults(p),
            None => s,
        });
    let mut session = match session {
        Ok(s) => s,
        Err(e) => {
            fail_job(inner, id, started, e.to_string());
            return;
        }
    }
    // The telemetry tap: each reading lands in the registry (waking
    // watchers, who stream it as a `progress` event) and ticks the
    // daemon-wide counter. Boundaries are instruction counts, so the
    // simulated results are byte-identical with or without the tap.
    .with_progress(progress_interval(&spec), |e| {
        inner.metrics.record_progress_event();
        inner.update(id, |st| {
            st.instructions = e.instructions;
            st.cycles = e.cycles;
            st.progress = Some(*e);
            st.progress_count += 1;
        });
    });

    // Resume from the latest snapshot, if the previous daemon left one.
    let ckpt_path = ckpt_file(&inner.jobs_dir, id);
    if let Ok(bytes) = std::fs::read(&ckpt_path) {
        if let Err(e) = session.restore(&bytes) {
            fail_job(inner, id, started, format!("checkpoint rejected: {e}"));
            return;
        }
    }

    inner.update(id, |st| {
        st.phase = JobPhase::Running;
        st.instructions = session.instructions();
    });

    loop {
        if inner.stopping() {
            // Graceful drain: snapshot, then park the job as queued so
            // the next start resumes exactly here.
            let _ = write_atomic(&ckpt_path, &session.checkpoint());
            inner.update(id, |st| st.phase = JobPhase::Queued);
            return;
        }
        match session.run_for(spec.checkpoint_every) {
            Err(e) => {
                fail_job(inner, id, started, e.to_string());
                return;
            }
            Ok(SessionStatus::Running) => {
                let _ = write_atomic(&ckpt_path, &session.checkpoint());
                let stats = session.stats_now();
                inner.update(id, |st| {
                    st.instructions = stats.instructions;
                    st.cycles = stats.cycles;
                    st.checkpoints += 1;
                });
            }
            Ok(SessionStatus::Done(out)) => {
                let manifest = if spec.faults {
                    build_fault_manifest_parts(
                        &spec.workload,
                        &spec.matrix_mode(),
                        &out.faults,
                        &out.output.stats,
                        Json::obj(),
                    )
                } else {
                    // `manifest_mode` (not `matrix_mode`): a non-in-order
                    // job's manifest must carry its engine prefix so the
                    // fleet merge never conflates it with the in-order
                    // cell of the same matrix. The faults arm passes the
                    // bare matrix mode because `build_fault_manifest_parts`
                    // applies the `faults-` prefix itself.
                    build_engine_manifest(
                        &spec.workload,
                        &spec.manifest_mode(),
                        kind,
                        &out.output.stats,
                        &out.samples,
                        Json::obj(),
                    )
                };
                let written = write_atomic(
                    &manifest_file(&inner.jobs_dir, id),
                    manifest.canonical_bytes().as_bytes(),
                );
                let _ = std::fs::remove_file(&ckpt_path);
                inner.metrics.record_job(
                    started.elapsed().as_millis() as u64,
                    written.is_ok(),
                    out.output.stats.instructions,
                );
                match written {
                    Ok(()) => inner.update(id, |st| {
                        st.phase = JobPhase::Done;
                        st.instructions = out.output.stats.instructions;
                        st.cycles = out.output.stats.cycles;
                    }),
                    Err(e) => inner.update(id, |st| {
                        st.phase = JobPhase::Failed;
                        st.error = Some(format!("manifest write failed: {e}"));
                    }),
                }
                let jobs = inner.jobs.lock().expect("registry lock");
                if let Some(st) = jobs.get(&id) {
                    let _ = persist_job(&inner.jobs_dir, id, st);
                }
                return;
            }
        }
    }
}

/// Handles the `submit` op: validate, persist, admit.
fn handle_submit(
    inner: &Inner,
    pool: &WorkerPool<u64>,
    next_id: &Mutex<u64>,
    req: &Json,
) -> Json {
    let Some(job) = req.get("job") else {
        return err_response("submit needs a \"job\" object");
    };
    let spec = match JobSpec::from_json(job) {
        Ok(spec) => spec,
        Err(e) => return err_response(&e.to_string()),
    };
    if by_name(&spec.workload).is_none() {
        return err_response(&format!("unknown workload {:?}", spec.workload));
    }
    // A fleet coordinator re-dispatching a lost job attaches the dead
    // worker's last checkpoint (hex, inside the JSON string); the run
    // then resumes from it through the ordinary restore path, envelope
    // validation included.
    let ckpt = match req.get("ckpt") {
        None | Some(Json::Null) => None,
        Some(v) => match v.as_str().and_then(hex_decode) {
            Some(bytes) => Some(bytes),
            None => return err_response("ckpt must be a hex string"),
        },
    };
    let id = {
        let mut next = next_id.lock().expect("id lock");
        let id = *next;
        *next += 1;
        id
    };
    let st = JobState::new(spec, JobPhase::Queued, None);
    // Persist before admitting: a kill right after this line still
    // leaves a resumable job on disk.
    if let Err(e) = persist_job(&inner.jobs_dir, id, &st) {
        return err_response(&format!("cannot persist job: {e}"));
    }
    if let Some(bytes) = ckpt {
        if let Err(e) = write_atomic(&ckpt_file(&inner.jobs_dir, id), &bytes) {
            let _ = std::fs::remove_file(job_file(&inner.jobs_dir, id));
            return err_response(&format!("cannot persist checkpoint: {e}"));
        }
    }
    inner.jobs.lock().expect("registry lock").insert(id, st);
    if pool.try_submit(id).is_err() {
        inner.jobs.lock().expect("registry lock").remove(&id);
        let _ = std::fs::remove_file(job_file(&inner.jobs_dir, id));
        let _ = std::fs::remove_file(ckpt_file(&inner.jobs_dir, id));
        return err_response("queue full; retry later");
    }
    let mut resp = ok_response();
    resp.set("id", Json::U64(id));
    resp
}

/// Handles the `fetch` op: one job's status plus, once it is done, the
/// canonical manifest text and its conventional file name — what the
/// fleet coordinator merges into the shared `results/` tree.
fn handle_fetch(inner: &Inner, id: u64) -> Json {
    let (status, spec, phase) = {
        let jobs = inner.jobs.lock().expect("registry lock");
        match jobs.get(&id) {
            None => return err_response("no such job"),
            Some(st) => (status_json(id, st), st.spec.clone(), st.phase),
        }
    };
    let mut r = ok_response();
    r.set("job", status);
    if phase == JobPhase::Done {
        match std::fs::read_to_string(manifest_file(&inner.jobs_dir, id)) {
            Ok(text) => {
                r.set("file", Json::Str(spec.manifest_file_name()));
                r.set("manifest", Json::Str(text));
            }
            Err(e) => return err_response(&format!("manifest unreadable: {e}")),
        }
    }
    r
}

/// Streams watch lines for one job until it reaches a terminal phase
/// (or the daemon starts shutting down): a `{"event":"progress"}` line
/// for every fresh telemetry reading, and a `{"event":"status"}` line
/// when the phase changes (plus one up front, so a watcher always sees
/// where the job stands). The wait between registry changes backs off
/// exponentially (capped) while nothing moves, so idle watchers cost
/// the daemon next to nothing; any change snaps it back down.
fn handle_watch(inner: &Inner, out: &mut TcpStream, id: u64) -> std::io::Result<()> {
    let mut last_seq: Option<u64> = None;
    let mut last_progress = 0u64;
    let mut last_phase: Option<JobPhase> = None;
    let mut wait = Backoff::new(Duration::from_millis(25), Duration::from_millis(1_600));
    loop {
        let (lines, terminal) = {
            let mut jobs = inner.jobs.lock().expect("registry lock");
            loop {
                let Some(st) = jobs.get(&id) else {
                    return writeln!(out, "{}", err_response("no such job").compact());
                };
                if last_seq != Some(st.seq) || st.phase.is_terminal() || inner.stopping() {
                    last_seq = Some(st.seq);
                    wait.reset();
                    let mut lines = Vec::new();
                    if st.progress_count > last_progress {
                        if let Some(p) = &st.progress {
                            let mut line = p.to_json();
                            line.set("event", Json::Str("progress".to_string()));
                            line.set("id", Json::U64(id));
                            line.set("max_insts", Json::U64(st.spec.max_insts));
                            // Readings that landed while this watcher
                            // was between wakeups (coalesced away).
                            line.set(
                                "coalesced",
                                Json::U64(st.progress_count - last_progress - 1),
                            );
                            lines.push(line);
                        }
                        last_progress = st.progress_count;
                    }
                    if last_phase != Some(st.phase) || st.phase.is_terminal() || inner.stopping()
                    {
                        last_phase = Some(st.phase);
                        let mut line = status_json(id, st);
                        line.set("event", Json::Str("status".to_string()));
                        lines.push(line);
                    }
                    if !lines.is_empty() || st.phase.is_terminal() || inner.stopping() {
                        break (lines, st.phase.is_terminal() || inner.stopping());
                    }
                }
                let (guard, timeout) =
                    inner.changed.wait_timeout(jobs, wait.current()).expect("registry lock");
                jobs = guard;
                if timeout.timed_out() {
                    wait.step();
                }
            }
        };
        for line in &lines {
            writeln!(out, "{}", line.compact())?;
        }
        if terminal {
            let mut end = Json::obj();
            end.set("event", Json::Str("end".to_string()));
            end.set("id", Json::U64(id));
            return writeln!(out, "{}", end.compact());
        }
    }
}

/// Serves one client connection (requests are handled sequentially on
/// the connection's own thread).
fn handle_conn(
    stream: TcpStream,
    inner: Arc<Inner>,
    pool: Arc<WorkerPool<u64>>,
    next_id: Arc<Mutex<u64>>,
    addr: std::net::SocketAddr,
) {
    let Ok(reader) = stream.try_clone() else { return };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match parse_json(&line) {
            Err(e) => err_response(&format!("malformed request: {e}")),
            Ok(req) => match req.get("op").and_then(Json::as_str) {
                Some("ping") => {
                    let mut r = ok_response();
                    r.set("service", Json::Str("vcfr-serve".to_string()));
                    r.set(
                        "jobs",
                        Json::U64(inner.jobs.lock().expect("registry lock").len() as u64),
                    );
                    r
                }
                Some("submit") => handle_submit(&inner, &pool, &next_id, &req),
                Some("jobs") => {
                    let jobs = inner.jobs.lock().expect("registry lock");
                    let mut r = ok_response();
                    r.set(
                        "jobs",
                        Json::Arr(jobs.iter().map(|(id, st)| status_json(*id, st)).collect()),
                    );
                    r
                }
                Some("fetch") => match req.get("id").and_then(Json::as_u64) {
                    None => err_response("fetch needs a job id"),
                    Some(id) => handle_fetch(&inner, id),
                },
                Some("status") => match req.get("id").and_then(Json::as_u64) {
                    None => err_response("status needs a job id"),
                    Some(id) => {
                        let jobs = inner.jobs.lock().expect("registry lock");
                        match jobs.get(&id) {
                            None => err_response("no such job"),
                            Some(st) => {
                                let mut r = ok_response();
                                r.set("job", status_json(id, st));
                                r
                            }
                        }
                    }
                },
                Some("metrics") => {
                    let (by_phase, insts_in_flight) = {
                        let jobs = inner.jobs.lock().expect("registry lock");
                        let mut counts = (0u64, 0u64, 0u64, 0u64);
                        let mut insts = 0u64;
                        for st in jobs.values() {
                            match st.phase {
                                JobPhase::Queued => counts.0 += 1,
                                JobPhase::Running => counts.1 += 1,
                                JobPhase::Done => counts.2 += 1,
                                JobPhase::Failed => counts.3 += 1,
                            }
                            if !st.phase.is_terminal() {
                                insts += st.instructions;
                            }
                        }
                        (counts, insts)
                    };
                    let mut r = ok_response();
                    r.set(
                        "metrics",
                        inner.metrics.to_json(&pool.snapshot(), by_phase, insts_in_flight),
                    );
                    r
                }
                Some("watch") => match req.get("id").and_then(Json::as_u64) {
                    None => err_response("watch needs a job id"),
                    Some(id) => {
                        if handle_watch(&inner, &mut writer, id).is_err() {
                            return;
                        }
                        continue;
                    }
                },
                Some("shutdown") => {
                    // Acknowledge before triggering the stop, so the
                    // reply reaches the client even if the daemon wins
                    // the race and exits first.
                    if writeln!(writer, "{}", ok_response().compact()).is_err() {
                        return;
                    }
                    inner.stopping.store(true, Ordering::SeqCst);
                    inner.changed.notify_all();
                    // Wake the accept loop so `serve` can wind down.
                    let _ = TcpStream::connect(addr);
                    return;
                }
                _ => err_response("unknown op"),
            },
        };
        if writeln!(writer, "{}", resp.compact()).is_err() {
            return;
        }
    }
}

/// Runs the daemon until a client sends `shutdown`: binds 127.0.0.1,
/// writes the endpoint file, re-admits every non-terminal job found in
/// the state directory, then accepts JSON-lines clients.
///
/// # Errors
///
/// [`ServiceError::Io`] when the state directory or the socket cannot
/// be set up. Per-job failures never abort the daemon — they are
/// recorded in the job's status.
pub fn serve(opts: &ServeOptions) -> Result<(), ServiceError> {
    let jobs_dir = opts.dir.join("jobs");
    std::fs::create_dir_all(&jobs_dir)?;
    let (jobs, resumable) = load_jobs(&jobs_dir);
    let next_id = Arc::new(Mutex::new(jobs.keys().max().map_or(1, |m| m + 1)));
    let inner = Arc::new(Inner {
        jobs_dir,
        stopping: AtomicBool::new(false),
        jobs: Mutex::new(jobs),
        changed: Condvar::new(),
        metrics: MetricsHub::new(),
    });

    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;

    let pool_inner = Arc::clone(&inner);
    let pool = Arc::new(WorkerPool::new(
        opts.workers,
        opts.queue_capacity.max(resumable.len()),
        move |id| run_job(&pool_inner, id),
    ));
    for id in resumable {
        let _ = pool.try_submit(id);
    }

    // The endpoint file is the last thing written: once it exists,
    // clients may connect.
    write_atomic(&opts.dir.join(ENDPOINT_FILE), format!("{addr}\n").as_bytes())?;

    for conn in listener.incoming() {
        if inner.stopping() {
            break;
        }
        let Ok(stream) = conn else { continue };
        let inner = Arc::clone(&inner);
        let pool = Arc::clone(&pool);
        let next_id = Arc::clone(&next_id);
        std::thread::spawn(move || handle_conn(stream, inner, pool, next_id, addr));
    }

    // Workers observe `stopping` at their next chunk boundary,
    // checkpoint, and park their job as queued.
    pool.stop();
    let _ = std::fs::remove_file(opts.dir.join(ENDPOINT_FILE));
    Ok(())
}
