//! Gadget discovery and classification.

use std::collections::BTreeSet;
use vcfr_isa::{decode, Addr, Image, Inst, Reg};

/// Maximum instructions in a gadget (ROPgadget's default depth is
/// comparable).
pub const MAX_GADGET_LEN: usize = 5;

/// The terminating instruction of a gadget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GadgetEnd {
    /// Ends in `ret` — a classic ROP gadget.
    Ret,
    /// Ends in `jmp reg` — a JOP gadget.
    JmpReg(Reg),
    /// Ends in `call reg` — a COP gadget.
    CallReg(Reg),
    /// Ends in `jmp [m]` / `call [m]`.
    Mem,
}

/// One discovered gadget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gadget {
    /// Start address (any byte offset, aligned or not).
    pub addr: Addr,
    /// The decoded instruction sequence, terminator included.
    pub insts: Vec<Inst>,
    /// How it transfers control onward.
    pub end: GadgetEnd,
}

impl Gadget {
    /// Total encoded length in bytes.
    pub fn byte_len(&self) -> usize {
        self.insts.iter().map(Inst::len).sum()
    }
}

/// What a gadget gives an exploit writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Capability {
    /// Pops a value from the attacker-controlled stack into a register.
    LoadReg(Reg),
    /// Writes a register through a register-addressed memory operand.
    WriteMem,
    /// Reads memory through a register-addressed operand.
    ReadMem,
    /// Moves a value between registers.
    MoveReg,
    /// Arithmetic/logic on a register.
    Arith,
    /// Raises a syscall (the `sys` instruction).
    Syscall,
    /// Ends in an attacker-steerable indirect transfer (pivot).
    Pivot,
}

/// Scans the text section for gadgets at every byte offset.
///
/// A gadget is a sequence of 1..=[`MAX_GADGET_LEN`] (five) instructions with no
/// interior control transfer, ending in `ret` or an indirect transfer.
/// Direct branches abort a candidate (the attacker cannot steer them),
/// as do `halt` and decode failures.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// let mut a = Asm::new(0x1000);
/// a.pop(Reg::Rdi);
/// a.ret();
/// let img = a.finish().unwrap();
/// let gadgets = vcfr_gadget::scan(&img);
/// assert!(gadgets.iter().any(|g| g.addr == 0x1000 && g.insts.len() == 2));
/// ```
pub fn scan(image: &Image) -> Vec<Gadget> {
    let text = image.text();
    let mut out = Vec::new();
    for start in 0..text.bytes.len() {
        let mut insts = Vec::new();
        let mut off = start;
        for _ in 0..MAX_GADGET_LEN {
            let Ok(inst) = decode(&text.bytes[off..]) else { break };
            off += inst.len();
            let end = match inst {
                Inst::Ret => Some(GadgetEnd::Ret),
                Inst::JmpR { target } => Some(GadgetEnd::JmpReg(target)),
                Inst::CallR { target } => Some(GadgetEnd::CallReg(target)),
                Inst::JmpM { .. } | Inst::CallM { .. } => Some(GadgetEnd::Mem),
                _ => None,
            };
            if let Some(end) = end {
                insts.push(inst);
                out.push(Gadget {
                    addr: text.base + start as Addr,
                    insts: insts.clone(),
                    end,
                });
                break;
            }
            // Direct transfers and halts cannot appear inside a gadget.
            if inst.is_control() || matches!(inst, Inst::Halt) {
                break;
            }
            insts.push(inst);
        }
    }
    out
}

/// Derives the capabilities of one gadget.
pub fn classify(g: &Gadget) -> BTreeSet<Capability> {
    let mut caps = BTreeSet::new();
    // Only ret-gadgets give clean stack-sourced register loads; all
    // indirect terminators give a pivot.
    if g.end != GadgetEnd::Ret {
        caps.insert(Capability::Pivot);
    }
    for inst in &g.insts {
        match inst {
            Inst::Pop { .. } if g.end == GadgetEnd::Ret => {
                if let Inst::Pop { dst } = inst {
                    caps.insert(Capability::LoadReg(*dst));
                }
            }
            Inst::Store { .. } | Inst::StoreIdx { .. } | Inst::StoreB { .. } => {
                caps.insert(Capability::WriteMem);
            }
            Inst::Load { .. } | Inst::LoadIdx { .. } | Inst::LoadB { .. } => {
                caps.insert(Capability::ReadMem);
            }
            Inst::MovRR { .. } => {
                caps.insert(Capability::MoveReg);
            }
            Inst::AluRR { .. }
            | Inst::AluRI { .. }
            | Inst::Neg { .. }
            | Inst::Not { .. } => {
                caps.insert(Capability::Arith);
            }
            // Unlike x86 (where the syscall number travels in a
            // register the attacker controls), `sys` takes an immediate:
            // only the shell syscall itself is attack-relevant.
            Inst::Sys { num } if *num == vcfr_isa::SYS_SHELL => {
                caps.insert(Capability::Syscall);
            }
            _ => {}
        }
    }
    caps
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm};

    #[test]
    fn finds_pop_ret_and_classifies_it() {
        let mut a = Asm::new(0x1000);
        a.pop(Reg::Rdi);
        a.pop(Reg::Rsi);
        a.ret();
        let img = a.finish().unwrap();
        let gs = scan(&img);
        let full = gs.iter().find(|g| g.addr == 0x1000).unwrap();
        assert_eq!(full.insts.len(), 3);
        let caps = classify(full);
        assert!(caps.contains(&Capability::LoadReg(Reg::Rdi)));
        assert!(caps.contains(&Capability::LoadReg(Reg::Rsi)));
        // Suffix gadgets at +2 and +4 exist too (every byte offset).
        assert!(gs.iter().any(|g| g.addr == 0x1002));
        assert!(gs.iter().any(|g| g.addr == 0x1004 && g.insts.len() == 1));
    }

    #[test]
    fn direct_branches_break_gadgets() {
        let mut a = Asm::new(0x1000);
        let l = a.label();
        a.pop(Reg::Rax);
        a.jmp(l);
        a.bind(l);
        a.ret();
        let img = a.finish().unwrap();
        let gs = scan(&img);
        // No gadget starts at 0x1000 (pop; jmp aborts); the bare ret at
        // 0x1007 is found.
        assert!(!gs.iter().any(|g| g.addr == 0x1000));
        assert!(gs.iter().any(|g| g.addr == 0x1007 && g.end == GadgetEnd::Ret));
    }

    #[test]
    fn unaligned_bytes_yield_unintended_gadgets() {
        // The 0x0303 immediate trick: `and r10, 0x0303` encodes
        // [0x32, 0x0a, 0x03, 0x03, 0x00, 0x00]; at +2 that decodes as
        // `sys 3; nop; nop; ...` — append a ret and the scanner must see
        // a syscall gadget that the programmer never wrote.
        let mut a = Asm::new(0x1000);
        a.alu_ri(AluOp::And, Reg::R10, 0x0303);
        a.ret();
        let img = a.finish().unwrap();
        let gs = scan(&img);
        let sys_gadget = gs
            .iter()
            .find(|g| classify(g).contains(&Capability::Syscall))
            .expect("unintended sys gadget");
        assert_eq!(sys_gadget.addr, 0x1002);
        assert_eq!(sys_gadget.end, GadgetEnd::Ret);
    }

    #[test]
    fn jop_gadgets_classified_as_pivot() {
        let mut a = Asm::new(0x1000);
        a.alu_ri(AluOp::Add, Reg::Rax, 8);
        a.jmp_r(Reg::Rax);
        let img = a.finish().unwrap();
        let gs = scan(&img);
        let g = gs.iter().find(|g| g.addr == 0x1000).unwrap();
        assert_eq!(g.end, GadgetEnd::JmpReg(Reg::Rax));
        let caps = classify(g);
        assert!(caps.contains(&Capability::Pivot));
        assert!(caps.contains(&Capability::Arith));
    }

    #[test]
    fn byte_len_sums_encodings() {
        let g = Gadget {
            addr: 0,
            insts: vec![Inst::Pop { dst: Reg::Rax }, Inst::Ret],
            end: GadgetEnd::Ret,
        };
        assert_eq!(g.byte_len(), 3);
    }
}
