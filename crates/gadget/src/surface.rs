//! Before/after attack-surface comparison (Figure 11 and the §V-B
//! payload experiment).

use crate::payload::{assemble_payload, templates};
use crate::scanner::{self as vcfr_gadget_scanner_alias, scan};
use vcfr_core::RandAddr;
use vcfr_isa::Image;
use vcfr_rewriter::RandomizedProgram;

/// The result of running the modified-ROPgadget methodology on one
/// binary, before and after randomization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurfaceComparison {
    /// Gadgets found in the original binary.
    pub total_gadgets: usize,
    /// Gadgets still mountable after randomization (their start address
    /// is accepted by the translation tables as an un-randomized
    /// fail-over location).
    pub usable_after: usize,
    /// Payload templates assemblable before randomization.
    pub payloads_before: usize,
    /// Payload templates assemblable after.
    pub payloads_after: usize,
    /// Number of templates tried.
    pub templates_tried: usize,
}

impl SurfaceComparison {
    /// Percentage of gadgets removed by randomization — Figure 11's
    /// y-axis.
    pub fn removal_pct(&self) -> f64 {
        if self.total_gadgets == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.usable_after as f64 / self.total_gadgets as f64)
        }
    }
}

/// Runs the scanner and payload assembler against `image`, then against
/// the same binary under `rp`'s randomization.
///
/// The attacker model matches the paper's: the adversary knows the
/// *original* binary (it is distributed publicly) but cannot observe the
/// randomized layout; a gadget is mountable only if the address the
/// attacker must inject — the original one — still translates, i.e. the
/// location was left un-randomized as a fail-over.
pub fn compare_surface(image: &Image, rp: &RandomizedProgram) -> SurfaceComparison {
    let gadgets = scan(image);

    // A gadget is mountable after randomization only when *every* byte it
    // executes still sits at its original address: the start must be an
    // accepted un-randomized location AND each following instruction of
    // the gadget must be, too (a single pinned instruction redirects back
    // into the randomized space immediately after executing, so a gadget
    // spilling past it never runs).
    let identity = |addr: vcfr_isa::Addr| {
        rp.table.derand(RandAddr(addr)).map(|o| o.raw() == addr).unwrap_or(false)
    };
    let gadget_usable = |g: &vcfr_gadget_scanner_alias::Gadget| {
        let mut a = g.addr;
        g.insts.iter().all(|i| {
            let ok = identity(a);
            a = a.wrapping_add(i.len() as vcfr_isa::Addr);
            ok
        })
    };

    let usable_flags: Vec<bool> = gadgets.iter().map(gadget_usable).collect();
    let usable_after = usable_flags.iter().filter(|u| **u).count();
    let usable_pool: Vec<_> = gadgets
        .iter()
        .zip(&usable_flags)
        .filter(|(_, u)| **u)
        .map(|(g, _)| g.clone())
        .collect();
    let ts = templates();
    let payloads_before =
        ts.iter().filter(|t| assemble_payload(t, &gadgets, |_| true).is_some()).count();
    let payloads_after =
        ts.iter().filter(|t| assemble_payload(t, &usable_pool, |_| true).is_some()).count();

    SurfaceComparison {
        total_gadgets: gadgets.len(),
        usable_after,
        payloads_before,
        payloads_after,
        templates_tried: ts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm, Reg};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    fn gadget_rich_program() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.call_named("helper");
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("helper");
        a.push(Reg::Rbx);
        a.pop(Reg::Rbx);
        a.ret();
        a.func("spare");
        a.pop(Reg::Rdi);
        a.ret();
        a.func("writer");
        a.store(Reg::Rbx, 0, Reg::Rax);
        a.ret();
        a.func("hidden_sys");
        a.alu_ri(AluOp::And, Reg::R10, 0x0303);
        a.ret();
        a.func("pivot");
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.jmp_r(Reg::Rcx);
        a.finish().unwrap()
    }

    #[test]
    fn full_randomization_removes_everything() {
        let img = gadget_rich_program();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let c = compare_surface(&img, &rp);
        assert!(c.total_gadgets > 5);
        assert_eq!(c.usable_after, 0);
        assert!((c.removal_pct() - 100.0).abs() < 1e-9);
        assert_eq!(c.payloads_before, c.templates_tried);
        assert_eq!(c.payloads_after, 0);
    }

    #[test]
    fn failover_functions_leave_residual_surface() {
        let img = gadget_rich_program();
        let mut cfg = RandomizeConfig::with_seed(2);
        cfg.keep_unrandomized.push("spare".into());
        let rp = randomize(&img, &cfg).unwrap();
        let c = compare_surface(&img, &rp);
        assert!(c.usable_after > 0, "fail-over gadgets should survive");
        assert!(c.usable_after < c.total_gadgets);
        assert!(c.removal_pct() > 50.0);
    }

    #[test]
    fn removal_pct_handles_empty() {
        let c = SurfaceComparison {
            total_gadgets: 0,
            usable_after: 0,
            payloads_before: 0,
            payloads_after: 0,
            templates_tried: 3,
        };
        assert_eq!(c.removal_pct(), 0.0);
    }
}
