//! A ROPgadget-style gadget scanner and payload assembler (§V-B).
//!
//! The paper evaluates its security claim with ROPgadget 4.0.1, modified
//! to "search for gadgets using un-randomized instruction locations".
//! This crate reproduces that methodology over our ISA:
//!
//! * [`scan`] decodes candidate gadgets at **every byte offset** of the
//!   text section (unintended instructions included — the variable-length
//!   encoding makes unaligned decodes meaningful, exactly as on x86),
//! * [`classify`] assigns each gadget the capabilities an exploit writer
//!   cares about (load a register from the stack, write memory, perform
//!   arithmetic, pivot control, raise a syscall),
//! * [`templates`] provides attack-payload templates and
//!   [`assemble_payload`] tries to satisfy one from the *usable* gadget
//!   pool,
//! * [`compare_surface`] runs the whole pipeline before and after
//!   randomization: after VCFR only gadgets whose start address the
//!   translation tables still accept (un-randomized fail-over locations)
//!   remain mountable — everything else is unaddressable (Figure 11).
//!
//! [`AttackSurface`] consolidates the whole pipeline behind one entry
//! point, and [`fuzz_params`] runs the coverage-guided gadget-chain
//! fuzzer measuring empirical attacker success probability at one
//! [`vcfr_core::RandParams`] point — the security half of the
//! entropy/security frontier.

#![warn(missing_docs)]

mod attack;
mod fuzz;
mod payload;
mod scanner;
mod surface;

pub use attack::{AttackSurface, ChainRun};
pub use fuzz::{
    fuzz_params, fuzz_trial, seed_corpus, splitmix64, FuzzConfig, FuzzReport, TrialReport,
};
pub use payload::{assemble_payload, execute_rop, templates, Payload, PayloadTemplate, Requirement};
pub use scanner::{classify, scan, Capability, Gadget, GadgetEnd, MAX_GADGET_LEN};
pub use surface::{compare_surface, SurfaceComparison};
