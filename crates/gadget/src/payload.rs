//! Attack-payload templates and the payload assembler (ROPgadget's
//! "auto-roper").

use crate::scanner::{classify, Capability, Gadget};
use vcfr_isa::{Addr, Reg};

/// One requirement of a payload template.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Requirement {
    /// A gadget that pops a stack value into *some* register.
    LoadAnyReg,
    /// A gadget that pops a stack value into this specific register.
    LoadReg(Reg),
    /// A gadget that writes memory through a register.
    WriteMem,
    /// A gadget performing register arithmetic.
    Arith,
    /// A gadget ending in an attacker-steerable indirect transfer.
    Pivot,
    /// A gadget raising a syscall.
    Syscall,
}

/// A named payload template: the gadget classes an exploit needs.
#[derive(Clone, Debug)]
pub struct PayloadTemplate {
    /// Human-readable name.
    pub name: &'static str,
    /// What the chain must contain, in order.
    pub required: Vec<Requirement>,
}

/// An assembled payload: one gadget address per requirement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Payload {
    /// Template name.
    pub name: &'static str,
    /// The gadget chain (addresses the attacker writes to the stack).
    pub chain: Vec<Addr>,
}

impl Payload {
    /// Renders the payload as the exact 64-bit words an attacker writes
    /// to the victim's stack: each gadget address followed by one filler
    /// word per `pop` the gadget performs before transferring onward.
    pub fn stack_words(&self, gadgets: &[Gadget]) -> Vec<u64> {
        let mut out = Vec::new();
        for addr in &self.chain {
            out.push(*addr as u64);
            if let Some(g) = gadgets.iter().find(|g| g.addr == *addr) {
                let pops = g
                    .insts
                    .iter()
                    .filter(|i| matches!(i, vcfr_isa::Inst::Pop { .. }))
                    .count();
                for k in 0..pops {
                    out.push(0x4141_0000 + k as u64); // attacker data
                }
            }
        }
        out
    }
}

/// Executes a ROP chain against `image` exactly as an exploited `ret`
/// would: the `stack_words` are written to the stack, the stack pointer
/// is aimed past the first entry, and control jumps to the first gadget.
///
/// Returns the machine's stop reason ([`vcfr_isa::StopReason::Shell`] means the
/// chain achieved code execution) — or the architectural fault that
/// contained it.
///
/// # Errors
///
/// Propagates the fault that stopped the chain (on a randomized binary
/// this is typically [`vcfr_isa::ExecError::BadJumpTarget`]).
pub fn execute_rop(
    image: &vcfr_isa::Image,
    stack_words: &[u64],
    budget: u64,
) -> Result<vcfr_isa::StopReason, vcfr_isa::ExecError> {
    let mut m = vcfr_isa::Machine::new(image);
    let base = image.stack_top.wrapping_sub((stack_words.len() as Addr + 4) * 8);
    for (i, w) in stack_words.iter().enumerate() {
        m.mem_mut().write_u64(base + (i as Addr) * 8, *w);
    }
    let first = stack_words.first().copied().unwrap_or(0) as Addr;
    m.set_reg(Reg::Rsp, (base + 8) as u64);
    m.set_pc(first);
    m.run(budget).map(|o| o.stop)
}

/// The built-in templates, modelled on ROPgadget's payload generators.
pub fn templates() -> Vec<PayloadTemplate> {
    vec![
        PayloadTemplate {
            // execve-style: stage a value, then raise a syscall.
            name: "spawn-shell",
            required: vec![Requirement::LoadAnyReg, Requirement::Syscall],
        },
        PayloadTemplate {
            // Classic write-what-where: load address and value, store.
            name: "write-what-where",
            required: vec![
                Requirement::LoadAnyReg,
                Requirement::LoadAnyReg,
                Requirement::WriteMem,
            ],
        },
        PayloadTemplate {
            // JOP-style dispatcher: arithmetic plus an indirect pivot.
            name: "jop-pivot",
            required: vec![Requirement::Arith, Requirement::Pivot],
        },
    ]
}

/// Whether a gadget's stack effect is predictable enough to chain: only
/// `pop`s may move the stack pointer (a `push`, or any other write to
/// `rsp`, desynchronises the attacker's layout — real ROP compilers skip
/// such gadgets too).
fn chainable(g: &Gadget) -> bool {
    g.insts.iter().all(|i| {
        if matches!(i, vcfr_isa::Inst::Push { .. } | vcfr_isa::Inst::PushI { .. }) {
            return false;
        }
        match i {
            vcfr_isa::Inst::Pop { .. } | vcfr_isa::Inst::Ret => true,
            other => !other.writes().contains(Reg::Rsp),
        }
    })
}

fn satisfies(caps: &std::collections::BTreeSet<Capability>, req: Requirement) -> bool {
    match req {
        Requirement::LoadAnyReg => caps.iter().any(|c| matches!(c, Capability::LoadReg(_))),
        Requirement::LoadReg(r) => caps.contains(&Capability::LoadReg(r)),
        Requirement::WriteMem => caps.contains(&Capability::WriteMem),
        Requirement::Arith => caps.contains(&Capability::Arith),
        Requirement::Pivot => caps.contains(&Capability::Pivot),
        Requirement::Syscall => caps.contains(&Capability::Syscall),
    }
}

/// Tries to satisfy `template` from the gadgets for which `usable`
/// returns `true` (the modified-ROPgadget filter: after randomization
/// only un-randomized locations remain usable).
///
/// Returns the first chain found, preferring shorter gadgets (fewer side
/// effects), or `None` when some requirement cannot be met.
pub fn assemble_payload(
    template: &PayloadTemplate,
    gadgets: &[Gadget],
    usable: impl Fn(Addr) -> bool,
) -> Option<Payload> {
    // Pre-classify the usable pool, shortest gadgets first.
    let mut pool: Vec<(&Gadget, std::collections::BTreeSet<Capability>)> = gadgets
        .iter()
        .filter(|g| usable(g.addr) && chainable(g))
        .map(|g| (g, classify(g)))
        .collect();
    pool.sort_by_key(|(g, _)| g.insts.len());

    let mut chain = Vec::with_capacity(template.required.len());
    for req in &template.required {
        let g = pool.iter().find(|(_, caps)| satisfies(caps, *req))?;
        chain.push(g.0.addr);
    }
    Some(Payload { name: template.name, chain })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;
    use vcfr_isa::{AluOp, Asm};

    /// A binary with a rich gadget population.
    fn gadget_rich() -> vcfr_isa::Image {
        let mut a = Asm::new(0x1000);
        a.pop(Reg::Rdi);
        a.ret();
        a.store(Reg::Rbx, 0, Reg::Rax);
        a.ret();
        a.alu_ri(AluOp::And, Reg::R10, 0x0303); // hides sys 3
        a.ret();
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.jmp_r(Reg::Rcx);
        a.finish().unwrap()
    }

    #[test]
    fn all_templates_assemble_on_a_rich_binary() {
        let img = gadget_rich();
        let gs = scan(&img);
        for t in templates() {
            let p = assemble_payload(&t, &gs, |_| true)
                .unwrap_or_else(|| panic!("{} should assemble", t.name));
            assert_eq!(p.chain.len(), t.required.len());
        }
    }

    #[test]
    fn nothing_assembles_when_no_address_is_usable() {
        let img = gadget_rich();
        let gs = scan(&img);
        for t in templates() {
            assert!(assemble_payload(&t, &gs, |_| false).is_none());
        }
    }

    #[test]
    fn missing_capability_blocks_a_template() {
        // Only a pop;ret — no syscall gadget anywhere.
        let mut a = Asm::new(0x1000);
        a.pop(Reg::Rdi);
        a.ret();
        let img = a.finish().unwrap();
        let gs = scan(&img);
        let shell = &templates()[0];
        assert!(assemble_payload(shell, &gs, |_| true).is_none());
    }

    #[test]
    fn assembled_shell_payload_actually_executes() {
        let img = gadget_rich();
        let gs = scan(&img);
        let shell = &templates()[0];
        let p = assemble_payload(shell, &gs, |_| true).expect("assembles");
        let words = p.stack_words(&gs);
        // One filler word per pop in the load gadget.
        assert!(words.len() > p.chain.len());
        let stop = execute_rop(&img, &words, 1_000).expect("chain runs");
        assert_eq!(stop, vcfr_isa::StopReason::Shell, "ROP chain must pop a shell");
    }

    #[test]
    fn specific_register_requirement() {
        let img = gadget_rich();
        let gs = scan(&img);
        let t = PayloadTemplate {
            name: "needs-rdi",
            required: vec![Requirement::LoadReg(Reg::Rdi)],
        };
        assert!(assemble_payload(&t, &gs, |_| true).is_some());
        let t2 = PayloadTemplate {
            name: "needs-r15",
            required: vec![Requirement::LoadReg(Reg::R15)],
        };
        assert!(assemble_payload(&t2, &gs, |_| true).is_none());
    }
}
