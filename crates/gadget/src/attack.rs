//! The consolidated attack-surface API: one entry point over the
//! scanner, classifier, payload assembler, and chain executor.
//!
//! [`AttackSurface`] owns the gadget population of one binary and exposes
//! everything an attacker (or an attacker model) does with it — census the
//! capabilities, assemble template payloads, render stack words, launch a
//! chain against the original image or against a randomized rewrite. The
//! `rop_attack` example, the security pipeline tests, `vcfr gadgets`, and
//! the coverage-guided fuzzer all drive this interface.

use std::collections::BTreeMap;

use crate::payload::{assemble_payload, templates, Payload, PayloadTemplate};
use crate::scanner::{classify, scan, Capability, Gadget};
use crate::surface::{compare_surface, SurfaceComparison};
use vcfr_isa::{Addr, ExecError, Image, Machine, Reg, StopReason};
use vcfr_rewriter::RandomizedProgram;

/// The outcome of launching one chain: the architectural verdict plus the
/// number of instructions that actually retired before it. The step count
/// is the fuzzer's coverage signal — a probe that decodes and runs even
/// garbage has found mapped code, while an immediate fault has not.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChainRun {
    /// How the machine stopped: a [`StopReason`] (where
    /// [`StopReason::Shell`] means the chain achieved code execution) or
    /// the fault that contained it.
    pub result: Result<StopReason, ExecError>,
    /// Instructions retired before the stop or fault.
    pub steps: u64,
}

impl ChainRun {
    /// Whether the chain spawned a shell — full compromise.
    pub fn shell(&self) -> bool {
        self.result == Ok(StopReason::Shell)
    }
}

/// The gadget population of one binary, with every operation an exploit
/// pipeline performs on it.
#[derive(Clone, Debug)]
pub struct AttackSurface<'a> {
    image: &'a Image,
    gadgets: Vec<Gadget>,
}

impl<'a> AttackSurface<'a> {
    /// Scans `image` at every byte offset (the modified-ROPgadget
    /// methodology) and wraps the result.
    pub fn scan(image: &'a Image) -> AttackSurface<'a> {
        AttackSurface { image, gadgets: scan(image) }
    }

    /// The binary this surface was scanned from.
    pub fn image(&self) -> &Image {
        self.image
    }

    /// Every gadget found, in address order.
    pub fn gadgets(&self) -> &[Gadget] {
        &self.gadgets
    }

    /// How many gadgets expose each capability.
    pub fn capability_census(&self) -> BTreeMap<Capability, usize> {
        let mut census = BTreeMap::new();
        for g in &self.gadgets {
            for cap in classify(g) {
                *census.entry(cap).or_insert(0) += 1;
            }
        }
        census
    }

    /// The first gadget exposing `cap`, if any.
    pub fn find(&self, cap: Capability) -> Option<&Gadget> {
        self.gadgets.iter().find(|g| classify(g).contains(&cap))
    }

    /// Tries to satisfy `template` from the gadgets whose start address
    /// `usable` accepts (after randomization: un-randomized fail-over
    /// locations only).
    pub fn assemble(
        &self,
        template: &PayloadTemplate,
        usable: impl Fn(Addr) -> bool,
    ) -> Option<Payload> {
        assemble_payload(template, &self.gadgets, usable)
    }

    /// Runs every built-in template through the assembler with the whole
    /// surface usable — the attacker's offline study of the public binary.
    pub fn payloads(&self) -> Vec<(PayloadTemplate, Option<Payload>)> {
        templates()
            .into_iter()
            .map(|t| {
                let p = assemble_payload(&t, &self.gadgets, |_| true);
                (t, p)
            })
            .collect()
    }

    /// Renders `payload` as the exact 64-bit words written to the
    /// victim's stack.
    pub fn stack_words(&self, payload: &Payload) -> Vec<u64> {
        payload.stack_words(&self.gadgets)
    }

    /// Launches a chain against the original (un-randomized) binary, as
    /// an exploited `ret` would.
    pub fn launch(&self, stack_words: &[u64], budget: u64) -> ChainRun {
        run_chain(Machine::new(self.image), self.image.stack_top, stack_words, budget)
    }

    /// Launches a chain against the binary under `rp`'s randomization:
    /// the same stack smash, but control lands in the scattered address
    /// space the attacker cannot observe.
    pub fn launch_against(
        &self,
        rp: &RandomizedProgram,
        stack_words: &[u64],
        budget: u64,
    ) -> ChainRun {
        run_chain(rp.scattered_machine(), rp.scattered.stack_top, stack_words, budget)
    }

    /// The full before/after comparison (Figure 11's pipeline).
    pub fn against(&self, rp: &RandomizedProgram) -> SurfaceComparison {
        compare_surface(self.image, rp)
    }
}

/// Writes `stack_words` below `stack_top`, aims the stack pointer past
/// the first entry, jumps to it, and runs — the shared chain launcher
/// behind [`AttackSurface::launch`] and [`AttackSurface::launch_against`].
fn run_chain(mut m: Machine, stack_top: Addr, stack_words: &[u64], budget: u64) -> ChainRun {
    let base = stack_top.wrapping_sub((stack_words.len() as Addr + 4) * 8);
    for (i, w) in stack_words.iter().enumerate() {
        m.mem_mut().write_u64(base + (i as Addr) * 8, *w);
    }
    let first = stack_words.first().copied().unwrap_or(0) as Addr;
    m.set_reg(Reg::Rsp, (base + 8) as u64);
    m.set_pc(first);
    let mut steps = 0u64;
    let result = m.run_with(budget, |_| steps += 1).map(|o| o.stop);
    ChainRun { result, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    fn gadget_rich() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("spare");
        a.pop(Reg::Rdi);
        a.ret();
        a.func("writer");
        a.store(Reg::Rbx, 0, Reg::Rax);
        a.ret();
        a.func("hidden_sys");
        a.alu_ri(AluOp::And, Reg::R10, 0x0303);
        a.ret();
        a.func("pivot");
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.jmp_r(Reg::Rcx);
        a.finish().unwrap()
    }

    #[test]
    fn census_counts_every_capability() {
        let img = gadget_rich();
        let s = AttackSurface::scan(&img);
        let census = s.capability_census();
        assert!(census.contains_key(&Capability::Syscall), "hidden sys 3 must be found");
        assert!(census.values().all(|n| *n > 0));
        assert!(s.find(Capability::Syscall).is_some());
    }

    #[test]
    fn surface_launch_matches_execute_rop() {
        let img = gadget_rich();
        let s = AttackSurface::scan(&img);
        let (_, p) = s.payloads().into_iter().find(|(t, _)| t.name == "spawn-shell").unwrap();
        let p = p.expect("spawn-shell assembles on a rich binary");
        let words = s.stack_words(&p);
        let run = s.launch(&words, 1_000);
        assert!(run.shell(), "chain must pop a shell on the original binary");
        assert!(run.steps > 0);
        assert_eq!(
            run.result,
            crate::payload::execute_rop(&img, &words, 1_000),
            "AttackSurface::launch is the same experiment as execute_rop"
        );
    }

    #[test]
    fn randomization_contains_the_same_chain() {
        let img = gadget_rich();
        let s = AttackSurface::scan(&img);
        let rp = randomize(&img, &RandomizeConfig::with_seed(7)).unwrap();
        let (_, p) = s.payloads().into_iter().find(|(t, _)| t.name == "spawn-shell").unwrap();
        let words = s.stack_words(&p.unwrap());
        let run = s.launch_against(&rp, &words, 1_000);
        assert!(!run.shell(), "original addresses must not work in the scattered space");
        let c = s.against(&rp);
        assert_eq!(c.usable_after, 0);
    }
}
