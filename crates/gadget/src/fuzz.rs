//! Coverage-guided gadget-chain fuzzing: the empirical attacker model
//! behind the entropy/security frontier.
//!
//! [`compare_surface`](crate::compare_surface) answers the *static*
//! question — which gadgets remain addressable after randomization. The
//! fuzzer answers the *dynamic* one: given a probe budget, how often does
//! an adaptive attacker actually spawn a shell against a randomized
//! layout? Each trial randomizes the binary with a fresh layout seed
//! (modelling re-randomization between attempts), seeds a corpus from the
//! offline study of the public binary (the `rop_attack` example's
//! methodology: assembled template payloads plus the bare syscall-gadget
//! chain), then spends its probes guessing entry points inside the
//! randomization region. Feedback is architectural: a probe that retires
//! even one instruction has found mapped code, so its address becomes a
//! hot spot for follow-up probes and the mutated chain joins the corpus —
//! new pages and new chains are the coverage signal.
//!
//! Every function here is a pure function of its arguments — trials can
//! be sharded across threads in any order and the aggregate report is
//! bit-identical.

use std::collections::BTreeSet;

use crate::attack::AttackSurface;
use crate::scanner::Capability;
use vcfr_core::RandParams;
use vcfr_isa::{Addr, Image};
use vcfr_rewriter::{randomize, RandomizeConfig};

/// SplitMix64 — the fuzzer's deterministic RNG (same generator the
/// rewriter's layout shuffle uses).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fuzzing campaign parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuzzConfig {
    /// Master seed: every layout and every probe sequence derives from it.
    pub seed: u64,
    /// Independent randomized layouts attacked (one re-randomization per
    /// trial).
    pub trials: u32,
    /// Chain launches the attacker may spend against each layout.
    pub probes_per_trial: u32,
    /// Instruction budget per launch.
    pub exec_budget: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig { seed: 2015, trials: 24, probes_per_trial: 96, exec_budget: 4096 }
    }
}

/// What one trial (one randomized layout) yielded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrialReport {
    /// Trial index.
    pub trial: u32,
    /// Whether some probe spawned a shell.
    pub succeeded: bool,
    /// Probes spent until success, or the full budget on failure.
    pub probes_spent: u32,
    /// Distinct 4 KiB pages of the randomization region where a probe
    /// found mapped code.
    pub pages_discovered: usize,
    /// Mutated chains that earned a place in the corpus (new coverage).
    pub chains_extended: usize,
}

/// The aggregate of a fuzzing campaign at one parameter point.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzReport {
    /// The randomization parameters under attack.
    pub params: RandParams,
    /// The campaign configuration.
    pub config: FuzzConfig,
    /// Per-trial outcomes, in trial order.
    pub trials: Vec<TrialReport>,
}

impl FuzzReport {
    /// Trials that spawned a shell.
    pub fn successes(&self) -> usize {
        self.trials.iter().filter(|t| t.succeeded).count()
    }

    /// Empirical attacker success probability: successful trials over
    /// total trials (0 when no trials ran).
    pub fn success_probability(&self) -> f64 {
        if self.trials.is_empty() {
            0.0
        } else {
            self.successes() as f64 / self.trials.len() as f64
        }
    }

    /// Mean probes spent per trial.
    pub fn mean_probes(&self) -> f64 {
        if self.trials.is_empty() {
            0.0
        } else {
            self.trials.iter().map(|t| t.probes_spent as f64).sum::<f64>()
                / self.trials.len() as f64
        }
    }

    /// Total pages of mapped code discovered across all trials.
    pub fn pages_discovered(&self) -> usize {
        self.trials.iter().map(|t| t.pages_discovered).sum()
    }
}

/// The attacker's offline preparation against the public binary: every
/// assemblable template payload rendered to stack words, plus the bare
/// one-gadget syscall chain the `rop_attack` example mounts.
pub fn seed_corpus(surface: &AttackSurface<'_>) -> Vec<Vec<u64>> {
    let mut corpus: Vec<Vec<u64>> = surface
        .payloads()
        .into_iter()
        .filter_map(|(_, p)| p)
        .map(|p| surface.stack_words(&p))
        .collect();
    if let Some(g) = surface.find(Capability::Syscall) {
        corpus.push(vec![g.addr as u64]);
    }
    if corpus.is_empty() {
        // Nothing assembles offline: the attacker still probes blind.
        corpus.push(vec![0]);
    }
    corpus
}

/// Runs one trial: randomize with a trial-specific layout seed, then
/// probe. Pure function of its arguments — shard freely.
pub fn fuzz_trial(
    surface: &AttackSurface<'_>,
    seeds: &[Vec<u64>],
    params: &RandParams,
    fz: &FuzzConfig,
    trial: u32,
) -> TrialReport {
    let failed = TrialReport {
        trial,
        succeeded: false,
        probes_spent: 0,
        pages_discovered: 0,
        chains_extended: 0,
    };
    let mut layout_state = fz.seed ^ 0x5ec0_4d0a_11ab_1e5e ^ u64::from(trial);
    let layout_seed = splitmix64(&mut layout_state);
    let rcfg = RandomizeConfig::from_params(layout_seed, params);
    let Ok(rp) = randomize(surface.image(), &rcfg) else {
        return failed;
    };
    let (lo, hi) = rp.region;
    let span = u64::from(hi.wrapping_sub(lo)).max(1);

    let mut state = fz.seed ^ u64::from(trial).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut corpus: Vec<Vec<u64>> = seeds.iter().filter(|c| !c.is_empty()).cloned().collect();
    if corpus.is_empty() {
        corpus.push(vec![0]);
    }
    let mut hot: Vec<Addr> = Vec::new();
    let mut pages: BTreeSet<Addr> = BTreeSet::new();
    let mut chains_extended = 0usize;

    for probe in 0..fz.probes_per_trial {
        // Half the probes jitter around known code, half explore blind.
        let guess = if !hot.is_empty() && splitmix64(&mut state) & 1 == 1 {
            let h = hot[(splitmix64(&mut state) % hot.len() as u64) as usize];
            let jitter = (splitmix64(&mut state) % 33) as Addr;
            h.wrapping_add(jitter).wrapping_sub(16).clamp(lo, hi - 1)
        } else {
            lo.wrapping_add((splitmix64(&mut state) % span) as Addr)
        };
        let pick = (splitmix64(&mut state) % corpus.len() as u64) as usize;
        let mut words = corpus[pick].clone();
        words[0] = u64::from(guess);
        let run = surface.launch_against(&rp, &words, fz.exec_budget);
        if run.shell() {
            return TrialReport {
                trial,
                succeeded: true,
                probes_spent: probe + 1,
                pages_discovered: pages.len(),
                chains_extended,
            };
        }
        if run.steps > 0 {
            // The guess decoded and retired real instructions: mapped
            // code. Remember the page and keep probing near it.
            pages.insert(guess >> 12);
            hot.push(guess);
            if corpus.len() < 64 {
                corpus.push(words);
                chains_extended += 1;
            }
        }
    }

    TrialReport {
        trial,
        succeeded: false,
        probes_spent: fz.probes_per_trial,
        pages_discovered: pages.len(),
        chains_extended,
    }
}

/// Runs the whole campaign sequentially: scan once, seed the corpus,
/// attack `fz.trials` fresh layouts. The parallel path (the frontier
/// campaign) shards [`fuzz_trial`] instead and gets the same bits.
pub fn fuzz_params(image: &Image, params: &RandParams, fz: &FuzzConfig) -> FuzzReport {
    let surface = AttackSurface::scan(image);
    let seeds = seed_corpus(&surface);
    let trials =
        (0..fz.trials).map(|t| fuzz_trial(&surface, &seeds, params, fz, t)).collect();
    FuzzReport { params: *params, config: *fz, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm, Reg};

    fn victim() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("spare");
        a.pop(Reg::Rdi);
        a.ret();
        a.func("hidden_sys");
        a.alu_ri(AluOp::And, Reg::R10, 0x0303);
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn campaign_is_deterministic() {
        let img = victim();
        let params = RandParams::default();
        let fz = FuzzConfig { trials: 4, probes_per_trial: 16, ..FuzzConfig::default() };
        let a = fuzz_params(&img, &params, &fz);
        let b = fuzz_params(&img, &params, &fz);
        assert_eq!(a, b, "same seed, same params, same report");
        assert_eq!(a.trials.len(), 4);
        assert!((0.0..=1.0).contains(&a.success_probability()));
    }

    #[test]
    fn trials_are_pure_and_order_free() {
        let img = victim();
        let surface = AttackSurface::scan(&img);
        let seeds = seed_corpus(&surface);
        let params = RandParams::default();
        let fz = FuzzConfig { trials: 3, probes_per_trial: 16, ..FuzzConfig::default() };
        let forward: Vec<_> =
            (0..3).map(|t| fuzz_trial(&surface, &seeds, &params, &fz, t)).collect();
        let mut backward: Vec<_> =
            (0..3).rev().map(|t| fuzz_trial(&surface, &seeds, &params, &fz, t)).collect();
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn dense_layouts_leak_coverage() {
        let img = victim();
        // sparsity 2: code fills about half the span, so probes find it.
        let params = RandParams { sparsity: 2, ..RandParams::default() };
        params.validate().unwrap();
        let fz = FuzzConfig { trials: 4, probes_per_trial: 64, ..FuzzConfig::default() };
        let report = fuzz_params(&img, &params, &fz);
        assert!(
            report.pages_discovered() > 0,
            "a dense layout must leak mapped pages to the fuzzer"
        );
    }

    #[test]
    fn seed_corpus_reflects_the_offline_study() {
        let img = victim();
        let surface = AttackSurface::scan(&img);
        let seeds = seed_corpus(&surface);
        assert!(!seeds.is_empty());
        assert!(seeds.iter().all(|c| !c.is_empty()));
        // The bare syscall-gadget chain from the rop_attack example is in.
        let sys = surface.find(Capability::Syscall).unwrap().addr as u64;
        assert!(seeds.iter().any(|c| c == &vec![sys]));
    }
}
