//! A self-contained stand-in for the parts of the `rand` crate this
//! workspace uses, so the build has no network dependency.
//!
//! The randomizer's calibrated experiment bands depend on the exact
//! pseudo-random stream, so [`rngs::StdRng`] reproduces `rand 0.8`'s
//! `StdRng` bit for bit: a 12-round ChaCha block cipher in counter mode
//! behind `rand_core`'s block-buffer logic, seeded through the same
//! PCG32-based `seed_from_u64` expansion, and sampled with the same
//! widening-multiply rejection method (`sample_single`). The ChaCha
//! block function is validated against the RFC 8439 20-round test
//! vector with the round count parameterised.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: raw 32- and 64-bit draws.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-width seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with `rand_core`'s PCG32-based
    /// filler, then seeds the generator. Bit-compatible with
    /// `rand 0.8`'s `SeedableRng::seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, matching `rand 0.8`'s
    /// `Rng::gen_range` (the single-sample code path).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce one uniform sample (the `gen_range`
/// argument bound).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// 32×32→64 widening multiply, split into (high, low) words.
#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = a as u64 * b as u64;
    ((t >> 32) as u32, t as u32)
}

/// 64×64→128 widening multiply, split into (high, low) words.
#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = a as u128 * b as u128;
    ((t >> 64) as u64, t as u64)
}

macro_rules! uniform_range_impl {
    ($ty:ty, $next:ident, $wmul:ident) => {
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = self.end.wrapping_sub(self.start);
                // rand 0.8 UniformInt::sample_single: widening multiply
                // with rejection zone (range << leading zeros) - 1.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next();
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return self.start.wrapping_add(hi);
                    }
                }
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let range = high.wrapping_sub(low).wrapping_add(1);
                if range == 0 {
                    // Full type span: every draw is acceptable.
                    return rng.$next();
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v = rng.$next();
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi);
                    }
                }
            }
        }
    };
}

uniform_range_impl!(u32, next_u32, wmul32);
uniform_range_impl!(u64, next_u64, wmul64);

/// The ChaCha quarter round.
#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` total rounds over the RFC 8439 state
/// layout with a 64-bit block counter in words 12–13 (rand_chacha's
/// convention) and a zero stream nonce.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: u32) -> [u32; 16] {
    let mut s: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let init = s;
    for _ in 0..rounds / 2 {
        quarter(&mut s, 0, 4, 8, 12);
        quarter(&mut s, 1, 5, 9, 13);
        quarter(&mut s, 2, 6, 10, 14);
        quarter(&mut s, 3, 7, 11, 15);
        quarter(&mut s, 0, 5, 10, 15);
        quarter(&mut s, 1, 6, 11, 12);
        quarter(&mut s, 2, 7, 8, 13);
        quarter(&mut s, 3, 4, 9, 14);
    }
    for (w, i) in s.iter_mut().zip(init) {
        *w = w.wrapping_add(i);
    }
    s
}

/// Words buffered per refill: rand_chacha generates four 16-word blocks
/// at a time.
const BUFFER_WORDS: usize = 64;
const BUFFER_BLOCKS: u64 = 4;

/// ChaCha in counter mode behind `rand_core::block::BlockRng`'s exact
/// word-buffer semantics (including the split-word `next_u64` case at
/// the buffer boundary).
#[derive(Clone, Debug)]
struct ChaChaRng {
    key: [u32; 8],
    counter: u64,
    rounds: u32,
    results: [u32; BUFFER_WORDS],
    index: usize,
}

impl ChaChaRng {
    fn from_seed_bytes(seed: [u8; 32], rounds: u32) -> ChaChaRng {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            counter: 0,
            rounds,
            results: [0; BUFFER_WORDS],
            // BlockRng starts with an empty buffer: first draw refills.
            index: BUFFER_WORDS,
        }
    }

    fn refill(&mut self) {
        for b in 0..BUFFER_BLOCKS {
            let block = chacha_block(&self.key, self.counter.wrapping_add(b), self.rounds);
            let lo = b as usize * 16;
            self.results[lo..lo + 16].copy_from_slice(&block);
        }
        self.counter = self.counter.wrapping_add(BUFFER_BLOCKS);
    }

    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.results[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let read = |r: &[u32; BUFFER_WORDS], i: usize| (r[i + 1] as u64) << 32 | r[i] as u64;
        if self.index < BUFFER_WORDS - 1 {
            let v = read(&self.results, self.index);
            self.index += 2;
            v
        } else if self.index >= BUFFER_WORDS {
            self.refill();
            self.index = 2;
            read(&self.results, 0)
        } else {
            // One word left: low half from this buffer, high half from
            // the next (BlockRng's boundary-straddling case).
            let lo = self.results[BUFFER_WORDS - 1] as u64;
            self.refill();
            self.index = 1;
            (self.results[0] as u64) << 32 | lo
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{ChaChaRng, RngCore, SeedableRng};

    /// The standard generator: ChaCha with 12 rounds, stream-compatible
    /// with `rand 0.8`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(ChaChaRng);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            StdRng(ChaChaRng::from_seed_bytes(seed, 12))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    /// RFC 8439-style known-answer test for the block function itself:
    /// the famous all-zero key/nonce/counter ChaCha20 keystream.
    #[test]
    fn chacha20_zero_vector() {
        let block = chacha_block(&[0; 8], 0, 20);
        let expect_bytes: [u8; 16] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28,
        ];
        let mut got = [0u8; 16];
        for (chunk, w) in got.chunks_exact_mut(4).zip(&block[..4]) {
            chunk.copy_from_slice(&w.to_le_bytes());
        }
        assert_eq!(got, expect_bytes);
        // And the tail of the same keystream block.
        assert_eq!(block[15], u32::from_le_bytes([0xb2, 0xee, 0x65, 0x86]));
    }

    #[test]
    fn determinism_and_stream_stability() {
        let mut a = StdRng::seed_from_u64(2015);
        let mut b = StdRng::seed_from_u64(2015);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = StdRng::seed_from_u64(7);
        let first: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(first.len(), 4);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn u64_straddles_buffer_boundary() {
        // Drain 63 words so exactly one u32 remains, then draw a u64:
        // the low half must be the last word of this buffer and the
        // high half the first word of the next.
        let mut rng = StdRng::seed_from_u64(1);
        let mut reference = StdRng::seed_from_u64(1);
        let words: Vec<u32> = (0..192).map(|_| reference.next_u32()).collect();
        for _ in 0..63 {
            rng.next_u32();
        }
        let v = rng.next_u64();
        assert_eq!(v, (words[64] as u64) << 32 | words[63] as u64);
        // After the straddle the index sits at word 1 of the new buffer.
        assert_eq!(rng.next_u32(), words[65]);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v: u32 = rng.gen_range(0..97);
            assert!(v < 97);
            let w: u64 = rng.gen_range(0..=13u64);
            assert!(w <= 13);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0..8u32) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
