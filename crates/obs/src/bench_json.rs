//! The shared `BENCH_repro.json` writer.
//!
//! Earlier this lived as ad-hoc string formatting inside the bench
//! harness; it is now a typed record built on the deterministic JSON
//! emitter, with a schema version and host metadata so downstream
//! tooling can parse benchmark artefacts across revisions.

use crate::json::Json;

/// Current `BENCH_repro.json` schema version. Version 3 added the
/// per-run `superblock` flag recording whether the superblock fast path
/// was enabled for that run.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// Wall-clock timing of one simulator run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRun {
    /// Application name.
    pub app: String,
    /// Machine configuration name.
    pub mode: String,
    /// Instructions the run committed.
    pub instructions: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Simulated instructions per host second.
    pub insts_per_s: f64,
    /// Whether the superblock fast path was enabled.
    pub superblock: bool,
}

/// The full benchmark artefact: host metadata plus per-run timing.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRecord {
    /// Worker threads the matrix ran on.
    pub threads: usize,
    /// Host logical cores.
    pub host_cores: usize,
    /// Cargo profile the harness was compiled with (`release`/`debug`).
    pub cargo_profile: &'static str,
    /// Seconds the randomization stage took.
    pub randomize_s: f64,
    /// Seconds the whole matrix took.
    pub matrix_wall_s: f64,
    /// One record per (app, configuration) run.
    pub runs: Vec<BenchRun>,
}

impl BenchRecord {
    /// Host metadata detected from the running process.
    pub fn host_defaults() -> (usize, &'static str) {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let profile = if cfg!(debug_assertions) { "debug" } else { "release" };
        (cores, profile)
    }

    /// Instructions summed over every run.
    pub fn total_instructions(&self) -> u64 {
        self.runs.iter().map(|r| r.instructions).sum()
    }

    /// Aggregate simulated instructions per second of simulator time
    /// (sum of per-run wall clocks, not the parallel wall clock).
    pub fn aggregate_insts_per_s(&self) -> f64 {
        let sim_s: f64 = self.runs.iter().map(|r| r.wall_s).sum();
        self.total_instructions() as f64 / sim_s.max(1e-9)
    }

    /// The artefact as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("schema_version", Json::U64(BENCH_SCHEMA_VERSION));
        j.set("threads", Json::U64(self.threads as u64));
        j.set("host_cores", Json::U64(self.host_cores as u64));
        j.set("cargo_profile", Json::Str(self.cargo_profile.into()));
        j.set("randomize_s", Json::F64(self.randomize_s));
        j.set("matrix_wall_s", Json::F64(self.matrix_wall_s));
        j.set("total_instructions", Json::U64(self.total_instructions()));
        j.set("aggregate_insts_per_s", Json::F64(self.aggregate_insts_per_s()));
        let runs = self
            .runs
            .iter()
            .map(|r| {
                let mut o = Json::obj();
                o.set("app", Json::Str(r.app.clone()));
                o.set("mode", Json::Str(r.mode.clone()));
                o.set("instructions", Json::U64(r.instructions));
                o.set("wall_s", Json::F64(r.wall_s));
                // A zero-duration run (a timer too coarse to see the run,
                // or an empty run) has no meaningful rate; `null` from the
                // non-finite float path would be indistinguishable from a
                // writer bug, so emit an explicit sentinel instead.
                if r.wall_s > 0.0 && r.insts_per_s.is_finite() {
                    o.set("insts_per_s", Json::F64(r.insts_per_s));
                } else {
                    o.set("insts_per_s", Json::Str("unmeasured".into()));
                }
                o.set("superblock", Json::Bool(r.superblock));
                o
            })
            .collect();
        j.set("runs", Json::Arr(runs));
        j
    }

    /// Writes the artefact to `path` (pretty-printed).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn record() -> BenchRecord {
        BenchRecord {
            threads: 4,
            host_cores: 8,
            cargo_profile: "release",
            randomize_s: 0.5,
            matrix_wall_s: 2.0,
            runs: vec![
                BenchRun {
                    app: "bzip2".into(),
                    mode: "base".into(),
                    instructions: 1000,
                    wall_s: 0.25,
                    insts_per_s: 4000.0,
                    superblock: true,
                },
                BenchRun {
                    app: "bzip2".into(),
                    mode: "vcfr128".into(),
                    instructions: 3000,
                    wall_s: 0.75,
                    insts_per_s: 4000.0,
                    superblock: false,
                },
            ],
        }
    }

    #[test]
    fn aggregates_and_schema() {
        let r = record();
        assert_eq!(r.total_instructions(), 4000);
        assert!((r.aggregate_insts_per_s() - 4000.0).abs() < 1e-6);
        let j = r.to_json();
        assert_eq!(j.get("schema_version").unwrap().as_u64(), Some(BENCH_SCHEMA_VERSION));
        assert_eq!(j.get("cargo_profile").unwrap().as_str(), Some("release"));
        let parsed = parse_json(&j.pretty()).unwrap();
        let runs = parsed.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("insts_per_s").unwrap().as_f64(), Some(4000.0));
        assert_eq!(runs[0].get("superblock"), Some(&Json::Bool(true)));
        assert_eq!(runs[1].get("superblock"), Some(&Json::Bool(false)));
    }

    #[test]
    fn zero_duration_run_emits_a_sentinel_not_null() {
        let mut r = record();
        r.runs.push(BenchRun {
            app: "stub".into(),
            mode: "base".into(),
            instructions: 0,
            wall_s: 0.0,
            insts_per_s: f64::INFINITY,
            superblock: true,
        });
        let j = r.to_json();
        let runs = j.get("runs").unwrap().as_arr().unwrap();
        let rate = runs[2].get("insts_per_s").unwrap();
        assert_eq!(rate.as_str(), Some("unmeasured"));
        // The document still parses, and measured runs keep their number.
        let parsed = parse_json(&j.pretty()).unwrap();
        let parsed_runs = parsed.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(parsed_runs[2].get("insts_per_s").unwrap().as_str(), Some("unmeasured"));
        assert_eq!(parsed_runs[0].get("insts_per_s").unwrap().as_f64(), Some(4000.0));
        // No bare `null` leaked out of the non-finite float path.
        assert!(!j.pretty().contains("null"), "{}", j.pretty());
    }

    #[test]
    fn host_defaults_are_sane() {
        let (cores, profile) = BenchRecord::host_defaults();
        assert!(cores >= 1);
        assert!(profile == "debug" || profile == "release");
    }
}
