//! A deterministic log2-bucketed histogram.
//!
//! Buckets are fixed powers of two: value `v` lands in bucket
//! `bit_width(v)` (so 0 → bucket 0, 1 → bucket 1, 2..=3 → bucket 2,
//! 4..=7 → bucket 3, …, `u64::MAX` → bucket 64). The bucket layout is a
//! pure function of the value — no configuration, no float math — so two
//! histograms built from the same multiset of values are identical
//! field-for-field and byte-for-byte in JSON, regardless of insertion
//! order or which daemon/worker recorded them. That makes [`Histogram`]
//! safe to merge across workers and ship between fleet nodes.

use crate::json::Json;

/// Number of buckets: one per possible `u64` bit width (0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-layout log2 histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `value`: its bit width (0 for 0, 64 for
    /// `u64::MAX`). Monotonic in `value`.
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// The inclusive `(low, high)` value range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket index out of range");
        match i {
            0 => (0, 0),
            64 => (1u64 << 63, u64::MAX),
            _ => (1u64 << (i - 1), (1u64 << i) - 1),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Merging is associative and
    /// commutative: any merge tree over the same samples yields the
    /// same histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean sample value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Occupancy of bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the high edge
    /// of the bucket containing the `ceil(q * count)`-th sample.
    /// `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return Some(Histogram::bucket_range(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Serialises as `{count, sum, min, max, buckets: [[low, n], ...]}`
    /// with empty buckets elided; deterministic for identical contents.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("count", Json::U64(self.count));
        j.set("sum", Json::U64(self.sum));
        if self.count > 0 {
            j.set("min", Json::U64(self.min));
            j.set("max", Json::U64(self.max));
        }
        let mut arr = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                let (low, _) = Histogram::bucket_range(i);
                arr.push(Json::Arr(vec![Json::U64(low), Json::U64(*b)]));
            }
        }
        j.set("buckets", Json::Arr(arr));
        j
    }

    /// Rebuilds a histogram from its [`Histogram::to_json`] form, so a
    /// coordinator can merge latency histograms shipped from worker
    /// daemons. Returns `None` on a structurally foreign object; the
    /// summary fields are recomputed from the buckets where possible so
    /// a roundtrip of a consistent histogram is exact.
    pub fn from_json(j: &Json) -> Option<Histogram> {
        let mut h = Histogram::new();
        h.count = j.get("count")?.as_u64()?;
        h.sum = j.get("sum")?.as_u64()?;
        for pair in j.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let (low, n) = (pair[0].as_u64()?, pair[1].as_u64()?);
            h.buckets[Histogram::bucket_index(low)] += n;
        }
        if h.count > 0 {
            h.min = j.get("min")?.as_u64()?;
            h.max = j.get("max")?.as_u64()?;
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
    }

    #[test]
    fn bucket_range_roundtrips_index() {
        for i in 0..HISTOGRAM_BUCKETS {
            let (low, high) = Histogram::bucket_range(i);
            assert_eq!(Histogram::bucket_index(low), i);
            assert_eq!(Histogram::bucket_index(high), i);
        }
    }

    #[test]
    fn record_updates_summary() {
        let mut h = Histogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        h.record(0);
        h.record(7);
        h.record(100);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(7), 1);
    }

    #[test]
    fn merge_matches_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 5, 9, 1 << 40, u64::MAX] {
            if v % 2 == 0 { a.record(v) } else { b.record(v) }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn quantile_bound_is_a_bucket_edge() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile_upper_bound(0.5).unwrap();
        assert!((50..=63).contains(&p50), "p50 bound {p50}");
        assert_eq!(h.quantile_upper_bound(1.0), Some(100));
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 300, 1 << 50] {
            h.record(v);
        }
        assert_eq!(Histogram::from_json(&h.to_json()), Some(h));
        let empty = Histogram::new();
        assert_eq!(Histogram::from_json(&empty.to_json()), Some(empty));
        assert_eq!(Histogram::from_json(&Json::obj()), None);
    }

    #[test]
    fn json_is_deterministic_and_elides_empty_buckets() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(3);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("buckets").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(j.compact(), h.to_json().compact());
    }
}
