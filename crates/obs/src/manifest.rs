//! Structured per-run manifests: one JSON document per (app, config)
//! simulator run, written by the experiment matrix and consumed by
//! `vcfr report`.
//!
//! Schema (`schema_version` 1):
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "kind": "vcfr-run-manifest",
//!   "app": "...",            // workload name
//!   "mode": "...",           // machine configuration column
//!   "config": { "fingerprint": "...", ... },
//!   "counters": { ... },     // nested registry snapshot (sim.* names)
//!   "derived": { ... },      // ipc, miss rates, slow-path ratios
//!   "audit": { ... },        // cycle-accounting identity terms
//!   "samples": [ ... ],      // interval samples (phase behaviour)
//!   "host": { ... }          // VOLATILE: wall time, insts/s, threads
//! }
//! ```
//!
//! Everything except the `host` block is a pure function of (workload,
//! seed, machine config), so manifests are byte-identical across worker
//! thread counts once the volatile block is stripped
//! ([`Manifest::canonical_bytes`]); the determinism guard and
//! `vcfr report --against` both compare through that canonical form.

use crate::json::{parse_json, Json, JsonError};
use crate::registry::Snapshot;

/// Current manifest schema version.
pub const MANIFEST_SCHEMA_VERSION: u64 = 1;

/// The `kind` tag every manifest carries.
pub const MANIFEST_KIND: &str = "vcfr-run-manifest";

/// A manifest validation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestError {
    /// The document is not JSON.
    Parse(JsonError),
    /// A required key is missing or has the wrong type.
    Invalid(String),
    /// The schema version is not one this code understands.
    Version(u64),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Parse(e) => write!(f, "manifest: {e}"),
            ManifestError::Invalid(what) => write!(f, "manifest: missing or invalid {what}"),
            ManifestError::Version(v) => write!(
                f,
                "manifest: schema_version {v} unsupported (expected {MANIFEST_SCHEMA_VERSION})"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// One run manifest (a validated JSON document).
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    doc: Json,
}

impl Manifest {
    /// Starts a manifest for one (app, mode) run. Keys are inserted in
    /// schema order so emission is byte-stable.
    pub fn new(app: &str, mode: &str) -> Manifest {
        let mut doc = Json::obj();
        doc.set("schema_version", Json::U64(MANIFEST_SCHEMA_VERSION));
        doc.set("kind", Json::Str(MANIFEST_KIND.into()));
        doc.set("app", Json::Str(app.into()));
        doc.set("mode", Json::Str(mode.into()));
        Manifest { doc }
    }

    /// Sets the machine-configuration block (must contain at least a
    /// `fingerprint` string).
    pub fn set_config(&mut self, config: Json) -> &mut Manifest {
        self.doc.set("config", config);
        self
    }

    /// Sets the counters block from a registry snapshot.
    pub fn set_counters(&mut self, snapshot: &Snapshot) -> &mut Manifest {
        self.doc.set("counters", snapshot.to_json());
        self
    }

    /// Sets the derived-metrics block.
    pub fn set_derived(&mut self, derived: Json) -> &mut Manifest {
        self.doc.set("derived", derived);
        self
    }

    /// Sets the cycle-accounting block.
    pub fn set_audit(&mut self, audit: Json) -> &mut Manifest {
        self.doc.set("audit", audit);
        self
    }

    /// Sets the interval-sample array.
    pub fn set_samples(&mut self, samples: Vec<Json>) -> &mut Manifest {
        self.doc.set("samples", Json::Arr(samples));
        self
    }

    /// Sets the volatile host block (wall time, throughput, threads).
    pub fn set_host(&mut self, host: Json) -> &mut Manifest {
        self.doc.set("host", host);
        self
    }

    /// The workload name.
    pub fn app(&self) -> &str {
        self.doc.get("app").and_then(Json::as_str).unwrap_or("")
    }

    /// The machine-configuration column name.
    pub fn mode(&self) -> &str {
        self.doc.get("mode").and_then(Json::as_str).unwrap_or("")
    }

    /// The underlying JSON document.
    pub fn json(&self) -> &Json {
        &self.doc
    }

    /// A counter by dotted path under `counters` (0 when absent).
    pub fn counter(&self, path: &str) -> u64 {
        self.doc
            .get("counters")
            .and_then(|c| c.get_path(path))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    }

    /// A derived metric by name.
    pub fn derived(&self, name: &str) -> Option<f64> {
        self.doc.get("derived").and_then(|d| d.get(name)).and_then(Json::as_f64)
    }

    /// Serialises the full manifest (pretty, trailing newline).
    pub fn to_string_pretty(&self) -> String {
        self.doc.pretty()
    }

    /// The deterministic byte form: the document with the volatile
    /// `host` block removed. Byte-identical across worker thread counts
    /// and repeated runs.
    pub fn canonical_bytes(&self) -> String {
        let mut doc = self.doc.clone();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "host");
        }
        doc.pretty()
    }

    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] on parse failures, missing required keys, or an
    /// unsupported schema version.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<Manifest, ManifestError> {
        let doc = parse_json(text).map_err(ManifestError::Parse)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| ManifestError::Invalid("schema_version".into()))?;
        if version != MANIFEST_SCHEMA_VERSION {
            return Err(ManifestError::Version(version));
        }
        if doc.get("kind").and_then(Json::as_str) != Some(MANIFEST_KIND) {
            return Err(ManifestError::Invalid("kind".into()));
        }
        for key in ["app", "mode"] {
            if doc.get(key).and_then(Json::as_str).map(str::is_empty).unwrap_or(true) {
                return Err(ManifestError::Invalid(key.into()));
            }
        }
        for key in ["config", "counters"] {
            if !matches!(doc.get(key), Some(Json::Obj(_))) {
                return Err(ManifestError::Invalid(key.into()));
            }
        }
        if doc
            .get("config")
            .and_then(|c| c.get("fingerprint"))
            .and_then(Json::as_str)
            .is_none()
        {
            return Err(ManifestError::Invalid("config.fingerprint".into()));
        }
        Ok(Manifest { doc })
    }

    /// The conventional file name for this run: `<app>__<mode>.json`.
    pub fn file_name(&self) -> String {
        format!("{}__{}.json", self.app(), self.mode())
    }
}

/// A stable 64-bit FNV-1a fingerprint of a configuration description,
/// rendered as a hex string. Feeding the `Debug` form of a config struct
/// gives a fingerprint that changes whenever any field changes.
pub fn fingerprint(description: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in description.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("bzip2", "vcfr128");
        let mut cfg = Json::obj();
        cfg.set("fingerprint", Json::Str(fingerprint("cfg-v1")));
        cfg.set("seed", Json::U64(2015));
        m.set_config(cfg);
        m.set_counters(&Snapshot::from_counters(vec![
            ("sim.cycles".into(), 1000),
            ("sim.il1.miss".into(), 7),
        ]));
        let mut host = Json::obj();
        host.set("wall_s", Json::F64(0.123));
        m.set_host(host);
        m
    }

    #[test]
    fn roundtrip_and_accessors() {
        let m = sample();
        let text = m.to_string_pretty();
        let back = Manifest::from_str(&text).unwrap();
        assert_eq!(back.app(), "bzip2");
        assert_eq!(back.mode(), "vcfr128");
        assert_eq!(back.counter("sim.il1.miss"), 7);
        assert_eq!(back.counter("sim.absent"), 0);
        assert_eq!(back.file_name(), "bzip2__vcfr128.json");
    }

    #[test]
    fn canonical_bytes_strip_the_host_block() {
        let m = sample();
        assert!(m.to_string_pretty().contains("\"host\""));
        let canon = m.canonical_bytes();
        assert!(!canon.contains("\"host\""));
        // Two manifests differing only in host timing agree canonically.
        let mut other = sample();
        let mut host = Json::obj();
        host.set("wall_s", Json::F64(9.9));
        other.set_host(host);
        assert_eq!(canon, other.canonical_bytes());
    }

    #[test]
    fn validation_rejects_bad_documents() {
        assert!(matches!(Manifest::from_str("not json"), Err(ManifestError::Parse(_))));
        assert!(matches!(
            Manifest::from_str("{}"),
            Err(ManifestError::Invalid(k)) if k == "schema_version"
        ));
        let wrong_version = r#"{"schema_version": 99, "kind": "vcfr-run-manifest"}"#;
        assert!(matches!(Manifest::from_str(wrong_version), Err(ManifestError::Version(99))));
        let no_fp = r#"{"schema_version": 1, "kind": "vcfr-run-manifest",
                        "app": "a", "mode": "m", "config": {}, "counters": {}}"#;
        assert!(matches!(
            Manifest::from_str(no_fp),
            Err(ManifestError::Invalid(k)) if k == "config.fingerprint"
        ));
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("").len(), 16);
    }
}
