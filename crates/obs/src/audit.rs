//! Cycle-accounting audits: does the simulator's stall decomposition
//! actually explain its total cycle count?
//!
//! The engine runs two clocks (front end and back end) and reports
//! `cycles = max(fetch_time, backend_time)`, so the per-category stall
//! counters are neither disjoint (front- and back-end stalls overlap in
//! time) nor exhaustive to the cycle (pipeline-refill bubbles after a
//! redirect are charged to the redirect penalty constants). The audit
//! therefore checks three *calibrated* identities instead of exact
//! equality:
//!
//! 1. **floor** — `cycles ≥ busy + load_stall + rerand_stall`: the
//!    back-end clock advances at least one cycle per instruction plus
//!    every long-op, load-stall, and re-randomization pause cycle,
//!    exactly;
//! 2. **coverage** — `busy + fetch + load + redirect + drc_walk +
//!    rerand ≥ (1 − tol) · cycles`: every cycle is claimed by some
//!    category;
//! 3. **overlap bound** — `busy + fetch + load + redirect + rerand ≤
//!    (2 + tol) · cycles`: two clocks can each claim a cycle, never
//!    more. DRC walk cycles are excluded here: walks are accounted even
//!    when they complete in the shadow of a store or a correct
//!    prediction, so on DRC-thrashing workloads they are not bounded by
//!    wall-clock cycles at all.
//!
//! Shared-L2 `contention` cycles (multicore runs queueing behind a
//! sibling core) are a *contained* term: every contention cycle delayed
//! exactly one fetch, data, or table-walk access and is already inside
//! that category's stall count, so the audit checks `contention ≤
//! fetch_stall + load_stall + drc_walk` instead of adding it to the
//! disjoint sums.

use crate::json::Json;

/// Default relative tolerance of the audit (see module docs; calibrated
/// against the full 11-app × 5-config experiment matrix).
pub const DEFAULT_TOLERANCE: f64 = 0.12;

/// The terms of one run's cycle-accounting identity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleAccounting {
    /// Total cycles the run reported.
    pub cycles: u64,
    /// Busy issue cycles: one per committed instruction plus long-op
    /// (mul/div) extra cycles.
    pub busy: u64,
    /// Front-end fetch stall cycles (IL1 misses, iTLB walks).
    pub fetch_stall: u64,
    /// Back-end data stall cycles.
    pub load_stall: u64,
    /// Control-flow redirect stall cycles.
    pub redirect_stall: u64,
    /// DRC table-walk cycles (VCFR mode only; 0 elsewhere).
    pub drc_walk: u64,
    /// Cycles the whole pipeline paused for epoch re-randomization
    /// (DRC flush + translation-table rebuild; 0 without `--rerand-epoch`).
    pub rerand_stall: u64,
    /// Cycles queued behind a sibling core at the shared L2/DRAM port
    /// (multicore runs only; 0 on single-core engines). Contained in the
    /// fetch/load/walk terms, not added to the disjoint sums.
    pub contention: u64,
}

impl CycleAccounting {
    /// Cycles claimed by some category (categories may overlap).
    pub fn accounted(&self) -> u64 {
        self.busy
            + self.fetch_stall
            + self.load_stall
            + self.redirect_stall
            + self.drc_walk
            + self.rerand_stall
    }

    /// The time-like categories: every term here is bounded by one of
    /// the two pipeline clocks (unlike `drc_walk`, which also counts
    /// walks hidden in the shadow of other work). Re-randomization pauses
    /// advance both clocks in lockstep, so they are time-like too.
    pub fn time_like(&self) -> u64 {
        self.busy + self.fetch_stall + self.load_stall + self.redirect_stall + self.rerand_stall
    }

    /// `accounted / cycles` (0 on an empty run).
    pub fn coverage(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.accounted() as f64 / self.cycles as f64
        }
    }

    /// Runs the audit at [`DEFAULT_TOLERANCE`].
    pub fn audit(&self) -> AuditReport {
        self.audit_with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Runs the audit with an explicit relative tolerance.
    pub fn audit_with_tolerance(&self, tolerance: f64) -> AuditReport {
        let mut failures = Vec::new();
        // The back-end clock advances exactly one cycle per instruction
        // plus long-op, load-stall and re-randomization-pause cycles.
        if self.cycles < self.busy + self.load_stall + self.rerand_stall {
            failures.push(format!(
                "floor violated: cycles {} < busy {} + load_stall {} + rerand_stall {}",
                self.cycles, self.busy, self.load_stall, self.rerand_stall
            ));
        }
        // Empty runs (0 instructions) trivially pass the ratio checks.
        if self.cycles > 0 {
            let cov = self.coverage();
            if cov < 1.0 - tolerance {
                failures.push(format!(
                    "coverage {:.4} below {:.4}: {} of {} cycles unattributed",
                    cov,
                    1.0 - tolerance,
                    self.cycles.saturating_sub(self.accounted()),
                    self.cycles
                ));
            }
            let time_like = self.time_like() as f64 / self.cycles as f64;
            if time_like > 2.0 + tolerance {
                failures.push(format!(
                    "overlap bound exceeded: time-like coverage {:.4} > {:.4}",
                    time_like,
                    2.0 + tolerance
                ));
            }
        }
        // Contention is contained in the categories whose accesses it
        // delayed; claiming more wait than those categories hold means
        // the shared-port accounting double-charged somewhere.
        if self.contention > self.fetch_stall + self.load_stall + self.drc_walk {
            failures.push(format!(
                "containment violated: contention {} > fetch_stall {} + load_stall {} + drc_walk {}",
                self.contention, self.fetch_stall, self.load_stall, self.drc_walk
            ));
        }
        AuditReport { accounting: *self, tolerance, failures }
    }

    /// Runs the out-of-order audit at [`DEFAULT_TOLERANCE`].
    ///
    /// See [`CycleAccounting::audit_ooo_with_tolerance`].
    pub fn audit_ooo(&self, width: u64, instructions: u64) -> AuditReport {
        self.audit_ooo_with_tolerance(width, instructions, DEFAULT_TOLERANCE)
    }

    /// Audits an out-of-order run. The in-order coverage and overlap
    /// identities do not transfer to a wide core (at IPC > 2 the busy
    /// term alone exceeds twice the wall clock), so the OoO audit checks
    /// the identities that *are* exact on the wide pipeline:
    ///
    /// 1. **front-end floor** — `cycles ≥ fetch_stall + redirect_stall +
    ///    rerand_stall`: the fetch clock absorbs IL1/iTLB stalls,
    ///    mispredict redirects, and re-randomization pauses serially,
    ///    and `cycles = max(fetch, commit)` can never undercut it;
    /// 2. **throughput** — `width · cycles ≥ instructions`: the core
    ///    commits at most `width` instructions per cycle;
    /// 3. **containment** — `contention ≤ fetch_stall + load_stall +
    ///    drc_walk`, exactly as on the in-order audit.
    ///
    /// All three are exact; `tolerance` is recorded in the report for
    /// rendering parity with the in-order audit but no identity here
    /// needs slack.
    pub fn audit_ooo_with_tolerance(
        &self,
        width: u64,
        instructions: u64,
        tolerance: f64,
    ) -> AuditReport {
        let mut failures = Vec::new();
        if self.cycles < self.fetch_stall + self.redirect_stall + self.rerand_stall {
            failures.push(format!(
                "front-end floor violated: cycles {} < fetch_stall {} + redirect_stall {} \
                 + rerand_stall {}",
                self.cycles, self.fetch_stall, self.redirect_stall, self.rerand_stall
            ));
        }
        if width.saturating_mul(self.cycles) < instructions {
            failures.push(format!(
                "throughput bound violated: width {} x cycles {} < {} instructions",
                width, self.cycles, instructions
            ));
        }
        if self.contention > self.fetch_stall + self.load_stall + self.drc_walk {
            failures.push(format!(
                "containment violated: contention {} > fetch_stall {} + load_stall {} + drc_walk {}",
                self.contention, self.fetch_stall, self.load_stall, self.drc_walk
            ));
        }
        AuditReport { accounting: *self, tolerance, failures }
    }

    /// The identity terms as a JSON object (manifest `audit` block).
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("cycles", Json::U64(self.cycles));
        j.set("busy", Json::U64(self.busy));
        j.set("fetch_stall", Json::U64(self.fetch_stall));
        j.set("load_stall", Json::U64(self.load_stall));
        j.set("redirect_stall", Json::U64(self.redirect_stall));
        j.set("drc_walk", Json::U64(self.drc_walk));
        j.set("rerand_stall", Json::U64(self.rerand_stall));
        j.set("contention", Json::U64(self.contention));
        j.set("coverage", Json::F64(self.coverage()));
        j
    }

    /// Rebuilds the terms from a manifest `audit` block. `rerand_stall`
    /// and `contention` default to 0 so manifests written before those
    /// fields existed still parse.
    pub fn from_json(j: &Json) -> Option<CycleAccounting> {
        Some(CycleAccounting {
            cycles: j.get("cycles")?.as_u64()?,
            busy: j.get("busy")?.as_u64()?,
            fetch_stall: j.get("fetch_stall")?.as_u64()?,
            load_stall: j.get("load_stall")?.as_u64()?,
            redirect_stall: j.get("redirect_stall")?.as_u64()?,
            drc_walk: j.get("drc_walk")?.as_u64()?,
            rerand_stall: j.get("rerand_stall").map_or(Some(0), Json::as_u64)?,
            contention: j.get("contention").map_or(Some(0), Json::as_u64)?,
        })
    }
}

/// The outcome of one cycle-accounting audit.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// The audited terms.
    pub accounting: CycleAccounting,
    /// The tolerance used.
    pub tolerance: f64,
    /// Human-readable failures; empty means the audit passed.
    pub failures: Vec<String>,
}

impl AuditReport {
    /// Whether every identity held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// A short multi-line rendering (CLI `--audit` output).
    pub fn render(&self) -> String {
        let a = &self.accounting;
        let pct = |v: u64| {
            if a.cycles == 0 {
                0.0
            } else {
                100.0 * v as f64 / a.cycles as f64
            }
        };
        let mut out = format!(
            "cycle accounting: {} cycles; busy {} ({:.1}%), fetch stall {} ({:.1}%), \
             load stall {} ({:.1}%), redirect stall {} ({:.1}%), drc walk {} ({:.1}%), \
             rerand (DRC flush + table rebuild) {} ({:.1}%), \
             shared-L2 contention {} ({:.1}%)\n\
             coverage {:.3} (tolerance {:.2})\n",
            a.cycles,
            a.busy,
            pct(a.busy),
            a.fetch_stall,
            pct(a.fetch_stall),
            a.load_stall,
            pct(a.load_stall),
            a.redirect_stall,
            pct(a.redirect_stall),
            a.drc_walk,
            pct(a.drc_walk),
            a.rerand_stall,
            pct(a.rerand_stall),
            a.contention,
            pct(a.contention),
            a.coverage(),
            self.tolerance,
        );
        if self.passed() {
            out.push_str("audit: PASS\n");
        } else {
            for f in &self.failures {
                out.push_str("audit FAIL: ");
                out.push_str(f);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_accounting_passes() {
        let a = CycleAccounting {
            cycles: 1000,
            busy: 700,
            fetch_stall: 200,
            load_stall: 80,
            redirect_stall: 40,
            drc_walk: 0,
            rerand_stall: 0,
            contention: 0,
        };
        let r = a.audit();
        assert!(r.passed(), "{:?}", r.failures);
        assert!((a.coverage() - 1.02).abs() < 1e-9);
    }

    #[test]
    fn unattributed_cycles_fail_coverage() {
        let a = CycleAccounting { cycles: 1000, busy: 500, ..CycleAccounting::default() };
        let r = a.audit();
        assert!(!r.passed());
        assert!(r.failures[0].contains("coverage"));
        assert!(r.render().contains("FAIL"));
    }

    #[test]
    fn floor_check_catches_impossible_cycle_counts() {
        let a = CycleAccounting { cycles: 10, busy: 50, ..CycleAccounting::default() };
        assert!(a.audit().failures.iter().any(|f| f.contains("floor")));
    }

    #[test]
    fn overlap_bound_catches_runaway_double_counting() {
        let a = CycleAccounting {
            cycles: 100,
            busy: 100,
            fetch_stall: 150,
            load_stall: 0,
            redirect_stall: 100,
            drc_walk: 0,
            rerand_stall: 0,
            contention: 0,
        };
        assert!(a.audit().failures.iter().any(|f| f.contains("overlap")));
    }

    #[test]
    fn empty_run_passes_trivially() {
        assert!(CycleAccounting::default().audit().passed());
    }

    #[test]
    fn json_roundtrip() {
        let a = CycleAccounting {
            cycles: 9,
            busy: 5,
            fetch_stall: 1,
            load_stall: 2,
            redirect_stall: 1,
            drc_walk: 3,
            rerand_stall: 2,
            contention: 2,
        };
        assert_eq!(CycleAccounting::from_json(&a.to_json()), Some(a));
    }

    #[test]
    fn contention_must_be_contained_in_the_access_categories() {
        // Contained: 30 wait cycles inside 40+20 of categorized stall.
        let a = CycleAccounting {
            cycles: 1000,
            busy: 900,
            fetch_stall: 40,
            load_stall: 20,
            contention: 30,
            ..CycleAccounting::default()
        };
        assert!(a.audit().passed(), "{:?}", a.audit().failures);
        assert!(a.audit().render().contains("contention"));
        // Claiming more wait than the categories hold is double-charging.
        let b = CycleAccounting { contention: 100, ..a };
        assert!(b.audit().failures.iter().any(|f| f.contains("containment")));
    }

    #[test]
    fn ooo_audit_accepts_high_ipc_runs_the_inorder_audit_rejects() {
        // IPC 3.8 on a width-4 core: busy alone is 3.5x the wall clock,
        // so the in-order floor/overlap identities reject it outright —
        // the OoO identities hold.
        let a = CycleAccounting {
            cycles: 100,
            busy: 350,
            fetch_stall: 20,
            redirect_stall: 30,
            ..CycleAccounting::default()
        };
        assert!(!a.audit().passed(), "in-order identities must not transfer");
        let r = a.audit_ooo(4, 380);
        assert!(r.passed(), "{:?}", r.failures);
    }

    #[test]
    fn ooo_front_end_floor_catches_impossible_counts() {
        let a = CycleAccounting {
            cycles: 40,
            fetch_stall: 20,
            redirect_stall: 30,
            ..CycleAccounting::default()
        };
        assert!(a.audit_ooo(4, 100).failures.iter().any(|f| f.contains("front-end floor")));
    }

    #[test]
    fn ooo_throughput_bound_catches_over_commit() {
        // 50 instructions in 10 cycles on a width-4 core is impossible.
        let a = CycleAccounting { cycles: 10, busy: 50, ..CycleAccounting::default() };
        assert!(a.audit_ooo(4, 50).failures.iter().any(|f| f.contains("throughput")));
        assert!(a.audit_ooo(5, 50).passed());
    }

    #[test]
    fn ooo_audit_checks_contention_containment_too() {
        let a = CycleAccounting {
            cycles: 1000,
            busy: 2000,
            fetch_stall: 40,
            load_stall: 20,
            contention: 100,
            ..CycleAccounting::default()
        };
        assert!(a.audit_ooo(4, 2000).failures.iter().any(|f| f.contains("containment")));
    }

    #[test]
    fn old_manifests_without_contention_still_parse() {
        let mut j = Json::obj();
        j.set("cycles", Json::U64(9));
        j.set("busy", Json::U64(5));
        j.set("fetch_stall", Json::U64(1));
        j.set("load_stall", Json::U64(2));
        j.set("redirect_stall", Json::U64(1));
        j.set("drc_walk", Json::U64(3));
        j.set("rerand_stall", Json::U64(2));
        let b = CycleAccounting::from_json(&j).unwrap();
        assert_eq!(b.contention, 0);
    }

    #[test]
    fn old_manifests_without_rerand_stall_still_parse() {
        // An audit block written before the field existed.
        let mut j = Json::obj();
        j.set("cycles", Json::U64(9));
        j.set("busy", Json::U64(5));
        j.set("fetch_stall", Json::U64(1));
        j.set("load_stall", Json::U64(2));
        j.set("redirect_stall", Json::U64(1));
        j.set("drc_walk", Json::U64(3));
        let b = CycleAccounting::from_json(&j).unwrap();
        assert_eq!(b.rerand_stall, 0);
        assert_eq!(b.cycles, 9);
    }

    #[test]
    fn rerand_stall_participates_in_the_identities() {
        // Covered: rerand cycles count toward coverage ...
        let a = CycleAccounting {
            cycles: 1000,
            busy: 600,
            load_stall: 100,
            rerand_stall: 250,
            ..CycleAccounting::default()
        };
        assert!(a.audit().passed(), "{:?}", a.audit().failures);
        // ... and toward the floor: claiming more pause than the clock
        // advanced is a violation.
        let b = CycleAccounting {
            cycles: 900,
            busy: 600,
            load_stall: 100,
            rerand_stall: 250,
            ..CycleAccounting::default()
        };
        assert!(b.audit().failures.iter().any(|f| f.contains("floor")));
        assert!(a.audit().render().contains("rerand"));
    }
}
