//! Structured progress events and a bounded event log.
//!
//! A [`ProgressEvent`] is a point-in-time reading of a running
//! simulation, taken at a deterministic *instruction-count* boundary.
//! Every field is derived from simulated state only — there is no
//! wall-clock inside the event, so the stream a run emits is a pure
//! function of the run itself (same workload, same config ⇒ identical
//! events, telemetry on or off, resumed or straight through). Layers
//! that want wall-clock (the daemon, `vcfr top`) attach it *outside*
//! the event at emission time, the same way manifests strip their host
//! block before canonicalisation.
//!
//! [`EventLog`] keeps the most recent events in a fixed-capacity
//! buffer (like [`crate::TraceRing`], but with an explicit dropped
//! counter surfaced in JSON so consumers can tell a quiet run from a
//! truncated one).

use crate::json::Json;

/// A progress reading at one deterministic instruction boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Ordinal of this event within the run (0-based).
    pub seq: u64,
    /// Instructions retired so far.
    pub instructions: u64,
    /// Simulated cycles elapsed so far.
    pub cycles: u64,
    /// Fetch-stall cycles so far.
    pub fetch_stall_cycles: u64,
    /// Load-stall cycles so far.
    pub load_stall_cycles: u64,
    /// Redirect-stall cycles so far.
    pub redirect_stall_cycles: u64,
    /// Re-randomization stall cycles so far.
    pub rerand_stall_cycles: u64,
    /// Superblock batches replayed on the fast path so far.
    pub sb_batches: u64,
    /// Instructions retired via superblock replay so far.
    pub sb_insts: u64,
    /// Faults injected so far.
    pub faults_injected: u64,
    /// Faults detected so far.
    pub faults_detected: u64,
    /// Re-randomization epochs completed so far.
    pub rerand_epochs: u64,
}

impl ProgressEvent {
    /// Fraction of retired instructions that went through superblock
    /// replay (`0.0` when nothing has retired yet).
    pub fn sb_hit_rate(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.sb_insts as f64 / self.instructions as f64
        }
    }

    /// Serialises as a flat object with stable keys.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("seq", Json::U64(self.seq));
        j.set("instructions", Json::U64(self.instructions));
        j.set("cycles", Json::U64(self.cycles));
        let mut stall = Json::obj();
        stall.set("fetch", Json::U64(self.fetch_stall_cycles));
        stall.set("load", Json::U64(self.load_stall_cycles));
        stall.set("redirect", Json::U64(self.redirect_stall_cycles));
        stall.set("rerand", Json::U64(self.rerand_stall_cycles));
        j.set("stall", stall);
        let mut sb = Json::obj();
        sb.set("batches", Json::U64(self.sb_batches));
        sb.set("insts", Json::U64(self.sb_insts));
        j.set("superblock", sb);
        let mut faults = Json::obj();
        faults.set("injected", Json::U64(self.faults_injected));
        faults.set("detected", Json::U64(self.faults_detected));
        j.set("faults", faults);
        j.set("rerand_epochs", Json::U64(self.rerand_epochs));
        j
    }

    /// Parses the [`ProgressEvent::to_json`] shape back; missing keys
    /// read as zero so older emitters stay readable.
    pub fn from_json(j: &Json) -> ProgressEvent {
        let u = |path: &str| j.get_path(path).and_then(Json::as_u64).unwrap_or(0);
        ProgressEvent {
            seq: u("seq"),
            instructions: u("instructions"),
            cycles: u("cycles"),
            fetch_stall_cycles: u("stall.fetch"),
            load_stall_cycles: u("stall.load"),
            redirect_stall_cycles: u("stall.redirect"),
            rerand_stall_cycles: u("stall.rerand"),
            sb_batches: u("superblock.batches"),
            sb_insts: u("superblock.insts"),
            faults_injected: u("faults.injected"),
            faults_detected: u("faults.detected"),
            rerand_epochs: u("rerand_epochs"),
        }
    }
}

/// A bounded log of the most recent [`ProgressEvent`]s.
#[derive(Clone, Debug)]
pub struct EventLog {
    capacity: usize,
    events: Vec<ProgressEvent>,
    start: usize,
    dropped: u64,
}

impl EventLog {
    /// A log keeping at most `capacity` events (0 disables retention —
    /// every push is counted as dropped).
    pub fn new(capacity: usize) -> EventLog {
        EventLog { capacity, events: Vec::new(), start: 0, dropped: 0 }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: ProgressEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.start] = event;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted (or rejected by a zero capacity) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent event, if any.
    pub fn latest(&self) -> Option<&ProgressEvent> {
        if self.events.is_empty() {
            None
        } else if self.events.len() < self.capacity {
            self.events.last()
        } else {
            let i = (self.start + self.capacity - 1) % self.capacity;
            Some(&self.events[i])
        }
    }

    /// Retained events, oldest first.
    pub fn to_vec(&self) -> Vec<ProgressEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        for i in 0..self.events.len() {
            out.push(self.events[(self.start + i) % self.events.len().max(1)]);
        }
        out
    }

    /// Serialises as `{capacity, dropped, events: [...]}` oldest first.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("capacity", Json::U64(self.capacity as u64));
        j.set("dropped", Json::U64(self.dropped));
        j.set(
            "events",
            Json::Arr(self.to_vec().iter().map(ProgressEvent::to_json).collect()),
        );
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> ProgressEvent {
        ProgressEvent { seq, instructions: seq * 1000, ..Default::default() }
    }

    #[test]
    fn keeps_latest_and_counts_dropped() {
        let mut log = EventLog::new(3);
        for s in 0..5 {
            log.push(ev(s));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let seqs: Vec<u64> = log.to_vec().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(log.latest().unwrap().seq, 4);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = EventLog::new(0);
        log.push(ev(0));
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
        assert!(log.latest().is_none());
    }

    #[test]
    fn event_json_round_trips() {
        let e = ProgressEvent {
            seq: 3,
            instructions: 40_000,
            cycles: 61_234,
            fetch_stall_cycles: 100,
            load_stall_cycles: 200,
            redirect_stall_cycles: 7,
            rerand_stall_cycles: 9,
            sb_batches: 12,
            sb_insts: 30_000,
            faults_injected: 2,
            faults_detected: 1,
            rerand_epochs: 4,
        };
        assert_eq!(ProgressEvent::from_json(&e.to_json()), e);
        assert!((e.sb_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_json_lists_oldest_first() {
        let mut log = EventLog::new(2);
        log.push(ev(0));
        log.push(ev(1));
        log.push(ev(2));
        let j = log.to_json();
        let arr = j.get("events").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(arr[1].get("seq").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("dropped").unwrap().as_u64(), Some(1));
    }
}
