//! `vcfr-obs` — the offline observability layer of the VCFR workspace.
//!
//! Like the `vcfr-rand`/`vcfr-proptest` shims, this crate has **zero
//! external dependencies**; everything is hand-rolled so the workspace
//! builds with no network. It provides:
//!
//! * [`Json`] / [`parse_json`] — a deterministic JSON emitter and a
//!   small parser (the only serialization machinery in the workspace);
//! * [`Registry`] / [`Snapshot`] — hierarchical dotted-name counters and
//!   wall-clock spans (`sim.il1.miss`, `sim.drc.walk_cycles`, …);
//! * [`TraceRing`] — a fixed-capacity ring of the last N pipeline
//!   events, the simulator's post-mortem trace;
//! * [`Histogram`] — a deterministic log2-bucketed histogram, safe to
//!   merge across workers and fleet nodes;
//! * [`Backoff`] — the capped exponential backoff timer shared by the
//!   daemon's watch streams and the fleet coordinator's heartbeats;
//! * [`ProgressEvent`] / [`EventLog`] — structured in-flight progress
//!   readings at deterministic instruction boundaries, with a bounded
//!   log that counts what it drops;
//! * [`CycleAccounting`] / [`AuditReport`] — the cycle-accounting audit
//!   (`busy + stalls ≈ cycles`, tolerance-checked);
//! * [`Manifest`] — per-(app, config) run manifests with a schema
//!   version and a canonical (volatile-free) byte form;
//! * [`BenchRecord`] — the shared `BENCH_repro.json` writer.
//!
//! See `docs/observability.md` for the naming scheme and schemas.

#![warn(missing_docs)]

mod audit;
mod backoff;
mod bench_json;
mod events;
mod histogram;
mod json;
mod manifest;
mod registry;
mod ring;

pub use audit::{AuditReport, CycleAccounting, DEFAULT_TOLERANCE};
pub use backoff::Backoff;
pub use bench_json::{BenchRecord, BenchRun, BENCH_SCHEMA_VERSION};
pub use events::{EventLog, ProgressEvent};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use json::{parse_json, Json, JsonError};
pub use manifest::{
    fingerprint, Manifest, ManifestError, MANIFEST_KIND, MANIFEST_SCHEMA_VERSION,
};
pub use registry::{Registry, Snapshot, SpanStat};
pub use ring::TraceRing;
