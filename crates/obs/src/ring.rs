//! A fixed-capacity ring buffer holding the last N events.
//!
//! The simulator pushes one record per pipeline event; when a run
//! faults, the ring's contents become the post-mortem trace attached to
//! the error. Pushes are branch-light (one index mask, one slot write),
//! so the ring can sit on the per-instruction path.

/// A ring buffer keeping the most recent `capacity` items.
///
/// # Example
///
/// ```
/// use vcfr_obs::TraceRing;
/// let mut r = TraceRing::new(2);
/// r.push(1);
/// r.push(2);
/// r.push(3);
/// assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct TraceRing<T> {
    slots: Vec<T>,
    /// Capacity rounded up to a power of two; 0 disables recording.
    cap: usize,
    /// Total items ever pushed.
    pushed: u64,
}

impl<T: Clone> TraceRing<T> {
    /// A ring keeping the last `capacity` items (rounded up to a power
    /// of two; a zero capacity disables recording entirely).
    pub fn new(capacity: usize) -> TraceRing<T> {
        let cap = if capacity == 0 { 0 } else { capacity.next_power_of_two() };
        TraceRing { slots: Vec::with_capacity(cap), cap, pushed: 0 }
    }

    /// Whether recording is disabled (zero capacity).
    pub fn is_disabled(&self) -> bool {
        self.cap == 0
    }

    /// Rebuilds a ring from its externalised parts (checkpoint support):
    /// the original `capacity`, the retained `items` oldest → newest (as
    /// returned by [`TraceRing::to_vec`]) and the original
    /// [`TraceRing::total_pushed`] count. The reconstructed ring pushes,
    /// iterates and evicts exactly like the one it was saved from.
    pub fn from_parts(capacity: usize, items: Vec<T>, pushed: u64) -> TraceRing<T> {
        let mut ring = TraceRing::new(capacity);
        if ring.cap == 0 {
            return ring;
        }
        if items.len() == ring.cap {
            // Full ring: place each item back at the slot position the
            // push cursor implies, so future pushes evict in the same
            // order.
            let mask = ring.cap - 1;
            let first = (pushed as usize).wrapping_sub(items.len());
            let mut slots: Vec<Option<T>> = (0..ring.cap).map(|_| None).collect();
            for (i, item) in items.into_iter().enumerate() {
                slots[first.wrapping_add(i) & mask] = Some(item);
            }
            ring.slots = slots.into_iter().map(|s| s.expect("full ring")).collect();
            ring.pushed = pushed;
        } else {
            // Partially filled: slots only wrap once the ring has filled,
            // so the push count equals the item count and appending
            // reproduces the layout.
            for item in items {
                ring.push(item);
            }
        }
        ring
    }

    /// Records one item, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, item: T) {
        if self.cap == 0 {
            return;
        }
        let at = (self.pushed as usize) & (self.cap - 1);
        if at < self.slots.len() {
            self.slots[at] = item;
        } else {
            self.slots.push(item);
        }
        self.pushed += 1;
    }

    /// Items currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total items ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let split = if self.cap > 0 && self.slots.len() == self.cap {
            (self.pushed as usize) & (self.cap - 1)
        } else {
            0
        };
        self.slots[split..].iter().chain(self.slots[..split].iter())
    }

    /// The retained items, oldest → newest.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_last_n_in_order() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![6, 7, 8, 9]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_pushed(), 10);
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut r = TraceRing::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.to_vec(), vec!["a", "b"]);
    }

    #[test]
    fn zero_capacity_is_a_no_op() {
        let mut r = TraceRing::new(0);
        for i in 0..100 {
            r.push(i);
        }
        assert!(r.is_empty());
        assert!(r.is_disabled());
        assert_eq!(r.total_pushed(), 0);
    }

    #[test]
    fn non_power_of_two_capacity_rounds_up() {
        let mut r = TraceRing::new(3);
        for i in 0..5 {
            r.push(i);
        }
        // Rounded to 4 slots.
        assert_eq!(r.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_parts_reconstructs_any_fill_level() {
        for total in [0usize, 2, 4, 7, 23] {
            let mut orig = TraceRing::new(4);
            for i in 0..total {
                orig.push(i);
            }
            let rebuilt = TraceRing::from_parts(4, orig.to_vec(), orig.total_pushed());
            assert_eq!(rebuilt.to_vec(), orig.to_vec(), "total={total}");
            assert_eq!(rebuilt.len(), orig.len());
            // Future pushes behave identically.
            let (mut a, mut b) = (orig, rebuilt);
            for i in 100..110 {
                a.push(i);
                b.push(i);
                assert_eq!(a.to_vec(), b.to_vec(), "total={total} after push {i}");
            }
        }
    }

    #[test]
    fn from_parts_zero_capacity_stays_disabled() {
        let r = TraceRing::from_parts(0, vec![1, 2, 3], 3);
        assert!(r.is_disabled());
        assert!(r.is_empty());
    }

    #[test]
    fn exactly_full_boundary() {
        let mut r = TraceRing::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![0, 1, 2, 3]);
        r.push(4);
        assert_eq!(r.to_vec(), vec![1, 2, 3, 4]);
    }
}
