//! A capped exponential backoff timer.
//!
//! The wait-loop idiom the telemetry layer introduced (a floor wait that
//! doubles while nothing happens and snaps back to the floor on any
//! change) shows up in three places now — the daemon's `watch` streams,
//! the fleet coordinator's heartbeat pings, and client-side completion
//! polls — so the arithmetic lives here once. The helper is pure
//! bookkeeping: callers decide *when* to wait and *what* counts as
//! activity; [`Backoff`] only tracks the current interval.

use std::time::Duration;

/// Capped exponential backoff: starts at a floor interval, doubles on
/// every idle step, never exceeds the cap, and resets to the floor when
/// the caller observes activity.
#[derive(Clone, Debug)]
pub struct Backoff {
    floor: Duration,
    cap: Duration,
    current: Duration,
}

impl Backoff {
    /// A backoff starting (and resetting) at `floor`, saturating at
    /// `cap`. A cap below the floor is clamped up to the floor.
    pub fn new(floor: Duration, cap: Duration) -> Backoff {
        let cap = cap.max(floor);
        Backoff { floor, cap, current: floor }
    }

    /// The interval the caller should wait right now.
    pub fn current(&self) -> Duration {
        self.current
    }

    /// Whether the backoff has saturated at its cap.
    pub fn at_cap(&self) -> bool {
        self.current >= self.cap
    }

    /// Records an idle step: returns the interval to wait, then doubles
    /// it (capped) for the next one.
    pub fn step(&mut self) -> Duration {
        let wait = self.current;
        self.current = (self.current * 2).min(self.cap);
        wait
    }

    /// Records activity: the next wait snaps back to the floor.
    pub fn reset(&mut self) {
        self.current = self.floor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_to_the_cap_and_resets() {
        let mut b = Backoff::new(Duration::from_millis(25), Duration::from_millis(160));
        assert_eq!(b.step(), Duration::from_millis(25));
        assert_eq!(b.step(), Duration::from_millis(50));
        assert_eq!(b.step(), Duration::from_millis(100));
        assert_eq!(b.step(), Duration::from_millis(160), "clamped, not 200");
        assert_eq!(b.step(), Duration::from_millis(160));
        assert!(b.at_cap());
        b.reset();
        assert!(!b.at_cap());
        assert_eq!(b.current(), Duration::from_millis(25));
    }

    #[test]
    fn cap_below_floor_is_clamped_up() {
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_millis(10));
        assert_eq!(b.step(), Duration::from_millis(100));
        assert_eq!(b.step(), Duration::from_millis(100));
    }
}
