//! A counter/span registry with hierarchical dotted names.
//!
//! Hot paths keep their counters as plain struct fields (a string-keyed
//! map per event would dominate the simulator's per-instruction cost);
//! at run end those fields are folded into a [`Registry`] under stable
//! dotted names (`sim.il1.miss`, `sim.drc.walk_cycles`, …). Coarser
//! layers — the bench harness, the CLI — use the registry directly,
//! including wall-clock spans for multi-stage pipelines.

use crate::json::Json;
use std::collections::BTreeMap;
use std::time::Instant;

/// A named-counter and named-span registry.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    /// Per-span accumulated duration and re-entry count.
    spans: BTreeMap<String, SpanStat>,
}

/// Accumulated duration and entry count for one named span.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpanStat {
    /// Total time spent in the span, in seconds.
    pub sum_secs: f64,
    /// Number of times the span was entered.
    pub count: u64,
}

impl SpanStat {
    /// Mean duration per entry, or `None` when never entered.
    pub fn mean_secs(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_secs / self.count as f64)
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the counter `name` to `value`.
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Records a span duration in seconds. Re-entries accumulate both
    /// the total and an entry count, so snapshots can report means —
    /// summing alone would make ten 1 ms entries indistinguishable
    /// from one 10 ms entry.
    pub fn record_span_secs(&mut self, name: &str, secs: f64) {
        let stat = self.spans.entry(name.to_owned()).or_default();
        stat.sum_secs += secs;
        stat.count += 1;
    }

    /// Times `f`, recording its duration under `name`.
    pub fn span<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.record_span_secs(name, t.elapsed().as_secs_f64());
        out
    }

    /// The current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// An immutable, name-sorted snapshot of every counter and span.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            spans: self.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }
}

/// A point-in-time view of a [`Registry`]: counters and spans, sorted by
/// name, serialisable to deterministic JSON.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, stat)` pairs, sorted by name.
    pub spans: Vec<(String, SpanStat)>,
}

impl Snapshot {
    /// Builds a counters-only snapshot from `(name, value)` pairs (the
    /// bridge hot-path stats use); pairs are sorted by name.
    pub fn from_counters(pairs: impl IntoIterator<Item = (String, u64)>) -> Snapshot {
        let mut counters: Vec<(String, u64)> = pairs.into_iter().collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        counters.dedup_by(|a, b| a.0 == b.0);
        Snapshot { counters, spans: Vec::new() }
    }

    /// The value of one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .map(|i| self.counters[i].1)
            .unwrap_or(0)
    }

    /// Serialises as a *nested* JSON object: dotted names become object
    /// paths (`sim.il1.miss` → `{"sim": {"il1": {"miss": N}}}`), keys
    /// sorted at every level, spans under a top-level `"spans"` object.
    /// Span values stay the accumulated seconds (the original shape);
    /// entry counts ride alongside in a sibling `"span_counts"` object
    /// so existing readers keep working.
    pub fn to_json(&self) -> Json {
        let mut root = Json::obj();
        for (name, v) in &self.counters {
            insert_path(&mut root, name, Json::U64(*v));
        }
        if !self.spans.is_empty() {
            let mut spans = Json::obj();
            let mut counts = Json::obj();
            for (name, stat) in &self.spans {
                spans.set(name, Json::F64(stat.sum_secs));
                counts.set(name, Json::U64(stat.count));
            }
            root.set("span_counts", counts);
            root.set("spans", spans);
        }
        root
    }
}

/// Inserts `value` at the dotted `path`, creating intermediate objects.
/// Because callers iterate name-sorted pairs, sibling keys come out
/// sorted, keeping the emission deterministic.
fn insert_path(root: &mut Json, path: &str, value: Json) {
    let mut cur = root;
    let mut parts = path.split('.').peekable();
    while let Some(part) = parts.next() {
        if parts.peek().is_none() {
            cur.set(part, value);
            return;
        }
        if cur.get(part).map(|v| !matches!(v, Json::Obj(_))).unwrap_or(true) {
            cur.set(part, Json::obj());
        }
        let Json::Obj(pairs) = cur else { unreachable!("set keeps objects") };
        cur = &mut pairs.iter_mut().find(|(k, _)| k == part).expect("just set").1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_and_read_back() {
        let mut r = Registry::new();
        r.add("sim.il1.miss", 3);
        r.add("sim.il1.miss", 2);
        r.set("sim.cycles", 100);
        assert_eq!(r.counter("sim.il1.miss"), 5);
        assert_eq!(r.counter("sim.cycles"), 100);
        assert_eq!(r.counter("absent"), 0);
    }

    #[test]
    fn snapshot_sorted_and_nested() {
        let mut r = Registry::new();
        r.set("sim.il1.miss", 7);
        r.set("sim.il1.access", 100);
        r.set("sim.cycles", 50);
        let s = r.snapshot();
        assert_eq!(s.counter("sim.il1.miss"), 7);
        let j = s.to_json();
        assert_eq!(j.get_path("sim.il1.miss").unwrap().as_u64(), Some(7));
        assert_eq!(j.get_path("sim.cycles").unwrap().as_u64(), Some(50));
        // Deterministic: emitting twice gives identical bytes.
        assert_eq!(j.pretty(), s.to_json().pretty());
    }

    #[test]
    fn spans_record_time() {
        let mut r = Registry::new();
        let v = r.span("stage.work", || 42);
        assert_eq!(v, 42);
        let s = r.snapshot();
        assert_eq!(s.spans.len(), 1);
        assert!(s.spans[0].1.sum_secs >= 0.0);
        assert_eq!(s.spans[0].1.count, 1);
        assert!(s.to_json().get_path("spans").is_some());
    }

    #[test]
    fn reentrant_spans_keep_count_and_mean() {
        let mut r = Registry::new();
        r.record_span_secs("stage.work", 1.0);
        r.record_span_secs("stage.work", 3.0);
        let s = r.snapshot();
        let stat = s.spans[0].1;
        assert_eq!(stat.count, 2);
        assert!((stat.sum_secs - 4.0).abs() < 1e-12);
        assert_eq!(stat.mean_secs(), Some(2.0));
        let j = s.to_json();
        // Backward-compatible shape: `spans` still maps name → summed
        // seconds; counts ride alongside under `span_counts`.
        let sum = j.get("spans").unwrap().get("stage.work").unwrap();
        assert!((sum.as_f64().unwrap() - 4.0).abs() < 1e-12);
        let n = j.get("span_counts").unwrap().get("stage.work").unwrap();
        assert_eq!(n.as_u64(), Some(2));
    }

    #[test]
    fn from_counters_sorts_and_dedups() {
        let s = Snapshot::from_counters(vec![
            ("b".into(), 2),
            ("a".into(), 1),
            ("b".into(), 9),
        ]);
        assert_eq!(s.counter("a"), 1);
        assert_eq!(s.counter("b"), 2);
        assert_eq!(s.counters.len(), 2);
    }

    #[test]
    fn conflicting_leaf_and_branch_names_resolve_to_branch() {
        // "a" then "a.b": the later branch wins over the leaf.
        let s = Snapshot::from_counters(vec![("a".into(), 1), ("a.b".into(), 2)]);
        let j = s.to_json();
        assert_eq!(j.get_path("a.b").unwrap().as_u64(), Some(2));
    }
}
