//! A small, dependency-free JSON value type with a *deterministic*
//! emitter and a recursive-descent parser.
//!
//! Determinism contract (the manifest/report machinery relies on it):
//!
//! * objects keep insertion order — builders insert keys in a fixed
//!   order, so re-emitting a built value is byte-stable;
//! * `u64` counters are emitted exactly (never through `f64`);
//! * floats use Rust's shortest-roundtrip `Display`, which is a pure
//!   function of the bit pattern, so identical results emit identical
//!   bytes on every host.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (emitted exactly).
    U64(u64),
    /// A signed integer (emitted exactly).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(pairs) = self else { panic!("Json::set on a non-object") };
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_owned(), value)),
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a dotted path (`"sim.il1.miss"`) through nested objects.
    pub fn get_path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for part in path.split('.') {
            cur = cur.get(part)?;
        }
        Some(cur)
    }

    /// The value as an unsigned integer, accepting any numeric variant
    /// with an exact unsigned representation.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serialises with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialises without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_num(out: &mut String, v: f64) {
        if v.is_finite() {
            let _ = write!(out, "{v}");
            // `Display` prints integral floats without a decimal point;
            // keep them a JSON *number* but mark the type so a
            // round-trip stays float-typed where it matters not at all
            // (numbers compare through as_f64). No suffix needed.
        } else {
            // JSON has no Inf/NaN; emit null (and never produce these
            // from counters).
            out.push_str("null");
        }
    }

    fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => Json::write_num(out, *v),
            Json::Str(s) => Json::write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    Json::write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            other => other.write(out, 0),
        }
    }
}

/// A JSON parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or trailing garbage.
///
/// # Example
///
/// ```
/// use vcfr_obs::{parse_json, Json};
/// let v = parse_json(r#"{"a": [1, 2.5, "x"]}"#).unwrap();
/// assert_eq!(v.get_path("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
/// ```
pub fn parse_json(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.at, msg: msg.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our
                            // artefacts; reject them rather than decode
                            // wrongly.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("non-scalar \\u escape"))?;
                            s.push(c);
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.at..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid utf-8"))?
                        .chars()
                        .next()
                        .expect("non-empty");
                    s.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .expect("digits are ascii");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError { at: start, msg: format!("bad number {text:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty_and_compact() {
        let mut v = Json::obj();
        v.set("b", Json::U64(2));
        v.set("a", Json::Arr(vec![Json::F64(1.5), Json::Str("x\"y".into()), Json::Null]));
        v.set("neg", Json::I64(-3));
        v.set("flag", Json::Bool(true));
        for text in [v.pretty(), v.compact()] {
            assert_eq!(parse_json(&text).unwrap(), v);
        }
    }

    #[test]
    fn emission_is_deterministic_and_order_preserving() {
        let mut v = Json::obj();
        v.set("z", Json::U64(1));
        v.set("a", Json::U64(2));
        let once = v.pretty();
        assert_eq!(once, v.pretty());
        assert!(once.find("\"z\"").unwrap() < once.find("\"a\"").unwrap());
    }

    #[test]
    fn set_replaces_in_place() {
        let mut v = Json::obj();
        v.set("k", Json::U64(1));
        v.set("k", Json::U64(2));
        assert_eq!(v, {
            let mut w = Json::obj();
            w.set("k", Json::U64(2));
            w
        });
    }

    #[test]
    fn u64_counters_are_exact() {
        let big = u64::MAX - 1;
        let text = Json::U64(big).compact();
        assert_eq!(parse_json(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn paths_navigate_nested_objects() {
        let v = parse_json(r#"{"sim": {"il1": {"miss": 7}}}"#).unwrap();
        assert_eq!(v.get_path("sim.il1.miss").unwrap().as_u64(), Some(7));
        assert!(v.get_path("sim.nope").is_none());
    }

    #[test]
    fn errors_carry_position() {
        let e = parse_json("{\"a\": }").unwrap_err();
        assert_eq!(e.at, 6);
        assert!(parse_json("[1, 2] junk").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn float_display_roundtrips() {
        for v in [0.1, 1.0 / 3.0, 1e-9, 123456.789] {
            let text = Json::F64(v).compact();
            assert_eq!(parse_json(&text).unwrap().as_f64(), Some(v));
        }
    }
}
