//! Property tests for the log2 [`Histogram`]: bucket boundaries are a
//! monotonic pure function of the value (zero and `u64::MAX` included),
//! and merging is associative/commutative — any merge tree over the same
//! multiset of samples yields the same histogram, which is what makes it
//! safe to aggregate across daemon workers and fleet nodes.

use proptest::prelude::*;
use vcfr_obs::{Histogram, HISTOGRAM_BUCKETS};

/// Values biased toward bucket edges: powers of two and their
/// neighbours, plus arbitrary draws and the 0 / `u64::MAX` extremes.
fn arb_value() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u64..67).prop_map(|(raw, sel)| match sel {
        0 => 0,
        1 => u64::MAX,
        s if s < 66 => {
            let p = 1u64 << ((s - 2) % 64);
            match s % 3 {
                0 => p,
                1 => p.saturating_sub(1),
                _ => p.saturating_add(1),
            }
        }
        _ => raw,
    })
}

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Bucket index is monotone non-decreasing in the value, stays in
    /// range, and each value lies inside its bucket's claimed span.
    #[test]
    fn bucket_index_is_monotonic_and_consistent(a in arb_value(), b in arb_value()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (bl, bh) = (Histogram::bucket_index(lo), Histogram::bucket_index(hi));
        prop_assert!(bl <= bh, "bucket({lo})={bl} > bucket({hi})={bh}");
        prop_assert!(bh < HISTOGRAM_BUCKETS);
        for v in [lo, hi] {
            let (low, high) = Histogram::bucket_range(Histogram::bucket_index(v));
            prop_assert!(low <= v && v <= high, "{v} outside bucket span [{low}, {high}]");
        }
    }

    /// Zero and `u64::MAX` land in the first and last buckets and never
    /// disturb each other's counts.
    #[test]
    fn zero_and_max_edges(n_zero in 0u64..5, n_max in 0u64..5) {
        let mut h = Histogram::new();
        for _ in 0..n_zero { h.record(0); }
        for _ in 0..n_max { h.record(u64::MAX); }
        prop_assert_eq!(h.bucket(0), n_zero);
        prop_assert_eq!(h.bucket(HISTOGRAM_BUCKETS - 1), n_max);
        prop_assert_eq!(h.count(), n_zero + n_max);
        if n_zero > 0 { prop_assert_eq!(h.min(), Some(0)); }
        if n_max > 0 { prop_assert_eq!(h.max(), Some(u64::MAX)); }
    }

    /// Merge is associative and commutative: (a ∪ b) ∪ c == a ∪ (b ∪ c)
    /// == c ∪ (b ∪ a), and all agree with recording every sample into
    /// one histogram directly.
    #[test]
    fn merge_is_associative_and_commutative(
        xs in proptest::collection::vec(arb_value(), 0..40),
        ys in proptest::collection::vec(arb_value(), 0..40),
        zs in proptest::collection::vec(arb_value(), 0..40),
    ) {
        let (a, b, c) = (build(&xs), build(&ys), build(&zs));

        // ((a ∪ b) ∪ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // (a ∪ (b ∪ c))
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);

        // (c ∪ (b ∪ a)) — commuted order.
        let mut ba = b.clone();
        ba.merge(&a);
        let mut rev = c.clone();
        rev.merge(&ba);

        // Everything recorded into a single histogram.
        let mut all: Vec<u64> = Vec::new();
        all.extend(&xs);
        all.extend(&ys);
        all.extend(&zs);
        let direct = build(&all);

        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &rev);
        prop_assert_eq!(&left, &direct);
        prop_assert_eq!(left.to_json().compact(), direct.to_json().compact());
    }
}
