//! On-disk persistence for [`RandomizedProgram`] — the deployable
//! artefact pair the paper's randomization software produces: "a binary
//! file with randomized instruction segments and lookup tables that can
//! be used to de-randomize the instruction space" (§VI-A).

use crate::randomize::{RandomizeStats, RandomizedProgram};
use std::collections::BTreeMap;
use vcfr_core::{LayoutMap, OrigAddr, RandAddr, TranslationTable};
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::{Addr, Image};

/// Magic/version header of serialized randomized programs.
pub const PROGRAM_MAGIC: [u8; 8] = *b"VCFRRP01";

impl RandomizedProgram {
    /// Serializes the whole artefact: both images, the layout, the
    /// fail-over set, the successor map and the rewrite statistics.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_magic(PROGRAM_MAGIC);
        w.bytes(&self.original.to_bytes());
        w.bytes(&self.scattered.to_bytes());

        let mut pairs: Vec<(OrigAddr, RandAddr)> = self.layout.iter().collect();
        pairs.sort();
        w.u64(pairs.len() as u64);
        for (o, r) in pairs {
            w.u32(o.raw());
            w.u32(r.raw());
        }

        w.u32(self.table.base());
        let mut failover: Vec<u32> = self.table.unrandomized_addrs().map(|a| a.raw()).collect();
        failover.sort_unstable();
        w.u64(failover.len() as u64);
        for a in failover {
            w.u32(a);
        }

        let succ: BTreeMap<Addr, Addr> = self.succ.iter().map(|(k, v)| (*k, *v)).collect();
        w.u64(succ.len() as u64);
        for (k, v) in succ {
            w.u32(k);
            w.u32(v);
        }

        w.u32(self.region.0);
        w.u32(self.region.1);

        let s = &self.stats;
        for v in [
            s.instructions,
            s.randomized,
            s.unrandomized,
            s.rewritten_branches,
            s.rewritten_code_pointers,
            s.rewritten_data_slots,
            s.failover_entries,
            s.pinned_by_scan,
            s.conservative_sites,
            s.safe_return_sites,
            s.call_sites,
            s.software_expanded_calls,
            s.expansion_bytes,
        ] {
            w.u64(v as u64);
        }

        w.u64(self.return_safety.len() as u64);
        for (addr, safe) in &self.return_safety {
            w.u32(*addr);
            w.u8(*safe as u8);
        }

        w.into_bytes()
    }

    /// Deserializes an artefact written by [`RandomizedProgram::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on truncation, corruption or a version
    /// mismatch.
    pub fn from_bytes(buf: &[u8]) -> Result<RandomizedProgram, WireError> {
        let mut r = Reader::with_magic(buf, PROGRAM_MAGIC)?;
        let original = Image::from_bytes(r.bytes()?)?;
        let scattered = Image::from_bytes(r.bytes()?)?;

        let npairs = r.u64()?;
        let mut layout = LayoutMap::default();
        for _ in 0..npairs {
            let o = r.u32()?;
            let rd = r.u32()?;
            layout
                .insert(OrigAddr(o), RandAddr(rd))
                .map_err(|_| WireError::LengthOutOfRange { len: npairs })?;
        }

        let table_base = r.u32()?;
        let mut table = TranslationTable::from_layout(&layout, table_base);
        let nfail = r.u64()?;
        for _ in 0..nfail {
            table.add_unrandomized(OrigAddr(r.u32()?));
        }

        let nsucc = r.u64()?;
        let mut succ = std::collections::HashMap::with_capacity(nsucc.min(1 << 24) as usize);
        for _ in 0..nsucc {
            let k = r.u32()?;
            let v = r.u32()?;
            succ.insert(k, v);
        }

        let region = (r.u32()?, r.u32()?);

        let mut vals = [0usize; 13];
        for v in vals.iter_mut() {
            *v = r.u64()? as usize;
        }
        let stats = RandomizeStats {
            instructions: vals[0],
            randomized: vals[1],
            unrandomized: vals[2],
            rewritten_branches: vals[3],
            rewritten_code_pointers: vals[4],
            rewritten_data_slots: vals[5],
            failover_entries: vals[6],
            pinned_by_scan: vals[7],
            conservative_sites: vals[8],
            safe_return_sites: vals[9],
            call_sites: vals[10],
            software_expanded_calls: vals[11],
            expansion_bytes: vals[12],
        };

        let nsafety = r.u64()?;
        let mut return_safety = BTreeMap::new();
        for _ in 0..nsafety {
            let addr = r.u32()?;
            let safe = r.u8()? != 0;
            return_safety.insert(addr, safe);
        }

        Ok(RandomizedProgram {
            original,
            scattered,
            layout,
            table,
            succ,
            region,
            stats,
            return_safety,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomize::{randomize, RandomizeConfig};
    use vcfr_isa::{AluOp, Asm, Cond, Machine, Reg};

    fn program() -> RandomizedProgram {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 20);
        let top = a.here();
        a.call_named("leaf");
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("leaf");
        a.alu_ri(AluOp::Add, Reg::Rax, 2);
        a.ret();
        let img = a.finish().unwrap();
        randomize(&img, &RandomizeConfig::with_seed(77)).unwrap()
    }

    #[test]
    fn roundtrip_preserves_artefact_and_behaviour() {
        let rp = program();
        let bytes = rp.to_bytes();
        let back = RandomizedProgram::from_bytes(&bytes).unwrap();

        assert_eq!(back.original, rp.original);
        assert_eq!(back.scattered, rp.scattered);
        assert_eq!(back.region, rp.region);
        assert_eq!(back.stats, rp.stats);
        assert_eq!(back.succ, rp.succ);
        assert_eq!(back.return_safety, rp.return_safety);
        assert_eq!(back.layout.len(), rp.layout.len());
        for (o, r) in rp.layout.iter() {
            assert_eq!(back.layout.to_rand(o), Some(r));
        }

        // Behavioural equivalence: the reloaded artefact executes.
        let want = Machine::new(&rp.original).run(10_000).unwrap().output;
        let got = back.scattered_machine().run(10_000).unwrap().output;
        assert_eq!(got, want);
    }

    #[test]
    fn table_semantics_survive_the_roundtrip() {
        let rp = program();
        let back = RandomizedProgram::from_bytes(&rp.to_bytes()).unwrap();
        // Prohibition and fail-over behave identically.
        assert_eq!(
            back.table.derand(vcfr_core::RandAddr(0x1000)).is_err(),
            rp.table.derand(vcfr_core::RandAddr(0x1000)).is_err()
        );
        for (o, r) in rp.layout.iter() {
            assert_eq!(back.table.derand(r).unwrap(), o);
        }
    }

    #[test]
    fn corruption_is_rejected() {
        let rp = program();
        let bytes = rp.to_bytes();
        assert!(RandomizedProgram::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        let mut flipped = bytes.clone();
        flipped[3] ^= 0xff;
        assert!(RandomizedProgram::from_bytes(&flipped).is_err());
    }
}
