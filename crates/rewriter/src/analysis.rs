//! Indirect control-transfer target recovery and return-address
//! randomization safety — the analyses §IV-A of the paper applies before
//! randomizing (relocation information, constant propagation, and the
//! byte-by-byte pointer-sized constant scan of Hiser et al.).

use crate::cfg::Cfg;
use crate::disasm::Disassembly;
use std::collections::{BTreeMap, BTreeSet};
use vcfr_isa::{Addr, Image, Inst, Reg, SymbolKind};

/// The conservative address-taken set: every address that *could* be the
/// target of an indirect control transfer.
///
/// Union of:
/// * relocation targets (jump tables, vtables — authoritative),
/// * `mov reg, imm` immediates that name an instruction start (constant
///   propagation producers),
/// * the byte-by-byte scan of the data section for pointer-sized
///   constants naming instruction starts (Hiser et al.'s "simple but
///   effective heuristic").
pub fn address_taken_targets(image: &Image, disasm: &Disassembly) -> BTreeSet<Addr> {
    let mut out = BTreeSet::new();
    for r in &image.relocs {
        if disasm.is_inst_start(r.target) {
            out.insert(r.target);
        }
    }
    for (_, inst) in disasm.iter() {
        if let Inst::MovRI { imm, .. } = inst {
            let v = *imm as u64;
            if v <= u32::MAX as u64 && disasm.is_inst_start(v as Addr) {
                out.insert(v as Addr);
            }
        }
    }
    if let Some(data) = image.data() {
        // Byte-by-byte, exactly as the paper describes — pointers need
        // not be aligned.
        for off in 0..data.bytes.len().saturating_sub(7) {
            let v = u64::from_le_bytes(data.bytes[off..off + 8].try_into().expect("8 bytes"));
            if v <= u32::MAX as u64 && disasm.is_inst_start(v as Addr) {
                out.insert(v as Addr);
            }
        }
    }
    out
}

/// What the analysis concluded about one indirect transfer site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Resolved {
    /// The exact possible target set.
    Exact(Vec<Addr>),
    /// Could not be resolved; all address-taken targets remain possible
    /// and the site must use un-randomized fail-over addresses.
    Conservative,
}

/// Resolution results for every indirect transfer site.
#[derive(Clone, Debug, Default)]
pub struct IndirectResolution {
    /// Per-site conclusion, keyed by the transfer instruction's address.
    pub sites: BTreeMap<Addr, Resolved>,
}

impl IndirectResolution {
    /// Whether every site resolved exactly.
    pub fn fully_resolved(&self) -> bool {
        self.sites.values().all(|r| matches!(r, Resolved::Exact(_)))
    }

    /// Sites that stayed conservative.
    pub fn conservative_sites(&self) -> impl Iterator<Item = Addr> + '_ {
        self.sites
            .iter()
            .filter(|(_, r)| matches!(r, Resolved::Conservative))
            .map(|(a, _)| *a)
    }
}

/// Abstract value for the intra-block constant propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbsVal {
    /// Statically known constant.
    Const(u64),
    /// Loaded from the table whose first slot is at this address
    /// (scaled-index load with unknown index).
    FromTable(Addr),
    /// Anything.
    Unknown,
}

/// A contiguous run of relocation slots starting at `base`: the classic
/// jump-table shape. Returns the targets in slot order.
fn reloc_run(image: &Image, base: Addr) -> Vec<Addr> {
    let by_slot: BTreeMap<Addr, Addr> = image.relocs.iter().map(|r| (r.at, r.target)).collect();
    let mut out = Vec::new();
    let mut slot = base;
    while let Some(t) = by_slot.get(&slot) {
        out.push(*t);
        slot = slot.wrapping_add(8);
    }
    out
}

/// Resolves indirect transfer targets with a constant propagation over
/// each basic block (registers as the propagation domain, exactly the
/// paper's "analysis is performed on registers over the CFG").
///
/// Recognised idioms:
/// * `call reg` where `reg` holds a constant code address → that single
///   target;
/// * `jmp/call [reg + d]` where `reg` is constant → the jump table at
///   `reg + d` (a contiguous relocation run);
/// * `jmp/call reg` where `reg` was loaded from a table with a scaled
///   index → the whole table's targets.
///
/// Anything else stays [`Resolved::Conservative`].
pub fn resolve_indirect_targets(
    image: &Image,
    _disasm: &Disassembly,
    cfg: &Cfg,
) -> IndirectResolution {
    let mut res = IndirectResolution::default();

    for block in cfg.blocks.values() {
        // Forward pass with a 16-register abstract state.
        let mut state = [AbsVal::Unknown; 16];
        for (addr, inst) in &block.insts {
            // First, if this instruction *is* an indirect transfer,
            // resolve it against the state before it executes.
            let conclusion = match inst {
                Inst::CallR { target } | Inst::JmpR { target } => {
                    Some(match state[target.index()] {
                        AbsVal::Const(c) => Resolved::Exact(vec![c as Addr]),
                        AbsVal::FromTable(t) => {
                            let run = reloc_run(image, t);
                            if run.is_empty() {
                                Resolved::Conservative
                            } else {
                                Resolved::Exact(run)
                            }
                        }
                        AbsVal::Unknown => Resolved::Conservative,
                    })
                }
                Inst::CallM { base, disp } | Inst::JmpM { base, disp } => {
                    Some(match state[base.index()] {
                        AbsVal::Const(c) => {
                            let table = (c as Addr).wrapping_add(*disp as Addr);
                            let run = reloc_run(image, table);
                            if run.is_empty() {
                                Resolved::Conservative
                            } else {
                                Resolved::Exact(run)
                            }
                        }
                        _ => Resolved::Conservative,
                    })
                }
                _ => None,
            };
            if let Some(c) = conclusion {
                res.sites.insert(*addr, c);
            }

            // Then apply the transfer function.
            match inst {
                Inst::MovRI { dst, imm } => state[dst.index()] = AbsVal::Const(*imm as u64),
                Inst::MovRR { dst, src } => state[dst.index()] = state[src.index()],
                Inst::Lea { dst, base, disp } => {
                    state[dst.index()] = match state[base.index()] {
                        AbsVal::Const(c) => AbsVal::Const(c.wrapping_add(*disp as i64 as u64)),
                        _ => AbsVal::Unknown,
                    };
                }
                Inst::LoadIdx { dst, base, disp, .. } => {
                    state[dst.index()] = match state[base.index()] {
                        AbsVal::Const(c) => {
                            AbsVal::FromTable((c as Addr).wrapping_add(*disp as Addr))
                        }
                        _ => AbsVal::Unknown,
                    };
                }
                Inst::Load { dst, base, disp } => {
                    // A plain load of slot 0 of a known table is a
                    // degenerate single-entry table access.
                    state[dst.index()] = match state[base.index()] {
                        AbsVal::Const(c) => {
                            AbsVal::FromTable((c as Addr).wrapping_add(*disp as Addr))
                        }
                        _ => AbsVal::Unknown,
                    };
                }
                Inst::LoadB { dst, .. } | Inst::Pop { dst } | Inst::Neg { dst }
                | Inst::Not { dst } => state[dst.index()] = AbsVal::Unknown,
                Inst::AluRR { dst, .. } | Inst::AluRI { dst, .. } => {
                    state[dst.index()] = AbsVal::Unknown;
                }
                _ => {}
            }
        }
    }
    res
}

/// Which call sites may safely push a *randomized* return address.
///
/// The paper's §IV-C: not all return addresses can be randomized — e.g.
/// position-independent-code idioms read the return address off the stack
/// and compute with it. The conservative software analysis here marks a
/// direct call safe only when the callee:
///
/// * is covered by a function symbol,
/// * contains a `ret` (it returns conventionally), and
/// * never loads the return slot (`mov reg, [rsp+0]` at function top
///   level).
///
/// Indirect calls are always unsafe (callee unknown), matching the paper.
/// The *hardware* option (§IV-C's DRC-backed transparent
/// de-randomization) lifts these restrictions; the simulator models both.
pub fn return_address_safety(
    image: &Image,
    disasm: &Disassembly,
    _cfg: &Cfg,
) -> BTreeMap<Addr, bool> {
    // Pre-compute per-function properties.
    let mut func_safe: BTreeMap<Addr, bool> = BTreeMap::new();
    for sym in &image.symbols {
        if sym.kind != SymbolKind::Func {
            continue;
        }
        let mut has_ret = false;
        let mut reads_ret_slot = false;
        let end = sym.addr.wrapping_add(sym.size);
        for (addr, inst) in disasm.iter() {
            if addr < sym.addr || addr >= end {
                continue;
            }
            match inst {
                Inst::Ret => has_ret = true,
                Inst::Load { base: Reg::Rsp, disp: 0, .. } => reads_ret_slot = true,
                _ => {}
            }
        }
        func_safe.insert(sym.addr, has_ret && !reads_ret_slot);
    }

    let mut out = BTreeMap::new();
    for (addr, inst) in disasm.iter() {
        match inst {
            Inst::Call { .. } => {
                let target = inst.direct_target(addr).expect("direct call has target");
                out.insert(addr, *func_safe.get(&target).unwrap_or(&false));
            }
            Inst::CallR { .. } | Inst::CallM { .. } => {
                out.insert(addr, false);
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use vcfr_isa::Asm;

    fn prep(asm: impl FnOnce(&mut Asm)) -> (Image, Disassembly, Cfg) {
        let mut a = Asm::new(0x1000);
        asm(&mut a);
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let targets = address_taken_targets(&img, &d);
        let cfg = Cfg::build(&img, &d, &targets);
        (img, d, cfg)
    }

    #[test]
    fn address_taken_covers_relocs_immediates_and_data_scan() {
        let (img, d, _) = prep(|a| {
            let f = a.label();
            let g = a.label();
            let _t = a.data_ptr_table(&[f]); // reloc
            a.mov_label(vcfr_isa::Reg::Rax, g); // immediate producer
            a.halt();
            a.bind(f);
            a.ret();
            a.bind(g);
            a.ret();
        });
        let targets = address_taken_targets(&img, &d);
        assert!(targets.contains(&img.relocs[0].target));
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn data_scan_finds_unrelocated_pointers() {
        let (img, d, _) = prep(|a| {
            // Store a code pointer as raw bytes with NO relocation entry:
            // only the byte scan can find it.
            let target_addr = 0x1000u64 + 9; // interior of the mov below
            a.data_bytes(&target_addr.to_le_bytes());
            a.mov_ri(vcfr_isa::Reg::Rax, 0); // 10 bytes: 0x1000..0x100a
            a.halt();
        });
        // mov_ri is 10 bytes, so halt is at 0x100a, not 0x1009 — the
        // planted pointer is stale and must NOT be picked up.
        let targets = address_taken_targets(&img, &d);
        assert!(targets.is_empty());

        // Now plant a *correct* pointer.
        let (img, d, _) = prep(|a| {
            a.data_bytes(&(0x1000u64 + 10).to_le_bytes());
            a.mov_ri(vcfr_isa::Reg::Rax, 0);
            a.halt();
        });
        let targets = address_taken_targets(&img, &d);
        assert_eq!(targets.into_iter().collect::<Vec<_>>(), vec![0x100a]);
    }

    #[test]
    fn jump_table_resolves_exactly() {
        let (img, d, cfg) = prep(|a| {
            let c0 = a.label();
            let c1 = a.label();
            let t = a.data_ptr_table(&[c0, c1]);
            a.mov_ri(vcfr_isa::Reg::Rbx, t.0 as i64);
            a.jmp_m(vcfr_isa::Reg::Rbx, 0);
            a.bind(c0);
            a.halt();
            a.bind(c1);
            a.halt();
        });
        let res = resolve_indirect_targets(&img, &d, &cfg);
        assert!(res.fully_resolved());
        let site = res.sites.keys().next().copied().unwrap();
        match &res.sites[&site] {
            Resolved::Exact(ts) => {
                assert_eq!(ts.len(), 2);
                assert_eq!(ts[0], img.relocs[0].target);
            }
            other => panic!("expected exact resolution, got {other:?}"),
        }
    }

    #[test]
    fn scaled_index_table_load_resolves() {
        let (img, d, cfg) = prep(|a| {
            let c0 = a.label();
            let c1 = a.label();
            let t = a.data_ptr_table(&[c0, c1]);
            a.mov_ri(vcfr_isa::Reg::Rbx, t.0 as i64);
            a.load_idx(vcfr_isa::Reg::Rdx, vcfr_isa::Reg::Rbx, vcfr_isa::Reg::Rcx, 3, 0);
            a.jmp_r(vcfr_isa::Reg::Rdx);
            a.bind(c0);
            a.halt();
            a.bind(c1);
            a.halt();
        });
        let res = resolve_indirect_targets(&img, &d, &cfg);
        assert!(res.fully_resolved());
        let Resolved::Exact(ts) = res.sites.values().next().unwrap() else {
            panic!("expected exact");
        };
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn constant_function_pointer_resolves_to_single_target() {
        let (img, d, cfg) = prep(|a| {
            let f = a.label();
            a.mov_label(vcfr_isa::Reg::Rax, f);
            a.call_r(vcfr_isa::Reg::Rax);
            a.halt();
            a.bind(f);
            a.ret();
        });
        let res = resolve_indirect_targets(&img, &d, &cfg);
        let Resolved::Exact(ts) = res.sites.values().next().unwrap() else {
            panic!("expected exact");
        };
        assert_eq!(ts.len(), 1);
        assert!(img.in_text(ts[0]));
    }

    #[test]
    fn unknown_register_stays_conservative() {
        let (img, d, cfg) = prep(|a| {
            let f = a.label();
            let _t = a.data_ptr_table(&[f]); // makes f address-taken
            a.pop(vcfr_isa::Reg::Rax); // value unknowable statically
            a.jmp_r(vcfr_isa::Reg::Rax);
            a.bind(f);
            a.halt();
        });
        let res = resolve_indirect_targets(&img, &d, &cfg);
        assert!(!res.fully_resolved());
        assert_eq!(res.conservative_sites().count(), 1);
    }

    #[test]
    fn return_safety_direct_vs_indirect_and_pic_idiom() {
        let (img, d, cfg) = prep(|a| {
            a.call_named("plain"); // safe
            a.call_named("pic"); // unsafe: reads [rsp+0]
            let f = a.named_label("plain");
            a.mov_label(vcfr_isa::Reg::Rax, f);
            a.call_r(vcfr_isa::Reg::Rax); // unsafe: indirect
            a.halt();
            a.func("plain");
            a.ret();
            a.func("pic");
            a.load(vcfr_isa::Reg::Rbx, vcfr_isa::Reg::Rsp, 0); // reads own return address
            a.ret();
        });
        let safety = return_address_safety(&img, &d, &cfg);
        let mut vals: Vec<bool> = safety.values().copied().collect();
        // Sites in address order: call plain, call pic, call_r.
        assert_eq!(vals.len(), 3);
        assert!(vals.remove(0));
        assert!(!vals.remove(0));
        assert!(!vals.remove(0));
    }
}
