//! Control-flow graph recovery: the leader algorithm over a
//! [`Disassembly`], with conservative indirect edges that analyses can
//! later prune (as in De Sutter et al.'s link-time rewriting literature
//! the paper cites).

use crate::disasm::Disassembly;
use std::collections::{BTreeMap, BTreeSet};
use vcfr_isa::{Addr, Image, Inst};

/// How a basic block ends.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Terminator {
    /// The block ends because the next instruction is a leader; control
    /// continues sequentially.
    FallThrough(Addr),
    /// Unconditional direct jump.
    Jump(Addr),
    /// Conditional branch with both outcomes.
    Branch {
        /// Target when taken.
        taken: Addr,
        /// Fall-through when not taken.
        fall: Addr,
    },
    /// Direct call; control returns to `ret`.
    Call {
        /// Callee entry.
        target: Addr,
        /// Return site.
        ret: Addr,
    },
    /// Indirect call (`call reg` / `call [m]`); callee unknown until
    /// analysis resolves it.
    IndirectCall {
        /// Return site.
        ret: Addr,
    },
    /// Indirect jump (`jmp reg` / `jmp [m]`).
    IndirectJump,
    /// `ret`.
    Return,
    /// `halt` or `sys 0`.
    Halt,
}

/// A maximal single-entry straight-line instruction sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// The instructions, in address order.
    pub insts: Vec<(Addr, Inst)>,
    /// How the block ends.
    pub term: Terminator,
}

impl BasicBlock {
    /// First address past the last instruction.
    pub fn end(&self) -> Addr {
        let (a, i) = self.insts.last().expect("blocks are non-empty");
        a.wrapping_add(i.len() as Addr)
    }

    /// The final (terminating) instruction.
    pub fn last(&self) -> (Addr, &Inst) {
        let (a, i) = self.insts.last().expect("blocks are non-empty");
        (*a, i)
    }
}

/// The control-flow graph of the reachable code.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Cond, Reg};
/// use vcfr_rewriter::{disassemble, Cfg};
///
/// let mut a = Asm::new(0x1000);
/// let done = a.label();
/// a.cmp_i(Reg::Rax, 0);
/// a.jcc(Cond::Eq, done);
/// a.alu_ri(vcfr_isa::AluOp::Add, Reg::Rax, 1);
/// a.bind(done);
/// a.halt();
/// let img = a.finish().unwrap();
/// let d = disassemble(&img).unwrap();
/// let cfg = Cfg::build(&img, &d, &Default::default());
/// assert_eq!(cfg.blocks.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<Addr, BasicBlock>,
    /// Successor block-start addresses per block.
    pub succs: BTreeMap<Addr, Vec<Addr>>,
    /// Predecessor block-start addresses per block.
    pub preds: BTreeMap<Addr, Vec<Addr>>,
}

impl Cfg {
    /// Builds the CFG over the *reachable* instructions of `disasm`.
    ///
    /// `indirect_targets` is the conservative address-taken set: every
    /// indirect transfer initially gets an edge to each of them, exactly
    /// as the paper describes ("connect all indirect control flow
    /// transfer instructions with all possible (relocatable) targets"),
    /// to be pruned later by [`crate::analysis::resolve_indirect_targets`].
    pub fn build(image: &Image, disasm: &Disassembly, indirect_targets: &BTreeSet<Addr>) -> Cfg {
        // ---- find leaders -------------------------------------------
        let mut leaders: BTreeSet<Addr> = BTreeSet::new();
        leaders.insert(image.entry);
        for s in &image.symbols {
            if disasm.reachable.contains(&s.addr) {
                leaders.insert(s.addr);
            }
        }
        for t in indirect_targets {
            if disasm.reachable.contains(t) {
                leaders.insert(*t);
            }
        }
        for (&addr, inst) in &disasm.insts {
            if !disasm.reachable.contains(&addr) {
                continue;
            }
            if let Some(t) = inst.direct_target(addr) {
                leaders.insert(t);
            }
            if inst.is_control() {
                let next = addr.wrapping_add(inst.len() as Addr);
                if disasm.reachable.contains(&next) {
                    leaders.insert(next);
                }
            }
        }

        // ---- carve blocks -------------------------------------------
        let mut cfg = Cfg::default();
        let reachable: Vec<Addr> = disasm
            .insts
            .keys()
            .copied()
            .filter(|a| disasm.reachable.contains(a))
            .collect();
        let mut i = 0;
        while i < reachable.len() {
            let start = reachable[i];
            if !leaders.contains(&start) {
                i += 1;
                continue;
            }
            let mut insts = Vec::new();
            let mut j = i;
            loop {
                let addr = reachable[j];
                let inst = disasm.insts[&addr];
                insts.push((addr, inst));
                let next = addr.wrapping_add(inst.len() as Addr);
                j += 1;
                let next_is_leader = leaders.contains(&next);
                let next_is_seq = j < reachable.len() && reachable[j] == next;
                if inst.is_control() || !inst.falls_through() || next_is_leader || !next_is_seq {
                    break;
                }
            }
            let (last_addr, last) = *insts.last().expect("non-empty block");
            let fall = last_addr.wrapping_add(last.len() as Addr);
            let term = match last {
                Inst::Jmp { .. } => Terminator::Jump(last.direct_target(last_addr).unwrap()),
                Inst::Jcc { .. } => Terminator::Branch {
                    taken: last.direct_target(last_addr).unwrap(),
                    fall,
                },
                Inst::Call { .. } => Terminator::Call {
                    target: last.direct_target(last_addr).unwrap(),
                    ret: fall,
                },
                Inst::CallR { .. } | Inst::CallM { .. } => Terminator::IndirectCall { ret: fall },
                Inst::JmpR { .. } | Inst::JmpM { .. } => Terminator::IndirectJump,
                Inst::Ret => Terminator::Return,
                Inst::Halt | Inst::Sys { num: 0 } => Terminator::Halt,
                _ => Terminator::FallThrough(fall),
            };
            cfg.blocks.insert(start, BasicBlock { start, insts, term });
            i = j;
        }

        // ---- edges ----------------------------------------------------
        let block_starts: Vec<Addr> = cfg.blocks.keys().copied().collect();
        for &start in &block_starts {
            let term = cfg.blocks[&start].term.clone();
            let mut outs: Vec<Addr> = Vec::new();
            match term {
                Terminator::FallThrough(t) | Terminator::Jump(t) => outs.push(t),
                Terminator::Branch { taken, fall } => {
                    outs.push(taken);
                    outs.push(fall);
                }
                Terminator::Call { target, ret } => {
                    outs.push(target);
                    outs.push(ret);
                }
                Terminator::IndirectCall { ret } => {
                    outs.extend(indirect_targets.iter().copied());
                    outs.push(ret);
                }
                Terminator::IndirectJump => outs.extend(indirect_targets.iter().copied()),
                Terminator::Return | Terminator::Halt => {}
            }
            outs.retain(|t| cfg.blocks.contains_key(t));
            outs.dedup();
            for t in &outs {
                cfg.preds.entry(*t).or_default().push(start);
            }
            cfg.succs.insert(start, outs);
        }
        cfg
    }

    /// The block containing `addr`, if any.
    pub fn block_containing(&self, addr: Addr) -> Option<&BasicBlock> {
        self.blocks
            .range(..=addr)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| addr < b.end())
    }

    /// Replaces the conservative successor set of the indirect-transfer
    /// block starting at `block` with `targets` (plus the return site for
    /// indirect calls). Used after target resolution.
    pub fn prune_indirect(&mut self, block: Addr, targets: &[Addr]) {
        let Some(b) = self.blocks.get(&block) else { return };
        let keep_ret = match b.term {
            Terminator::IndirectCall { ret } => Some(ret),
            Terminator::IndirectJump => None,
            _ => return,
        };
        let old = self.succs.insert(
            block,
            targets
                .iter()
                .copied()
                .chain(keep_ret)
                .filter(|t| self.blocks.contains_key(t))
                .collect(),
        );
        // Rebuild preds for affected targets.
        if let Some(old) = old {
            for t in old {
                if let Some(p) = self.preds.get_mut(&t) {
                    p.retain(|s| *s != block);
                }
            }
        }
        for t in self.succs[&block].clone() {
            self.preds.entry(t).or_default().push(block);
        }
    }

    /// Total instruction count across all blocks.
    pub fn inst_count(&self) -> usize {
        self.blocks.values().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use vcfr_isa::{Asm, Cond, Reg};

    fn build(asm: impl FnOnce(&mut Asm)) -> (Image, Cfg) {
        let mut a = Asm::new(0x1000);
        asm(&mut a);
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let targets: BTreeSet<Addr> = img.relocs.iter().map(|r| r.target).collect();
        let cfg = Cfg::build(&img, &d, &targets);
        (img, cfg)
    }

    #[test]
    fn diamond_shape() {
        let (_, cfg) = build(|a| {
            let els = a.label();
            let end = a.label();
            a.cmp_i(Reg::Rax, 0); // B0
            a.jcc(Cond::Eq, els);
            a.mov_ri(Reg::Rbx, 1); // B1
            a.jmp(end);
            a.bind(els);
            a.mov_ri(Reg::Rbx, 2); // B2
            a.bind(end);
            a.halt(); // B3
        });
        assert_eq!(cfg.blocks.len(), 4);
        let starts: Vec<Addr> = cfg.blocks.keys().copied().collect();
        let (b0, b1, b2, b3) = (starts[0], starts[1], starts[2], starts[3]);
        assert_eq!(cfg.succs[&b0], vec![b2, b1]);
        assert_eq!(cfg.succs[&b1], vec![b3]);
        assert_eq!(cfg.succs[&b2], vec![b3]);
        assert!(cfg.succs[&b3].is_empty());
        let mut p = cfg.preds[&b3].clone();
        p.sort();
        assert_eq!(p, vec![b1, b2]);
    }

    #[test]
    fn call_block_has_target_and_return_edges() {
        let (img, cfg) = build(|a| {
            a.call_named("f");
            a.halt();
            a.func("f");
            a.ret();
        });
        let f = img.symbol("f").unwrap().addr;
        let entry_succs = &cfg.succs[&0x1000];
        assert!(entry_succs.contains(&f));
        assert_eq!(entry_succs.len(), 2);
        match cfg.blocks[&f].term {
            Terminator::Return => {}
            ref other => panic!("expected return terminator, got {other:?}"),
        }
    }

    #[test]
    fn indirect_jump_gets_conservative_edges() {
        let (img, cfg) = build(|a| {
            let c0 = a.label();
            let c1 = a.label();
            let t = a.data_ptr_table(&[c0, c1]);
            a.mov_ri(Reg::Rbx, t.0 as i64);
            a.jmp_m(Reg::Rbx, 0);
            a.bind(c0);
            a.halt();
            a.bind(c1);
            a.halt();
        });
        let dispatch = 0x1000;
        let mut succs = cfg.succs[&dispatch].clone();
        succs.sort();
        let mut want: Vec<Addr> = img.relocs.iter().map(|r| r.target).collect();
        want.sort();
        assert_eq!(succs, want);
    }

    #[test]
    fn prune_indirect_narrows_edges() {
        let (img, mut cfg) = build(|a| {
            let c0 = a.label();
            let c1 = a.label();
            let t = a.data_ptr_table(&[c0, c1]);
            a.mov_ri(Reg::Rbx, t.0 as i64);
            a.jmp_m(Reg::Rbx, 0);
            a.bind(c0);
            a.halt();
            a.bind(c1);
            a.halt();
        });
        let only = img.relocs[0].target;
        cfg.prune_indirect(0x1000, &[only]);
        assert_eq!(cfg.succs[&0x1000], vec![only]);
        assert!(cfg.preds[&img.relocs[1].target].is_empty());
    }

    #[test]
    fn block_containing_locates_interior_addresses() {
        let (_, cfg) = build(|a| {
            a.mov_ri(Reg::Rax, 1); // 10 bytes at 0x1000
            a.nop();
            a.halt();
        });
        let b = cfg.block_containing(0x1005).unwrap();
        assert_eq!(b.start, 0x1000);
        assert!(cfg.block_containing(0x0fff).is_none());
        assert_eq!(cfg.inst_count(), 3);
    }

    #[test]
    fn block_end_and_last() {
        let (_, cfg) = build(|a| {
            a.nop();
            a.halt();
        });
        let b = &cfg.blocks[&0x1000];
        assert_eq!(b.end(), 0x1002);
        assert_eq!(b.last().0, 0x1001);
    }
}
