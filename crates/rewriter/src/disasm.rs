//! Disassembly: recursive descent seeded from entry/symbols/relocations,
//! plus a linear sweep over any remaining gaps.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use vcfr_isa::{decode, Addr, DecodeError, Image, Inst, MAX_INST_LEN};

/// A disassembly failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisasmError {
    /// A reachable address did not decode.
    Undecodable {
        /// The faulting address.
        at: Addr,
        /// The decoder's complaint.
        source: DecodeError,
    },
    /// A direct control transfer targets an address outside the text
    /// section.
    TargetOutsideText {
        /// Address of the transfer instruction.
        at: Addr,
        /// The out-of-range target.
        target: Addr,
    },
}

impl fmt::Display for DisasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisasmError::Undecodable { at, source } => {
                write!(f, "undecodable instruction at {at:#x}: {source}")
            }
            DisasmError::TargetOutsideText { at, target } => {
                write!(f, "transfer at {at:#x} targets {target:#x} outside text")
            }
        }
    }
}

impl std::error::Error for DisasmError {}

/// The recovered instruction map of a program.
#[derive(Clone, Debug, Default)]
pub struct Disassembly {
    /// Every discovered instruction, keyed by address. `BTreeMap` so
    /// iteration is in address order.
    pub insts: BTreeMap<Addr, Inst>,
    /// The subset proven reachable by recursive descent (instructions
    /// found only by the linear sweep may be alignment padding or dead
    /// code).
    pub reachable: BTreeSet<Addr>,
}

impl Disassembly {
    /// The instruction at `addr`, if one was discovered there.
    pub fn at(&self, addr: Addr) -> Option<&Inst> {
        self.insts.get(&addr)
    }

    /// Whether `addr` is the start of a discovered instruction.
    pub fn is_inst_start(&self, addr: Addr) -> bool {
        self.insts.contains_key(&addr)
    }

    /// Number of discovered instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether nothing was discovered.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates `(address, instruction)` in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &Inst)> + '_ {
        self.insts.iter().map(|(a, i)| (*a, i))
    }
}

fn decode_in_text(image: &Image, addr: Addr) -> Result<Inst, DisasmError> {
    let text = image.text();
    let off = addr.wrapping_sub(text.base) as usize;
    let end = (off + MAX_INST_LEN).min(text.bytes.len());
    decode(&text.bytes[off..end]).map_err(|source| DisasmError::Undecodable { at: addr, source })
}

/// Disassembles `image`.
///
/// Recursive descent starts from the entry point, every function symbol
/// and every relocation target; direct-transfer targets and fall-throughs
/// are followed. A linear sweep then walks any gaps so the whole text
/// section is covered (mirroring the paper's "complete scan of
/// disassembled code" with objdump).
///
/// # Errors
///
/// Returns a [`DisasmError`] when a reachable address does not decode or
/// a direct transfer exits the text section.
pub fn disassemble(image: &Image) -> Result<Disassembly, DisasmError> {
    let text = image.text();
    let mut out = Disassembly::default();

    // ---- recursive descent ------------------------------------------
    let mut work: VecDeque<Addr> = VecDeque::new();
    work.push_back(image.entry);
    for s in &image.symbols {
        if text.contains(s.addr) {
            work.push_back(s.addr);
        }
    }
    for r in &image.relocs {
        if text.contains(r.target) {
            work.push_back(r.target);
        }
    }

    while let Some(addr) = work.pop_front() {
        if out.reachable.contains(&addr) {
            continue;
        }
        if !text.contains(addr) {
            // Seeds are pre-filtered; a transfer pointing outside text is
            // reported at the transfer below, so this is unreachable for
            // well-formed inputs but kept defensive.
            continue;
        }
        let inst = decode_in_text(image, addr)?;
        out.reachable.insert(addr);
        out.insts.insert(addr, inst);

        if let Some(target) = inst.direct_target(addr) {
            if !text.contains(target) {
                return Err(DisasmError::TargetOutsideText { at: addr, target });
            }
            work.push_back(target);
        }
        if inst.falls_through() {
            work.push_back(addr.wrapping_add(inst.len() as Addr));
        }
    }

    // ---- linear sweep over gaps --------------------------------------
    let mut addr = text.base;
    let end = text.end();
    while addr < end {
        if let Some(inst) = out.insts.get(&addr) {
            addr = addr.wrapping_add(inst.len() as Addr);
            continue;
        }
        match decode_in_text(image, addr) {
            Ok(inst) if addr.wrapping_add(inst.len() as Addr) <= end => {
                out.insts.insert(addr, inst);
                addr = addr.wrapping_add(inst.len() as Addr);
            }
            // Unreachable byte soup (e.g. inline data): skip a byte, as a
            // sweeping disassembler must.
            _ => addr = addr.wrapping_add(1),
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{Asm, Cond, Reg};

    #[test]
    fn straight_line_coverage() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.nop();
        a.halt();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.reachable.len(), 3);
        assert!(d.is_inst_start(0x1000));
        assert!(d.is_inst_start(0x100a));
        assert!(!d.is_inst_start(0x1001));
    }

    #[test]
    fn follows_branches_and_calls() {
        let mut a = Asm::new(0x1000);
        let skip = a.label();
        a.cmp_i(Reg::Rax, 0);
        a.jcc(Cond::Eq, skip);
        a.call_named("f");
        a.bind(skip);
        a.halt();
        a.func("f");
        a.ret();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let f = img.symbol("f").unwrap().addr;
        assert!(d.reachable.contains(&f));
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn reloc_targets_are_seeds() {
        // A function only reachable through a jump table must still be
        // discovered (via its relocation entry).
        let mut a = Asm::new(0x1000);
        let hidden = a.label();
        let table = a.data_ptr_table(&[hidden]);
        a.mov_ri(Reg::Rbx, table.0 as i64);
        a.jmp_m(Reg::Rbx, 0);
        a.bind(hidden);
        a.halt();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        assert!(d.reachable.contains(&img.relocs[0].target));
    }

    #[test]
    fn sweep_covers_dead_code() {
        let mut a = Asm::new(0x1000);
        let end = a.label();
        a.jmp(end);
        a.mov_ri(Reg::Rcx, 9); // dead, but sweepable
        a.bind(end);
        a.halt();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        // jmp + dead mov + halt all present; only jmp and halt reachable.
        assert_eq!(d.len(), 3);
        assert_eq!(d.reachable.len(), 2);
    }

    #[test]
    fn transfer_outside_text_is_an_error() {
        let mut a = Asm::new(0x1000);
        a.halt();
        let mut img = a.finish().unwrap();
        // Hand-craft a jmp to nowhere.
        let mut bytes = vcfr_isa::encode(&Inst::Jmp { rel: 0x1000 });
        bytes.push(0x01); // halt
        img.sections[0].bytes = bytes;
        let err = disassemble(&img).unwrap_err();
        assert!(matches!(err, DisasmError::TargetOutsideText { .. }));
    }

    #[test]
    fn iteration_is_address_ordered() {
        let mut a = Asm::new(0x1000);
        a.nop();
        a.nop();
        a.halt();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let addrs: Vec<Addr> = d.iter().map(|(a, _)| a).collect();
        let mut sorted = addrs.clone();
        sorted.sort();
        assert_eq!(addrs, sorted);
        assert!(!d.is_empty());
    }
}
