//! The ILR randomizer: assigns every instruction a fresh address in a
//! large randomization region, rewrites direct branches, code-pointer
//! immediates and data-resident code pointers, materialises the scattered
//! binary image, and emits the randomization/de-randomization tables.
//!
//! Functions listed in [`RandomizeConfig::keep_unrandomized`] model the
//! paper's fail-over path: targets whose addresses the analysis cannot
//! adapt stay at their original addresses, are registered as
//! un-randomized entries in the [`TranslationTable`] (randomized tag
//! clear), and remain the only ROP-addressable code after randomization.

use crate::analysis::{address_taken_targets, resolve_indirect_targets, return_address_safety};
use crate::cfg::Cfg;
use crate::disasm::{disassemble, DisasmError, Disassembly};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use vcfr_core::{LayoutError, LayoutMap, OrigAddr, RandAddr, TranslationTable};
use vcfr_isa::{
    encode, Addr, Image, Inst, Machine, Section, SectionKind, Symbol,
};

/// Configuration for [`randomize`].
#[derive(Clone, Debug)]
pub struct RandomizeConfig {
    /// RNG seed; every layout is deterministic given the seed.
    pub seed: u64,
    /// Randomization-region span as a multiple of the text size. The
    /// default of 32 makes same-cache-line co-residence of two
    /// instructions rare, which is what destroys fetch locality in the
    /// naive hardware ILR.
    pub spread: u32,
    /// log2 floor of the region span: the span is at least
    /// `1 << min_span_bits` bytes regardless of text size. 12 (one
    /// 4 KiB page) reproduces the historical behaviour; the security
    /// frontier raises it to trade entropy against locality.
    pub min_span_bits: u32,
    /// Base of the randomization region.
    pub region_base: Addr,
    /// Base of the in-memory translation-table pages.
    pub table_base: Addr,
    /// Function symbols to leave at their original addresses (the
    /// fail-over set for targets whose address flow cannot be rewritten).
    pub keep_unrandomized: Vec<String>,
    /// §IV-A option 1: rewrite each safely-randomizable direct `call`
    /// into `push randomized_return_addr; jmp target`, so return-address
    /// randomization needs no architectural support. Expands those calls
    /// from 5 to 10 bytes ("this approach expands size of the original
    /// program").
    pub software_return_randomization: bool,
    /// §IV-D: confine randomization within each 4 KiB page ("control
    /// flow randomization can be confined within the same page, which
    /// will further reduce its impact to iTLB"). Instructions are
    /// permuted within their original page instead of scattered across
    /// the large region.
    pub page_confined: bool,
}

impl RandomizeConfig {
    /// The default configuration with a specific seed.
    pub fn with_seed(seed: u64) -> RandomizeConfig {
        RandomizeConfig { seed, ..RandomizeConfig::default() }
    }

    /// A configuration at a [`RandParams`] point: `sparsity` becomes
    /// the span multiplier and `entropy_bits` the span floor. The
    /// params should be validated first ([`RandParams::validate`]).
    ///
    /// [`RandParams`]: vcfr_core::RandParams
    /// [`RandParams::validate`]: vcfr_core::RandParams::validate
    pub fn from_params(seed: u64, params: &vcfr_core::RandParams) -> RandomizeConfig {
        RandomizeConfig {
            seed,
            spread: params.sparsity,
            min_span_bits: params.entropy_bits,
            ..RandomizeConfig::default()
        }
    }
}

impl Default for RandomizeConfig {
    fn default() -> RandomizeConfig {
        RandomizeConfig {
            seed: 0,
            spread: 32,
            min_span_bits: 12,
            region_base: 0x2000_0000,
            table_base: 0x4000_0000,
            keep_unrandomized: Vec::new(),
            software_return_randomization: false,
            page_confined: false,
        }
    }
}

/// What the randomizer did, for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RandomizeStats {
    /// Instructions discovered in the input.
    pub instructions: usize,
    /// Instructions given randomized addresses.
    pub randomized: usize,
    /// Instructions left at original addresses (fail-over functions).
    pub unrandomized: usize,
    /// Direct branches whose displacement was rewritten.
    pub rewritten_branches: usize,
    /// Immediate-taken code-pointer candidates handled by pinning their
    /// targets (immediates themselves are never modified, per §IV-A).
    pub rewritten_code_pointers: usize,
    /// 8-byte data slots rewritten (relocations plus scan hits).
    pub rewritten_data_slots: usize,
    /// Un-randomized fail-over entries added to the table.
    pub failover_entries: usize,
    /// Instructions pinned at their original address because a
    /// pointer-sized-constant scan hit (possible unrelocated code
    /// pointer) named them.
    pub pinned_by_scan: usize,
    /// Indirect sites the constant propagation could not resolve.
    pub conservative_sites: usize,
    /// Direct call sites whose return address may safely be randomized
    /// by the *software* rewriting option (§IV-A option 1).
    pub safe_return_sites: usize,
    /// All call sites.
    pub call_sites: usize,
    /// Calls expanded into `push; jmp` by the software return-address
    /// option.
    pub software_expanded_calls: usize,
    /// Extra text bytes those expansions cost.
    pub expansion_bytes: usize,
}

/// A randomization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RandomizeError {
    /// The input did not disassemble.
    Disasm(DisasmError),
    /// Address assignment produced a collision (internal invariant).
    Layout(LayoutError),
    /// The randomization region cannot hold the program.
    RegionTooSmall {
        /// Bytes of instructions to place.
        needed: usize,
        /// Region span in bytes.
        span: u32,
    },
}

impl fmt::Display for RandomizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RandomizeError::Disasm(e) => write!(f, "disassembly failed: {e}"),
            RandomizeError::Layout(e) => write!(f, "layout collision: {e}"),
            RandomizeError::RegionTooSmall { needed, span } => {
                write!(f, "region of {span} bytes cannot hold {needed} instruction bytes")
            }
        }
    }
}

impl std::error::Error for RandomizeError {}

impl From<DisasmError> for RandomizeError {
    fn from(e: DisasmError) -> RandomizeError {
        RandomizeError::Disasm(e)
    }
}

impl From<LayoutError> for RandomizeError {
    fn from(e: LayoutError) -> RandomizeError {
        RandomizeError::Layout(e)
    }
}

/// The complete output of the randomizer.
#[derive(Clone, Debug)]
pub struct RandomizedProgram {
    /// The input binary, unchanged.
    pub original: Image,
    /// The rewritten binary: scattered text region, fail-over copies at
    /// original addresses, and patched data.
    pub scattered: Image,
    /// The per-instruction original ↔ randomized bijection.
    pub layout: LayoutMap,
    /// Randomization/de-randomization tables (with fail-over entries).
    pub table: TranslationTable,
    /// ILR fall-through successor map in the randomized space
    /// (`randomized pc → next randomized pc`): Hiser et al.'s rewrite
    /// rules.
    pub succ: HashMap<Addr, Addr>,
    /// `[lo, hi)` bounds of the randomization region.
    pub region: (Addr, Addr),
    /// Counters describing the rewrite.
    pub stats: RandomizeStats,
    /// Per call-site software return-address randomization safety.
    pub return_safety: BTreeMap<Addr, bool>,
}

impl RandomizedProgram {
    /// The randomized address of an original instruction, or its own
    /// address when it is a fail-over (un-randomized) instruction.
    pub fn rand_or_orig(&self, orig: Addr) -> Addr {
        self.layout.to_rand(OrigAddr(orig)).map(|r| r.raw()).unwrap_or(orig)
    }

    /// Builds a [`Machine`] that natively executes the scattered binary,
    /// with the ILR fall-through map installed — the software-VM
    /// execution model the paper's Figure 1 describes.
    pub fn scattered_machine(&self) -> Machine {
        let mut m = Machine::new(&self.scattered);
        m.set_fallthrough_map(self.succ.clone());
        m
    }
}

/// Extents of the functions to keep at original addresses.
fn unrandomized_ranges(image: &Image, cfg: &RandomizeConfig) -> Vec<(Addr, Addr)> {
    image
        .symbols
        .iter()
        .filter(|s| cfg.keep_unrandomized.contains(&s.name))
        .map(|s| (s.addr, s.addr.wrapping_add(s.size)))
        .collect()
}

fn in_ranges(ranges: &[(Addr, Addr)], addr: Addr) -> bool {
    ranges.iter().any(|&(lo, hi)| addr >= lo && addr < hi)
}

/// Rewrites one instruction's address-bearing operands for its new home.
///
/// `new_pc` is where the instruction will live; `retarget` maps an
/// original code address to its post-randomization address.
///
/// Immediates are deliberately *never* modified — the paper's §IV-A: "our
/// analysis does not modify any instructions that compute code
/// addresses". An immediate that might be a code pointer instead gets its
/// target pinned at the original address (fail-over), which is always
/// safe: a false positive leaves plain arithmetic untouched, a true
/// positive finds its target still executable.
fn rewrite_inst(
    inst: &Inst,
    orig_pc: Addr,
    new_pc: Addr,
    retarget: &impl Fn(Addr) -> Addr,
    stats: &mut RandomizeStats,
) -> Inst {
    let len = inst.len() as Addr;
    match *inst {
        Inst::Jmp { .. } | Inst::Jcc { .. } | Inst::Call { .. } => {
            let target = inst.direct_target(orig_pc).expect("direct transfer");
            let new_target = retarget(target);
            let rel = new_target.wrapping_sub(new_pc.wrapping_add(len)) as i32;
            stats.rewritten_branches += 1;
            match *inst {
                Inst::Jmp { .. } => Inst::Jmp { rel },
                Inst::Jcc { cc, .. } => Inst::Jcc { cc, rel },
                Inst::Call { .. } => Inst::Call { rel },
                _ => unreachable!(),
            }
        }
        other => other,
    }
}

/// Randomizes `image` at per-instruction granularity.
///
/// # Errors
///
/// Returns a [`RandomizeError`] when the input does not disassemble or
/// the region cannot hold the program.
///
/// # Example
///
/// See the crate-level example.
pub fn randomize(
    image: &Image,
    cfg: &RandomizeConfig,
) -> Result<RandomizedProgram, RandomizeError> {
    let disasm = disassemble(image)?;
    let targets = address_taken_targets(image, &disasm);
    let graph = Cfg::build(image, &disasm, &targets);
    let resolution = resolve_indirect_targets(image, &disasm, &graph);
    let return_safety = return_address_safety(image, &disasm, &graph);

    let keep = unrandomized_ranges(image, cfg);

    // Pointer-sized-constant scan of the data section (Hiser et al.'s
    // heuristic). A hit that is NOT covered by authoritative relocation
    // information *might* be a code pointer — rewriting it would corrupt
    // plain data on a false positive, so instead the target instruction
    // is PINNED: left at its original address with an un-randomized
    // fail-over entry and a redirect back into the randomized space
    // (exactly the paper's "redirect program execution back to the
    // randomized control flow space" mechanism).
    let reloc_targets: BTreeSet<Addr> = image.relocs.iter().map(|r| r.target).collect();
    let scan_pins: BTreeSet<Addr> =
        targets.iter().copied().filter(|a| !reloc_targets.contains(a)).collect();

    let mut stats = RandomizeStats {
        instructions: disasm.len(),
        conservative_sites: resolution.conservative_sites().count(),
        call_sites: return_safety.len(),
        safe_return_sites: return_safety.values().filter(|s| **s).count(),
        ..RandomizeStats::default()
    };

    // ---- address assignment ------------------------------------------
    let text = image.text();
    let needed: usize = disasm.iter().map(|(_, i)| i.len()).sum();
    let span = (text.bytes.len() as u32)
        .saturating_mul(cfg.spread)
        .max(1u32 << cfg.min_span_bits.min(31))
        .next_power_of_two();
    if !cfg.page_confined && (needed as u64) * 2 > span as u64 {
        return Err(RandomizeError::RegionTooSmall { needed, span });
    }

    // §IV-A software option: which calls get expanded to `push; jmp`
    // (10 bytes instead of 5). Not combined with page confinement — the
    // expansion needs the slack of the large region.
    let expand_call = |orig: Addr, inst: &Inst| -> bool {
        cfg.software_return_randomization
            && !cfg.page_confined
            && matches!(inst, Inst::Call { .. })
            && return_safety.get(&orig).copied().unwrap_or(false)
    };

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut layout = LayoutMap::default();
    let is_pinned = |orig: Addr, stats: &mut RandomizeStats| -> bool {
        if in_ranges(&keep, orig) || scan_pins.contains(&orig) {
            stats.unrandomized += 1;
            if scan_pins.contains(&orig) {
                stats.pinned_by_scan += 1;
            }
            true
        } else {
            false
        }
    };

    if cfg.page_confined {
        // §IV-D: permute instructions only within their own page.
        // Maximal contiguous runs of non-pinned instructions that start
        // in the same page are repacked in a shuffled order — a perfect
        // fit, since the run's byte extent is exactly the sum of its
        // instruction lengths.
        let mut run: Vec<(Addr, u32)> = Vec::new();
        let mut run_start: Addr = 0;
        let mut expected: Addr = 0;
        let flush =
            |run: &mut Vec<(Addr, u32)>, run_start: Addr, rng: &mut StdRng, layout: &mut LayoutMap, stats: &mut RandomizeStats| -> Result<(), RandomizeError> {
                for i in (1..run.len()).rev() {
                    let j = (rng.gen_range(0..=i as u64)) as usize;
                    run.swap(i, j);
                }
                let mut cursor = run_start;
                for (orig, len) in run.drain(..) {
                    layout.insert(OrigAddr(orig), RandAddr(cursor))?;
                    stats.randomized += 1;
                    cursor += len;
                }
                Ok(())
            };
        for (orig, inst) in disasm.iter() {
            if is_pinned(orig, &mut stats) {
                flush(&mut run, run_start, &mut rng, &mut layout, &mut stats)?;
                continue;
            }
            let same_run = !run.is_empty()
                && orig == expected
                && (orig & !0xfff) == (run_start & !0xfff);
            if !same_run {
                flush(&mut run, run_start, &mut rng, &mut layout, &mut stats)?;
                run_start = orig;
            }
            run.push((orig, inst.len() as u32));
            expected = orig + inst.len() as Addr;
        }
        flush(&mut run, run_start, &mut rng, &mut layout, &mut stats)?;
    } else {
        // start → length, for overlap checks in the scattered region.
        let mut placed: BTreeMap<Addr, u32> = BTreeMap::new();
        for (orig, inst) in disasm.iter() {
            if is_pinned(orig, &mut stats) {
                continue;
            }
            let len =
                if expand_call(orig, inst) { 10 } else { inst.len() as u32 };
            let new = loop {
                let candidate = cfg.region_base + rng.gen_range(0..span - len);
                let prev_ok = placed
                    .range(..=candidate)
                    .next_back()
                    .map(|(&s, &l)| s + l <= candidate)
                    .unwrap_or(true);
                let next_ok = placed
                    .range(candidate..)
                    .next()
                    .map(|(&s, _)| candidate + len <= s)
                    .unwrap_or(true);
                if prev_ok && next_ok {
                    placed.insert(candidate, len);
                    break candidate;
                }
            };
            layout.insert(OrigAddr(orig), RandAddr(new))?;
            stats.randomized += 1;
        }
    }

    let retarget = |addr: Addr| -> Addr {
        layout.to_rand(OrigAddr(addr)).map(|r| r.raw()).unwrap_or(addr)
    };

    // ---- scattered text region ----------------------------------------
    let (region_base, region_len) = if cfg.page_confined {
        (text.base, text.bytes.len() as u32)
    } else {
        (cfg.region_base, span)
    };
    let mut region_bytes = vec![0u8; region_len as usize];
    for (orig, inst) in disasm.iter() {
        let Some(rand) = layout.to_rand(OrigAddr(orig)) else { continue };
        let new_pc = rand.raw();
        let off = (new_pc - region_base) as usize;
        if expand_call(orig, inst) {
            // §IV-A option 1: `push randomized_return_addr; jmp target`.
            let ret = orig.wrapping_add(inst.len() as Addr);
            let target = inst.direct_target(orig).expect("calls are direct here");
            let push = encode(&Inst::PushI { imm: retarget(ret) as i32 });
            let jmp_pc = new_pc.wrapping_add(push.len() as Addr);
            let rel = retarget(target).wrapping_sub(jmp_pc.wrapping_add(5)) as i32;
            let jmp = encode(&Inst::Jmp { rel });
            region_bytes[off..off + push.len()].copy_from_slice(&push);
            region_bytes[off + push.len()..off + push.len() + jmp.len()]
                .copy_from_slice(&jmp);
            stats.software_expanded_calls += 1;
            stats.expansion_bytes += 5;
            stats.rewritten_branches += 1;
            continue;
        }
        let rewritten = rewrite_inst(inst, orig, new_pc, &retarget, &mut stats);
        let bytes = encode(&rewritten);
        region_bytes[off..off + bytes.len()].copy_from_slice(&bytes);
    }

    // ---- fail-over copies at original addresses ------------------------
    // Every un-randomized instruction (kept functions and scan pins)
    // stays executable at its original address; direct branches into
    // randomized code are retargeted. Contiguous instructions group into
    // one section each.
    let mut failover_sections: Vec<Section> = Vec::new();
    let mut run: Option<(Addr, Vec<u8>)> = None;
    for (orig, inst) in disasm.iter() {
        if layout.to_rand(OrigAddr(orig)).is_some() {
            if let Some((base, bytes)) = run.take() {
                failover_sections.push(Section { kind: SectionKind::Text, base, bytes });
            }
            continue;
        }
        let rewritten = rewrite_inst(inst, orig, orig, &retarget, &mut stats);
        let enc = encode(&rewritten);
        match run.as_mut() {
            Some((base, bytes)) if *base + bytes.len() as Addr == orig => {
                bytes.extend_from_slice(&enc);
            }
            _ => {
                if let Some((base, bytes)) = run.take() {
                    failover_sections.push(Section { kind: SectionKind::Text, base, bytes });
                }
                run = Some((orig, enc));
            }
        }
    }
    if let Some((base, bytes)) = run.take() {
        failover_sections.push(Section { kind: SectionKind::Text, base, bytes });
    }

    // ---- data rewriting -------------------------------------------------
    let mut data_section = image.data().cloned();
    if let Some(data) = data_section.as_mut() {
        // Only relocation slots are rewritten: they are authoritative.
        // Byte-scan hits stay untouched (their targets were pinned), so a
        // false positive can never corrupt plain data.
        for r in &image.relocs {
            let off = r.at.wrapping_sub(data.base) as usize;
            if off + 8 > data.bytes.len() {
                continue;
            }
            let v = u64::from_le_bytes(data.bytes[off..off + 8].try_into().expect("8 bytes"));
            let new = retarget(v as Addr) as u64;
            if new != v {
                data.bytes[off..off + 8].copy_from_slice(&new.to_le_bytes());
                stats.rewritten_data_slots += 1;
            }
        }
    }

    // ---- tables ----------------------------------------------------------
    let mut table = TranslationTable::from_layout(&layout, cfg.table_base);
    for (orig, _) in disasm.iter() {
        if layout.to_rand(OrigAddr(orig)).is_none() {
            table.add_unrandomized(OrigAddr(orig));
            stats.failover_entries += 1;
        }
    }

    // ---- successor map -----------------------------------------------------
    let mut succ: HashMap<Addr, Addr> = HashMap::with_capacity(disasm.len());
    for (orig, inst) in disasm.iter() {
        if expand_call(orig, inst) {
            // The expansion is self-contained: `push` falls into its own
            // `jmp`, and the pushed (randomized) return address routes
            // the eventual `ret`.
            continue;
        }
        let next = orig.wrapping_add(inst.len() as Addr);
        match layout.to_rand(OrigAddr(orig)) {
            Some(rand) => {
                succ.insert(rand.raw(), retarget(next));
            }
            // A pinned/fail-over instruction redirects execution back to
            // the randomized space as soon as it completes.
            None => {
                succ.insert(orig, retarget(next));
            }
        }
    }

    // ---- assemble the output image ------------------------------------------
    let symbols: Vec<Symbol> = image
        .symbols
        .iter()
        .map(|s| Symbol { addr: retarget(s.addr), ..s.clone() })
        .collect();
    let mut sections =
        vec![Section { kind: SectionKind::Text, base: region_base, bytes: region_bytes }];
    sections.extend(failover_sections);
    if let Some(d) = data_section {
        sections.push(d);
    }
    let scattered = Image {
        sections,
        entry: retarget(image.entry),
        stack_top: image.stack_top,
        symbols,
        relocs: image.relocs.clone(),
    };

    Ok(RandomizedProgram {
        original: image.clone(),
        scattered,
        layout,
        table,
        succ,
        region: (region_base, region_base + region_len),
        stats,
        return_safety,
    })
}

/// Re-exported for tests that need a pre-built disassembly alongside the
/// randomized program.
pub fn randomize_with_disasm(
    image: &Image,
    cfg: &RandomizeConfig,
) -> Result<(RandomizedProgram, Disassembly), RandomizeError> {
    let d = disassemble(image)?;
    Ok((randomize(image, cfg)?, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Cond, Reg};

    fn loop_program() -> Image {
        let mut a = vcfr_isa::Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 10);
        a.mov_ri(Reg::Rax, 0);
        let top = a.here();
        a.alu_rr(AluOp::Add, Reg::Rax, Reg::Rcx);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.call_named("square");
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("square");
        a.alu_rr(AluOp::Mul, Reg::Rax, Reg::Rax);
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn semantics_preserved() {
        let img = loop_program();
        let want = Machine::new(&img).run(10_000).unwrap().output;
        for seed in 0..5 {
            let rp = randomize(&img, &RandomizeConfig::with_seed(seed)).unwrap();
            let got = rp.scattered_machine().run(10_000).unwrap().output;
            assert_eq!(got, want, "seed {seed}");
        }
        assert_eq!(want, vec![3025]); // (1+..+10)^2
    }

    #[test]
    fn every_instruction_moves() {
        let img = loop_program();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        assert_eq!(rp.stats.unrandomized, 0);
        assert_eq!(rp.stats.randomized, rp.stats.instructions);
        for (o, r) in rp.layout.iter() {
            assert_ne!(o.raw(), r.raw());
            assert!(r.raw() >= rp.region.0 && r.raw() < rp.region.1);
        }
    }

    #[test]
    fn layouts_differ_across_seeds() {
        let img = loop_program();
        let a = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let b = randomize(&img, &RandomizeConfig::with_seed(2)).unwrap();
        let moved = a
            .layout
            .iter()
            .filter(|(o, r)| b.layout.to_rand(*o) != Some(*r))
            .count();
        assert!(moved > a.layout.len() / 2);
    }

    #[test]
    fn jump_table_program_survives_randomization() {
        let mut a = vcfr_isa::Asm::new(0x1000);
        let c0 = a.label();
        let c1 = a.label();
        let c2 = a.label();
        let table = a.data_ptr_table(&[c0, c1, c2]);
        a.mov_ri(Reg::Rcx, 2);
        a.mov_ri(Reg::Rbx, table.0 as i64);
        a.load_idx(Reg::Rdx, Reg::Rbx, Reg::Rcx, 3, 0);
        a.jmp_r(Reg::Rdx);
        for (i, c) in [c0, c1, c2].into_iter().enumerate() {
            a.bind(c);
            a.mov_ri(Reg::Rax, 100 + i as i64);
            a.emit_output(Reg::Rax);
            a.halt();
        }
        let img = a.finish().unwrap();
        let want = Machine::new(&img).run(1000).unwrap().output;
        let rp = randomize(&img, &RandomizeConfig::with_seed(3)).unwrap();
        assert!(rp.stats.rewritten_data_slots >= 3);
        let got = rp.scattered_machine().run(1000).unwrap().output;
        assert_eq!(got, want);
        assert_eq!(got, vec![102]);
    }

    #[test]
    fn function_pointer_immediates_work_via_pinning() {
        // The immediate is NOT rewritten (§IV-A: code-address
        // computations stay untouched); instead the target instruction is
        // pinned at its original address and execution redirects back
        // into the randomized space after it.
        let mut a = vcfr_isa::Asm::new(0x1000);
        let f = a.label();
        a.mov_label(Reg::Rax, f);
        a.call_r(Reg::Rax);
        a.emit_output(Reg::Rax);
        a.halt();
        a.bind(f);
        a.mov_ri(Reg::Rax, 55);
        a.ret();
        let img = a.finish().unwrap();
        let f_addr = 0x1000 + 10 + 2 + 2 + 1; // after mov/call_r/sys/halt
        let rp = randomize(&img, &RandomizeConfig::with_seed(4)).unwrap();
        assert!(rp.stats.pinned_by_scan >= 1);
        // The pinned entry stays put and is a legal un-randomized target.
        assert_eq!(rp.rand_or_orig(f_addr), f_addr);
        assert!(rp.table.derand(vcfr_core::RandAddr(f_addr)).is_ok());
        let got = rp.scattered_machine().run(1000).unwrap().output;
        assert_eq!(got, vec![55]);
    }

    #[test]
    fn integer_immediates_that_look_like_addresses_are_not_corrupted() {
        // `mov rcx, 4096` — the value collides with the text base. The
        // loop must still run exactly 4096 iterations after
        // randomization (this was a real bug in naive immediate
        // rewriting).
        let mut a = vcfr_isa::Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 0x1000);
        a.mov_ri(Reg::Rax, 0);
        let top = a.here();
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        let img = a.finish().unwrap();
        let rp = randomize(&img, &RandomizeConfig::with_seed(4)).unwrap();
        let got = rp.scattered_machine().run(100_000).unwrap().output;
        assert_eq!(got, vec![0x1000]);
    }

    #[test]
    fn keep_unrandomized_functions_stay_put_and_work() {
        let mut a = vcfr_isa::Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 20);
        a.call_named("pinned");
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("pinned");
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.ret();
        let img = a.finish().unwrap();
        let pinned_addr = img.symbol("pinned").unwrap().addr;

        let mut cfg = RandomizeConfig::with_seed(5);
        cfg.keep_unrandomized.push("pinned".into());
        let rp = randomize(&img, &cfg).unwrap();

        assert!(rp.stats.unrandomized >= 2);
        assert!(rp.stats.failover_entries >= 2);
        assert_eq!(rp.rand_or_orig(pinned_addr), pinned_addr);
        assert!(rp.layout.to_rand(vcfr_core::OrigAddr(pinned_addr)).is_none());
        // Fail-over entries are registered un-randomized in the table.
        assert_eq!(
            rp.table.derand(vcfr_core::RandAddr(pinned_addr)).unwrap().raw(),
            pinned_addr
        );
        let got = rp.scattered_machine().run(1000).unwrap().output;
        assert_eq!(got, vec![21]);
    }

    #[test]
    fn table_prohibits_original_addresses_of_randomized_code() {
        let img = loop_program();
        let rp = randomize(&img, &RandomizeConfig::with_seed(6)).unwrap();
        // The original entry address is now a prohibited location.
        assert!(rp.table.derand(vcfr_core::RandAddr(0x1000)).is_err());
    }

    #[test]
    fn succ_map_covers_every_randomized_instruction() {
        let img = loop_program();
        let rp = randomize(&img, &RandomizeConfig::with_seed(7)).unwrap();
        assert_eq!(rp.succ.len(), rp.stats.randomized);
        for (o, r) in rp.layout.iter() {
            assert!(rp.succ.contains_key(&r.raw()), "missing succ for {o}");
        }
    }

    #[test]
    fn region_too_small_is_reported() {
        let img = loop_program();
        let mut cfg = RandomizeConfig::with_seed(0);
        cfg.spread = 0; // collapses to the 4096 minimum, still enough
        assert!(randomize(&img, &cfg).is_ok());
        // Force a failure with a giant synthetic program instead: build
        // ~1500 instructions so 2×needed > 4096 ... spread 0 keeps span
        // at 4096 only for tiny text; larger text scales span, so shrink
        // via an impossible spread directly on the struct.
        let mut big = vcfr_isa::Asm::new(0x1000);
        for _ in 0..3000 {
            big.nop();
        }
        big.halt();
        let big_img = big.finish().unwrap();
        // span = max(3001 * 0, 4096) = 4096 < 2 * 3001.
        let err = randomize(&big_img, &cfg).unwrap_err();
        assert!(matches!(err, RandomizeError::RegionTooSmall { .. }));
    }

    #[test]
    fn software_return_option_expands_calls_and_preserves_semantics() {
        let img = loop_program();
        let want = Machine::new(&img).run(10_000).unwrap().output;
        let mut cfg = RandomizeConfig::with_seed(9);
        cfg.software_return_randomization = true;
        let rp = randomize(&img, &cfg).unwrap();
        // The one safe call site got expanded, costing 5 bytes.
        assert_eq!(rp.stats.software_expanded_calls, 1);
        assert_eq!(rp.stats.expansion_bytes, 5);
        let got = rp.scattered_machine().run(10_000).unwrap().output;
        assert_eq!(got, want);
    }

    #[test]
    fn page_confined_randomization_stays_in_page_and_works() {
        let img = loop_program();
        let want = Machine::new(&img).run(10_000).unwrap().output;
        let mut cfg = RandomizeConfig::with_seed(10);
        cfg.page_confined = true;
        let rp = randomize(&img, &cfg).unwrap();
        // Every instruction stays within its original 4 KiB page ...
        let mut moved = 0;
        for (o, r) in rp.layout.iter() {
            assert_eq!(o.raw() & !0xfff, r.raw() & !0xfff, "{o} left its page");
            if o.raw() != r.raw() {
                moved += 1;
            }
        }
        // ... yet the layout is genuinely permuted.
        assert!(moved > rp.layout.len() / 2, "only {moved} moved");
        // The region is the original text range (no new pages → no extra
        // iTLB reach needed).
        assert_eq!(rp.region.0, img.text().base);
        let got = rp.scattered_machine().run(10_000).unwrap().output;
        assert_eq!(got, want);
    }

    #[test]
    fn return_safety_is_reported_per_call_site() {
        let img = loop_program();
        let rp = randomize(&img, &RandomizeConfig::with_seed(8)).unwrap();
        assert_eq!(rp.stats.call_sites, 1);
        assert_eq!(rp.stats.safe_return_sites, 1);
        assert_eq!(rp.return_safety.values().filter(|v| **v).count(), 1);
    }
}
