//! The static binary rewriter: disassembly, control-flow recovery and the
//! per-instruction ILR randomizer (§IV-A of the paper).
//!
//! The pipeline mirrors Figure 6 of the paper:
//!
//! 1. [`disasm`] — recursive-descent disassembly seeded from the entry
//!    point, function symbols and relocation targets, with a linear-sweep
//!    pass over any gaps (the paper uses IDA Pro plus a complete objdump
//!    scan).
//! 2. [`cfg`](mod@cfg) — basic blocks via the leader algorithm, edges for direct
//!    transfers and fall-throughs, conservative edges for indirect
//!    transfers.
//! 3. [`analysis`] — indirect-target recovery: relocation information,
//!    intra-block constant propagation and the byte-by-byte pointer-sized
//!    constant scan of Hiser et al.; plus the return-address
//!    randomization safety analysis.
//! 4. [`randomize`](mod@randomize) — address assignment at per-instruction granularity,
//!    direct-branch and data-slot rewriting, translation-table
//!    generation, and materialisation of the scattered binary image.
//! 5. [`stats`] — the static control-flow statistics reported in
//!    Table II and Figure 9.
//!
//! # Example
//!
//! ```
//! use vcfr_isa::{Asm, Reg};
//! use vcfr_rewriter::{randomize, RandomizeConfig};
//!
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Reg::Rax, 41);
//! a.alu_ri(vcfr_isa::AluOp::Add, Reg::Rax, 1);
//! a.emit_output(Reg::Rax);
//! a.halt();
//! let image = a.finish().unwrap();
//!
//! let rp = randomize(&image, &RandomizeConfig::with_seed(7)).unwrap();
//! // The rewritten program computes the same result ...
//! let out = rp.scattered_machine().run(1000).unwrap().output;
//! assert_eq!(out, vec![42]);
//! // ... at completely different instruction addresses.
//! assert_eq!(rp.layout.len(), 4);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod cfg;
pub mod disasm;
pub mod persist;
pub mod randomize;
pub mod stats;

pub use analysis::{
    address_taken_targets, resolve_indirect_targets, return_address_safety, IndirectResolution,
    Resolved,
};
pub use cfg::{BasicBlock, Cfg, Terminator};
pub use disasm::{disassemble, DisasmError, Disassembly};
pub use randomize::{
    randomize, RandomizeConfig, RandomizeError, RandomizeStats, RandomizedProgram,
};
pub use persist::PROGRAM_MAGIC;
pub use stats::{analyze_control_flow, ControlFlowStats};
