//! Static control-flow statistics: the numbers behind Table II and
//! Figure 9 of the paper.

use crate::disasm::Disassembly;
use std::collections::BTreeMap;
use vcfr_isa::{Addr, Image, Inst, SymbolKind};

/// Static control-flow counts for one binary.
///
/// Table II reports, per SPEC application: direct control transfers,
/// indirect control transfers, function calls and indirect function
/// calls. Figure 9 reports functions with and without `ret` instructions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlFlowStats {
    /// `jmp`/`jcc`/`call` with targets encoded in the instruction.
    pub direct_transfers: u64,
    /// `jmp reg`, `jmp [m]`, `call reg`, `call [m]` (register and
    /// computed transfers, as in the paper's Table II).
    pub indirect_transfers: u64,
    /// All calls, direct and indirect.
    pub function_calls: u64,
    /// `call reg` and `call [m]` only.
    pub indirect_function_calls: u64,
    /// `ret` instructions.
    pub returns: u64,
    /// Function symbols whose body contains at least one `ret`.
    pub funcs_with_ret: u64,
    /// Function symbols whose body contains none (they leave via tail
    /// jumps or other transfers — Figure 9's "functions without ret").
    pub funcs_without_ret: u64,
    /// Total instructions discovered.
    pub instructions: u64,
}

/// Computes [`ControlFlowStats`] for a binary.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// use vcfr_rewriter::{analyze_control_flow, disassemble};
///
/// let mut a = Asm::new(0x1000);
/// a.call_named("f");
/// a.halt();
/// a.func("f");
/// a.ret();
/// let img = a.finish().unwrap();
/// let d = disassemble(&img).unwrap();
/// let s = analyze_control_flow(&img, &d);
/// assert_eq!(s.direct_transfers, 1);
/// assert_eq!(s.function_calls, 1);
/// assert_eq!(s.funcs_with_ret, 1);
/// ```
pub fn analyze_control_flow(image: &Image, disasm: &Disassembly) -> ControlFlowStats {
    let mut s = ControlFlowStats::default();

    // Per-function ret presence.
    let mut func_has_ret: BTreeMap<Addr, bool> = image
        .symbols
        .iter()
        .filter(|sym| sym.kind == SymbolKind::Func)
        .map(|sym| (sym.addr, false))
        .collect();
    let func_of = |addr: Addr| -> Option<Addr> {
        image
            .symbols
            .iter()
            .filter(|sym| sym.kind == SymbolKind::Func)
            .find(|sym| addr >= sym.addr && addr < sym.addr.wrapping_add(sym.size))
            .map(|sym| sym.addr)
    };

    for (addr, inst) in disasm.iter() {
        s.instructions += 1;
        match inst {
            Inst::Jmp { .. } | Inst::Jcc { .. } => s.direct_transfers += 1,
            Inst::Call { .. } => {
                s.direct_transfers += 1;
                s.function_calls += 1;
            }
            Inst::CallR { .. } | Inst::CallM { .. } => {
                s.indirect_transfers += 1;
                s.function_calls += 1;
                s.indirect_function_calls += 1;
            }
            Inst::JmpR { .. } | Inst::JmpM { .. } => s.indirect_transfers += 1,
            Inst::Ret => {
                s.returns += 1;
                if let Some(f) = func_of(addr) {
                    func_has_ret.insert(f, true);
                }
            }
            _ => {}
        }
    }

    for has_ret in func_has_ret.values() {
        if *has_ret {
            s.funcs_with_ret += 1;
        } else {
            s.funcs_without_ret += 1;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use vcfr_isa::{Asm, Cond, Reg};

    #[test]
    fn counts_every_class() {
        let mut a = Asm::new(0x1000);
        let l = a.label();
        a.cmp_i(Reg::Rax, 0);
        a.jcc(Cond::Eq, l); // direct
        a.bind(l);
        a.call_named("f"); // direct + call
        a.call_r(Reg::Rbx); // indirect + call + indirect call
        a.jmp_r(Reg::Rcx); // indirect
        a.func("f");
        a.ret();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let s = analyze_control_flow(&img, &d);
        assert_eq!(s.direct_transfers, 2);
        assert_eq!(s.indirect_transfers, 2);
        assert_eq!(s.function_calls, 2);
        assert_eq!(s.indirect_function_calls, 1);
        assert_eq!(s.returns, 1);
    }

    #[test]
    fn functions_with_and_without_ret() {
        let mut a = Asm::new(0x1000);
        a.call_named("returns");
        a.halt();
        a.func("returns");
        a.ret();
        a.func("tail_exit");
        let t = a.named_label("returns");
        a.jmp(t); // leaves by tail jump: no ret
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let s = analyze_control_flow(&img, &d);
        assert_eq!(s.funcs_with_ret, 1);
        assert_eq!(s.funcs_without_ret, 1);
    }

    #[test]
    fn instruction_total_matches_disassembly() {
        let mut a = Asm::new(0x1000);
        a.nop();
        a.nop();
        a.halt();
        let img = a.finish().unwrap();
        let d = disassemble(&img).unwrap();
        let s = analyze_control_flow(&img, &d);
        assert_eq!(s.instructions, d.len() as u64);
    }
}
