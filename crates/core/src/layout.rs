//! The per-instruction bijection between the original and randomized
//! instruction spaces.

use crate::{OrigAddr, RandAddr};
use std::collections::HashMap;
use std::fmt;

/// An error constructing a [`LayoutMap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// Two instructions were assigned the same randomized address.
    DuplicateRand {
        /// The colliding randomized address.
        rand: RandAddr,
    },
    /// The same original address was mapped twice.
    DuplicateOrig {
        /// The colliding original address.
        orig: OrigAddr,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateRand { rand } => {
                write!(f, "randomized address {rand} assigned twice")
            }
            LayoutError::DuplicateOrig { orig } => {
                write!(f, "original address {orig} mapped twice")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A bijection `original instruction address ↔ randomized instruction
/// address`, one pair per instruction.
///
/// The map is the rewriter's central artefact: the scattered binary image,
/// the successor map and the translation tables are all derived from it.
///
/// # Example
///
/// ```
/// use vcfr_core::{LayoutMap, OrigAddr, RandAddr};
/// let map = LayoutMap::from_pairs([
///     (OrigAddr(0x1000), RandAddr(0x8f00)),
///     (OrigAddr(0x1005), RandAddr(0x1234)),
/// ]).unwrap();
/// assert_eq!(map.to_rand(OrigAddr(0x1005)), Some(RandAddr(0x1234)));
/// assert_eq!(map.to_orig(RandAddr(0x8f00)), Some(OrigAddr(0x1000)));
/// assert_eq!(map.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LayoutMap {
    rand_of: HashMap<OrigAddr, RandAddr>,
    orig_of: HashMap<RandAddr, OrigAddr>,
}

impl LayoutMap {
    /// Builds a map from `(original, randomized)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if either side repeats — the map must be
    /// a bijection.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (OrigAddr, RandAddr)>,
    ) -> Result<LayoutMap, LayoutError> {
        let mut m = LayoutMap::default();
        for (o, r) in pairs {
            m.insert(o, r)?;
        }
        Ok(m)
    }

    /// Adds one pair.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] on a duplicate original or randomized
    /// address.
    pub fn insert(&mut self, orig: OrigAddr, rand: RandAddr) -> Result<(), LayoutError> {
        if self.rand_of.contains_key(&orig) {
            return Err(LayoutError::DuplicateOrig { orig });
        }
        if self.orig_of.contains_key(&rand) {
            return Err(LayoutError::DuplicateRand { rand });
        }
        self.rand_of.insert(orig, rand);
        self.orig_of.insert(rand, orig);
        Ok(())
    }

    /// Randomized address of an original instruction, if mapped.
    pub fn to_rand(&self, orig: OrigAddr) -> Option<RandAddr> {
        self.rand_of.get(&orig).copied()
    }

    /// Original address of a randomized instruction, if mapped.
    pub fn to_orig(&self, rand: RandAddr) -> Option<OrigAddr> {
        self.orig_of.get(&rand).copied()
    }

    /// Number of mapped instructions.
    pub fn len(&self) -> usize {
        self.rand_of.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.rand_of.is_empty()
    }

    /// Iterates over `(original, randomized)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (OrigAddr, RandAddr)> + '_ {
        self.rand_of.iter().map(|(o, r)| (*o, *r))
    }

    /// Iterates over all original addresses in the map.
    pub fn origs(&self) -> impl Iterator<Item = OrigAddr> + '_ {
        self.rand_of.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijection_enforced() {
        let mut m = LayoutMap::default();
        m.insert(OrigAddr(1), RandAddr(10)).unwrap();
        assert_eq!(
            m.insert(OrigAddr(1), RandAddr(11)),
            Err(LayoutError::DuplicateOrig { orig: OrigAddr(1) })
        );
        assert_eq!(
            m.insert(OrigAddr(2), RandAddr(10)),
            Err(LayoutError::DuplicateRand { rand: RandAddr(10) })
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lookup_both_directions() {
        let m = LayoutMap::from_pairs([(OrigAddr(5), RandAddr(50))]).unwrap();
        assert_eq!(m.to_rand(OrigAddr(5)), Some(RandAddr(50)));
        assert_eq!(m.to_orig(RandAddr(50)), Some(OrigAddr(5)));
        assert_eq!(m.to_rand(OrigAddr(6)), None);
        assert_eq!(m.to_orig(RandAddr(51)), None);
    }

    #[test]
    fn iteration_covers_all_pairs() {
        let pairs = [(OrigAddr(1), RandAddr(9)), (OrigAddr(2), RandAddr(8))];
        let m = LayoutMap::from_pairs(pairs).unwrap();
        let mut got: Vec<_> = m.iter().collect();
        got.sort();
        assert_eq!(got, vec![(OrigAddr(1), RandAddr(9)), (OrigAddr(2), RandAddr(8))]);
        assert!(!m.is_empty());
    }
}
