//! The per-instruction bijection between the original and randomized
//! instruction spaces.

use crate::{OrigAddr, RandAddr};
use std::collections::HashMap;
use std::fmt;
use vcfr_isa::wire::{Reader, WireError, Writer};

/// An error constructing a [`LayoutMap`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// Two instructions were assigned the same randomized address.
    DuplicateRand {
        /// The colliding randomized address.
        rand: RandAddr,
    },
    /// The same original address was mapped twice.
    DuplicateOrig {
        /// The colliding original address.
        orig: OrigAddr,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::DuplicateRand { rand } => {
                write!(f, "randomized address {rand} assigned twice")
            }
            LayoutError::DuplicateOrig { orig } => {
                write!(f, "original address {orig} mapped twice")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A bijection `original instruction address ↔ randomized instruction
/// address`, one pair per instruction.
///
/// The map is the rewriter's central artefact: the scattered binary image,
/// the successor map and the translation tables are all derived from it.
///
/// # Example
///
/// ```
/// use vcfr_core::{LayoutMap, OrigAddr, RandAddr};
/// let map = LayoutMap::from_pairs([
///     (OrigAddr(0x1000), RandAddr(0x8f00)),
///     (OrigAddr(0x1005), RandAddr(0x1234)),
/// ]).unwrap();
/// assert_eq!(map.to_rand(OrigAddr(0x1005)), Some(RandAddr(0x1234)));
/// assert_eq!(map.to_orig(RandAddr(0x8f00)), Some(OrigAddr(0x1000)));
/// assert_eq!(map.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct LayoutMap {
    rand_of: HashMap<OrigAddr, RandAddr>,
    orig_of: HashMap<RandAddr, OrigAddr>,
    /// Dense forward index: `fwd[orig - fwd_base]` is the randomized
    /// address ([`NO_RAND`] when unmapped). Original addresses cover the
    /// (small, contiguous) text section, so the array stays compact; the
    /// simulator performs a forward lookup per simulated instruction in
    /// naive-ILR mode, and this keeps hashing off that path.
    fwd_base: u32,
    fwd: Vec<u32>,
    /// Whether any pair maps to [`NO_RAND`] itself, in which case a
    /// dense miss must be double-checked against the hash map.
    has_sentinel_rand: bool,
}

/// Dense-index slot value for "unmapped".
const NO_RAND: u32 = u32::MAX;

impl LayoutMap {
    /// Builds a map from `(original, randomized)` pairs.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if either side repeats — the map must be
    /// a bijection.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (OrigAddr, RandAddr)>,
    ) -> Result<LayoutMap, LayoutError> {
        let mut m = LayoutMap::default();
        for (o, r) in pairs {
            m.insert(o, r)?;
        }
        Ok(m)
    }

    /// Adds one pair.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] on a duplicate original or randomized
    /// address.
    pub fn insert(&mut self, orig: OrigAddr, rand: RandAddr) -> Result<(), LayoutError> {
        if self.rand_of.contains_key(&orig) {
            return Err(LayoutError::DuplicateOrig { orig });
        }
        if self.orig_of.contains_key(&rand) {
            return Err(LayoutError::DuplicateRand { rand });
        }
        self.rand_of.insert(orig, rand);
        self.orig_of.insert(rand, orig);
        self.dense_set(orig.0, rand.0);
        Ok(())
    }

    fn dense_set(&mut self, orig: u32, rand: u32) {
        if rand == NO_RAND {
            self.has_sentinel_rand = true;
            return;
        }
        if self.fwd.is_empty() {
            self.fwd_base = orig;
        } else if orig < self.fwd_base {
            let shift = (self.fwd_base - orig) as usize;
            let mut grown = vec![NO_RAND; shift + self.fwd.len()];
            grown[shift..].copy_from_slice(&self.fwd);
            self.fwd = grown;
            self.fwd_base = orig;
        }
        let off = (orig - self.fwd_base) as usize;
        if off >= self.fwd.len() {
            self.fwd.resize(off + 1, NO_RAND);
        }
        self.fwd[off] = rand;
    }

    /// Randomized address of an original instruction, if mapped.
    #[inline]
    pub fn to_rand(&self, orig: OrigAddr) -> Option<RandAddr> {
        let off = orig.0.wrapping_sub(self.fwd_base) as usize;
        match self.fwd.get(off) {
            Some(&r) if r != NO_RAND => Some(RandAddr(r)),
            _ if !self.has_sentinel_rand => None,
            _ => self.rand_of.get(&orig).copied(),
        }
    }

    /// Original address of a randomized instruction, if mapped.
    pub fn to_orig(&self, rand: RandAddr) -> Option<OrigAddr> {
        self.orig_of.get(&rand).copied()
    }

    /// Number of mapped instructions.
    pub fn len(&self) -> usize {
        self.rand_of.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.rand_of.is_empty()
    }

    /// Iterates over `(original, randomized)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (OrigAddr, RandAddr)> + '_ {
        self.rand_of.iter().map(|(o, r)| (*o, *r))
    }

    /// Iterates over all original addresses in the map.
    pub fn origs(&self) -> impl Iterator<Item = OrigAddr> + '_ {
        self.rand_of.keys().copied()
    }

    /// Serialises the map (checkpoint support) as `(original,
    /// randomized)` pairs in sorted original-address order, so the byte
    /// form is deterministic.
    pub fn save(&self, w: &mut Writer) {
        let mut pairs: Vec<(u32, u32)> = self.iter().map(|(o, r)| (o.0, r.0)).collect();
        pairs.sort_unstable();
        w.u64(pairs.len() as u64);
        for (o, r) in pairs {
            w.u32(o);
            w.u32(r);
        }
    }

    /// Rebuilds a map from [`LayoutMap::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input, an implausible pair count, or
    /// duplicated addresses (a valid save never contains them).
    pub fn restore(r: &mut Reader<'_>) -> Result<LayoutMap, WireError> {
        let n = r.u64()?;
        if n > 1 << 28 {
            return Err(WireError::LengthOutOfRange { len: n });
        }
        let mut m = LayoutMap::default();
        for _ in 0..n {
            let o = r.u32()?;
            let rand = r.u32()?;
            if m.insert(OrigAddr(o), RandAddr(rand)).is_err() {
                return Err(WireError::LengthOutOfRange { len: n });
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijection_enforced() {
        let mut m = LayoutMap::default();
        m.insert(OrigAddr(1), RandAddr(10)).unwrap();
        assert_eq!(
            m.insert(OrigAddr(1), RandAddr(11)),
            Err(LayoutError::DuplicateOrig { orig: OrigAddr(1) })
        );
        assert_eq!(
            m.insert(OrigAddr(2), RandAddr(10)),
            Err(LayoutError::DuplicateRand { rand: RandAddr(10) })
        );
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn lookup_both_directions() {
        let m = LayoutMap::from_pairs([(OrigAddr(5), RandAddr(50))]).unwrap();
        assert_eq!(m.to_rand(OrigAddr(5)), Some(RandAddr(50)));
        assert_eq!(m.to_orig(RandAddr(50)), Some(OrigAddr(5)));
        assert_eq!(m.to_rand(OrigAddr(6)), None);
        assert_eq!(m.to_orig(RandAddr(51)), None);
    }

    #[test]
    fn out_of_order_inserts_rebase_the_dense_index() {
        let mut m = LayoutMap::default();
        m.insert(OrigAddr(0x2000), RandAddr(7)).unwrap();
        m.insert(OrigAddr(0x1000), RandAddr(8)).unwrap();
        m.insert(OrigAddr(0x3000), RandAddr(9)).unwrap();
        assert_eq!(m.to_rand(OrigAddr(0x1000)), Some(RandAddr(8)));
        assert_eq!(m.to_rand(OrigAddr(0x2000)), Some(RandAddr(7)));
        assert_eq!(m.to_rand(OrigAddr(0x3000)), Some(RandAddr(9)));
        assert_eq!(m.to_rand(OrigAddr(0x2001)), None);
        assert_eq!(m.to_rand(OrigAddr(0x0fff)), None);
        assert_eq!(m.to_rand(OrigAddr(0x3001)), None);
    }

    #[test]
    fn sentinel_valued_randomized_address_still_resolves() {
        let mut m = LayoutMap::default();
        m.insert(OrigAddr(10), RandAddr(u32::MAX)).unwrap();
        m.insert(OrigAddr(11), RandAddr(20)).unwrap();
        assert_eq!(m.to_rand(OrigAddr(10)), Some(RandAddr(u32::MAX)));
        assert_eq!(m.to_rand(OrigAddr(11)), Some(RandAddr(20)));
        assert_eq!(m.to_orig(RandAddr(u32::MAX)), Some(OrigAddr(10)));
    }

    #[test]
    fn save_restore_roundtrip_preserves_lookups() {
        use vcfr_isa::wire::{Reader, Writer};
        let m = LayoutMap::from_pairs([
            (OrigAddr(0x2000), RandAddr(7)),
            (OrigAddr(0x1000), RandAddr(8)),
            (OrigAddr(10), RandAddr(u32::MAX)), // sentinel-valued rand
        ])
        .unwrap();
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let back = LayoutMap::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), 3);
        assert_eq!(back.to_rand(OrigAddr(0x1000)), Some(RandAddr(8)));
        assert_eq!(back.to_rand(OrigAddr(10)), Some(RandAddr(u32::MAX)));
        assert_eq!(back.to_orig(RandAddr(7)), Some(OrigAddr(0x2000)));
        // Byte form is stable under a second save.
        let mut w2 = Writer::with_magic(*b"VCFRTEST");
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), buf);
    }

    #[test]
    fn restore_rejects_duplicate_pairs() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut w = Writer::with_magic(*b"VCFRTEST");
        w.u64(2);
        w.u32(5);
        w.u32(50);
        w.u32(5); // duplicate original address
        w.u32(51);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(LayoutMap::restore(&mut r).is_err());
    }

    #[test]
    fn iteration_covers_all_pairs() {
        let pairs = [(OrigAddr(1), RandAddr(9)), (OrigAddr(2), RandAddr(8))];
        let m = LayoutMap::from_pairs(pairs).unwrap();
        let mut got: Vec<_> = m.iter().collect();
        got.sort();
        assert_eq!(got, vec![(OrigAddr(1), RandAddr(9)), (OrigAddr(2), RandAddr(8))]);
        assert!(!m.is_empty());
    }
}
