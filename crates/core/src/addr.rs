//! Address-space newtypes.
//!
//! The whole point of VCFR is that two distinct instruction address spaces
//! coexist; mixing them up is the classic bug in anything that touches the
//! mechanism. These newtypes make the confusion a type error.

use std::fmt;

/// An address in the **original** (un-randomized) instruction space — the
/// layout in which instruction bytes are stored in caches and memory, and
/// in which branch prediction operates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrigAddr(pub u32);

/// An address in the **randomized** instruction space — the only view the
/// architecture exposes to software (and to attackers). The randomized
/// program counter (RPC) holds one of these.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RandAddr(pub u32);

macro_rules! addr_impls {
    ($t:ident) => {
        impl $t {
            /// Returns the raw 32-bit address value.
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the address advanced by `n` bytes (wrapping).
            // Deliberately not `std::ops::Add`: the operand is a byte
            // count, not another address, and call sites read better
            // with the method form.
            #[allow(clippy::should_implement_trait)]
            pub fn add(self, n: u32) -> $t {
                $t(self.0.wrapping_add(n))
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#010x}", self.0)
            }
        }

        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u32> for $t {
            fn from(v: u32) -> $t {
                $t(v)
            }
        }

        impl From<$t> for u32 {
            fn from(v: $t) -> u32 {
                v.0
            }
        }
    };
}

addr_impls!(OrigAddr);
addr_impls!(RandAddr);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(OrigAddr(0x1000).to_string(), "0x00001000");
        assert_eq!(RandAddr(0xdead_beef).to_string(), "0xdeadbeef");
        assert_eq!(format!("{:x}", OrigAddr(255)), "ff");
    }

    #[test]
    fn add_wraps() {
        assert_eq!(OrigAddr(u32::MAX).add(1), OrigAddr(0));
        assert_eq!(RandAddr(10).add(5), RandAddr(15));
    }

    #[test]
    fn conversions() {
        let o: OrigAddr = 7u32.into();
        assert_eq!(u32::from(o), 7);
        assert_eq!(o.raw(), 7);
    }
}
