//! The paper's primary contribution as a reusable library: **virtual
//! control flow randomization (VCFR)** data structures.
//!
//! VCFR separates two instruction address spaces:
//!
//! * the **original** space, in which instruction bytes are stored in the
//!   memory hierarchy (preserving fetch locality), and
//! * the **randomized** space, which is the only view the architecture —
//!   and therefore an attacker — ever sees.
//!
//! This crate provides the pieces shared by the binary rewriter and the
//! cycle simulator:
//!
//! * [`OrigAddr`] / [`RandAddr`] — newtypes that make it a type error to
//!   confuse the two spaces,
//! * [`LayoutMap`] — the per-instruction bijection between them,
//! * [`TranslationTable`] — the in-memory randomization/de-randomization
//!   tables with per-entry *derand* and *randomized* tag bits (§IV-A),
//! * [`Drc`] — the on-chip de-randomization cache lookup buffer (§IV-B),
//! * [`StackBitmap`] — the bitmap tracking which stack slots hold
//!   randomized return addresses (§IV-C),
//! * [`rerandomize`] — periodic re-randomization support (§V-C),
//! * [`RandParams`] — the validated randomization parameter surface
//!   (entropy, sparsity, re-randomization epoch, DRC geometry) the
//!   security frontier sweeps.
//!
//! # Example
//!
//! ```
//! use vcfr_core::{Drc, LayoutMap, OrigAddr, RandAddr, TranslationTable};
//!
//! let map = LayoutMap::from_pairs([(OrigAddr(0x1000), RandAddr(0x90f0))]).unwrap();
//! let table = TranslationTable::from_layout(&map, 0x4000_0000);
//! let mut drc = Drc::direct_mapped(64);
//!
//! // First lookup misses and must walk to the in-memory table ...
//! let miss = drc.derandomize(RandAddr(0x90f0), &table).unwrap();
//! assert!(!miss.hit);
//! // ... the second hits on chip.
//! let hit = drc.derandomize(RandAddr(0x90f0), &table).unwrap();
//! assert!(hit.hit);
//! assert_eq!(hit.translated, 0x1000);
//! ```

#![warn(missing_docs)]

mod addr;
mod bitmap;
mod drc;
mod layout;
mod params;
mod rerand;
mod table;

pub use addr::{OrigAddr, RandAddr};
pub use bitmap::StackBitmap;
pub use drc::{Drc, DrcConfig, DrcLookup, DrcStats};
pub use layout::{LayoutError, LayoutMap};
pub use params::{
    RandParams, RandParamsError, MAX_ENTROPY_BITS, MAX_SPARSITY, MIN_ENTROPY_BITS,
};
pub use rerand::rerandomize;
pub use table::{EntryKind, TableEntry, TranslateError, TranslationTable};
