//! Periodic re-randomization (§V-C).
//!
//! "A common practice to prevent leaking randomization/de-randomization
//! tables to the attackers is to apply regular re-randomization of the
//! binary images" — even a leaked table is outdated after the next
//! re-randomization. This module produces a fresh [`LayoutMap`] over the
//! same set of original instruction addresses.

use crate::{LayoutMap, RandAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Draws a fresh randomized layout for the instructions of `map`, placing
/// every instruction at a new distinct address in
/// `[region_lo, region_hi)`.
///
/// The result maps the *same* original addresses, so existing scattered
/// images can be regenerated and old translation tables invalidated.
///
/// # Panics
///
/// Panics if the region cannot hold `map.len()` distinct addresses with a
/// comfortable margin (the region must be at least 4× the instruction
/// count to keep rejection sampling cheap, mirroring the paper's large
/// randomization space).
///
/// # Example
///
/// ```
/// use vcfr_core::{rerandomize, LayoutMap, OrigAddr, RandAddr};
/// let old = LayoutMap::from_pairs([(OrigAddr(0x1000), RandAddr(0x9000))]).unwrap();
/// let new = rerandomize(&old, 0x10_0000, 0x20_0000, 1);
/// assert_eq!(new.len(), 1);
/// assert!(new.to_rand(OrigAddr(0x1000)).is_some());
/// ```
pub fn rerandomize(map: &LayoutMap, region_lo: u32, region_hi: u32, seed: u64) -> LayoutMap {
    let span = region_hi.checked_sub(region_lo).expect("region_hi must exceed region_lo");
    assert!(
        span as u64 >= map.len() as u64 * 4,
        "randomization region too small: {} addresses into {} bytes",
        map.len(),
        span
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used: HashSet<u32> = HashSet::with_capacity(map.len());
    let mut fresh = LayoutMap::default();
    let mut origs: Vec<_> = map.origs().collect();
    origs.sort(); // deterministic order regardless of hash-map iteration
    for orig in origs {
        loop {
            let candidate = region_lo + rng.gen_range(0..span);
            if used.insert(candidate) {
                fresh
                    .insert(orig, RandAddr(candidate))
                    .expect("freshly drawn addresses are unique");
                break;
            }
        }
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrigAddr;

    fn base_map(n: u32) -> LayoutMap {
        LayoutMap::from_pairs((0..n).map(|i| (OrigAddr(0x1000 + i), RandAddr(0x9000 + i))))
            .unwrap()
    }

    #[test]
    fn preserves_original_addresses() {
        let old = base_map(100);
        let new = rerandomize(&old, 0x10_0000, 0x20_0000, 42);
        assert_eq!(new.len(), old.len());
        for orig in old.origs() {
            assert!(new.to_rand(orig).is_some());
        }
    }

    #[test]
    fn new_addresses_land_in_region() {
        let new = rerandomize(&base_map(50), 0x10_0000, 0x11_0000, 7);
        for (_, r) in new.iter() {
            assert!(r.raw() >= 0x10_0000 && r.raw() < 0x11_0000);
        }
    }

    #[test]
    fn deterministic_for_a_seed_and_distinct_across_seeds() {
        let old = base_map(64);
        let a = rerandomize(&old, 0x10_0000, 0x20_0000, 1);
        let b = rerandomize(&old, 0x10_0000, 0x20_0000, 1);
        let c = rerandomize(&old, 0x10_0000, 0x20_0000, 2);
        let collect = |m: &LayoutMap| {
            let mut v: Vec<_> = m.iter().collect();
            v.sort();
            v
        };
        assert_eq!(collect(&a), collect(&b));
        assert_ne!(collect(&a), collect(&c));
    }

    #[test]
    fn layout_actually_changes() {
        let old = base_map(64);
        let new = rerandomize(&old, 0x9000, 0x10_0000, 3);
        let moved = old
            .iter()
            .filter(|(o, r)| new.to_rand(*o) != Some(*r))
            .count();
        // Practically all instructions move; demand at least half.
        assert!(moved >= 32, "only {moved}/64 instructions moved");
    }

    #[test]
    #[should_panic(expected = "region too small")]
    fn rejects_cramped_regions() {
        let _ = rerandomize(&base_map(1000), 0, 100, 1);
    }
}
