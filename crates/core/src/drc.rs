//! The on-chip de-randomization cache (DRC) lookup buffer.
//!
//! A small cache of [`TranslationTable`] entries sitting between the
//! execution pipeline and the memory hierarchy (§IV-B). The paper's design
//! points, all modelled here:
//!
//! * one *unified* buffer stores both randomization and de-randomization
//!   entries, distinguished by a per-entry derand tag;
//! * each entry has a valid bit;
//! * the buffer is **direct mapped** ("we designed DRC as direct mapped
//!   cache with small size to minimize power consumption") — an
//!   associativity knob is provided for the ablation study;
//! * on a miss the hardware walks the in-memory table through the unified
//!   L2 (the caller gets the entry's memory address so the cycle
//!   simulator can charge that traffic).

use crate::table::{EntryKind, TranslateError, TranslationTable};
use crate::{OrigAddr, RandAddr};
use vcfr_isa::wire::{Reader, WireError, Writer};

/// Configuration of a [`Drc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrcConfig {
    /// Total number of translation entries (64–512 in the paper's sweep).
    pub entries: usize,
    /// Associativity; 1 (direct mapped) in the paper's design.
    pub ways: usize,
}

impl DrcConfig {
    /// A direct-mapped DRC with `entries` entries, the paper's design.
    pub fn direct_mapped(entries: usize) -> DrcConfig {
        DrcConfig { entries, ways: 1 }
    }
}

impl Default for DrcConfig {
    fn default() -> DrcConfig {
        DrcConfig::direct_mapped(128)
    }
}

/// Hit/miss counters of a [`Drc`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrcStats {
    /// Total lookups (both directions).
    pub lookups: u64,
    /// Lookups that missed and required a table walk.
    pub misses: u64,
    /// De-randomization (randomized → original) lookups.
    pub derand_lookups: u64,
    /// Randomization (original → randomized) lookups.
    pub rand_lookups: u64,
}

impl DrcStats {
    /// Miss rate over all lookups (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups as f64
        }
    }
}

/// Result of one DRC lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrcLookup {
    /// Whether the entry was already on chip.
    pub hit: bool,
    /// The translated address (raw bits).
    pub translated: u32,
    /// Whether the matched entry is an un-randomized fail-over entry.
    pub unrandomized: bool,
    /// Memory address of the table slot (only meaningful on a miss: the
    /// address the hardware fetches through L2).
    pub entry_addr: u32,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    valid: bool,
    /// Kind bit (derand tag) folded with the source address.
    key: u64,
    value: u32,
    unrandomized: bool,
    lru: u64,
}

const INVALID_LINE: Line = Line { valid: false, key: 0, value: 0, unrandomized: false, lru: 0 };

/// The DRC lookup buffer.
///
/// # Example
///
/// ```
/// use vcfr_core::{Drc, LayoutMap, OrigAddr, RandAddr, TranslationTable};
/// let map = LayoutMap::from_pairs([(OrigAddr(4), RandAddr(44))]).unwrap();
/// let table = TranslationTable::from_layout(&map, 0x4000_0000);
/// let mut drc = Drc::direct_mapped(64);
/// drc.randomize(OrigAddr(4), &table).unwrap();
/// assert_eq!(drc.stats().misses, 1);
/// drc.randomize(OrigAddr(4), &table).unwrap();
/// assert_eq!(drc.stats().misses, 1); // second lookup hits
/// ```
#[derive(Clone, Debug)]
pub struct Drc {
    cfg: DrcConfig,
    sets: usize,
    lines: Vec<Line>,
    stats: DrcStats,
    tick: u64,
}

impl Drc {
    /// Creates a DRC with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero, not a multiple of `ways`, or the set
    /// count is not a power of two.
    pub fn new(cfg: DrcConfig) -> Drc {
        assert!(cfg.entries > 0 && cfg.ways > 0, "DRC must have entries");
        assert_eq!(cfg.entries % cfg.ways, 0, "entries must divide into ways");
        let sets = cfg.entries / cfg.ways;
        assert!(sets.is_power_of_two(), "DRC set count must be a power of two");
        Drc { cfg, sets, lines: vec![INVALID_LINE; cfg.entries], stats: DrcStats::default(), tick: 0 }
    }

    /// Creates the paper's direct-mapped configuration.
    pub fn direct_mapped(entries: usize) -> Drc {
        Drc::new(DrcConfig::direct_mapped(entries))
    }

    /// The configuration the DRC was built with.
    pub fn config(&self) -> DrcConfig {
        self.cfg
    }

    /// Lookup counters.
    pub fn stats(&self) -> DrcStats {
        self.stats
    }

    /// Clears the counters (e.g. after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = DrcStats::default();
    }

    /// Invalidates every entry (used on context switch or
    /// re-randomization).
    pub fn flush(&mut self) {
        self.lines.fill(INVALID_LINE);
    }

    /// Models a transient bit flip landing in DRC entry `lane` (taken
    /// modulo the buffer size). Each entry carries parity, so a flip in a
    /// *valid* entry is detected on the next probe and the line is
    /// scrubbed (invalidated) — the translation refills from the
    /// in-memory table on its next use, surfacing as an ordinary miss.
    /// Returns `true` when a valid entry was scrubbed, `false` when the
    /// flip landed in an invalid entry and is architecturally masked.
    pub fn scrub_entry(&mut self, lane: usize) -> bool {
        let at = lane % self.lines.len();
        let was_valid = self.lines[at].valid;
        self.lines[at] = INVALID_LINE;
        was_valid
    }

    /// Number of currently valid entries (fault-campaign observability).
    pub fn valid_entries(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    fn key(kind: EntryKind, addr: u32) -> u64 {
        let kind_bit = match kind {
            EntryKind::Derand => 0u64,
            EntryKind::Rand => 1u64,
        };
        (kind_bit << 32) | addr as u64
    }

    fn set_index(&self, addr: u32) -> usize {
        // Instruction addresses: drop the low 2 bits, as the paper's
        // 32-bit translation entries would.
        ((addr >> 2) as usize) & (self.sets - 1)
    }

    fn lookup(
        &mut self,
        kind: EntryKind,
        addr: u32,
        table: &TranslationTable,
    ) -> Result<DrcLookup, TranslateError> {
        self.tick += 1;
        self.stats.lookups += 1;
        match kind {
            EntryKind::Derand => self.stats.derand_lookups += 1,
            EntryKind::Rand => self.stats.rand_lookups += 1,
        }
        let key = Drc::key(kind, addr);
        let set = self.set_index(addr);
        let ways = self.cfg.ways;
        let base = set * ways;
        let entry_addr = table.entry_addr(kind, addr);

        // Probe.
        for w in 0..ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.key == key {
                line.lru = self.tick;
                return Ok(DrcLookup {
                    hit: true,
                    translated: line.value,
                    unrandomized: line.unrandomized,
                    entry_addr,
                });
            }
        }

        // Miss: walk the in-memory table, then fill the LRU way.
        self.stats.misses += 1;
        let e = table.entry(kind, addr)?;
        let victim = (0..ways)
            .min_by_key(|w| {
                let l = &self.lines[base + w];
                if l.valid {
                    l.lru
                } else {
                    0
                }
            })
            .expect("ways > 0");
        self.lines[base + victim] = Line {
            valid: true,
            key,
            value: e.to,
            unrandomized: e.unrandomized,
            lru: self.tick,
        };
        Ok(DrcLookup { hit: false, translated: e.to, unrandomized: e.unrandomized, entry_addr })
    }

    /// Serialises the full cache state (checkpoint support): every line
    /// in set order, then the counters and the LRU tick, so a restored
    /// DRC replays hits, misses and evictions bit-identically.
    pub fn save(&self, w: &mut Writer) {
        for line in &self.lines {
            w.u8(u8::from(line.valid));
            w.u64(line.key);
            w.u32(line.value);
            w.u8(u8::from(line.unrandomized));
            w.u64(line.lru);
        }
        w.u64(self.stats.lookups);
        w.u64(self.stats.misses);
        w.u64(self.stats.derand_lookups);
        w.u64(self.stats.rand_lookups);
        w.u64(self.tick);
    }

    /// Rebuilds a DRC from [`Drc::save`] output. The geometry is not part
    /// of the stream; the caller supplies the same `cfg` the saved DRC
    /// was built with.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or malformed flag bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` itself is invalid (see [`Drc::new`]).
    pub fn restore(cfg: DrcConfig, r: &mut Reader<'_>) -> Result<Drc, WireError> {
        let mut drc = Drc::new(cfg);
        for line in &mut drc.lines {
            let valid = r.u8()?;
            if valid > 1 {
                return Err(WireError::BadTag { tag: valid });
            }
            let key = r.u64()?;
            let value = r.u32()?;
            let unrandomized = r.u8()?;
            if unrandomized > 1 {
                return Err(WireError::BadTag { tag: unrandomized });
            }
            let lru = r.u64()?;
            *line = Line { valid: valid == 1, key, value, unrandomized: unrandomized == 1, lru };
        }
        drc.stats.lookups = r.u64()?;
        drc.stats.misses = r.u64()?;
        drc.stats.derand_lookups = r.u64()?;
        drc.stats.rand_lookups = r.u64()?;
        drc.tick = r.u64()?;
        Ok(drc)
    }

    /// De-randomizes an architectural address (RPC → UPC).
    ///
    /// # Errors
    ///
    /// Propagates the table's [`TranslateError`] — in hardware, a
    /// security fault.
    pub fn derandomize(
        &mut self,
        rand: RandAddr,
        table: &TranslationTable,
    ) -> Result<DrcLookup, TranslateError> {
        self.lookup(EntryKind::Derand, rand.raw(), table)
    }

    /// Randomizes an original address (e.g. the return address a `call`
    /// pushes).
    ///
    /// # Errors
    ///
    /// Propagates the table's [`TranslateError`].
    pub fn randomize(
        &mut self,
        orig: OrigAddr,
        table: &TranslationTable,
    ) -> Result<DrcLookup, TranslateError> {
        self.lookup(EntryKind::Rand, orig.raw(), table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayoutMap;

    fn table(n: u32) -> TranslationTable {
        let map = LayoutMap::from_pairs(
            (0..n).map(|i| (OrigAddr(0x1000 + i * 4), RandAddr(0x9000 + i * 256))),
        )
        .unwrap();
        TranslationTable::from_layout(&map, 0x4000_0000)
    }

    #[test]
    fn hit_after_fill() {
        let t = table(1);
        let mut drc = Drc::direct_mapped(64);
        let first = drc.derandomize(RandAddr(0x9000), &t).unwrap();
        assert!(!first.hit);
        assert_eq!(first.translated, 0x1000);
        let second = drc.derandomize(RandAddr(0x9000), &t).unwrap();
        assert!(second.hit);
        assert_eq!(drc.stats().lookups, 2);
        assert_eq!(drc.stats().misses, 1);
        assert!((drc.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derand_and_rand_entries_coexist() {
        let t = table(1);
        // 0x9000 and 0x1000 index to the same set; use two ways so both
        // directions stay resident for the hit check below.
        let mut drc = Drc::new(DrcConfig { entries: 128, ways: 2 });
        drc.derandomize(RandAddr(0x9000), &t).unwrap();
        drc.randomize(OrigAddr(0x1000), &t).unwrap();
        assert_eq!(drc.stats().derand_lookups, 1);
        assert_eq!(drc.stats().rand_lookups, 1);
        // Both directions now hit.
        assert!(drc.derandomize(RandAddr(0x9000), &t).unwrap().hit);
        assert!(drc.randomize(OrigAddr(0x1000), &t).unwrap().hit);
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let t = table(3);
        // 2 sets → addresses 0x9000 and 0x9200 both map to set 0
        // ((addr >> 2) & 1 == 0).
        let mut drc = Drc::direct_mapped(2);
        assert!(!drc.derandomize(RandAddr(0x9000), &t).unwrap().hit);
        assert!(!drc.derandomize(RandAddr(0x9200), &t).unwrap().hit);
        // 0x9000 was evicted by the conflicting fill.
        assert!(!drc.derandomize(RandAddr(0x9000), &t).unwrap().hit);
    }

    #[test]
    fn two_way_absorbs_the_same_conflict() {
        let t = table(3);
        let mut drc = Drc::new(DrcConfig { entries: 4, ways: 2 });
        drc.derandomize(RandAddr(0x9000), &t).unwrap();
        drc.derandomize(RandAddr(0x9200), &t).unwrap();
        assert!(drc.derandomize(RandAddr(0x9000), &t).unwrap().hit);
        assert!(drc.derandomize(RandAddr(0x9200), &t).unwrap().hit);
    }

    #[test]
    fn flush_invalidates() {
        let t = table(1);
        let mut drc = Drc::direct_mapped(64);
        drc.derandomize(RandAddr(0x9000), &t).unwrap();
        drc.flush();
        assert!(!drc.derandomize(RandAddr(0x9000), &t).unwrap().hit);
    }

    #[test]
    fn translation_faults_propagate_and_do_not_fill() {
        let t = table(1);
        let mut drc = Drc::direct_mapped(64);
        assert!(drc.derandomize(RandAddr(0xdead_0000), &t).is_err());
        // The failed lookup counted but nothing was cached.
        assert_eq!(drc.stats().lookups, 1);
        assert_eq!(drc.stats().misses, 1);
        assert!(drc.derandomize(RandAddr(0xdead_0000), &t).is_err());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_panic() {
        let _ = Drc::direct_mapped(96);
    }

    #[test]
    fn save_restore_preserves_contents_counters_and_lru() {
        use vcfr_isa::wire::{Reader, Writer};
        let t = table(3);
        let mut drc = Drc::new(DrcConfig { entries: 4, ways: 2 });
        drc.derandomize(RandAddr(0x9000), &t).unwrap();
        drc.derandomize(RandAddr(0x9200), &t).unwrap();
        drc.randomize(OrigAddr(0x1004), &t).unwrap();
        let mut w = Writer::with_magic(*b"VCFRTEST");
        drc.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let mut back = Drc::restore(drc.config(), &mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.stats(), drc.stats());
        assert_eq!(back.valid_entries(), drc.valid_entries());
        // Both copies evolve identically from here (same LRU victims).
        for addr in [0x9000u32, 0x9100, 0x9200, 0x9000] {
            let a = drc.derandomize(RandAddr(addr), &t).unwrap();
            let b = back.derandomize(RandAddr(addr), &t).unwrap();
            assert_eq!(a, b, "addr {addr:#x}");
        }
        assert_eq!(back.stats(), drc.stats());
    }

    #[test]
    fn restore_rejects_bad_flag_byte() {
        use vcfr_isa::wire::{Reader, Writer};
        let drc = Drc::direct_mapped(2);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        drc.save(&mut w);
        let mut buf = w.into_bytes();
        buf[8] = 7; // first line's valid flag
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(Drc::restore(drc.config(), &mut r).is_err());
    }

    #[test]
    fn scrub_detects_valid_entries_and_masks_invalid_ones() {
        let t = table(1);
        let mut drc = Drc::direct_mapped(64);
        let l = drc.derandomize(RandAddr(0x9000), &t).unwrap();
        assert!(!l.hit);
        assert_eq!(drc.valid_entries(), 1);
        // The filled entry sits at set_index(0x9000).
        let at = (0x9000u32 >> 2) as usize & 63;
        assert!(drc.scrub_entry(at), "flip in a valid entry is parity-detected");
        assert_eq!(drc.valid_entries(), 0);
        assert!(!drc.scrub_entry(at), "flip in an already-invalid entry is masked");
        // The scrubbed translation refills as a normal miss, same value.
        let l2 = drc.derandomize(RandAddr(0x9000), &t).unwrap();
        assert!(!l2.hit);
        assert_eq!(l2.translated, 0x1000);
        // Lane indices wrap modulo the buffer size.
        assert!(!drc.scrub_entry(at + 64 * 3 + 1));
    }
}
