//! The stack return-address bitmap (§IV-C).
//!
//! When the hardware pushes a *randomized* return address, it marks the
//! stack slot in a bitmap so that a later plain load from that slot can be
//! transparently de-randomized (supporting position-independent-code
//! idioms and C++ exception unwinding that read return addresses off the
//! stack). The bitmap lives in kernel-invisible pages like the
//! translation tables; a small cache fronts it in hardware. This module
//! models the architectural contents; the cycle simulator charges the
//! timing.

use vcfr_isa::wire::{Reader, WireError, Writer};

const PAGE_SHIFT: u32 = 12;
/// 4 KiB page / 8-byte slots = 512 bits = 8 × u64 words.
const WORDS_PER_PAGE: usize = 8;

/// Tracks which 8-byte stack slots currently hold randomized return
/// addresses.
///
/// A program's stack touches a handful of pages, so the page store is a
/// flat association list searched linearly with the hot page kept in
/// front — the simulator consults the bitmap on every memory access in
/// VCFR mode, and this avoids hashing on that path.
///
/// # Example
///
/// ```
/// use vcfr_core::StackBitmap;
/// let mut bm = StackBitmap::new();
/// bm.mark(0xeff8);
/// assert!(bm.is_marked(0xeff8));
/// bm.clear(0xeff8);
/// assert!(!bm.is_marked(0xeff8));
/// ```
#[derive(Clone, Debug, Default)]
pub struct StackBitmap {
    pages: Vec<(u32, [u64; WORDS_PER_PAGE])>,
    marked: u64,
}

impl StackBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> StackBitmap {
        StackBitmap::default()
    }

    fn locate(addr: u32) -> (u32, usize, u64) {
        let page = addr >> PAGE_SHIFT;
        let slot = ((addr >> 3) & 511) as usize;
        (page, slot / 64, 1u64 << (slot % 64))
    }

    /// Index of `page` in the store, moving it to the front on a repeat
    /// hit so the hot stack page is found in one comparison.
    fn find(&mut self, page: u32) -> Option<usize> {
        let at = self.pages.iter().position(|&(p, _)| p == page)?;
        if at != 0 {
            self.pages.swap(0, at);
        }
        Some(0)
    }

    /// Marks the slot containing `addr` as holding a randomized return
    /// address. `addr` should be 8-byte aligned (the low bits are
    /// ignored).
    pub fn mark(&mut self, addr: u32) {
        let (page, word, bit) = StackBitmap::locate(addr);
        let at = match self.find(page) {
            Some(at) => at,
            None => {
                self.pages.insert(0, (page, [0; WORDS_PER_PAGE]));
                0
            }
        };
        let words = &mut self.pages[at].1;
        if words[word] & bit == 0 {
            words[word] |= bit;
            self.marked += 1;
        }
    }

    /// Clears the mark on the slot containing `addr` (e.g. once the
    /// return address is consumed by `ret`).
    pub fn clear(&mut self, addr: u32) {
        let (page, word, bit) = StackBitmap::locate(addr);
        if let Some(at) = self.find(page) {
            let words = &mut self.pages[at].1;
            if words[word] & bit != 0 {
                words[word] &= !bit;
                self.marked -= 1;
            }
        }
    }

    /// Whether the slot containing `addr` holds a randomized return
    /// address.
    pub fn is_marked(&self, addr: u32) -> bool {
        if self.marked == 0 {
            return false;
        }
        let (page, word, bit) = StackBitmap::locate(addr);
        self.pages
            .iter()
            .find(|&&(p, _)| p == page)
            .is_some_and(|(_, w)| w[word] & bit != 0)
    }

    /// Number of currently marked slots.
    pub fn marked_count(&self) -> u64 {
        self.marked
    }

    /// Serialises the bitmap (checkpoint support). Pages are written in
    /// their current association-list order so the restored bitmap keeps
    /// the same move-to-front search behaviour.
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.pages.len() as u64);
        for (page, words) in &self.pages {
            w.u32(*page);
            for word in words {
                w.u64(*word);
            }
        }
        w.u64(self.marked);
    }

    /// Rebuilds a bitmap from [`StackBitmap::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or when the stored mark count
    /// disagrees with the page contents (corrupt stream).
    pub fn restore(r: &mut Reader<'_>) -> Result<StackBitmap, WireError> {
        let n = r.u64()?;
        if n > u32::MAX as u64 {
            return Err(WireError::LengthOutOfRange { len: n });
        }
        let mut bm = StackBitmap::new();
        let mut popcount = 0u64;
        for _ in 0..n {
            let page = r.u32()?;
            let mut words = [0u64; WORDS_PER_PAGE];
            for word in &mut words {
                *word = r.u64()?;
                popcount += word.count_ones() as u64;
            }
            bm.pages.push((page, words));
        }
        bm.marked = r.u64()?;
        if bm.marked != popcount {
            return Err(WireError::LengthOutOfRange { len: bm.marked });
        }
        Ok(bm)
    }

    /// The virtual address of the bitmap word backing `addr`, for cache
    /// modelling of bitmap-cache misses. `bitmap_base` is where the
    /// kernel placed the bitmap pages.
    pub fn word_addr(bitmap_base: u32, addr: u32) -> u32 {
        let (page, word, _) = StackBitmap::locate(addr);
        bitmap_base
            .wrapping_add(page.wrapping_mul((WORDS_PER_PAGE * 8) as u32))
            .wrapping_add((word * 8) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_test_clear() {
        let mut bm = StackBitmap::new();
        assert!(!bm.is_marked(0x1000));
        bm.mark(0x1000);
        assert!(bm.is_marked(0x1000));
        assert_eq!(bm.marked_count(), 1);
        bm.clear(0x1000);
        assert!(!bm.is_marked(0x1000));
        assert_eq!(bm.marked_count(), 0);
    }

    #[test]
    fn slots_are_8_byte_granular() {
        let mut bm = StackBitmap::new();
        bm.mark(0x1008);
        assert!(bm.is_marked(0x1008));
        assert!(bm.is_marked(0x100f)); // same slot
        assert!(!bm.is_marked(0x1010)); // next slot
        assert!(!bm.is_marked(0x1000)); // previous slot
    }

    #[test]
    fn idempotent_marking() {
        let mut bm = StackBitmap::new();
        bm.mark(0x2000);
        bm.mark(0x2000);
        assert_eq!(bm.marked_count(), 1);
        bm.clear(0x2000);
        bm.clear(0x2000);
        assert_eq!(bm.marked_count(), 0);
    }

    #[test]
    fn spans_many_pages() {
        let mut bm = StackBitmap::new();
        for i in 0..10_000u32 {
            bm.mark(i * 8);
        }
        assert_eq!(bm.marked_count(), 10_000);
        assert!(bm.is_marked(9_999 * 8));
        assert!(!bm.is_marked(10_000 * 8));
    }

    #[test]
    fn save_restore_preserves_marks_and_page_order() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut bm = StackBitmap::new();
        bm.mark(0x1000);
        bm.mark(0x2008);
        bm.mark(0x1000); // idempotent; also moves page 1 to the front
        let mut w = Writer::with_magic(*b"VCFRTEST");
        bm.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let back = StackBitmap::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.marked_count(), 2);
        assert!(back.is_marked(0x1000));
        assert!(back.is_marked(0x2008));
        assert!(!back.is_marked(0x3000));
        assert_eq!(back.pages, bm.pages);
    }

    #[test]
    fn restore_rejects_inconsistent_mark_count() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut bm = StackBitmap::new();
        bm.mark(0x1000);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        bm.save(&mut w);
        let mut buf = w.into_bytes();
        let at = buf.len() - 1;
        buf[at] ^= 1; // corrupt the trailing mark count
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(StackBitmap::restore(&mut r).is_err());
    }

    #[test]
    fn word_addresses_distinct_per_word() {
        let a = StackBitmap::word_addr(0x5000_0000, 0x1000);
        let b = StackBitmap::word_addr(0x5000_0000, 0x1000 + 64 * 8);
        assert_ne!(a, b);
        // Same slot → same word address.
        assert_eq!(a, StackBitmap::word_addr(0x5000_0000, 0x1004));
    }
}
