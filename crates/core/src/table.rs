//! The in-memory randomization/de-randomization tables.
//!
//! The paper stores these tables in kernel-managed pages that are
//! invisible to user-space instructions (a TLB page-visibility bit); the
//! processor walks them on a DRC miss, through the unified L2. Two details
//! matter for both security and timing and are modelled here exactly:
//!
//! * every entry carries a **derand/rand tag** saying which direction it
//!   translates, and
//! * every *original* address that was safely randomized has its
//!   **randomized tag** set, which *prohibits* control transfers to that
//!   address in the original space — this is what shrinks the ROP surface
//!   to the un-randomized fail-over set.

use crate::{LayoutMap, OrigAddr, RandAddr};
use std::collections::{HashMap, HashSet};
use std::fmt;
use vcfr_isa::wire::{Reader, WireError, Writer};

/// Which direction a [`TableEntry`] translates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// Randomized → original (the *derand* tag is set).
    Derand,
    /// Original → randomized (the *derand* tag is clear).
    Rand,
}

/// One translation entry, as it would sit in the in-memory table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// Translation direction.
    pub kind: EntryKind,
    /// Source address (raw bits; interpret according to `kind`).
    pub from: u32,
    /// Translated address.
    pub to: u32,
    /// Set when `from` is an un-randomized address mapped to itself
    /// (fail-over entries for indirect transfers that could not be
    /// randomized).
    pub unrandomized: bool,
}

/// A failed address translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TranslateError {
    /// No entry translates the address: in hardware this is a security
    /// fault — the program (or an attacker) produced an address that is
    /// neither a live randomized address nor a permitted un-randomized
    /// fail-over target.
    Unmapped {
        /// The raw address that failed to translate.
        addr: u32,
        /// The direction that was attempted.
        kind: EntryKind,
    },
    /// The address names an original-space instruction whose randomized
    /// tag is set: entering it in the original space is prohibited
    /// (§IV-A, "execution control is prohibited from jumping to that
    /// location").
    Prohibited {
        /// The prohibited original address.
        orig: OrigAddr,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unmapped { addr, kind } => {
                write!(f, "no {kind:?} translation for {addr:#010x}")
            }
            TranslateError::Prohibited { orig } => {
                write!(f, "control transfer to randomized-tagged original address {orig}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// The randomization/de-randomization tables of one program instance.
///
/// # Example
///
/// ```
/// use vcfr_core::{LayoutMap, OrigAddr, RandAddr, TranslationTable};
/// let map = LayoutMap::from_pairs([(OrigAddr(0x1000), RandAddr(0x7777))]).unwrap();
/// let mut t = TranslationTable::from_layout(&map, 0x4000_0000);
/// assert_eq!(t.derand(RandAddr(0x7777)).unwrap(), OrigAddr(0x1000));
/// assert_eq!(t.rand(OrigAddr(0x1000)).unwrap(), RandAddr(0x7777));
/// // Jumping to 0x1000 in the *original* space is prohibited ...
/// assert!(t.derand(RandAddr(0x1000)).is_err());
/// // ... until it is explicitly registered as an un-randomized fail-over.
/// t.add_unrandomized(OrigAddr(0x2000));
/// assert_eq!(t.derand(RandAddr(0x2000)).unwrap(), OrigAddr(0x2000));
/// ```
#[derive(Clone, Debug)]
pub struct TranslationTable {
    derand: HashMap<u32, u32>,
    rand: HashMap<u32, u32>,
    /// Original addresses that remain legal un-randomized entry points.
    unrandomized: HashSet<u32>,
    /// Original addresses whose randomized tag is set (randomized
    /// instructions; entering them in original space faults).
    tagged: HashSet<u32>,
    base: u32,
    capacity_mask: u32,
}

/// Bytes occupied by one table entry in memory (two 32-bit addresses plus
/// tag/valid bits, padded to a power of two for cheap indexing).
pub(crate) const ENTRY_BYTES: u32 = 16;

impl TranslationTable {
    /// Builds the tables for a randomized layout. `table_base` is the
    /// virtual address at which the entry pages live (used to model DRC
    /// miss traffic through the cache hierarchy).
    pub fn from_layout(map: &LayoutMap, table_base: u32) -> TranslationTable {
        let mut t = TranslationTable {
            derand: HashMap::with_capacity(map.len()),
            rand: HashMap::with_capacity(map.len()),
            unrandomized: HashSet::new(),
            tagged: HashSet::with_capacity(map.len()),
            base: table_base,
            capacity_mask: (map.len().max(1) * 2).next_power_of_two() as u32 - 1,
        };
        for (o, r) in map.iter() {
            t.derand.insert(r.raw(), o.raw());
            t.rand.insert(o.raw(), r.raw());
            t.tagged.insert(o.raw());
        }
        t
    }

    /// Registers `orig` as a legal un-randomized fail-over target
    /// (identity entry with the randomized tag clear).
    pub fn add_unrandomized(&mut self, orig: OrigAddr) {
        self.unrandomized.insert(orig.raw());
    }

    /// Whether `orig` holds a randomized instruction (its randomized tag
    /// is set).
    pub fn is_randomized(&self, orig: OrigAddr) -> bool {
        self.tagged.contains(&orig.raw())
    }

    /// Number of derand + rand entries.
    pub fn len(&self) -> usize {
        self.derand.len() + self.rand.len() + self.unrandomized.len()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Translates an architectural (randomized-space) address to the
    /// original space.
    ///
    /// Un-randomized fail-over addresses translate to themselves.
    ///
    /// # Errors
    ///
    /// [`TranslateError::Prohibited`] when the address names a randomized
    /// instruction in the original space; [`TranslateError::Unmapped`]
    /// when nothing translates it.
    pub fn derand(&self, rand: RandAddr) -> Result<OrigAddr, TranslateError> {
        if let Some(o) = self.derand.get(&rand.raw()) {
            return Ok(OrigAddr(*o));
        }
        if self.unrandomized.contains(&rand.raw()) {
            return Ok(OrigAddr(rand.raw()));
        }
        if self.tagged.contains(&rand.raw()) {
            return Err(TranslateError::Prohibited { orig: OrigAddr(rand.raw()) });
        }
        Err(TranslateError::Unmapped { addr: rand.raw(), kind: EntryKind::Derand })
    }

    /// Translates an original-space address to the randomized space
    /// (used when a `call` pushes its randomized return address).
    ///
    /// # Errors
    ///
    /// [`TranslateError::Unmapped`] when the address has no randomized
    /// image and is not a registered un-randomized target.
    pub fn rand(&self, orig: OrigAddr) -> Result<RandAddr, TranslateError> {
        if let Some(r) = self.rand.get(&orig.raw()) {
            return Ok(RandAddr(*r));
        }
        if self.unrandomized.contains(&orig.raw()) {
            return Ok(RandAddr(orig.raw()));
        }
        Err(TranslateError::Unmapped { addr: orig.raw(), kind: EntryKind::Rand })
    }

    /// Returns the full entry for a lookup, as the DRC fill path would.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TranslationTable::derand`] /
    /// [`TranslationTable::rand`].
    pub fn entry(&self, kind: EntryKind, addr: u32) -> Result<TableEntry, TranslateError> {
        match kind {
            EntryKind::Derand => {
                let o = self.derand(RandAddr(addr))?;
                Ok(TableEntry {
                    kind,
                    from: addr,
                    to: o.raw(),
                    unrandomized: o.raw() == addr,
                })
            }
            EntryKind::Rand => {
                let r = self.rand(OrigAddr(addr))?;
                Ok(TableEntry {
                    kind,
                    from: addr,
                    to: r.raw(),
                    unrandomized: r.raw() == addr,
                })
            }
        }
    }

    /// The virtual address of the table slot that would hold the entry
    /// for `(kind, addr)` — what the hardware reads from L2/DRAM on a DRC
    /// miss. Deterministic open-addressing layout.
    pub fn entry_addr(&self, kind: EntryKind, addr: u32) -> u32 {
        let kind_bit = match kind {
            EntryKind::Derand => 0u32,
            EntryKind::Rand => 1u32,
        };
        // Fibonacci hash over the word-aligned address plus the kind bit.
        let h = (addr >> 2).wrapping_mul(0x9e37_79b9) ^ kind_bit.wrapping_mul(0x85eb_ca6b);
        self.base.wrapping_add((h & self.capacity_mask) * ENTRY_BYTES)
    }

    /// Base virtual address of the table pages.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Iterates the registered un-randomized fail-over addresses (used
    /// when persisting tables).
    pub fn unrandomized_addrs(&self) -> impl Iterator<Item = OrigAddr> + '_ {
        self.unrandomized.iter().map(|a| OrigAddr(*a))
    }

    /// Serialises the tables (checkpoint support). Hash-map contents are
    /// written in sorted key order so the byte form is deterministic
    /// regardless of insertion history.
    pub fn save(&self, w: &mut Writer) {
        fn sorted_map(m: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
            let mut v: Vec<(u32, u32)> = m.iter().map(|(k, val)| (*k, *val)).collect();
            v.sort_unstable();
            v
        }
        fn sorted_set(s: &HashSet<u32>) -> Vec<u32> {
            let mut v: Vec<u32> = s.iter().copied().collect();
            v.sort_unstable();
            v
        }
        for map in [&self.derand, &self.rand] {
            let pairs = sorted_map(map);
            w.u64(pairs.len() as u64);
            for (k, v) in pairs {
                w.u32(k);
                w.u32(v);
            }
        }
        for set in [&self.unrandomized, &self.tagged] {
            let addrs = sorted_set(set);
            w.u64(addrs.len() as u64);
            for a in addrs {
                w.u32(a);
            }
        }
        w.u32(self.base);
        w.u32(self.capacity_mask);
    }

    /// Rebuilds the tables from [`TranslationTable::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or an implausible entry count.
    pub fn restore(r: &mut Reader<'_>) -> Result<TranslationTable, WireError> {
        const MAX_ENTRIES: u64 = 1 << 28;
        fn read_map(r: &mut Reader<'_>) -> Result<HashMap<u32, u32>, WireError> {
            let n = r.u64()?;
            if n > MAX_ENTRIES {
                return Err(WireError::LengthOutOfRange { len: n });
            }
            let mut m = HashMap::with_capacity(n as usize);
            for _ in 0..n {
                let k = r.u32()?;
                let v = r.u32()?;
                m.insert(k, v);
            }
            Ok(m)
        }
        fn read_set(r: &mut Reader<'_>) -> Result<HashSet<u32>, WireError> {
            let n = r.u64()?;
            if n > MAX_ENTRIES {
                return Err(WireError::LengthOutOfRange { len: n });
            }
            let mut s = HashSet::with_capacity(n as usize);
            for _ in 0..n {
                s.insert(r.u32()?);
            }
            Ok(s)
        }
        let derand = read_map(r)?;
        let rand = read_map(r)?;
        let unrandomized = read_set(r)?;
        let tagged = read_set(r)?;
        let base = r.u32()?;
        let capacity_mask = r.u32()?;
        Ok(TranslationTable { derand, rand, unrandomized, tagged, base, capacity_mask })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TranslationTable {
        let map = LayoutMap::from_pairs([
            (OrigAddr(0x1000), RandAddr(0xa000)),
            (OrigAddr(0x1005), RandAddr(0xb000)),
        ])
        .unwrap();
        TranslationTable::from_layout(&map, 0x4000_0000)
    }

    #[test]
    fn derand_and_rand_roundtrip() {
        let t = table();
        assert_eq!(t.derand(RandAddr(0xa000)).unwrap(), OrigAddr(0x1000));
        assert_eq!(t.rand(OrigAddr(0x1005)).unwrap(), RandAddr(0xb000));
    }

    #[test]
    fn randomized_tag_prohibits_original_entry() {
        let t = table();
        // 0x1000 is a randomized instruction: entering it via the
        // original space must fault. This is the anti-ROP property.
        assert_eq!(
            t.derand(RandAddr(0x1000)),
            Err(TranslateError::Prohibited { orig: OrigAddr(0x1000) })
        );
        assert!(t.is_randomized(OrigAddr(0x1000)));
    }

    #[test]
    fn unrandomized_failover_is_identity() {
        let mut t = table();
        t.add_unrandomized(OrigAddr(0x3000));
        assert_eq!(t.derand(RandAddr(0x3000)).unwrap(), OrigAddr(0x3000));
        assert_eq!(t.rand(OrigAddr(0x3000)).unwrap(), RandAddr(0x3000));
        let e = t.entry(EntryKind::Derand, 0x3000).unwrap();
        assert!(e.unrandomized);
    }

    #[test]
    fn unknown_addresses_are_unmapped() {
        let t = table();
        assert!(matches!(
            t.derand(RandAddr(0xdead_0000)),
            Err(TranslateError::Unmapped { kind: EntryKind::Derand, .. })
        ));
        assert!(matches!(
            t.rand(OrigAddr(0xdead_0000)),
            Err(TranslateError::Unmapped { kind: EntryKind::Rand, .. })
        ));
    }

    #[test]
    fn entry_addresses_are_stable_in_range_and_kind_distinct() {
        let t = table();
        let a1 = t.entry_addr(EntryKind::Derand, 0xa000);
        let a2 = t.entry_addr(EntryKind::Derand, 0xa000);
        assert_eq!(a1, a2);
        assert_ne!(a1, t.entry_addr(EntryKind::Rand, 0xa000));
        // Entry slots stay within the table's span.
        let span = (t.capacity_mask + 1) * ENTRY_BYTES;
        assert!(a1 >= t.base() && a1 < t.base() + span);
    }

    #[test]
    fn rand_entry_via_entry_api() {
        let t = table();
        let e = t.entry(EntryKind::Rand, 0x1000).unwrap();
        assert_eq!((e.from, e.to), (0x1000, 0xa000));
        assert!(!e.unrandomized);
        assert!(t.entry(EntryKind::Rand, 0xdead).is_err());
    }

    #[test]
    fn unrandomized_iteration_matches_registration() {
        let mut t = table();
        t.add_unrandomized(OrigAddr(0x3000));
        t.add_unrandomized(OrigAddr(0x3004));
        let mut got: Vec<u32> = t.unrandomized_addrs().map(|a| a.raw()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0x3000, 0x3004]);
    }

    #[test]
    fn save_restore_roundtrip_is_deterministic() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut t = table();
        t.add_unrandomized(OrigAddr(0x3000));
        let mut w = Writer::with_magic(*b"VCFRTEST");
        t.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let back = TranslationTable::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.derand(RandAddr(0xa000)).unwrap(), OrigAddr(0x1000));
        assert_eq!(back.rand(OrigAddr(0x1005)).unwrap(), RandAddr(0xb000));
        assert_eq!(back.derand(RandAddr(0x3000)).unwrap(), OrigAddr(0x3000));
        assert!(back.derand(RandAddr(0x1000)).is_err());
        assert_eq!(back.base(), t.base());
        assert_eq!(
            back.entry_addr(EntryKind::Derand, 0xa000),
            t.entry_addr(EntryKind::Derand, 0xa000)
        );
        // Saving the restored table reproduces the same bytes.
        let mut w2 = Writer::with_magic(*b"VCFRTEST");
        back.save(&mut w2);
        assert_eq!(w2.into_bytes(), buf);
    }

    #[test]
    fn restore_rejects_absurd_entry_count() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut w = Writer::with_magic(*b"VCFRTEST");
        w.u64(u64::MAX); // claimed derand entry count
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(TranslationTable::restore(&mut r).is_err());
    }

    #[test]
    fn len_counts_all_entries() {
        let mut t = table();
        assert_eq!(t.len(), 4);
        t.add_unrandomized(OrigAddr(0x3000));
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }
}
