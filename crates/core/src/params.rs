//! The parameterized randomization surface: every knob the security
//! evaluation sweeps, in one validated struct.
//!
//! The paper evaluates a single fixed configuration (Fig 11 is one
//! datapoint). [`RandParams`] names the axes of the full
//! entropy/security frontier instead:
//!
//! * **`entropy_bits`** — the log2 floor of the randomized-region span.
//!   More bits spread the same instruction bytes over a larger region,
//!   so an attacker guessing addresses lands on mapped code less often.
//! * **`sparsity`** — the span multiplier over the text size (the
//!   rewriter's `spread` knob); the span is
//!   `max(text_len * sparsity, 1 << entropy_bits)` rounded up to a
//!   power of two.
//! * **`rerand_epoch`** — instructions between live table swaps
//!   (§V-C); `None` disables periodic re-randomization.
//! * **`drc`** — the de-randomization cache geometry (§IV-B).
//!
//! The struct is plain data (`Copy`); [`RandParams::validate`] is the
//! single place the accepted ranges live, and everything downstream
//! (`RandomizeConfig::from_params`, `SimConfig::builder().rand_params`)
//! trusts a validated value.

use crate::drc::DrcConfig;
use std::fmt;

/// Smallest accepted [`RandParams::entropy_bits`]: one 4 KiB page, the
/// seed configuration's historical floor.
pub const MIN_ENTROPY_BITS: u32 = 12;

/// Largest accepted [`RandParams::entropy_bits`]: the randomized region
/// starts at `0x2000_0000` and must stay below the translation table at
/// `0x4000_0000`, so the span is capped at `2^29` bytes.
pub const MAX_ENTROPY_BITS: u32 = 29;

/// Largest accepted [`RandParams::sparsity`].
pub const MAX_SPARSITY: u32 = 1024;

/// The randomization parameter point a run is evaluated at.
///
/// `Default` reproduces the repository's historical behaviour exactly:
/// 12 entropy bits (the rewriter's 4 KiB span floor), sparsity 32 (the
/// rewriter's default `spread`), no re-randomization, and the paper's
/// 128-entry direct-mapped DRC.
///
/// # Example
///
/// ```
/// use vcfr_core::RandParams;
/// let p = RandParams { entropy_bits: 16, ..RandParams::default() };
/// p.validate().unwrap();
/// assert_eq!(p.span_bytes(3000), 1 << 17); // 3000 * 32 = 96000 -> 2^17
/// assert_eq!(p.span_bytes(10), 1 << 16); // floored by entropy_bits
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandParams {
    /// log2 floor of the randomized-region span in bytes.
    pub entropy_bits: u32,
    /// Span multiplier over the text size (the rewriter's `spread`).
    pub sparsity: u32,
    /// Instructions between live re-randomizations; `None` disables.
    pub rerand_epoch: Option<u64>,
    /// De-randomization cache geometry.
    pub drc: DrcConfig,
}

impl Default for RandParams {
    fn default() -> RandParams {
        RandParams {
            entropy_bits: MIN_ENTROPY_BITS,
            sparsity: 32,
            rerand_epoch: None,
            drc: DrcConfig::default(),
        }
    }
}

/// A [`RandParams`] field outside its accepted range.
///
/// Every variant's `Display` names the offending field, the accepted
/// range, and the rejected value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RandParamsError {
    /// `entropy_bits` outside `MIN_ENTROPY_BITS..=MAX_ENTROPY_BITS`.
    EntropyBits(u32),
    /// `sparsity` outside `1..=MAX_SPARSITY`.
    Sparsity(u32),
    /// `rerand_epoch` was `Some(0)`.
    RerandEpoch,
    /// `drc.entries` was zero.
    DrcEntries(usize),
    /// `drc.ways` was zero or did not divide `drc.entries`.
    DrcWays {
        /// The rejected entry count.
        entries: usize,
        /// The rejected way count.
        ways: usize,
    },
    /// `drc.entries / drc.ways` was not a power of two.
    DrcSets {
        /// The rejected set count.
        sets: usize,
    },
}

impl fmt::Display for RandParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RandParamsError::EntropyBits(got) => write!(
                f,
                "entropy_bits must be in {MIN_ENTROPY_BITS}..={MAX_ENTROPY_BITS} \
                 (one page up to the table base) (got {got})"
            ),
            RandParamsError::Sparsity(got) => {
                write!(f, "sparsity must be in 1..={MAX_SPARSITY} (got {got})")
            }
            RandParamsError::RerandEpoch => write!(
                f,
                "rerand_epoch must be positive (use None to disable re-randomization) (got 0)"
            ),
            RandParamsError::DrcEntries(got) => {
                write!(f, "drc.entries must be positive (got {got})")
            }
            RandParamsError::DrcWays { entries, ways } => write!(
                f,
                "drc.ways must be positive and divide drc.entries (got entries={entries}, ways={ways})"
            ),
            RandParamsError::DrcSets { sets } => write!(
                f,
                "drc.entries / drc.ways must be a power of two (got {sets} sets)"
            ),
        }
    }
}

impl std::error::Error for RandParamsError {}

impl RandParams {
    /// Checks every field against its accepted range.
    pub fn validate(&self) -> Result<(), RandParamsError> {
        if !(MIN_ENTROPY_BITS..=MAX_ENTROPY_BITS).contains(&self.entropy_bits) {
            return Err(RandParamsError::EntropyBits(self.entropy_bits));
        }
        if self.sparsity == 0 || self.sparsity > MAX_SPARSITY {
            return Err(RandParamsError::Sparsity(self.sparsity));
        }
        if self.rerand_epoch == Some(0) {
            return Err(RandParamsError::RerandEpoch);
        }
        if self.drc.entries == 0 {
            return Err(RandParamsError::DrcEntries(self.drc.entries));
        }
        if self.drc.ways == 0 || self.drc.entries % self.drc.ways != 0 {
            return Err(RandParamsError::DrcWays {
                entries: self.drc.entries,
                ways: self.drc.ways,
            });
        }
        let sets = self.drc.entries / self.drc.ways;
        if !sets.is_power_of_two() {
            return Err(RandParamsError::DrcSets { sets });
        }
        Ok(())
    }

    /// The randomized-region span (bytes) these params produce for a
    /// text segment of `text_len` bytes — the rewriter's span formula.
    pub fn span_bytes(&self, text_len: usize) -> u32 {
        (text_len as u32)
            .saturating_mul(self.sparsity)
            .max(1u32 << self.entropy_bits)
            .next_power_of_two()
    }

    /// A stable one-token description for manifest fingerprints and
    /// file names, e.g. `e16-s32-drc128w1`.
    pub fn describe(&self) -> String {
        let epoch = match self.rerand_epoch {
            Some(e) => format!("-r{e}"),
            None => String::new(),
        };
        format!(
            "e{}-s{}-drc{}w{}{}",
            self.entropy_bits, self.sparsity, self.drc.entries, self.drc.ways, epoch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_seed_behaviour() {
        let p = RandParams::default();
        p.validate().unwrap();
        // The historical rewriter formula: max(len * 32, 4096) rounded
        // up to a power of two.
        assert_eq!(p.span_bytes(3000), (3000u32 * 32).next_power_of_two());
        assert_eq!(p.span_bytes(10), 4096);
        assert_eq!(p.span_bytes(0), 4096);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases: [(RandParams, &str); 6] = [
            (RandParams { entropy_bits: 11, ..Default::default() }, "entropy_bits"),
            (RandParams { entropy_bits: 30, ..Default::default() }, "entropy_bits"),
            (RandParams { sparsity: 0, ..Default::default() }, "sparsity"),
            (RandParams { rerand_epoch: Some(0), ..Default::default() }, "rerand_epoch"),
            (
                RandParams { drc: DrcConfig { entries: 0, ways: 1 }, ..Default::default() },
                "drc.entries",
            ),
            (
                RandParams { drc: DrcConfig { entries: 96, ways: 1 }, ..Default::default() },
                "power of two",
            ),
        ];
        for (p, needle) in cases {
            let msg = p.validate().unwrap_err().to_string();
            assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        }
    }

    #[test]
    fn set_associative_drc_is_accepted() {
        let p = RandParams {
            drc: DrcConfig { entries: 512, ways: 4 },
            ..Default::default()
        };
        p.validate().unwrap();
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(RandParams::default().describe(), "e12-s32-drc128w1");
        let p = RandParams { rerand_epoch: Some(25_000), ..Default::default() };
        assert_eq!(p.describe(), "e12-s32-drc128w1-r25000");
    }

    #[test]
    fn span_grows_with_entropy_bits() {
        let text = 3000;
        let mut prev = 0;
        for bits in [12, 16, 20, 24, 29] {
            let p = RandParams { entropy_bits: bits, sparsity: 1, ..Default::default() };
            p.validate().unwrap();
            let span = p.span_bytes(text);
            assert!(span >= prev, "span must be monotone in entropy_bits");
            assert!(span >= 1 << bits);
            prev = span;
        }
    }
}
