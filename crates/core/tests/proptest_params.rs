//! Property tests for the randomization parameter surface:
//! `RandParams::validate` accepts exactly the documented ranges and
//! every rejection names the offending field, the span formula honours
//! both floors, and `describe` is injective (two distinct parameter
//! points never collide in manifests or file names).

use proptest::prelude::*;
use vcfr_core::{
    DrcConfig, RandParams, RandParamsError, MAX_ENTROPY_BITS, MAX_SPARSITY, MIN_ENTROPY_BITS,
};

/// Raw (possibly invalid) parameter points, biased to straddle every
/// range boundary.
fn arb_raw_params() -> impl Strategy<Value = RandParams> {
    (
        (0u32..40, 0u32..2048),
        (
            prop_oneof![Just(None), (0u64..100_000).prop_map(Some)],
            (0usize..300, 0usize..6),
        ),
    )
        .prop_map(|((entropy_bits, sparsity), (rerand_epoch, (entries, ways)))| RandParams {
            entropy_bits,
            sparsity,
            rerand_epoch,
            drc: DrcConfig { entries, ways },
        })
}

/// Valid parameter points only: every field drawn from its accepted
/// range, the DRC as `ways * 2^k` entries.
fn arb_valid_params() -> impl Strategy<Value = RandParams> {
    (
        (MIN_ENTROPY_BITS..MAX_ENTROPY_BITS + 1, 1u32..MAX_SPARSITY + 1),
        (
            prop_oneof![Just(None), (1u64..100_000).prop_map(Some)],
            (1usize..5, 0u32..9),
        ),
    )
        .prop_map(|((entropy_bits, sparsity), (rerand_epoch, (ways, k)))| RandParams {
            entropy_bits,
            sparsity,
            rerand_epoch,
            drc: DrcConfig { entries: ways << k, ways },
        })
}

/// The documented acceptance predicate, restated independently of the
/// implementation.
fn in_documented_ranges(p: &RandParams) -> bool {
    (MIN_ENTROPY_BITS..=MAX_ENTROPY_BITS).contains(&p.entropy_bits)
        && (1..=MAX_SPARSITY).contains(&p.sparsity)
        && p.rerand_epoch != Some(0)
        && p.drc.entries > 0
        && p.drc.ways > 0
        && p.drc.entries % p.drc.ways == 0
        && (p.drc.entries / p.drc.ways).is_power_of_two()
}

proptest! {
    #[test]
    fn validate_matches_the_documented_ranges(p in arb_raw_params()) {
        prop_assert_eq!(p.validate().is_ok(), in_documented_ranges(&p));
    }

    #[test]
    fn rejections_name_the_offending_field(p in arb_raw_params()) {
        if let Err(e) = p.validate() {
            let needle = match e {
                RandParamsError::EntropyBits(_) => "entropy_bits",
                RandParamsError::Sparsity(_) => "sparsity",
                RandParamsError::RerandEpoch => "rerand_epoch",
                RandParamsError::DrcEntries(_) => "drc.entries",
                RandParamsError::DrcWays { .. } => "drc.ways",
                RandParamsError::DrcSets { .. } => "drc.entries / drc.ways",
            };
            let msg = e.to_string();
            prop_assert!(msg.contains(needle), "{} should name {}", msg, needle);
            prop_assert!(msg.contains("got"), "{} should quote the rejected value", msg);
        }
    }

    #[test]
    fn span_honours_both_floors(p in arb_valid_params(), text_len in 0usize..100_000) {
        let span = p.span_bytes(text_len) as u64;
        prop_assert!(span.is_power_of_two());
        prop_assert!(span >= 1u64 << p.entropy_bits);
        let product = text_len as u64 * p.sparsity as u64;
        if product <= u32::MAX as u64 {
            prop_assert!(span >= product, "span {} < text*sparsity {}", span, product);
        }
    }

    #[test]
    fn span_is_monotone_in_entropy_bits(p in arb_valid_params(), text_len in 0usize..100_000) {
        if p.entropy_bits < MAX_ENTROPY_BITS {
            let q = RandParams { entropy_bits: p.entropy_bits + 1, ..p };
            prop_assert!(q.span_bytes(text_len) >= p.span_bytes(text_len));
        }
    }

    #[test]
    fn describe_distinguishes_distinct_points(
        p in arb_valid_params(),
        q in arb_valid_params(),
    ) {
        if p != q {
            prop_assert!(
                p.describe() != q.describe(),
                "distinct points {:?} and {:?} collide on {}",
                p, q, p.describe()
            );
        } else {
            prop_assert_eq!(p.describe(), q.describe());
        }
    }
}
