//! A self-contained stand-in for the subset of the `criterion` crate
//! this workspace's benches use, so the build has no network
//! dependency.
//!
//! Each [`Criterion::bench_function`] call warms the closure up, picks
//! an iteration count targeting a fixed measurement window, and prints
//! `name: <mean> ns/iter (n iterations)`. There are no statistical
//! refinements, plots, or baselines — the numbers are indicative, and
//! the benches double as smoke tests of the measured code paths. When
//! invoked with `--test` (as `cargo test --benches` does) every bench
//! runs exactly one iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement window each benchmark aims to fill.
const TARGET: Duration = Duration::from_millis(200);
/// Hard cap on iterations per benchmark.
const MAX_ITERS: u64 = 100_000;

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    /// Substring filters from the command line (`cargo bench -- foo`);
    /// empty means "run everything", matching real criterion.
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut test_mode = false;
        let mut filters = Vec::new();
        for a in std::env::args().skip(1) {
            if a == "--test" {
                test_mode = true;
            } else if !a.starts_with('-') {
                filters.push(a);
            }
        }
        Criterion { test_mode, filters }
    }
}

impl Criterion {
    /// Runs one named benchmark (skipped when a command-line filter is
    /// present and `name` matches none of them).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        // Warm-up / test-mode run: one iteration.
        f(&mut b);
        if self.test_mode {
            println!("{name}: ok (test mode)");
            return self;
        }
        let once = b.elapsed.max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        b.iters = iters;
        f(&mut b);
        let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        println!("{name}: {per_iter:.0} ns/iter ({iters} iterations)");
        self
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the driver-chosen number of times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion { test_mode: false, filters: Vec::new() };
        let mut total = 0u64;
        c.bench_function("smoke/sum", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                total
            })
        });
        assert!(total > 0);
    }

    #[test]
    fn filters_skip_non_matching_benches() {
        let mut c =
            Criterion { test_mode: true, filters: vec!["hot_loop".to_string()] };
        let mut matched = 0u64;
        let mut skipped = 0u64;
        c.bench_function("sim/engine_hot_loop", |b| b.iter(|| matched += 1));
        c.bench_function("isa/decode", |b| b.iter(|| skipped += 1));
        assert_eq!(matched, 1);
        assert_eq!(skipped, 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { test_mode: true, filters: Vec::new() };
        let mut calls = 0u64;
        c.bench_function("smoke/once", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 1);
    }
}
