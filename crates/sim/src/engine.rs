//! The trace-driven cycle engine: an in-order single-issue pipeline
//! (fetch → decode → alloc → exec → commit) timed over the architectural
//! instruction stream of the functional interpreter.
//!
//! Three execution modes reproduce the paper's three machines:
//!
//! * [`Mode::Baseline`] — the original binary, no randomization;
//! * [`Mode::NaiveIlr`] — straightforward hardware ILR: instructions are
//!   fetched from their *scattered* randomized addresses (the address
//!   mapping itself is free, as the paper assumes), destroying fetch
//!   locality;
//! * [`Mode::Vcfr`] — virtual control flow randomization: fetch stays in
//!   the original space, and a [`Drc`] translates at control transfers,
//!   calls, returns and marked stack loads, walking the in-memory tables
//!   through the unified L2 on a miss.

use crate::config::{DrcBacking, SimConfig};
use crate::faults::{
    ContainmentPolicy, FaultOutcome, FaultPersistence, FaultPlan, FaultRecord, FaultStats,
    FaultTarget, ScheduledFault,
};
use crate::flatmap::FlatMap;
use crate::hierarchy::MemoryHierarchy;
use crate::predict::{BranchStats, Btb, Gshare, Ras};
use crate::stats::SimStats;
use std::collections::VecDeque;
use std::fmt;
use vcfr_core::{
    rerandomize, Drc, DrcConfig, LayoutMap, OrigAddr, RandAddr, StackBitmap, TranslationTable,
};
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::{Addr, ControlFlow, ExecError, Image, Inst, RunOutcome, StepInfo};
use vcfr_obs::TraceRing;
use vcfr_rewriter::RandomizedProgram;

/// Which machine to simulate.
#[derive(Clone, Copy, Debug)]
pub enum Mode<'a> {
    /// The original binary with no randomization.
    Baseline(&'a Image),
    /// Straightforward hardware ILR over the scattered layout.
    NaiveIlr(&'a RandomizedProgram),
    /// Virtual control flow randomization with a DRC of the given
    /// geometry.
    Vcfr {
        /// The randomized program (layout + tables).
        program: &'a RandomizedProgram,
        /// DRC geometry.
        drc: DrcConfig,
    },
}

impl Mode<'_> {
    /// The image the architecture executes (always the original
    /// semantics).
    pub(crate) fn image_ref(&self) -> &Image {
        match self {
            Mode::Baseline(img) => img,
            Mode::NaiveIlr(rp) | Mode::Vcfr { program: rp, .. } => &rp.original,
        }
    }
}

/// Extra execution latency of long-running operations, shared by the
/// in-order and out-of-order cores.
pub(crate) fn exec_extra_cycles(inst: &Inst) -> u64 {
    Engine::exec_extra(inst)
}

/// One entry in the post-mortem trace ring: something the pipeline did
/// at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Committed-instruction sequence number (1-based).
    pub seq: u64,
    /// Architectural PC of the instruction the event belongs to.
    pub pc: Addr,
    /// Simulated cycle the event is anchored to.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kinds of pipeline events the trace ring records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The instruction left the timing model.
    Commit,
    /// Instruction fetch stalled (IL1 miss, iTLB walk).
    FetchStall {
        /// Stall cycles.
        cycles: u64,
    },
    /// The front end was redirected (misprediction, BTB miss,
    /// DRC-miss redirect).
    Redirect {
        /// Cycle fetch resumes at.
        resume_at: u64,
    },
    /// A DRC miss walked the in-memory translation tables.
    DrcWalk {
        /// Walk latency in cycles.
        cycles: u64,
    },
    /// A scheduled fault was injected into the mediation state.
    FaultInjected {
        /// Where the flip landed.
        target: FaultTarget,
    },
    /// The mediation layer detected an injected fault.
    FaultDetected {
        /// Where the flip landed.
        target: FaultTarget,
    },
    /// An epoch re-randomization swapped the live layout and tables.
    Rerand {
        /// Pipeline pause charged for the swap.
        cycles: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} pc={:#x} cycle={} ", self.seq, self.pc, self.cycle)?;
        match self.kind {
            TraceEventKind::Commit => write!(f, "commit"),
            TraceEventKind::FetchStall { cycles } => write!(f, "fetch stall {cycles}"),
            TraceEventKind::Redirect { resume_at } => {
                write!(f, "redirect, fetch resumes at {resume_at}")
            }
            TraceEventKind::DrcWalk { cycles } => write!(f, "drc walk {cycles}"),
            TraceEventKind::FaultInjected { target } => write!(f, "fault injected into {target}"),
            TraceEventKind::FaultDetected { target } => write!(f, "fault in {target} detected"),
            TraceEventKind::Rerand { cycles } => write!(f, "rerand epoch swap, {cycles} cycles"),
        }
    }
}

/// A simulation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The program faulted architecturally.
    Exec {
        /// The architectural fault.
        cause: ExecError,
        /// The last pipeline events before the fault (contents of the
        /// trace ring, oldest first; empty when tracing is disabled or
        /// the fault did not pass through the timing engine).
        trace: Vec<TraceEvent>,
    },
    /// An injected sticky fault could not be contained under
    /// [`ContainmentPolicy::Halt`]: the machine stopped rather than run
    /// on corrupted translation state.
    Fault {
        /// Committed-instruction count at the halt.
        at_inst: u64,
        /// The structure holding the uncorrectable fault.
        target: FaultTarget,
        /// The last pipeline events before the halt.
        trace: Vec<TraceEvent>,
    },
    /// The engine was asked to mediate a VCFR control transfer but was
    /// built without a DRC — a mode/configuration mismatch that would
    /// otherwise corrupt the timing model silently.
    MissingDrc,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec { cause, trace } => {
                write!(f, "architectural fault: {cause}")?;
                if !trace.is_empty() {
                    write!(f, "\nlast {} pipeline events:", trace.len())?;
                    for e in trace {
                        write!(f, "\n  {e}")?;
                    }
                }
                Ok(())
            }
            SimError::Fault { at_inst, target, trace } => {
                write!(f, "uncorrectable sticky fault in {target} at instruction {at_inst} (policy: halt)")?;
                if !trace.is_empty() {
                    write!(f, "\nlast {} pipeline events:", trace.len())?;
                    for e in trace {
                        write!(f, "\n  {e}")?;
                    }
                }
                Ok(())
            }
            SimError::MissingDrc => write!(
                f,
                "engine has no DRC but was asked to mediate a VCFR transfer (mode/configuration mismatch)"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec { cause: e, trace: Vec::new() }
    }
}

/// The result of a simulation: timing statistics plus the architectural
/// outcome (output values, stop reason).
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Timing and event counters.
    pub stats: SimStats,
    /// The functional result.
    pub outcome: RunOutcome,
}

/// Pipeline depth between fetch completion and execute.
const DECODE_DEPTH: u64 = 3;

/// Fixed cost of an epoch swap: drain the pipeline, flush the DRC, and
/// switch the table base registers. Shared with the out-of-order core.
pub(crate) const RERAND_QUIESCE_CYCLES: u64 = 200;
/// Per-entry cost of rebuilding the in-memory translation tables.
pub(crate) const RERAND_ENTRY_CYCLES: u64 = 2;
/// Per-slot cost of rewriting a live randomized return address.
const RERAND_SLOT_CYCLES: u64 = 4;

pub(crate) struct Engine {
    pub(crate) cfg: SimConfig,
    pub(crate) hier: MemoryHierarchy,
    pub(crate) gshare: Gshare,
    pub(crate) btb: Btb,
    pub(crate) ras: Ras,
    pub(crate) bstats: BranchStats,
    pub(crate) fetch_time: u64,
    pub(crate) backend_time: u64,
    pub(crate) redirect_at: u64,
    pub(crate) window_line: Option<Addr>,
    pub(crate) iq: VecDeque<u64>,
    pub(crate) drc: Option<Drc>,
    pub(crate) bitmap: StackBitmap,
    pub(crate) stack_rand: FlatMap,
    /// Original return address held by each marked slot, kept in lockstep
    /// with `stack_rand` so epoch swaps can re-randomize live slots.
    pub(crate) stack_orig: FlatMap,
    /// Layout of the current re-randomization epoch (None before the
    /// first swap: `rp.layout` is live).
    pub(crate) epoch_layout: Option<LayoutMap>,
    /// Tables of the current epoch, rebuilt at `rp.table.base()` so the
    /// invisible TLB pages stay valid across swaps.
    pub(crate) epoch_table: Option<TranslationTable>,
    pub(crate) rerand_epochs: u64,
    pub(crate) rerand_stall: u64,
    pub(crate) fstats: FaultStats,
    pub(crate) frecords: Vec<FaultRecord>,
    pub(crate) fetch_stall: u64,
    pub(crate) load_stall: u64,
    pub(crate) redirect_stall: u64,
    pub(crate) drc_walk: u64,
    pub(crate) exec_extra: u64,
    pub(crate) instructions: u64,
    pub(crate) trace: TraceRing<TraceEvent>,
    /// PC of the instruction currently stepping (for events recorded in
    /// helpers that don't see `StepInfo`).
    pub(crate) cur_pc: Addr,
}

/// Per-instruction timing precompute for superblock replay: everything
/// `Engine::step` needs from `StepInfo` for an eligible (register-only)
/// instruction, flattened so the batched path touches no decoder state.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ReplayInst {
    /// Architectural pc (identical to fetch pc in Baseline/Vcfr modes).
    pub(crate) pc: Addr,
    /// Address of the instruction's final byte (`pc + len - 1`).
    pub(crate) last: Addr,
    /// Extra execute cycles (`Engine::exec_extra`), e.g. 2 for `mul`.
    pub(crate) extra: u64,
}

/// Records one trace event. A free function so call sites can borrow the
/// ring alongside other `Engine` fields (e.g. while the DRC is borrowed).
#[inline]
fn trace_push(trace: &mut TraceRing<TraceEvent>, seq: u64, pc: Addr, cycle: u64, kind: TraceEventKind) {
    trace.push(TraceEvent { seq, pc, cycle, kind });
}

impl Engine {
    pub(crate) fn new(cfg: &SimConfig, drc: Option<DrcConfig>) -> Engine {
        Engine {
            cfg: *cfg,
            hier: MemoryHierarchy::new(cfg),
            gshare: Gshare::new(cfg.gshare),
            btb: Btb::new(cfg.btb),
            ras: Ras::new(cfg.ras_entries),
            bstats: BranchStats::default(),
            fetch_time: 0,
            backend_time: 0,
            redirect_at: 0,
            window_line: None,
            iq: VecDeque::new(),
            drc: drc.map(Drc::new),
            bitmap: StackBitmap::new(),
            stack_rand: FlatMap::new(),
            stack_orig: FlatMap::new(),
            epoch_layout: None,
            epoch_table: None,
            rerand_epochs: 0,
            rerand_stall: 0,
            fstats: FaultStats::default(),
            frecords: Vec::new(),
            fetch_stall: 0,
            load_stall: 0,
            redirect_stall: 0,
            drc_walk: 0,
            exec_extra: 0,
            instructions: 0,
            trace: TraceRing::new(cfg.trace_events),
            cur_pc: 0,
        }
    }

    /// Packages an architectural fault with the post-mortem trace.
    pub(crate) fn fault(&self, cause: ExecError) -> SimError {
        SimError::Exec { cause, trace: self.trace.to_vec() }
    }

    fn exec_extra(inst: &Inst) -> u64 {
        use vcfr_isa::AluOp::*;
        match inst {
            Inst::AluRR { op, .. } | Inst::AluRI { op, .. } => match op {
                Mul => 2,
                Div | Rem => 12,
                _ => 0,
            },
            _ => 0,
        }
    }

    fn redirect(&mut self, at: u64) {
        if at > self.redirect_at {
            // A redirect only stalls fetch for the cycles past the point
            // fetch has already reached. When it lands exactly on (or
            // behind) `fetch_time`, the front end never waits: the
            // contribution is zero, not a wrapped subtraction.
            self.redirect_stall += at.saturating_sub(self.redirect_at.max(self.fetch_time));
            self.redirect_at = at;
            trace_push(
                &mut self.trace,
                self.instructions,
                self.cur_pc,
                at,
                TraceEventKind::Redirect { resume_at: at },
            );
        }
    }

    /// One instruction through the timing model. `fetch_pc` is the
    /// address instruction bytes are fetched from (mode-dependent);
    /// `key` maps architectural addresses into predictor space.
    pub(crate) fn step(
        &mut self,
        info: &StepInfo,
        fetch_pc: Addr,
        key: &impl Fn(Addr) -> Addr,
        vcfr: Option<&RandomizedProgram>,
    ) {
        self.instructions += 1;
        self.cur_pc = info.pc;
        let cfg = self.cfg;

        // Context-switch model: periodically invalidate the DRC (other
        // processes own it in between).
        if let (Some(interval), Some(drc)) = (cfg.drc_flush_interval, self.drc.as_mut()) {
            if interval > 0 && self.instructions.is_multiple_of(interval) {
                drc.flush();
            }
        }

        // Live re-randomization (§V-C): every N instructions a VCFR run
        // swaps to a fresh layout, paying the flush-and-rebuild pause.
        if let (Some(epoch), Some(rp)) = (cfg.rerand_epoch, vcfr) {
            if epoch > 0 && self.instructions.is_multiple_of(epoch) {
                self.rerand_swap(rp);
            }
        }

        // ---- fetch ------------------------------------------------------
        let mut start = self.fetch_time.max(self.redirect_at);
        if self.iq.len() >= cfg.iq_entries {
            if let Some(oldest) = self.iq.pop_front() {
                start = start.max(oldest);
            }
        }
        let mut stall = 0;
        let line_bytes = cfg.il1.line_bytes as Addr;
        let first = fetch_pc & !(line_bytes - 1);
        let last = (fetch_pc + info.len as Addr - 1) & !(line_bytes - 1);
        let mut line = first;
        loop {
            if self.window_line != Some(line) {
                stall += self.hier.fetch_line(line, start);
                self.window_line = Some(line);
            }
            if line == last {
                break;
            }
            line += line_bytes;
        }
        let fetch_done = start + 1 + stall;
        self.fetch_stall += stall;
        self.fetch_time = fetch_done;
        if stall > 0 {
            trace_push(
                &mut self.trace,
                self.instructions,
                info.pc,
                fetch_done,
                TraceEventKind::FetchStall { cycles: stall },
            );
        }

        // ---- backend ----------------------------------------------------
        let exec_start = (self.backend_time + 1).max(fetch_done + DECODE_DEPTH);
        self.iq.push_back(exec_start);

        let extra = Engine::exec_extra(&info.inst);
        self.exec_extra += extra;
        let mut exec_end = exec_start + extra;
        for acc in info.mem_accesses() {
            let lat = self.hier.data_access(acc.addr, acc.write, exec_start);
            self.load_stall += lat;
            exec_end += lat;
        }

        // ---- VCFR mediation layer ----------------------------------------
        if let (Some(rp), Some(_)) = (vcfr, self.drc.as_ref()) {
            self.vcfr_events(info, rp, exec_start, &mut exec_end);
        }

        // ---- control flow ------------------------------------------------
        if let Some(cf) = info.control {
            self.control(info, cf, key, vcfr, fetch_done, exec_end);
            // A taken transfer resets the byte queue: the fetch unit
            // re-fetches the target line even when it is the line it was
            // already streaming (XIOSim's byteQ behaviour).
            if cf.taken_target().is_some() {
                self.window_line = None;
            }
        }

        self.backend_time = exec_end;
        trace_push(&mut self.trace, self.instructions, info.pc, exec_end, TraceEventKind::Commit);
    }

    /// Replays a run of superblock instructions through the timing model.
    ///
    /// Bit-for-bit equivalent to calling [`Engine::step`] once per
    /// instruction when every instruction is superblock-eligible
    /// (register-only: no memory accesses, no control flow, no faults)
    /// and fetch pc equals architectural pc (Baseline/Vcfr modes). The
    /// per-step work that is provably a no-op for such instructions —
    /// the DRC flush / rerand epoch checks (the caller caps `insts` so
    /// no boundary falls inside the batch), `vcfr_events` (iterates an
    /// empty access list, matches no control), the data-access loop and
    /// the control-flow hand-off — is skipped; everything else, including
    /// cache/TLB/prefetcher state advanced by `fetch_line` on *hits* and
    /// FetchStall/Commit trace events, runs exactly as in `step`.
    pub(crate) fn replay_block(&mut self, insts: &[ReplayInst]) {
        let cfg = self.cfg;
        let line_bytes = cfg.il1.line_bytes as Addr;
        let line_mask = !(line_bytes - 1);
        for ri in insts {
            self.instructions += 1;

            // ---- fetch --------------------------------------------------
            let mut start = self.fetch_time.max(self.redirect_at);
            if self.iq.len() >= cfg.iq_entries {
                if let Some(oldest) = self.iq.pop_front() {
                    start = start.max(oldest);
                }
            }
            let mut stall = 0;
            let first = ri.pc & line_mask;
            let last = ri.last & line_mask;
            let mut line = first;
            loop {
                if self.window_line != Some(line) {
                    stall += self.hier.fetch_line(line, start);
                    self.window_line = Some(line);
                }
                if line == last {
                    break;
                }
                line += line_bytes;
            }
            let fetch_done = start + 1 + stall;
            self.fetch_stall += stall;
            self.fetch_time = fetch_done;
            if stall > 0 {
                trace_push(
                    &mut self.trace,
                    self.instructions,
                    ri.pc,
                    fetch_done,
                    TraceEventKind::FetchStall { cycles: stall },
                );
            }

            // ---- backend ------------------------------------------------
            let exec_start = (self.backend_time + 1).max(fetch_done + DECODE_DEPTH);
            self.iq.push_back(exec_start);
            self.exec_extra += ri.extra;
            let exec_end = exec_start + ri.extra;
            self.backend_time = exec_end;
            trace_push(&mut self.trace, self.instructions, ri.pc, exec_end, TraceEventKind::Commit);
        }
        if let Some(ri) = insts.last() {
            self.cur_pc = ri.pc;
        }
    }

    fn vcfr_events(
        &mut self,
        info: &StepInfo,
        rp: &RandomizedProgram,
        exec_start: u64,
        exec_end: &mut u64,
    ) {
        let drc = self.drc.as_mut().expect("vcfr mode has a DRC");
        // Direct field access keeps the borrow disjoint from `drc`.
        let table = self.epoch_table.as_ref().unwrap_or(&rp.table);

        // Stack-slot hygiene and marked-slot loads (§IV-C): any read of a
        // slot holding a randomized return address is transparently
        // de-randomized (one DRC lookup); any unrelated overwrite clears
        // the mark.
        for acc in info.mem_accesses() {
            if acc.write {
                let is_call_push = matches!(
                    info.control,
                    Some(ControlFlow::Call { .. }) | Some(ControlFlow::IndirectCall { .. })
                );
                if !is_call_push && self.bitmap.is_marked(acc.addr) {
                    self.bitmap.clear(acc.addr);
                    self.stack_rand.remove(acc.addr);
                    self.stack_orig.remove(acc.addr);
                }
            } else if self.bitmap.is_marked(acc.addr)
                && !matches!(info.control, Some(ControlFlow::Return { .. }))
            {
                if let Some(v) = self.stack_rand.get(acc.addr) {
                    if let Ok(l) = drc.derandomize(RandAddr(v), table) {
                        if !l.hit {
                            let walk = match self.cfg.drc_backing {
                                DrcBacking::SharedL2 => {
                                    self.hier.table_walk(l.entry_addr, exec_start)
                                }
                                DrcBacking::Dedicated { latency } => latency,
                            };
                            self.drc_walk += walk;
                            *exec_end += walk;
                            if walk > 0 {
                                trace_push(
                                    &mut self.trace,
                                    self.instructions,
                                    self.cur_pc,
                                    exec_start,
                                    TraceEventKind::DrcWalk { cycles: walk },
                                );
                            }
                        }
                    }
                }
            }
        }

        match info.control {
            // A call pushes the *randomized* return address: one
            // randomization lookup, plus bitmap marking of the slot. The
            // walk on a miss happens in the store's shadow (the push need
            // not retire before younger instructions execute on an
            // in-order store buffer), so it contributes table traffic but
            // no stall.
            Some(ControlFlow::Call { ret_addr, .. })
            | Some(ControlFlow::IndirectCall { ret_addr, .. }) => {
                if let Ok(l) = drc.randomize(OrigAddr(ret_addr), table) {
                    if !l.hit {
                        let walk = match self.cfg.drc_backing {
                            DrcBacking::SharedL2 => {
                                self.hier.table_walk(l.entry_addr, exec_start)
                            }
                            DrcBacking::Dedicated { latency } => latency,
                        };
                        self.drc_walk += walk;
                        if walk > 0 {
                            trace_push(
                                &mut self.trace,
                                self.instructions,
                                self.cur_pc,
                                exec_start,
                                TraceEventKind::DrcWalk { cycles: walk },
                            );
                        }
                    }
                    if let Some(push) = info.mem_accesses().find(|a| a.write) {
                        self.bitmap.mark(push.addr);
                        self.stack_rand.insert(push.addr, l.translated);
                        self.stack_orig.insert(push.addr, ret_addr);
                    }
                }
            }
            // Return-address bookkeeping; the de-randomization of the
            // popped target happens in the control-flow handler, where
            // prediction correctness decides whether the walk is on the
            // critical path.
            Some(ControlFlow::Return { .. }) => {
                if let Some(pop) = info.mem_accesses().next() {
                    self.bitmap.clear(pop.addr);
                    self.stack_rand.remove(pop.addr);
                    self.stack_orig.remove(pop.addr);
                }
            }
            _ => {}
        }
    }

    /// De-randomizes a transfer target through the DRC; returns the walk
    /// latency on a miss (0 on a hit). The *caller* decides whether that
    /// latency lands on the critical path: when the orig-space predictors
    /// were right, fetch already streams down the correct path and the
    /// walk completes in its shadow; only a redirect must wait for it.
    fn vcfr_derand(&mut self, target: Addr, rp: &RandomizedProgram, now: u64) -> u64 {
        let drc = self.drc.as_mut().expect("vcfr mode has a DRC");
        let table = self.epoch_table.as_ref().unwrap_or(&rp.table);
        let rand = match &self.epoch_layout {
            Some(m) => m.to_rand(OrigAddr(target)).map(|r| r.raw()).unwrap_or(target),
            None => rp.rand_or_orig(target),
        };
        if let Ok(l) = drc.derandomize(RandAddr(rand), table) {
            if !l.hit {
                let walk = match self.cfg.drc_backing {
                    DrcBacking::SharedL2 => self.hier.table_walk(l.entry_addr, now),
                    DrcBacking::Dedicated { latency } => latency,
                };
                self.drc_walk += walk;
                if walk > 0 {
                    trace_push(
                        &mut self.trace,
                        self.instructions,
                        self.cur_pc,
                        now,
                        TraceEventKind::DrcWalk { cycles: walk },
                    );
                }
                return walk;
            }
        }
        0
    }

    /// Swaps to a freshly re-randomized layout (§V-C): the pipeline
    /// quiesces, the DRC is flushed, the in-memory tables are rebuilt at
    /// the same base, and every live marked stack slot is rewritten to
    /// hold its new randomized return address. The whole pause is charged
    /// by advancing both clocks, so the cycle-accounting floor identity
    /// (`cycles ≥ busy + load + rerand`) holds exactly.
    fn rerand_swap(&mut self, rp: &RandomizedProgram) {
        self.rerand_epochs += 1;
        // Deterministic per epoch: seeded by the epoch ordinal alone.
        let seed = 0x5eed_0000_0000_0000u64 ^ self.rerand_epochs;
        let cur = self.epoch_layout.as_ref().unwrap_or(&rp.layout);
        let fresh = rerandomize(cur, rp.region.0, rp.region.1, seed);
        let mut table = TranslationTable::from_layout(&fresh, rp.table.base());
        for a in rp.table.unrandomized_addrs() {
            table.add_unrandomized(a);
        }
        // Hardware rewrites live randomized return addresses in place;
        // slots holding fail-over (un-randomized) addresses keep them.
        let remapped: Vec<(Addr, u32)> = self
            .stack_orig
            .iter()
            .map(|(slot, orig)| {
                (slot, fresh.to_rand(OrigAddr(orig)).map(|r| r.raw()).unwrap_or(orig))
            })
            .collect();
        let slots = remapped.len() as u64;
        for (slot, rand) in remapped {
            self.stack_rand.insert(slot, rand);
        }
        if let Some(drc) = self.drc.as_mut() {
            drc.flush();
        }
        let cost = RERAND_QUIESCE_CYCLES
            + table.len() as u64 * RERAND_ENTRY_CYCLES
            + slots * RERAND_SLOT_CYCLES;
        let now = self.backend_time.max(self.fetch_time) + cost;
        self.rerand_stall += cost;
        self.fetch_time = now;
        self.backend_time = now;
        self.redirect_at = self.redirect_at.max(now);
        self.window_line = None;
        trace_push(
            &mut self.trace,
            self.instructions,
            self.cur_pc,
            now,
            TraceEventKind::Rerand { cycles: cost },
        );
        self.epoch_layout = Some(fresh);
        self.epoch_table = Some(table);
    }

    /// Injects one scheduled fault, classifying its outcome against the
    /// live structures. Injection is counterfactual — the golden
    /// architectural run is never corrupted — but detected faults charge
    /// their trap-and-refill recovery to the pipeline, and a sticky table
    /// fault either triggers an emergency re-randomization or halts the
    /// machine, per `policy`.
    pub(crate) fn inject_fault(
        &mut self,
        f: &ScheduledFault,
        image: &Image,
        rp: Option<&RandomizedProgram>,
        policy: ContainmentPolicy,
    ) -> Result<FaultOutcome, SimError> {
        trace_push(
            &mut self.trace,
            self.instructions,
            self.cur_pc,
            self.backend_time,
            TraceEventKind::FaultInjected { target: f.target },
        );
        let bit = 1u32 << (f.bit % 32);
        let outcome = match (f.target, rp) {
            // Baseline machine: the mediation hardware does not exist, so
            // flips aimed at it land in dead state; a corrupted PC is only
            // caught when it leaves the text segment.
            (
                FaultTarget::DrcEntry | FaultTarget::TableSlot | FaultTarget::StackBitmap,
                None,
            ) => FaultOutcome::Masked,
            (FaultTarget::Rpc | FaultTarget::Upc, None) => {
                if image.in_text(self.cur_pc ^ bit) {
                    FaultOutcome::Silent
                } else {
                    FaultOutcome::DetectedDecodeFailure
                }
            }
            // A flip in a valid DRC entry trips its parity on the next
            // probe and the entry scrubs (the refill is a natural miss, so
            // no extra charge); an invalid entry absorbs the flip.
            (FaultTarget::DrcEntry, Some(_)) => match self.drc.as_mut() {
                Some(drc) => {
                    if drc.scrub_entry(f.lane as usize) {
                        FaultOutcome::DetectedParityScrub
                    } else {
                        FaultOutcome::Masked
                    }
                }
                None => FaultOutcome::Masked,
            },
            // Table slots are parity-protected too. A transient flip
            // scrubs and the slot rewrites from the layout; a sticky one
            // keeps re-asserting and must be contained.
            (FaultTarget::TableSlot, Some(rp)) => match f.persistence {
                FaultPersistence::Transient => FaultOutcome::DetectedParityScrub,
                FaultPersistence::Sticky => match policy {
                    ContainmentPolicy::Recover => {
                        self.rerand_swap(rp);
                        self.fstats.emergency_rerands += 1;
                        FaultOutcome::Contained
                    }
                    ContainmentPolicy::Halt => {
                        return Err(SimError::Fault {
                            at_inst: self.instructions,
                            target: f.target,
                            trace: self.trace.to_vec(),
                        });
                    }
                },
            },
            // A flipped randomized PC almost never lands on another valid
            // randomized address: de-randomization rejects it — the same
            // prohibited/unmapped check that stops an attacker. Classify
            // through the pure table walk so the DRC state and stats of
            // the golden run are untouched.
            (FaultTarget::Rpc, Some(rp)) => {
                let rand = match &self.epoch_layout {
                    Some(m) => {
                        m.to_rand(OrigAddr(self.cur_pc)).map(|r| r.raw()).unwrap_or(self.cur_pc)
                    }
                    None => rp.rand_or_orig(self.cur_pc),
                };
                let table = self.epoch_table.as_ref().unwrap_or(&rp.table);
                match table.derand(RandAddr(rand ^ bit)) {
                    Err(_) => FaultOutcome::DetectedTranslationFault,
                    Ok(o) if o.raw() == self.cur_pc => FaultOutcome::Masked,
                    Ok(_) => FaultOutcome::Silent,
                }
            }
            // A flipped un-randomized (fetch-space) PC: the TLB
            // page-visibility bit catches wanders into table pages,
            // decode catches exits from the text segment.
            (FaultTarget::Upc, Some(_)) => {
                let flipped = self.cur_pc ^ bit;
                if !self.hier.dtlb.user_visible(flipped) {
                    self.hier.dtlb.record_visibility_fault();
                    FaultOutcome::DetectedVisibilityFault
                } else if !image.in_text(flipped) {
                    FaultOutcome::DetectedDecodeFailure
                } else {
                    FaultOutcome::Silent
                }
            }
            // A flipped bitmap word either spuriously de-randomizes a
            // plain value or returns a raw randomized address — both fail
            // de-randomization when any slot is live; an idle bitmap
            // absorbs the flip.
            (FaultTarget::StackBitmap, Some(_)) => {
                if self.bitmap.marked_count() > 0 {
                    FaultOutcome::DetectedTranslationFault
                } else {
                    FaultOutcome::Masked
                }
            }
        };
        if outcome.detected() {
            trace_push(
                &mut self.trace,
                self.instructions,
                self.cur_pc,
                self.backend_time,
                TraceEventKind::FaultDetected { target: f.target },
            );
            // Trap-and-refill recovery for faults caught on the fetch
            // path (containment already charged the full swap).
            if outcome != FaultOutcome::Contained && outcome != FaultOutcome::DetectedParityScrub
            {
                let resume =
                    self.backend_time.max(self.fetch_time) + self.cfg.mispredict_penalty;
                self.redirect(resume);
            }
        }
        Ok(outcome)
    }

    fn control(
        &mut self,
        info: &StepInfo,
        cf: ControlFlow,
        key: &impl Fn(Addr) -> Addr,
        vcfr: Option<&RandomizedProgram>,
        fetch_done: u64,
        exec_end: u64,
    ) {
        let cfg = self.cfg;
        let kpc = key(info.pc);
        match cf {
            ControlFlow::Branch { taken, target } => {
                self.bstats.predictions += 1;
                let predicted = self.gshare.predict(kpc);
                self.gshare.update(kpc, taken);
                if predicted != taken {
                    self.bstats.mispredictions += 1;
                    // A mispredicted *taken* branch redirects to a
                    // randomized target: the redirect waits for the DRC.
                    let walk = match (taken, vcfr) {
                        (true, Some(rp)) => self.vcfr_derand(target, rp, exec_end),
                        _ => 0,
                    };
                    self.redirect(exec_end + cfg.mispredict_penalty + walk);
                } else if taken {
                    self.taken_target_lookup(kpc, key(target), target, vcfr, fetch_done, exec_end);
                }
            }
            ControlFlow::Jump { target } => {
                self.taken_target_lookup(kpc, key(target), target, vcfr, fetch_done, exec_end);
            }
            ControlFlow::Call { target, ret_addr } => {
                self.taken_target_lookup(kpc, key(target), target, vcfr, fetch_done, exec_end);
                self.ras.push(key(ret_addr));
            }
            ControlFlow::IndirectCall { target, ret_addr } => {
                self.indirect_target_lookup(kpc, key(target), target, vcfr, exec_end);
                self.ras.push(key(ret_addr));
            }
            ControlFlow::IndirectJump { target } => {
                self.indirect_target_lookup(kpc, key(target), target, vcfr, exec_end);
            }
            ControlFlow::Return { target } => {
                self.bstats.ras_predictions += 1;
                // The popped randomized return address always consults the
                // DRC to recover the orig-space fetch address; a correct
                // RAS prediction hides the walk.
                let walk = match vcfr {
                    Some(rp) => self.vcfr_derand(target, rp, exec_end),
                    None => 0,
                };
                match self.ras.pop() {
                    Some(p) if p == key(target) => {}
                    _ => {
                        self.bstats.ras_mispredictions += 1;
                        self.redirect(exec_end + cfg.mispredict_penalty + walk);
                    }
                }
            }
        }
    }

    fn taken_target_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        fetch_done: u64,
        exec_end: u64,
    ) {
        self.bstats.btb_lookups += 1;
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                // In VCFR mode a BTB miss means the cached translation is
                // absent too: the redirect additionally waits for the DRC.
                let walk = match vcfr {
                    Some(rp) => self.vcfr_derand(target, rp, exec_end),
                    None => 0,
                };
                self.redirect(fetch_done + self.cfg.btb_miss_penalty + walk);
                self.btb.update(kpc, ktarget);
            }
        }
    }

    fn indirect_target_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        exec_end: u64,
    ) {
        self.bstats.btb_lookups += 1;
        // Indirect targets live in the randomized space; every resolution
        // consults the DRC (hidden when the BTB was right).
        let walk = match vcfr {
            Some(rp) => self.vcfr_derand(target, rp, exec_end),
            None => 0,
        };
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                self.redirect(exec_end + self.cfg.mispredict_penalty + walk);
                self.btb.update(kpc, ktarget);
            }
        }
    }

    pub(crate) fn stats_now(&self) -> SimStats {
        SimStats {
            instructions: self.instructions,
            cycles: self.backend_time.max(self.fetch_time),
            il1: self.hier.il1.stats(),
            dl1: self.hier.dl1.stats(),
            l2: self.hier.l2.stats(),
            itlb: self.hier.itlb.stats(),
            dtlb: self.hier.dtlb.stats(),
            dram: self.hier.dram.stats(),
            branch: self.bstats,
            drc: self.drc.as_ref().map(|d| d.stats()),
            drc_walk_cycles: self.drc_walk,
            fetch_stall_cycles: self.fetch_stall,
            load_stall_cycles: self.load_stall,
            redirect_stall_cycles: self.redirect_stall,
            l2_reads_from_l1: self.hier.l2_reads_from_l1,
            exec_extra_cycles: self.exec_extra,
            rerand_epochs: self.rerand_epochs,
            rerand_stall_cycles: self.rerand_stall,
            contention_stall_cycles: self.hier.contention_cycles,
        }
    }

    /// Serialises the entire engine state in field-declaration order
    /// (checkpoint support). The configuration itself is *not* written:
    /// the checkpoint envelope's context fingerprint pins it, and
    /// [`Engine::restore`] rebuilds from the same `cfg`.
    pub(crate) fn save(&self, w: &mut Writer) {
        self.hier.save(w);
        self.gshare.save(w);
        self.btb.save(w);
        self.ras.save(w);
        let b = &self.bstats;
        w.u64(b.predictions);
        w.u64(b.mispredictions);
        w.u64(b.btb_lookups);
        w.u64(b.btb_misses);
        w.u64(b.btb_wrong_target);
        w.u64(b.ras_predictions);
        w.u64(b.ras_mispredictions);
        w.u64(self.fetch_time);
        w.u64(self.backend_time);
        w.u64(self.redirect_at);
        match self.window_line {
            Some(line) => {
                w.u8(1);
                w.u32(line);
            }
            None => w.u8(0),
        }
        w.u64(self.iq.len() as u64);
        for &t in &self.iq {
            w.u64(t);
        }
        match &self.drc {
            Some(d) => {
                w.u8(1);
                d.save(w);
            }
            None => w.u8(0),
        }
        self.bitmap.save(w);
        self.stack_rand.save(w);
        self.stack_orig.save(w);
        match &self.epoch_layout {
            Some(m) => {
                w.u8(1);
                m.save(w);
            }
            None => w.u8(0),
        }
        match &self.epoch_table {
            Some(t) => {
                w.u8(1);
                t.save(w);
            }
            None => w.u8(0),
        }
        w.u64(self.rerand_epochs);
        w.u64(self.rerand_stall);
        save_fault_stats(&self.fstats, w);
        w.u64(self.frecords.len() as u64);
        for rec in &self.frecords {
            w.u64(rec.at_inst);
            w.u8(target_tag(rec.target));
            w.u8(persistence_tag(rec.persistence));
            w.u8(outcome_tag(rec.outcome));
        }
        w.u64(self.fetch_stall);
        w.u64(self.load_stall);
        w.u64(self.redirect_stall);
        w.u64(self.drc_walk);
        w.u64(self.exec_extra);
        w.u64(self.instructions);
        w.u64(self.trace.total_pushed());
        let items = self.trace.to_vec();
        w.u64(items.len() as u64);
        for e in &items {
            save_trace_event(e, w);
        }
        w.u32(self.cur_pc);
    }

    /// Rebuilds an engine from [`Engine::save`] output. `cfg` and `drc`
    /// must match the configuration the saved engine ran under (the
    /// checkpoint envelope enforces this before the bytes get here).
    pub(crate) fn restore(
        cfg: &SimConfig,
        drc: Option<DrcConfig>,
        r: &mut Reader<'_>,
    ) -> Result<Engine, WireError> {
        let hier = MemoryHierarchy::restore(cfg, r)?;
        let gshare = Gshare::restore(cfg.gshare, r)?;
        let btb = Btb::restore(cfg.btb, r)?;
        let ras = Ras::restore(r)?;
        let bstats = BranchStats {
            predictions: r.u64()?,
            mispredictions: r.u64()?,
            btb_lookups: r.u64()?,
            btb_misses: r.u64()?,
            btb_wrong_target: r.u64()?,
            ras_predictions: r.u64()?,
            ras_mispredictions: r.u64()?,
        };
        let fetch_time = r.u64()?;
        let backend_time = r.u64()?;
        let redirect_at = r.u64()?;
        let window_line = match r.u8()? {
            0 => None,
            1 => Some(r.u32()?),
            tag => return Err(WireError::BadTag { tag }),
        };
        let n_iq = r.u64()?;
        if n_iq > 1 << 20 {
            return Err(WireError::LengthOutOfRange { len: n_iq });
        }
        let mut iq = VecDeque::with_capacity(n_iq as usize);
        for _ in 0..n_iq {
            iq.push_back(r.u64()?);
        }
        let drc = match (r.u8()?, drc) {
            (0, None) => None,
            (1, Some(cfg)) => Some(Drc::restore(cfg, r)?),
            (tag, _) => return Err(WireError::BadTag { tag }),
        };
        let bitmap = StackBitmap::restore(r)?;
        let stack_rand = FlatMap::restore(r)?;
        let stack_orig = FlatMap::restore(r)?;
        let epoch_layout = match r.u8()? {
            0 => None,
            1 => Some(LayoutMap::restore(r)?),
            tag => return Err(WireError::BadTag { tag }),
        };
        let epoch_table = match r.u8()? {
            0 => None,
            1 => Some(TranslationTable::restore(r)?),
            tag => return Err(WireError::BadTag { tag }),
        };
        let rerand_epochs = r.u64()?;
        let rerand_stall = r.u64()?;
        let fstats = load_fault_stats(r)?;
        let n_rec = r.u64()?;
        if n_rec > 1 << 32 {
            return Err(WireError::LengthOutOfRange { len: n_rec });
        }
        let mut frecords = Vec::with_capacity(n_rec as usize);
        for _ in 0..n_rec {
            frecords.push(FaultRecord {
                at_inst: r.u64()?,
                target: target_from_tag(r.u8()?)?,
                persistence: persistence_from_tag(r.u8()?)?,
                outcome: outcome_from_tag(r.u8()?)?,
            });
        }
        let fetch_stall = r.u64()?;
        let load_stall = r.u64()?;
        let redirect_stall = r.u64()?;
        let drc_walk = r.u64()?;
        let exec_extra = r.u64()?;
        let instructions = r.u64()?;
        let pushed = r.u64()?;
        let n_trace = r.u64()?;
        if n_trace > 1 << 24 || n_trace > pushed {
            return Err(WireError::LengthOutOfRange { len: n_trace });
        }
        let mut items = Vec::with_capacity(n_trace as usize);
        for _ in 0..n_trace {
            items.push(load_trace_event(r)?);
        }
        let trace = TraceRing::from_parts(cfg.trace_events, items, pushed);
        let cur_pc = r.u32()?;
        Ok(Engine {
            cfg: *cfg,
            hier,
            gshare,
            btb,
            ras,
            bstats,
            fetch_time,
            backend_time,
            redirect_at,
            window_line,
            iq,
            drc,
            bitmap,
            stack_rand,
            stack_orig,
            epoch_layout,
            epoch_table,
            rerand_epochs,
            rerand_stall,
            fstats,
            frecords,
            fetch_stall,
            load_stall,
            redirect_stall,
            drc_walk,
            exec_extra,
            instructions,
            trace,
            cur_pc,
        })
    }
}

fn target_tag(t: FaultTarget) -> u8 {
    match t {
        FaultTarget::DrcEntry => 0,
        FaultTarget::TableSlot => 1,
        FaultTarget::Rpc => 2,
        FaultTarget::Upc => 3,
        FaultTarget::StackBitmap => 4,
    }
}

fn target_from_tag(tag: u8) -> Result<FaultTarget, WireError> {
    Ok(match tag {
        0 => FaultTarget::DrcEntry,
        1 => FaultTarget::TableSlot,
        2 => FaultTarget::Rpc,
        3 => FaultTarget::Upc,
        4 => FaultTarget::StackBitmap,
        tag => return Err(WireError::BadTag { tag }),
    })
}

fn persistence_tag(p: FaultPersistence) -> u8 {
    match p {
        FaultPersistence::Transient => 0,
        FaultPersistence::Sticky => 1,
    }
}

fn persistence_from_tag(tag: u8) -> Result<FaultPersistence, WireError> {
    Ok(match tag {
        0 => FaultPersistence::Transient,
        1 => FaultPersistence::Sticky,
        tag => return Err(WireError::BadTag { tag }),
    })
}

fn outcome_tag(o: FaultOutcome) -> u8 {
    match o {
        FaultOutcome::DetectedParityScrub => 0,
        FaultOutcome::DetectedTranslationFault => 1,
        FaultOutcome::DetectedVisibilityFault => 2,
        FaultOutcome::DetectedDecodeFailure => 3,
        FaultOutcome::Silent => 4,
        FaultOutcome::Masked => 5,
        FaultOutcome::Contained => 6,
    }
}

fn outcome_from_tag(tag: u8) -> Result<FaultOutcome, WireError> {
    Ok(match tag {
        0 => FaultOutcome::DetectedParityScrub,
        1 => FaultOutcome::DetectedTranslationFault,
        2 => FaultOutcome::DetectedVisibilityFault,
        3 => FaultOutcome::DetectedDecodeFailure,
        4 => FaultOutcome::Silent,
        5 => FaultOutcome::Masked,
        6 => FaultOutcome::Contained,
        tag => return Err(WireError::BadTag { tag }),
    })
}

fn save_fault_stats(s: &FaultStats, w: &mut Writer) {
    w.u64(s.injected);
    w.u64(s.detected_parity);
    w.u64(s.detected_translation);
    w.u64(s.detected_visibility);
    w.u64(s.detected_decode);
    w.u64(s.contained);
    w.u64(s.silent);
    w.u64(s.masked);
    w.u64(s.emergency_rerands);
}

fn load_fault_stats(r: &mut Reader<'_>) -> Result<FaultStats, WireError> {
    Ok(FaultStats {
        injected: r.u64()?,
        detected_parity: r.u64()?,
        detected_translation: r.u64()?,
        detected_visibility: r.u64()?,
        detected_decode: r.u64()?,
        contained: r.u64()?,
        silent: r.u64()?,
        masked: r.u64()?,
        emergency_rerands: r.u64()?,
    })
}

fn save_trace_event(e: &TraceEvent, w: &mut Writer) {
    w.u64(e.seq);
    w.u32(e.pc);
    w.u64(e.cycle);
    match e.kind {
        TraceEventKind::Commit => w.u8(0),
        TraceEventKind::FetchStall { cycles } => {
            w.u8(1);
            w.u64(cycles);
        }
        TraceEventKind::Redirect { resume_at } => {
            w.u8(2);
            w.u64(resume_at);
        }
        TraceEventKind::DrcWalk { cycles } => {
            w.u8(3);
            w.u64(cycles);
        }
        TraceEventKind::FaultInjected { target } => {
            w.u8(4);
            w.u8(target_tag(target));
        }
        TraceEventKind::FaultDetected { target } => {
            w.u8(5);
            w.u8(target_tag(target));
        }
        TraceEventKind::Rerand { cycles } => {
            w.u8(6);
            w.u64(cycles);
        }
    }
}

fn load_trace_event(r: &mut Reader<'_>) -> Result<TraceEvent, WireError> {
    let seq = r.u64()?;
    let pc = r.u32()?;
    let cycle = r.u64()?;
    let kind = match r.u8()? {
        0 => TraceEventKind::Commit,
        1 => TraceEventKind::FetchStall { cycles: r.u64()? },
        2 => TraceEventKind::Redirect { resume_at: r.u64()? },
        3 => TraceEventKind::DrcWalk { cycles: r.u64()? },
        4 => TraceEventKind::FaultInjected { target: target_from_tag(r.u8()?)? },
        5 => TraceEventKind::FaultDetected { target: target_from_tag(r.u8()?)? },
        6 => TraceEventKind::Rerand { cycles: r.u64()? },
        tag => return Err(WireError::BadTag { tag }),
    };
    Ok(TraceEvent { seq, pc, cycle, kind })
}

/// One interval of a sampled simulation (see [`simulate_sampled`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalSample {
    /// Index of the first instruction in the interval.
    pub first_inst: u64,
    /// Instructions in the interval.
    pub instructions: u64,
    /// Cycles the interval took.
    pub cycles: u64,
    /// Interval IPC.
    pub ipc: f64,
    /// Interval IL1 miss rate.
    pub il1_miss_rate: f64,
    /// Interval DRC miss rate (0 outside VCFR mode).
    pub drc_miss_rate: f64,
}

/// Runs one program to completion (or `max_insts`) under `mode`.
///
/// # Errors
///
/// Returns [`SimError::Exec`] when the program faults; reaching
/// `max_insts` is *not* an error — the run is truncated, mirroring the
/// paper's 500-million-instruction windows.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// use vcfr_sim::{simulate, Mode, SimConfig};
///
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rax, 7);
/// a.emit_output(Reg::Rax);
/// a.halt();
/// let img = a.finish().unwrap();
/// let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000).unwrap();
/// assert_eq!(out.outcome.output, vec![7]);
/// assert!(out.stats.cycles > 0);
/// ```
pub fn simulate(mode: Mode<'_>, cfg: &SimConfig, max_insts: u64) -> Result<SimOutput, SimError> {
    let outcome = crate::session::Session::new(mode, cfg, max_insts)
        .and_then(|mut s| s.run())
        .map_err(unwrap_sim_error)?;
    Ok(outcome.output)
}

/// Collapses a [`crate::VcfrError`] back into the legacy [`SimError`]
/// signature of [`simulate`] and friends. Configuration and checkpoint
/// errors cannot arise on these paths (they take no checkpoint and any
/// config reaches the engine unvalidated, as before), so they panic.
fn unwrap_sim_error(e: crate::VcfrError) -> SimError {
    match e {
        crate::VcfrError::Sim(e) => e,
        other => panic!("legacy simulate entry point hit a non-simulation error: {other}"),
    }
}

/// The result of a fault-injection run (see [`simulate_faulted`]).
#[derive(Clone, Debug)]
pub struct FaultedRun {
    /// Timing statistics and architectural outcome. Injection is
    /// counterfactual, so the functional output equals an un-faulted
    /// run's; only the timing carries the recovery costs.
    pub sim: SimOutput,
    /// Aggregate fault counters.
    pub faults: FaultStats,
    /// Per-fault resolutions, in injection order.
    pub records: Vec<FaultRecord>,
}

/// Like [`simulate`], but injects the scheduled faults of `plan` and
/// classifies how the machine resolves each one — the dependability
/// campaign's inner loop. The same `(mode, cfg, max_insts, plan)` always
/// produces the same result, bit for bit.
///
/// # Errors
///
/// Returns [`SimError::Exec`] when the program faults architecturally,
/// and [`SimError::Fault`] when a sticky table fault hits under
/// [`ContainmentPolicy::Halt`].
pub fn simulate_faulted(
    mode: Mode<'_>,
    cfg: &SimConfig,
    max_insts: u64,
    plan: &FaultPlan,
) -> Result<FaultedRun, SimError> {
    let outcome = crate::session::Session::new(mode, cfg, max_insts)
        .map(|s| s.with_faults(plan))
        .and_then(|mut s| s.run())
        .map_err(unwrap_sim_error)?;
    Ok(FaultedRun { sim: outcome.output, faults: outcome.faults, records: outcome.records })
}

/// Like [`simulate`], but additionally returns one [`IntervalSample`] per
/// `interval` committed instructions — the phase-behaviour view
/// (per-interval IPC, IL1 and DRC miss rates).
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_sampled(
    mode: Mode<'_>,
    cfg: &SimConfig,
    max_insts: u64,
    interval: u64,
) -> Result<(SimOutput, Vec<IntervalSample>), SimError> {
    let outcome = crate::session::Session::new(mode, cfg, max_insts)
        .map(|s| s.with_sampling(interval))
        .and_then(|mut s| s.run())
        .map_err(unwrap_sim_error)?;
    Ok((outcome.output, outcome.samples))
}


#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm, Cond, Machine, Reg};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    /// A loop calling ~120 small functions per iteration: the hot code
    /// footprint (~10 KB) fits the 32 KB IL1 in the original layout but
    /// occupies ~1800 lines when scattered per instruction — exactly the
    /// regime in which naive hardware ILR thrashes.
    fn workload() -> Image {
        const FUNCS: usize = 120;
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 40);
        a.mov_ri(Reg::Rax, 0);
        let top = a.here();
        for i in 0..FUNCS {
            a.call_named(&format!("f{i}"));
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        for i in 0..FUNCS {
            a.func(&format!("f{i}"));
            for _ in 0..6 {
                a.alu_ri(AluOp::Add, Reg::Rax, 1);
            }
            a.ret();
        }
        a.finish().unwrap()
    }

    #[test]
    fn redirect_landing_on_fetch_time_adds_no_stall() {
        // Pin the boundary semantics of redirect-stall accounting: a
        // redirect resolving exactly at (or before) the cycle fetch has
        // already reached costs the front end nothing, but still moves
        // the resume point so later fetches cannot start earlier.
        let cfg = SimConfig::default();
        let mut e = Engine::new(&cfg, None);
        e.fetch_time = 100;

        // Exactly on fetch_time: zero stall, redirect point recorded.
        e.redirect(100);
        assert_eq!(e.redirect_stall, 0);
        assert_eq!(e.redirect_at, 100);

        // Behind fetch_time but ahead of redirect_at (mid-flight branch
        // resolved while fetch ran ahead): still free — this is the case
        // the old unchecked subtraction would have underflowed on.
        e.fetch_time = 200;
        e.redirect(150);
        assert_eq!(e.redirect_stall, 0);
        assert_eq!(e.redirect_at, 150);

        // Past fetch_time: only the cycles beyond fetch_time count.
        e.redirect(230);
        assert_eq!(e.redirect_stall, 30);
        assert_eq!(e.redirect_at, 230);

        // Not past the previous redirect: ignored entirely.
        e.redirect(210);
        assert_eq!(e.redirect_stall, 30);
        assert_eq!(e.redirect_at, 230);
    }

    #[test]
    fn replay_block_matches_stepwise_accounting() {
        // The batched replay path must leave the engine in the exact
        // state N individual steps would: serialize both and compare.
        let mut a = Asm::new(0x1000);
        for i in 0..24 {
            a.alu_ri(AluOp::Add, Reg::Rax, i + 1);
            a.alu_ri(AluOp::Mul, Reg::Rbx, 3); // exercises exec_extra
            a.cmp_i(Reg::Rax, 7);
        }
        a.halt();
        let img = a.finish().unwrap();

        let cfg = SimConfig::default();
        let mut stepped = Engine::new(&cfg, None);
        let mut batched = Engine::new(&cfg, None);
        let mut m = Machine::new(&img);
        let mut replay = Vec::new();
        let ident = |a: Addr| a;
        for _ in 0..72 {
            let info = m.step().unwrap().unwrap();
            replay.push(ReplayInst {
                pc: info.pc,
                last: info.pc + info.len as Addr - 1,
                extra: Engine::exec_extra(&info.inst),
            });
            stepped.step(&info, info.pc, &ident, None);
        }
        batched.replay_block(&replay);

        let mut wa = Writer::with_magic(*b"VCFRTEST");
        stepped.save(&mut wa);
        let mut wb = Writer::with_magic(*b"VCFRTEST");
        batched.save(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
        assert_eq!(batched.instructions, 72);
        assert_eq!(batched.cur_pc, stepped.cur_pc);
    }

    #[test]
    fn baseline_reaches_high_ipc_on_a_hot_loop() {
        let img = workload();
        let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000_000).unwrap();
        assert_eq!(out.outcome.output, vec![40 * 120 * 6]);
        let ipc = out.stats.ipc();
        assert!(ipc > 0.7, "baseline IPC {ipc} too low");
        assert!(out.stats.il1.miss_rate() < 0.05, "il1 {}", out.stats.il1.miss_rate());
    }

    #[test]
    fn naive_ilr_destroys_fetch_locality() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let base = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000_000).unwrap();
        let naive = simulate(Mode::NaiveIlr(&rp), &SimConfig::default(), 1_000_000).unwrap();
        // Same architectural result.
        assert_eq!(naive.outcome.output, base.outcome.output);
        // Dramatically worse IL1 behaviour and IPC.
        assert!(
            naive.stats.il1.miss_rate() > 4.0 * base.stats.il1.miss_rate().max(1e-6),
            "naive {} vs base {}",
            naive.stats.il1.miss_rate(),
            base.stats.il1.miss_rate()
        );
        assert!(naive.stats.ipc() < base.stats.ipc());
    }

    #[test]
    fn vcfr_preserves_locality_and_ipc() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        let base = simulate(Mode::Baseline(&img), &cfg, 1_000_000).unwrap();
        let naive = simulate(Mode::NaiveIlr(&rp), &cfg, 1_000_000).unwrap();
        let vcfr = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            1_000_000,
        )
        .unwrap();
        assert_eq!(vcfr.outcome.output, base.outcome.output);
        // VCFR keeps the IL1 behaviour of the baseline ...
        assert!(vcfr.stats.il1.miss_rate() < 2.0 * base.stats.il1.miss_rate().max(1e-4));
        // ... and sits between baseline and naive in IPC, close to base.
        // (This microbench has 120 uniformly hot call sites — far harsher
        // on the DRC than SPEC-like code — so the bound is loose here;
        // the workload-level experiments assert the ~2% paper bound.)
        assert!(vcfr.stats.ipc() > naive.stats.ipc());
        assert!(vcfr.stats.ipc() > 0.8 * base.stats.ipc());
        // The DRC actually worked.
        let drc = vcfr.stats.drc.expect("vcfr mode records DRC stats");
        assert!(drc.lookups > 0);
    }

    #[test]
    fn drc_size_monotonicity() {
        // A call-heavy workload with many distinct sites.
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 300);
        let top = a.here();
        for i in 0..40 {
            a.call_named(&format!("f{i}"));
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        for i in 0..40 {
            a.func(&format!("f{i}"));
            a.alu_ri(AluOp::Add, Reg::Rax, 1);
            a.ret();
        }
        let img = a.finish().unwrap();
        let rp = randomize(&img, &RandomizeConfig::with_seed(2)).unwrap();
        let cfg = SimConfig::default();
        let small = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(16) },
            &cfg,
            1_000_000,
        )
        .unwrap();
        let large = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(512) },
            &cfg,
            1_000_000,
        )
        .unwrap();
        let ms = small.stats.drc.unwrap().miss_rate();
        let ml = large.stats.drc.unwrap().miss_rate();
        assert!(ms > ml, "16-entry miss rate {ms} should exceed 512-entry {ml}");
        assert!(large.stats.ipc() >= small.stats.ipc());
    }

    #[test]
    fn truncation_at_max_insts() {
        let img = workload();
        let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 100).unwrap();
        assert_eq!(out.stats.instructions, 100);
    }

    #[test]
    fn branch_predictor_learns_the_loop() {
        // A long-running tight loop: the single conditional branch must
        // become near-perfectly predicted.
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 20_000);
        let top = a.here();
        a.call_named("leaf");
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.func("leaf");
        a.ret();
        let img = a.finish().unwrap();
        let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000_000).unwrap();
        assert!(out.stats.branch.mispredict_rate() < 0.01);
        assert!(out.stats.branch.ras_mispredictions < 10);
    }

    #[test]
    fn sampled_simulation_partitions_the_run() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 1_000_000, 10_000)
                .unwrap();
        assert!(!samples.is_empty());
        let total_insts: u64 = samples.iter().map(|s| s.instructions).sum();
        assert_eq!(total_insts, out.stats.instructions);
        let total_cycles: u64 = samples.iter().map(|s| s.cycles).sum();
        // Interval cycles tile the run (up to the max(fetch, backend)
        // slack in the final snapshot).
        assert!(total_cycles <= out.stats.cycles + samples.len() as u64);
        for s in &samples {
            assert!(s.ipc > 0.0 && s.ipc <= 1.0 + 1e-9);
            assert!((0.0..=1.0).contains(&s.il1_miss_rate));
        }
    }

    #[test]
    fn sampling_interval_of_one_yields_one_sample_per_instruction() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 500, 1).unwrap();
        assert_eq!(samples.len() as u64, out.stats.instructions);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.first_inst, i as u64);
            assert_eq!(s.instructions, 1);
        }
        // Interval 0 clamps to 1 rather than dividing by zero.
        let (_, zero) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 500, 0).unwrap();
        assert_eq!(zero.len(), samples.len());
    }

    #[test]
    fn sampling_interval_longer_than_the_run_yields_one_final_sample() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 1_000, u64::MAX)
                .unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].first_inst, 0);
        assert_eq!(samples[0].instructions, out.stats.instructions);
    }

    #[test]
    fn last_partial_interval_is_flushed_and_samples_tile_the_run() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 1_000, 300).unwrap();
        assert_eq!(out.stats.instructions, 1_000, "workload outlives the window");
        let lens: Vec<u64> = samples.iter().map(|s| s.instructions).collect();
        assert_eq!(lens, vec![300, 300, 300, 100], "three full intervals + the partial tail");
        // Intervals are contiguous and partition the run exactly.
        let mut next = 0;
        for s in &samples {
            assert_eq!(s.first_inst, next);
            next += s.instructions;
        }
        assert_eq!(next, out.stats.instructions);
    }

    #[test]
    fn exec_fault_propagates_with_trace() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.mov_ri(Reg::Rbx, 0);
        a.alu_rr(AluOp::Div, Reg::Rax, Reg::Rbx);
        a.halt();
        let img = a.finish().unwrap();
        let err = simulate(Mode::Baseline(&img), &SimConfig::default(), 100).unwrap_err();
        let SimError::Exec { cause, trace } = &err else {
            panic!("expected an architectural fault, got {err:?}");
        };
        assert!(matches!(cause, ExecError::DivideByZero { .. }));
        // The two movs committed before the fault; their events are in
        // the post-mortem ring and in the rendered error.
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|e| e.kind == TraceEventKind::Commit));
        let shown = err.to_string();
        assert!(shown.contains("architectural fault"));
        assert!(shown.contains("pipeline events"));
        assert!(shown.contains("commit"));
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.mov_ri(Reg::Rbx, 0);
        a.alu_rr(AluOp::Div, Reg::Rax, Reg::Rbx);
        a.halt();
        let img = a.finish().unwrap();
        let cfg = SimConfig { trace_events: 0, ..SimConfig::default() };
        let err = simulate(Mode::Baseline(&img), &cfg, 100).unwrap_err();
        let SimError::Exec { trace, .. } = &err else {
            panic!("expected an architectural fault, got {err:?}");
        };
        assert!(trace.is_empty());
        assert!(!err.to_string().contains("pipeline events"));
    }

    #[test]
    fn cycle_accounting_audit_passes_in_every_mode() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        for (name, out) in [
            ("base", simulate(Mode::Baseline(&img), &cfg, 200_000).unwrap()),
            ("naive", simulate(Mode::NaiveIlr(&rp), &cfg, 200_000).unwrap()),
            (
                "vcfr",
                simulate(
                    Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                    &cfg,
                    200_000,
                )
                .unwrap(),
            ),
        ] {
            let report = out.stats.accounting().audit();
            assert!(report.passed(), "{name}: {:?}", report.failures);
        }
    }

    #[test]
    fn rerand_epochs_swap_layouts_without_changing_the_output() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        let still = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            300_000,
        )
        .unwrap();
        // The microbench commits ~38k instructions; an 8k epoch gives
        // several swaps before the run ends.
        let ecfg = SimConfig { rerand_epoch: Some(8_000), ..cfg };
        let swapped = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &ecfg,
            300_000,
        )
        .unwrap();
        // Same architectural result; the swaps only cost time.
        assert_eq!(swapped.outcome.output, still.outcome.output);
        assert!(swapped.stats.rerand_epochs >= 3, "epochs {}", swapped.stats.rerand_epochs);
        assert!(swapped.stats.rerand_stall_cycles > 0);
        assert!(swapped.stats.cycles > still.stats.cycles, "swaps are not free");
        // The pause is visible and the identities still hold.
        let report = swapped.stats.accounting().audit();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn rerand_epoch_runs_are_deterministic() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(3)).unwrap();
        let cfg = SimConfig { rerand_epoch: Some(9_000), ..SimConfig::default() };
        let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
        let a = simulate(mode(), &cfg, 200_000).unwrap();
        let b = simulate(mode(), &cfg, 200_000).unwrap();
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.rerand_stall_cycles, b.stats.rerand_stall_cycles);
        assert_eq!(a.stats.rerand_epochs, b.stats.rerand_epochs);
    }

    #[test]
    fn faulted_runs_are_deterministic_and_counterfactual() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        // Schedule within the run's ~38k committed instructions so every
        // fault actually injects.
        let plan = FaultPlan::generate(2015, 48, 30_000);
        let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) };
        let clean = simulate(mode(), &cfg, 150_000).unwrap();
        let a = simulate_faulted(mode(), &cfg, 150_000, &plan).unwrap();
        let b = simulate_faulted(mode(), &cfg, 150_000, &plan).unwrap();
        // Injection never corrupts the architectural run ...
        assert_eq!(a.sim.outcome.output, clean.outcome.output);
        // ... and the whole faulted run is reproducible, records and all.
        assert_eq!(a.records, b.records);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.sim.stats.cycles, b.sim.stats.cycles);
        assert_eq!(a.faults.injected, 48);
        assert_eq!(a.records.len(), 48);
        // Recovery has a price: detected faults slow the run down.
        if a.faults.detected() > 0 {
            assert!(a.sim.stats.cycles >= clean.stats.cycles);
        }
        // The timing stays auditable under injection.
        let report = a.sim.stats.accounting().audit();
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn vcfr_detects_more_faults_than_the_baseline() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        let plan = FaultPlan::generate(2015, 64, 30_000);
        let base = simulate_faulted(Mode::Baseline(&img), &cfg, 150_000, &plan).unwrap();
        let vcfr = simulate_faulted(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            150_000,
            &plan,
        )
        .unwrap();
        assert_eq!(base.faults.injected, vcfr.faults.injected);
        // The mediation layer is exactly the hardware that notices
        // corrupted control-flow state: coverage must improve.
        assert!(
            vcfr.faults.coverage() > base.faults.coverage(),
            "vcfr {} vs base {}",
            vcfr.faults.coverage(),
            base.faults.coverage()
        );
        assert!(vcfr.faults.detected() > base.faults.detected());
        // Baseline masks every flip aimed at hardware it doesn't have.
        assert_eq!(base.faults.detected_parity, 0);
        assert_eq!(base.faults.detected_translation, 0);
        assert_eq!(base.faults.detected_visibility, 0);
    }

    #[test]
    fn sticky_table_faults_trigger_emergency_rerand_under_recover() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        let plan = FaultPlan {
            faults: vec![ScheduledFault {
                at_inst: 500,
                target: FaultTarget::TableSlot,
                bit: 3,
                lane: 9,
                persistence: FaultPersistence::Sticky,
            }],
            policy: ContainmentPolicy::Recover,
        };
        let out = simulate_faulted(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            50_000,
            &plan,
        )
        .unwrap();
        assert_eq!(out.faults.contained, 1);
        assert_eq!(out.faults.emergency_rerands, 1);
        assert_eq!(out.sim.stats.rerand_epochs, 1, "the repair is an epoch swap");
        assert!(out.sim.stats.rerand_stall_cycles > 0);
        assert_eq!(out.records[0].outcome, FaultOutcome::Contained);
    }

    #[test]
    fn sticky_table_faults_halt_under_the_halt_policy() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        let plan = FaultPlan {
            faults: vec![ScheduledFault {
                at_inst: 500,
                target: FaultTarget::TableSlot,
                bit: 3,
                lane: 9,
                persistence: FaultPersistence::Sticky,
            }],
            policy: ContainmentPolicy::Halt,
        };
        let err = simulate_faulted(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            50_000,
            &plan,
        )
        .unwrap_err();
        match &err {
            SimError::Fault { at_inst, target, trace } => {
                assert_eq!(*at_inst, 500);
                assert_eq!(*target, FaultTarget::TableSlot);
                assert!(!trace.is_empty(), "the post-mortem ring is attached");
            }
            other => panic!("expected SimError::Fault, got {other:?}"),
        }
        let shown = err.to_string();
        assert!(shown.contains("uncorrectable sticky fault"));
        assert!(shown.contains("table-slot"));
    }
}
