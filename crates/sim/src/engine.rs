//! The trace-driven cycle engine: an in-order single-issue pipeline
//! (fetch → decode → alloc → exec → commit) timed over the architectural
//! instruction stream of the functional interpreter.
//!
//! Three execution modes reproduce the paper's three machines:
//!
//! * [`Mode::Baseline`] — the original binary, no randomization;
//! * [`Mode::NaiveIlr`] — straightforward hardware ILR: instructions are
//!   fetched from their *scattered* randomized addresses (the address
//!   mapping itself is free, as the paper assumes), destroying fetch
//!   locality;
//! * [`Mode::Vcfr`] — virtual control flow randomization: fetch stays in
//!   the original space, and a [`Drc`] translates at control transfers,
//!   calls, returns and marked stack loads, walking the in-memory tables
//!   through the unified L2 on a miss.

use crate::config::{DrcBacking, SimConfig};
use crate::flatmap::FlatMap;
use crate::hierarchy::MemoryHierarchy;
use crate::predict::{BranchStats, Btb, Gshare, Ras};
use crate::stats::SimStats;
use std::collections::VecDeque;
use std::fmt;
use vcfr_core::{Drc, DrcConfig, OrigAddr, RandAddr, StackBitmap};
use vcfr_isa::{Addr, ControlFlow, ExecError, Image, Inst, Machine, RunOutcome, StepInfo};
use vcfr_obs::TraceRing;
use vcfr_rewriter::RandomizedProgram;

/// Which machine to simulate.
#[derive(Clone, Copy, Debug)]
pub enum Mode<'a> {
    /// The original binary with no randomization.
    Baseline(&'a Image),
    /// Straightforward hardware ILR over the scattered layout.
    NaiveIlr(&'a RandomizedProgram),
    /// Virtual control flow randomization with a DRC of the given
    /// geometry.
    Vcfr {
        /// The randomized program (layout + tables).
        program: &'a RandomizedProgram,
        /// DRC geometry.
        drc: DrcConfig,
    },
}

impl Mode<'_> {
    /// The image the architecture executes (always the original
    /// semantics).
    pub(crate) fn image_ref(&self) -> &Image {
        match self {
            Mode::Baseline(img) => img,
            Mode::NaiveIlr(rp) | Mode::Vcfr { program: rp, .. } => &rp.original,
        }
    }
}

/// Extra execution latency of long-running operations, shared by the
/// in-order and out-of-order cores.
pub(crate) fn exec_extra_cycles(inst: &Inst) -> u64 {
    Engine::exec_extra(inst)
}

/// One entry in the post-mortem trace ring: something the pipeline did
/// at a point in simulated time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Committed-instruction sequence number (1-based).
    pub seq: u64,
    /// Architectural PC of the instruction the event belongs to.
    pub pc: Addr,
    /// Simulated cycle the event is anchored to.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kinds of pipeline events the trace ring records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The instruction left the timing model.
    Commit,
    /// Instruction fetch stalled (IL1 miss, iTLB walk).
    FetchStall {
        /// Stall cycles.
        cycles: u64,
    },
    /// The front end was redirected (misprediction, BTB miss,
    /// DRC-miss redirect).
    Redirect {
        /// Cycle fetch resumes at.
        resume_at: u64,
    },
    /// A DRC miss walked the in-memory translation tables.
    DrcWalk {
        /// Walk latency in cycles.
        cycles: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} pc={:#x} cycle={} ", self.seq, self.pc, self.cycle)?;
        match self.kind {
            TraceEventKind::Commit => write!(f, "commit"),
            TraceEventKind::FetchStall { cycles } => write!(f, "fetch stall {cycles}"),
            TraceEventKind::Redirect { resume_at } => {
                write!(f, "redirect, fetch resumes at {resume_at}")
            }
            TraceEventKind::DrcWalk { cycles } => write!(f, "drc walk {cycles}"),
        }
    }
}

/// A simulation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// The program faulted architecturally.
    Exec {
        /// The architectural fault.
        cause: ExecError,
        /// The last pipeline events before the fault (contents of the
        /// trace ring, oldest first; empty when tracing is disabled or
        /// the fault did not pass through the timing engine).
        trace: Vec<TraceEvent>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec { cause, trace } => {
                write!(f, "architectural fault: {cause}")?;
                if !trace.is_empty() {
                    write!(f, "\nlast {} pipeline events:", trace.len())?;
                    for e in trace {
                        write!(f, "\n  {e}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec { cause: e, trace: Vec::new() }
    }
}

/// The result of a simulation: timing statistics plus the architectural
/// outcome (output values, stop reason).
#[derive(Clone, Debug)]
pub struct SimOutput {
    /// Timing and event counters.
    pub stats: SimStats,
    /// The functional result.
    pub outcome: RunOutcome,
}

/// Pipeline depth between fetch completion and execute.
const DECODE_DEPTH: u64 = 3;

struct Engine<'a> {
    cfg: &'a SimConfig,
    hier: MemoryHierarchy,
    gshare: Gshare,
    btb: Btb,
    ras: Ras,
    bstats: BranchStats,
    fetch_time: u64,
    backend_time: u64,
    redirect_at: u64,
    window_line: Option<Addr>,
    iq: VecDeque<u64>,
    drc: Option<Drc>,
    bitmap: StackBitmap,
    stack_rand: FlatMap,
    fetch_stall: u64,
    load_stall: u64,
    redirect_stall: u64,
    drc_walk: u64,
    exec_extra: u64,
    instructions: u64,
    trace: TraceRing<TraceEvent>,
    /// PC of the instruction currently stepping (for events recorded in
    /// helpers that don't see `StepInfo`).
    cur_pc: Addr,
}

/// Records one trace event. A free function so call sites can borrow the
/// ring alongside other `Engine` fields (e.g. while the DRC is borrowed).
#[inline]
fn trace_push(trace: &mut TraceRing<TraceEvent>, seq: u64, pc: Addr, cycle: u64, kind: TraceEventKind) {
    trace.push(TraceEvent { seq, pc, cycle, kind });
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a SimConfig, drc: Option<DrcConfig>) -> Engine<'a> {
        Engine {
            cfg,
            hier: MemoryHierarchy::new(cfg),
            gshare: Gshare::new(cfg.gshare),
            btb: Btb::new(cfg.btb),
            ras: Ras::new(cfg.ras_entries),
            bstats: BranchStats::default(),
            fetch_time: 0,
            backend_time: 0,
            redirect_at: 0,
            window_line: None,
            iq: VecDeque::new(),
            drc: drc.map(Drc::new),
            bitmap: StackBitmap::new(),
            stack_rand: FlatMap::new(),
            fetch_stall: 0,
            load_stall: 0,
            redirect_stall: 0,
            drc_walk: 0,
            exec_extra: 0,
            instructions: 0,
            trace: TraceRing::new(cfg.trace_events),
            cur_pc: 0,
        }
    }

    /// Packages an architectural fault with the post-mortem trace.
    fn fault(&self, cause: ExecError) -> SimError {
        SimError::Exec { cause, trace: self.trace.to_vec() }
    }

    fn exec_extra(inst: &Inst) -> u64 {
        use vcfr_isa::AluOp::*;
        match inst {
            Inst::AluRR { op, .. } | Inst::AluRI { op, .. } => match op {
                Mul => 2,
                Div | Rem => 12,
                _ => 0,
            },
            _ => 0,
        }
    }

    fn redirect(&mut self, at: u64) {
        if at > self.redirect_at {
            self.redirect_stall += at - self.redirect_at.max(self.fetch_time);
            self.redirect_at = at;
            trace_push(
                &mut self.trace,
                self.instructions,
                self.cur_pc,
                at,
                TraceEventKind::Redirect { resume_at: at },
            );
        }
    }

    /// One instruction through the timing model. `fetch_pc` is the
    /// address instruction bytes are fetched from (mode-dependent);
    /// `key` maps architectural addresses into predictor space.
    fn step(
        &mut self,
        info: &StepInfo,
        fetch_pc: Addr,
        key: &impl Fn(Addr) -> Addr,
        vcfr: Option<&RandomizedProgram>,
    ) {
        self.instructions += 1;
        self.cur_pc = info.pc;
        let cfg = self.cfg;

        // Context-switch model: periodically invalidate the DRC (other
        // processes own it in between).
        if let (Some(interval), Some(drc)) = (cfg.drc_flush_interval, self.drc.as_mut()) {
            if interval > 0 && self.instructions.is_multiple_of(interval) {
                drc.flush();
            }
        }

        // ---- fetch ------------------------------------------------------
        let mut start = self.fetch_time.max(self.redirect_at);
        if self.iq.len() >= cfg.iq_entries {
            if let Some(oldest) = self.iq.pop_front() {
                start = start.max(oldest);
            }
        }
        let mut stall = 0;
        let line_bytes = cfg.il1.line_bytes as Addr;
        let first = fetch_pc & !(line_bytes - 1);
        let last = (fetch_pc + info.len as Addr - 1) & !(line_bytes - 1);
        let mut line = first;
        loop {
            if self.window_line != Some(line) {
                stall += self.hier.fetch_line(line, start);
                self.window_line = Some(line);
            }
            if line == last {
                break;
            }
            line += line_bytes;
        }
        let fetch_done = start + 1 + stall;
        self.fetch_stall += stall;
        self.fetch_time = fetch_done;
        if stall > 0 {
            trace_push(
                &mut self.trace,
                self.instructions,
                info.pc,
                fetch_done,
                TraceEventKind::FetchStall { cycles: stall },
            );
        }

        // ---- backend ----------------------------------------------------
        let exec_start = (self.backend_time + 1).max(fetch_done + DECODE_DEPTH);
        self.iq.push_back(exec_start);

        let extra = Engine::exec_extra(&info.inst);
        self.exec_extra += extra;
        let mut exec_end = exec_start + extra;
        for acc in info.mem_accesses() {
            let lat = self.hier.data_access(acc.addr, acc.write, exec_start);
            self.load_stall += lat;
            exec_end += lat;
        }

        // ---- VCFR mediation layer ----------------------------------------
        if let (Some(rp), Some(_)) = (vcfr, self.drc.as_ref()) {
            self.vcfr_events(info, rp, exec_start, &mut exec_end);
        }

        // ---- control flow ------------------------------------------------
        if let Some(cf) = info.control {
            self.control(info, cf, key, vcfr, fetch_done, exec_end);
            // A taken transfer resets the byte queue: the fetch unit
            // re-fetches the target line even when it is the line it was
            // already streaming (XIOSim's byteQ behaviour).
            if cf.taken_target().is_some() {
                self.window_line = None;
            }
        }

        self.backend_time = exec_end;
        trace_push(&mut self.trace, self.instructions, info.pc, exec_end, TraceEventKind::Commit);
    }

    fn vcfr_events(
        &mut self,
        info: &StepInfo,
        rp: &RandomizedProgram,
        exec_start: u64,
        exec_end: &mut u64,
    ) {
        let drc = self.drc.as_mut().expect("vcfr mode has a DRC");

        // Stack-slot hygiene and marked-slot loads (§IV-C): any read of a
        // slot holding a randomized return address is transparently
        // de-randomized (one DRC lookup); any unrelated overwrite clears
        // the mark.
        for acc in info.mem_accesses() {
            if acc.write {
                let is_call_push = matches!(
                    info.control,
                    Some(ControlFlow::Call { .. }) | Some(ControlFlow::IndirectCall { .. })
                );
                if !is_call_push && self.bitmap.is_marked(acc.addr) {
                    self.bitmap.clear(acc.addr);
                    self.stack_rand.remove(acc.addr);
                }
            } else if self.bitmap.is_marked(acc.addr)
                && !matches!(info.control, Some(ControlFlow::Return { .. }))
            {
                if let Some(v) = self.stack_rand.get(acc.addr) {
                    if let Ok(l) = drc.derandomize(RandAddr(v), &rp.table) {
                        if !l.hit {
                            let walk = match self.cfg.drc_backing {
                                DrcBacking::SharedL2 => {
                                    self.hier.table_walk(l.entry_addr, exec_start)
                                }
                                DrcBacking::Dedicated { latency } => latency,
                            };
                            self.drc_walk += walk;
                            *exec_end += walk;
                            if walk > 0 {
                                trace_push(
                                    &mut self.trace,
                                    self.instructions,
                                    self.cur_pc,
                                    exec_start,
                                    TraceEventKind::DrcWalk { cycles: walk },
                                );
                            }
                        }
                    }
                }
            }
        }

        match info.control {
            // A call pushes the *randomized* return address: one
            // randomization lookup, plus bitmap marking of the slot. The
            // walk on a miss happens in the store's shadow (the push need
            // not retire before younger instructions execute on an
            // in-order store buffer), so it contributes table traffic but
            // no stall.
            Some(ControlFlow::Call { ret_addr, .. })
            | Some(ControlFlow::IndirectCall { ret_addr, .. }) => {
                if let Ok(l) = drc.randomize(OrigAddr(ret_addr), &rp.table) {
                    if !l.hit {
                        let walk = match self.cfg.drc_backing {
                            DrcBacking::SharedL2 => {
                                self.hier.table_walk(l.entry_addr, exec_start)
                            }
                            DrcBacking::Dedicated { latency } => latency,
                        };
                        self.drc_walk += walk;
                        if walk > 0 {
                            trace_push(
                                &mut self.trace,
                                self.instructions,
                                self.cur_pc,
                                exec_start,
                                TraceEventKind::DrcWalk { cycles: walk },
                            );
                        }
                    }
                    if let Some(push) = info.mem_accesses().find(|a| a.write) {
                        self.bitmap.mark(push.addr);
                        self.stack_rand.insert(push.addr, l.translated);
                    }
                }
            }
            // Return-address bookkeeping; the de-randomization of the
            // popped target happens in the control-flow handler, where
            // prediction correctness decides whether the walk is on the
            // critical path.
            Some(ControlFlow::Return { .. }) => {
                if let Some(pop) = info.mem_accesses().next() {
                    self.bitmap.clear(pop.addr);
                    self.stack_rand.remove(pop.addr);
                }
            }
            _ => {}
        }
    }

    /// De-randomizes a transfer target through the DRC; returns the walk
    /// latency on a miss (0 on a hit). The *caller* decides whether that
    /// latency lands on the critical path: when the orig-space predictors
    /// were right, fetch already streams down the correct path and the
    /// walk completes in its shadow; only a redirect must wait for it.
    fn vcfr_derand(&mut self, target: Addr, rp: &RandomizedProgram, now: u64) -> u64 {
        let drc = self.drc.as_mut().expect("vcfr mode has a DRC");
        let rand = rp.rand_or_orig(target);
        if let Ok(l) = drc.derandomize(RandAddr(rand), &rp.table) {
            if !l.hit {
                let walk = match self.cfg.drc_backing {
                    DrcBacking::SharedL2 => self.hier.table_walk(l.entry_addr, now),
                    DrcBacking::Dedicated { latency } => latency,
                };
                self.drc_walk += walk;
                if walk > 0 {
                    trace_push(
                        &mut self.trace,
                        self.instructions,
                        self.cur_pc,
                        now,
                        TraceEventKind::DrcWalk { cycles: walk },
                    );
                }
                return walk;
            }
        }
        0
    }

    fn control(
        &mut self,
        info: &StepInfo,
        cf: ControlFlow,
        key: &impl Fn(Addr) -> Addr,
        vcfr: Option<&RandomizedProgram>,
        fetch_done: u64,
        exec_end: u64,
    ) {
        let cfg = self.cfg;
        let kpc = key(info.pc);
        match cf {
            ControlFlow::Branch { taken, target } => {
                self.bstats.predictions += 1;
                let predicted = self.gshare.predict(kpc);
                self.gshare.update(kpc, taken);
                if predicted != taken {
                    self.bstats.mispredictions += 1;
                    // A mispredicted *taken* branch redirects to a
                    // randomized target: the redirect waits for the DRC.
                    let walk = match (taken, vcfr) {
                        (true, Some(rp)) => self.vcfr_derand(target, rp, exec_end),
                        _ => 0,
                    };
                    self.redirect(exec_end + cfg.mispredict_penalty + walk);
                } else if taken {
                    self.taken_target_lookup(kpc, key(target), target, vcfr, fetch_done, exec_end);
                }
            }
            ControlFlow::Jump { target } => {
                self.taken_target_lookup(kpc, key(target), target, vcfr, fetch_done, exec_end);
            }
            ControlFlow::Call { target, ret_addr } => {
                self.taken_target_lookup(kpc, key(target), target, vcfr, fetch_done, exec_end);
                self.ras.push(key(ret_addr));
            }
            ControlFlow::IndirectCall { target, ret_addr } => {
                self.indirect_target_lookup(kpc, key(target), target, vcfr, exec_end);
                self.ras.push(key(ret_addr));
            }
            ControlFlow::IndirectJump { target } => {
                self.indirect_target_lookup(kpc, key(target), target, vcfr, exec_end);
            }
            ControlFlow::Return { target } => {
                self.bstats.ras_predictions += 1;
                // The popped randomized return address always consults the
                // DRC to recover the orig-space fetch address; a correct
                // RAS prediction hides the walk.
                let walk = match vcfr {
                    Some(rp) => self.vcfr_derand(target, rp, exec_end),
                    None => 0,
                };
                match self.ras.pop() {
                    Some(p) if p == key(target) => {}
                    _ => {
                        self.bstats.ras_mispredictions += 1;
                        self.redirect(exec_end + cfg.mispredict_penalty + walk);
                    }
                }
            }
        }
    }

    fn taken_target_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        fetch_done: u64,
        exec_end: u64,
    ) {
        self.bstats.btb_lookups += 1;
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                // In VCFR mode a BTB miss means the cached translation is
                // absent too: the redirect additionally waits for the DRC.
                let walk = match vcfr {
                    Some(rp) => self.vcfr_derand(target, rp, exec_end),
                    None => 0,
                };
                self.redirect(fetch_done + self.cfg.btb_miss_penalty + walk);
                self.btb.update(kpc, ktarget);
            }
        }
    }

    fn indirect_target_lookup(
        &mut self,
        kpc: Addr,
        ktarget: Addr,
        target: Addr,
        vcfr: Option<&RandomizedProgram>,
        exec_end: u64,
    ) {
        self.bstats.btb_lookups += 1;
        // Indirect targets live in the randomized space; every resolution
        // consults the DRC (hidden when the BTB was right).
        let walk = match vcfr {
            Some(rp) => self.vcfr_derand(target, rp, exec_end),
            None => 0,
        };
        match self.btb.lookup(kpc) {
            Some(t) if t == ktarget => {}
            found => {
                if found.is_none() {
                    self.bstats.btb_misses += 1;
                } else {
                    self.bstats.btb_wrong_target += 1;
                }
                self.redirect(exec_end + self.cfg.mispredict_penalty + walk);
                self.btb.update(kpc, ktarget);
            }
        }
    }

    fn stats_now(&self) -> SimStats {
        SimStats {
            instructions: self.instructions,
            cycles: self.backend_time.max(self.fetch_time),
            il1: self.hier.il1.stats(),
            dl1: self.hier.dl1.stats(),
            l2: self.hier.l2.stats(),
            itlb: self.hier.itlb.stats(),
            dtlb: self.hier.dtlb.stats(),
            dram: self.hier.dram.stats(),
            branch: self.bstats,
            drc: self.drc.as_ref().map(|d| d.stats()),
            drc_walk_cycles: self.drc_walk,
            fetch_stall_cycles: self.fetch_stall,
            load_stall_cycles: self.load_stall,
            redirect_stall_cycles: self.redirect_stall,
            l2_reads_from_l1: self.hier.l2_reads_from_l1,
            exec_extra_cycles: self.exec_extra,
        }
    }

    fn into_stats(self) -> SimStats {
        self.stats_now()
    }
}

/// One interval of a sampled simulation (see [`simulate_sampled`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IntervalSample {
    /// Index of the first instruction in the interval.
    pub first_inst: u64,
    /// Instructions in the interval.
    pub instructions: u64,
    /// Cycles the interval took.
    pub cycles: u64,
    /// Interval IPC.
    pub ipc: f64,
    /// Interval IL1 miss rate.
    pub il1_miss_rate: f64,
    /// Interval DRC miss rate (0 outside VCFR mode).
    pub drc_miss_rate: f64,
}

/// Runs one program to completion (or `max_insts`) under `mode`.
///
/// # Errors
///
/// Returns [`SimError::Exec`] when the program faults; reaching
/// `max_insts` is *not* an error — the run is truncated, mirroring the
/// paper's 500-million-instruction windows.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// use vcfr_sim::{simulate, Mode, SimConfig};
///
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rax, 7);
/// a.emit_output(Reg::Rax);
/// a.halt();
/// let img = a.finish().unwrap();
/// let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000).unwrap();
/// assert_eq!(out.outcome.output, vec![7]);
/// assert!(out.stats.cycles > 0);
/// ```
pub fn simulate(mode: Mode<'_>, cfg: &SimConfig, max_insts: u64) -> Result<SimOutput, SimError> {
    let (out, _) = simulate_inner(mode, cfg, max_insts, None)?;
    Ok(out)
}

/// Like [`simulate`], but additionally returns one [`IntervalSample`] per
/// `interval` committed instructions — the phase-behaviour view
/// (per-interval IPC, IL1 and DRC miss rates).
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_sampled(
    mode: Mode<'_>,
    cfg: &SimConfig,
    max_insts: u64,
    interval: u64,
) -> Result<(SimOutput, Vec<IntervalSample>), SimError> {
    let (out, samples) = simulate_inner(mode, cfg, max_insts, Some(interval.max(1)))?;
    Ok((out, samples))
}

fn simulate_inner(mode: Mode<'_>, cfg: &SimConfig, max_insts: u64, sample_every: Option<u64>) -> Result<(SimOutput, Vec<IntervalSample>), SimError> {
    let image = mode.image_ref();
    let mut machine = Machine::new(image);

    let drc_cfg = match &mode {
        Mode::Vcfr { drc, .. } => Some(*drc),
        _ => None,
    };
    let mut engine = Engine::new(cfg, drc_cfg);

    // Hide the translation-table pages from user space (TLB
    // page-visibility bit).
    if let Mode::Vcfr { program, .. } = &mode {
        let base = program.table.base();
        for page in 0..64u32 {
            engine.hier.dtlb.set_invisible(base + page * 4096);
        }
    }

    let identity = |a: Addr| a;
    let mut samples = Vec::new();
    let mut last = engine.stats_now();
    let mut take_sample = |engine: &Engine<'_>, last: &mut SimStats| {
        let now = engine.stats_now();
        let insts = now.instructions - last.instructions;
        if insts == 0 {
            return;
        }
        let cycles = now.cycles.saturating_sub(last.cycles).max(1);
        let il1_acc = (now.il1.accesses - last.il1.accesses).max(1);
        let il1_miss = now.il1.misses - last.il1.misses;
        let (drc_l, drc_m) = match (now.drc, last.drc) {
            (Some(n), Some(l)) => (n.lookups - l.lookups, n.misses - l.misses),
            _ => (0, 0),
        };
        samples.push(IntervalSample {
            first_inst: last.instructions,
            instructions: insts,
            cycles,
            ipc: insts as f64 / cycles as f64,
            il1_miss_rate: il1_miss as f64 / il1_acc as f64,
            drc_miss_rate: if drc_l == 0 { 0.0 } else { drc_m as f64 / drc_l as f64 },
        });
        *last = now;
    };
    // Next-threshold sampling: one compare per instruction instead of a
    // division (the sample check sits on the hot loop).
    let stride = sample_every.unwrap_or(0);
    let mut next_sample = sample_every.unwrap_or(u64::MAX);
    let outcome = loop {
        if engine.instructions >= max_insts {
            break RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().unwrap_or(vcfr_isa::StopReason::Halt),
            };
        }
        let Some(info) = machine.step().map_err(|e| engine.fault(e))? else {
            break RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().expect("stopped machine has a reason"),
            };
        };
        match &mode {
            Mode::Baseline(_) => engine.step(&info, info.pc, &identity, None),
            Mode::NaiveIlr(rp) => {
                let key = |a: Addr| rp.rand_or_orig(a);
                engine.step(&info, rp.rand_or_orig(info.pc), &key, None);
            }
            Mode::Vcfr { program, .. } => {
                engine.step(&info, info.pc, &identity, Some(program));
            }
        }
        if engine.instructions >= next_sample {
            take_sample(&engine, &mut last);
            next_sample += stride;
        }
    };
    if sample_every.is_some() {
        take_sample(&engine, &mut last);
    }

    Ok((SimOutput { stats: engine.into_stats(), outcome }, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm, Cond, Reg};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    /// A loop calling ~120 small functions per iteration: the hot code
    /// footprint (~10 KB) fits the 32 KB IL1 in the original layout but
    /// occupies ~1800 lines when scattered per instruction — exactly the
    /// regime in which naive hardware ILR thrashes.
    fn workload() -> Image {
        const FUNCS: usize = 120;
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 40);
        a.mov_ri(Reg::Rax, 0);
        let top = a.here();
        for i in 0..FUNCS {
            a.call_named(&format!("f{i}"));
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        for i in 0..FUNCS {
            a.func(&format!("f{i}"));
            for _ in 0..6 {
                a.alu_ri(AluOp::Add, Reg::Rax, 1);
            }
            a.ret();
        }
        a.finish().unwrap()
    }

    #[test]
    fn baseline_reaches_high_ipc_on_a_hot_loop() {
        let img = workload();
        let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000_000).unwrap();
        assert_eq!(out.outcome.output, vec![40 * 120 * 6]);
        let ipc = out.stats.ipc();
        assert!(ipc > 0.7, "baseline IPC {ipc} too low");
        assert!(out.stats.il1.miss_rate() < 0.05, "il1 {}", out.stats.il1.miss_rate());
    }

    #[test]
    fn naive_ilr_destroys_fetch_locality() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let base = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000_000).unwrap();
        let naive = simulate(Mode::NaiveIlr(&rp), &SimConfig::default(), 1_000_000).unwrap();
        // Same architectural result.
        assert_eq!(naive.outcome.output, base.outcome.output);
        // Dramatically worse IL1 behaviour and IPC.
        assert!(
            naive.stats.il1.miss_rate() > 4.0 * base.stats.il1.miss_rate().max(1e-6),
            "naive {} vs base {}",
            naive.stats.il1.miss_rate(),
            base.stats.il1.miss_rate()
        );
        assert!(naive.stats.ipc() < base.stats.ipc());
    }

    #[test]
    fn vcfr_preserves_locality_and_ipc() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        let base = simulate(Mode::Baseline(&img), &cfg, 1_000_000).unwrap();
        let naive = simulate(Mode::NaiveIlr(&rp), &cfg, 1_000_000).unwrap();
        let vcfr = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
            &cfg,
            1_000_000,
        )
        .unwrap();
        assert_eq!(vcfr.outcome.output, base.outcome.output);
        // VCFR keeps the IL1 behaviour of the baseline ...
        assert!(vcfr.stats.il1.miss_rate() < 2.0 * base.stats.il1.miss_rate().max(1e-4));
        // ... and sits between baseline and naive in IPC, close to base.
        // (This microbench has 120 uniformly hot call sites — far harsher
        // on the DRC than SPEC-like code — so the bound is loose here;
        // the workload-level experiments assert the ~2% paper bound.)
        assert!(vcfr.stats.ipc() > naive.stats.ipc());
        assert!(vcfr.stats.ipc() > 0.8 * base.stats.ipc());
        // The DRC actually worked.
        let drc = vcfr.stats.drc.expect("vcfr mode records DRC stats");
        assert!(drc.lookups > 0);
    }

    #[test]
    fn drc_size_monotonicity() {
        // A call-heavy workload with many distinct sites.
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 300);
        let top = a.here();
        for i in 0..40 {
            a.call_named(&format!("f{i}"));
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        for i in 0..40 {
            a.func(&format!("f{i}"));
            a.alu_ri(AluOp::Add, Reg::Rax, 1);
            a.ret();
        }
        let img = a.finish().unwrap();
        let rp = randomize(&img, &RandomizeConfig::with_seed(2)).unwrap();
        let cfg = SimConfig::default();
        let small = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(16) },
            &cfg,
            1_000_000,
        )
        .unwrap();
        let large = simulate(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(512) },
            &cfg,
            1_000_000,
        )
        .unwrap();
        let ms = small.stats.drc.unwrap().miss_rate();
        let ml = large.stats.drc.unwrap().miss_rate();
        assert!(ms > ml, "16-entry miss rate {ms} should exceed 512-entry {ml}");
        assert!(large.stats.ipc() >= small.stats.ipc());
    }

    #[test]
    fn truncation_at_max_insts() {
        let img = workload();
        let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 100).unwrap();
        assert_eq!(out.stats.instructions, 100);
    }

    #[test]
    fn branch_predictor_learns_the_loop() {
        // A long-running tight loop: the single conditional branch must
        // become near-perfectly predicted.
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 20_000);
        let top = a.here();
        a.call_named("leaf");
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.func("leaf");
        a.ret();
        let img = a.finish().unwrap();
        let out = simulate(Mode::Baseline(&img), &SimConfig::default(), 1_000_000).unwrap();
        assert!(out.stats.branch.mispredict_rate() < 0.01);
        assert!(out.stats.branch.ras_mispredictions < 10);
    }

    #[test]
    fn sampled_simulation_partitions_the_run() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 1_000_000, 10_000)
                .unwrap();
        assert!(!samples.is_empty());
        let total_insts: u64 = samples.iter().map(|s| s.instructions).sum();
        assert_eq!(total_insts, out.stats.instructions);
        let total_cycles: u64 = samples.iter().map(|s| s.cycles).sum();
        // Interval cycles tile the run (up to the max(fetch, backend)
        // slack in the final snapshot).
        assert!(total_cycles <= out.stats.cycles + samples.len() as u64);
        for s in &samples {
            assert!(s.ipc > 0.0 && s.ipc <= 1.0 + 1e-9);
            assert!((0.0..=1.0).contains(&s.il1_miss_rate));
        }
    }

    #[test]
    fn sampling_interval_of_one_yields_one_sample_per_instruction() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 500, 1).unwrap();
        assert_eq!(samples.len() as u64, out.stats.instructions);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.first_inst, i as u64);
            assert_eq!(s.instructions, 1);
        }
        // Interval 0 clamps to 1 rather than dividing by zero.
        let (_, zero) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 500, 0).unwrap();
        assert_eq!(zero.len(), samples.len());
    }

    #[test]
    fn sampling_interval_longer_than_the_run_yields_one_final_sample() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 1_000, u64::MAX)
                .unwrap();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].first_inst, 0);
        assert_eq!(samples[0].instructions, out.stats.instructions);
    }

    #[test]
    fn last_partial_interval_is_flushed_and_samples_tile_the_run() {
        let img = workload();
        let (out, samples) =
            simulate_sampled(Mode::Baseline(&img), &SimConfig::default(), 1_000, 300).unwrap();
        assert_eq!(out.stats.instructions, 1_000, "workload outlives the window");
        let lens: Vec<u64> = samples.iter().map(|s| s.instructions).collect();
        assert_eq!(lens, vec![300, 300, 300, 100], "three full intervals + the partial tail");
        // Intervals are contiguous and partition the run exactly.
        let mut next = 0;
        for s in &samples {
            assert_eq!(s.first_inst, next);
            next += s.instructions;
        }
        assert_eq!(next, out.stats.instructions);
    }

    #[test]
    fn exec_fault_propagates_with_trace() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.mov_ri(Reg::Rbx, 0);
        a.alu_rr(AluOp::Div, Reg::Rax, Reg::Rbx);
        a.halt();
        let img = a.finish().unwrap();
        let err = simulate(Mode::Baseline(&img), &SimConfig::default(), 100).unwrap_err();
        let SimError::Exec { cause, trace } = &err;
        assert!(matches!(cause, ExecError::DivideByZero { .. }));
        // The two movs committed before the fault; their events are in
        // the post-mortem ring and in the rendered error.
        assert!(!trace.is_empty());
        assert!(trace.iter().any(|e| e.kind == TraceEventKind::Commit));
        let shown = err.to_string();
        assert!(shown.contains("architectural fault"));
        assert!(shown.contains("pipeline events"));
        assert!(shown.contains("commit"));
    }

    #[test]
    fn tracing_can_be_disabled() {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rax, 1);
        a.mov_ri(Reg::Rbx, 0);
        a.alu_rr(AluOp::Div, Reg::Rax, Reg::Rbx);
        a.halt();
        let img = a.finish().unwrap();
        let cfg = SimConfig { trace_events: 0, ..SimConfig::default() };
        let err = simulate(Mode::Baseline(&img), &cfg, 100).unwrap_err();
        let SimError::Exec { trace, .. } = &err;
        assert!(trace.is_empty());
        assert!(!err.to_string().contains("pipeline events"));
    }

    #[test]
    fn cycle_accounting_audit_passes_in_every_mode() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig::default();
        for (name, out) in [
            ("base", simulate(Mode::Baseline(&img), &cfg, 200_000).unwrap()),
            ("naive", simulate(Mode::NaiveIlr(&rp), &cfg, 200_000).unwrap()),
            (
                "vcfr",
                simulate(
                    Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                    &cfg,
                    200_000,
                )
                .unwrap(),
            ),
        ] {
            let report = out.stats.accounting().audit();
            assert!(report.passed(), "{name}: {:?}", report.failures);
        }
    }
}
