//! A small open-addressed hash map from [`Addr`] keys to `u32` values.
//!
//! The cycle engine tracks the randomized return address held by each
//! marked stack slot. That map is consulted and mutated on the
//! per-instruction path, where a general `HashMap` pays a SipHash per
//! operation; this flat table instead uses a Fibonacci multiplicative
//! hash with linear probing and backward-shift deletion, so the common
//! case is one multiply and one probe.

use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::Addr;

/// Initial table capacity (power of two).
const MIN_CAP: usize = 16;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Slot {
    key: Addr,
    val: u32,
    used: bool,
}

const EMPTY: Slot = Slot { key: 0, val: 0, used: false };

/// An open-addressed `Addr → u32` map (linear probing, backward-shift
/// deletion).
///
/// # Example
///
/// ```
/// use vcfr_sim::FlatMap;
/// let mut m = FlatMap::new();
/// m.insert(0xeff8, 7);
/// assert_eq!(m.get(0xeff8), Some(7));
/// m.remove(0xeff8);
/// assert_eq!(m.get(0xeff8), None);
/// ```
#[derive(Clone, Debug)]
pub struct FlatMap {
    slots: Vec<Slot>,
    len: usize,
    /// `slots.len() - 1`; the table size is always a power of two.
    mask: usize,
}

impl Default for FlatMap {
    fn default() -> FlatMap {
        FlatMap::new()
    }
}

impl FlatMap {
    /// Creates an empty map.
    pub fn new() -> FlatMap {
        FlatMap { slots: vec![EMPTY; MIN_CAP], len: 0, mask: MIN_CAP - 1 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the entries in slot order. The order is a function
    /// of the insertion history only (no per-process hash seed), so it is
    /// stable across runs and hosts.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u32)> + '_ {
        self.slots.iter().filter(|s| s.used).map(|s| (s.key, s.val))
    }

    #[inline]
    fn home(&self, key: Addr) -> usize {
        // Fibonacci hashing: spreads consecutive (8-byte-strided) stack
        // addresses across the table.
        (key.wrapping_mul(0x9e37_79b9) as usize >> 16) & self.mask
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: Addr) -> Option<u32> {
        let mut at = self.home(key);
        loop {
            let s = self.slots[at];
            if !s.used {
                return None;
            }
            if s.key == key {
                return Some(s.val);
            }
            at = (at + 1) & self.mask;
        }
    }

    /// Inserts or replaces `key → val`.
    pub fn insert(&mut self, key: Addr, val: u32) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut at = self.home(key);
        loop {
            let s = &mut self.slots[at];
            if !s.used {
                *s = Slot { key, val, used: true };
                self.len += 1;
                return;
            }
            if s.key == key {
                s.val = val;
                return;
            }
            at = (at + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value when present.
    pub fn remove(&mut self, key: Addr) -> Option<u32> {
        let mut at = self.home(key);
        loop {
            let s = self.slots[at];
            if !s.used {
                return None;
            }
            if s.key == key {
                break;
            }
            at = (at + 1) & self.mask;
        }
        let val = self.slots[at].val;
        self.len -= 1;
        // Backward-shift deletion: close the probe chain so later
        // lookups never stop early at a hole.
        let mut hole = at;
        let mut next = (at + 1) & self.mask;
        loop {
            let s = self.slots[next];
            if !s.used {
                break;
            }
            let home = self.home(s.key);
            // `s` may move into the hole only if its home position does
            // not lie strictly between the hole and its current slot
            // (cyclically).
            let between = if hole <= next {
                hole < home && home <= next
            } else {
                hole < home || home <= next
            };
            if !between {
                self.slots[hole] = s;
                hole = next;
            }
            next = (next + 1) & self.mask;
        }
        self.slots[hole] = EMPTY;
        Some(val)
    }

    /// Serialises the raw slot array (checkpoint support). The physical
    /// probe layout is preserved — not just the entries — because
    /// [`FlatMap::iter`] order is part of the deterministic behaviour a
    /// restored simulation must replay.
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.slots.len() as u64);
        w.u64(self.len as u64);
        for s in &self.slots {
            w.u8(u8::from(s.used));
            w.u32(s.key);
            w.u32(s.val);
        }
    }

    /// Rebuilds a map from [`FlatMap::save`] output, bit-identical slot
    /// layout included.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input, a degenerate capacity, or an
    /// entry count that disagrees with the used slots.
    pub fn restore(r: &mut Reader<'_>) -> Result<FlatMap, WireError> {
        let cap = r.u64()?;
        if cap > 1 << 32 || !(cap as usize).is_power_of_two() || (cap as usize) < MIN_CAP {
            return Err(WireError::LengthOutOfRange { len: cap });
        }
        let len = r.u64()? as usize;
        let mut slots = Vec::with_capacity(cap as usize);
        let mut used = 0usize;
        for _ in 0..cap {
            let flag = r.u8()?;
            if flag > 1 {
                return Err(WireError::BadTag { tag: flag });
            }
            let key = r.u32()?;
            let val = r.u32()?;
            used += flag as usize;
            slots.push(Slot { key, val, used: flag == 1 });
        }
        if used != len {
            return Err(WireError::LengthOutOfRange { len: len as u64 });
        }
        Ok(FlatMap { slots, len, mask: cap as usize - 1 })
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; (self.mask + 1) * 2]);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for s in old {
            if s.used {
                self.insert(s.key, s.val);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_remove() {
        let mut m = FlatMap::new();
        assert!(m.is_empty());
        m.insert(8, 1);
        m.insert(16, 2);
        m.insert(8, 3); // replace
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(8), Some(3));
        assert_eq!(m.get(16), Some(2));
        assert_eq!(m.get(24), None);
        assert_eq!(m.remove(8), Some(3));
        assert_eq!(m.remove(8), None);
        assert_eq!(m.get(16), Some(2));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = FlatMap::new();
        for i in 0..1000u32 {
            m.insert(i * 8, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(i * 8), Some(i));
        }
    }

    #[test]
    fn matches_std_hashmap_under_churn() {
        // Deterministic mixed workload exercising probe chains and
        // backward-shift deletion.
        let mut m = FlatMap::new();
        let mut reference = HashMap::new();
        let mut x = 0x1234_5678u32;
        for _ in 0..20_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            let key = (x >> 8) % 512 * 8;
            match x % 3 {
                0 => {
                    m.insert(key, x);
                    reference.insert(key, x);
                }
                1 => {
                    assert_eq!(m.remove(key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(key), reference.get(&key).copied());
                }
            }
            assert_eq!(m.len(), reference.len());
        }
        for (&k, &v) in &reference {
            assert_eq!(m.get(k), Some(v));
        }
    }

    #[test]
    fn iter_yields_every_live_entry_once() {
        let mut m = FlatMap::new();
        for i in 0..100u32 {
            m.insert(i * 8, i);
        }
        for i in 0..50u32 {
            m.remove(i * 16); // every other entry
        }
        let mut got: Vec<(u32, u32)> = m.iter().collect();
        got.sort_unstable();
        let want: Vec<(u32, u32)> = (0..100u32).filter(|i| i % 2 == 1).map(|i| (i * 8, i)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn save_restore_preserves_slot_layout() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut m = FlatMap::new();
        for i in 0..200u32 {
            m.insert(i * 8, i);
        }
        for i in 0..100u32 {
            m.remove(i * 16);
        }
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let back = FlatMap::restore(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.len(), m.len());
        // Physical layout — and therefore iteration order — is identical.
        let a: Vec<(u32, u32)> = m.iter().collect();
        let b: Vec<(u32, u32)> = back.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn restore_rejects_mismatched_entry_count() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut m = FlatMap::new();
        m.insert(8, 1);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        m.save(&mut w);
        let mut buf = w.into_bytes();
        buf[16] ^= 0xff; // corrupt the stored entry count
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(FlatMap::restore(&mut r).is_err());
    }

    #[test]
    fn zero_key_works() {
        let mut m = FlatMap::new();
        assert_eq!(m.get(0), None);
        m.insert(0, 42);
        assert_eq!(m.get(0), Some(42));
        assert_eq!(m.remove(0), Some(42));
        assert_eq!(m.get(0), None);
    }
}
