//! The versioned checkpoint container.
//!
//! A checkpoint is the deterministic byte serialization of a live
//! [`crate::Session`], wrapped in a self-validating envelope:
//!
//! ```text
//! magic "VCFRCKP1"
//! u32   format version (CHECKPOINT_VERSION)
//! u64   context fingerprint (FNV-1a 64 of the run's configuration)
//! bytes payload — the session state, itself a "VCFRSES1" wire stream
//! u64   FNV-1a 64 hash of the payload bytes
//! ```
//!
//! **Version policy:** the payload layout is frozen per version. Any
//! change to what the engine saves (a new counter, a reordered field)
//! must bump [`CHECKPOINT_VERSION`]; readers reject other versions
//! outright rather than guessing. The context fingerprint ties a
//! checkpoint to the exact configuration, workload and fault plan it was
//! taken under — resuming it against anything else is refused, because a
//! resumed run must be bit-identical to an uninterrupted one.

use std::fmt;
use vcfr_isa::wire::{Reader, WireError, Writer};

/// Current checkpoint format version.
///
/// Version 2 appended `contention_stall_cycles` to the [`crate::SimStats`]
/// wire form, extended the hierarchy stream with the shared-port state,
/// and added the engine-kind-specific session payloads (OoO, multicore).
pub const CHECKPOINT_VERSION: u32 = 2;

/// Magic prefix of the checkpoint envelope.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"VCFRCKP1";

/// Magic prefix of the session payload inside the envelope.
pub(crate) const PAYLOAD_MAGIC: [u8; 8] = *b"VCFRSES1";

/// Why a checkpoint was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream is truncated or structurally malformed.
    Wire(WireError),
    /// The checkpoint was written by a different format version.
    Version {
        /// The version found in the envelope.
        found: u32,
    },
    /// The checkpoint belongs to a different run configuration (config,
    /// workload or fault plan differ from the session resuming it).
    ContextMismatch,
    /// The payload hash does not match — the bytes were corrupted.
    Corrupt,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Wire(e) => write!(f, "malformed checkpoint: {e}"),
            CheckpointError::Version { found } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {CHECKPOINT_VERSION})"
            ),
            CheckpointError::ContextMismatch => {
                write!(f, "checkpoint belongs to a different run configuration")
            }
            CheckpointError::Corrupt => write!(f, "checkpoint payload hash mismatch (corrupt)"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> CheckpointError {
        CheckpointError::Wire(e)
    }
}

/// FNV-1a 64 over `bytes` (the same function `vcfr-obs` uses for
/// manifest fingerprints, here over raw bytes).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// FNV-1a 64 over a textual run description (config + workload + fault
/// plan), producing the context fingerprint stored in the envelope.
pub(crate) fn context_fingerprint(description: &str) -> u64 {
    fnv64(description.as_bytes())
}

/// Wraps a session payload in the versioned, hash-sealed envelope.
pub(crate) fn seal(context: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_magic(CHECKPOINT_MAGIC);
    w.u32(CHECKPOINT_VERSION);
    w.u64(context);
    w.bytes(payload);
    w.u64(fnv64(payload));
    w.into_bytes()
}

/// Validates the envelope and returns the payload bytes.
///
/// # Errors
///
/// [`CheckpointError::Wire`] on a truncated/foreign stream,
/// [`CheckpointError::Version`] on a version mismatch,
/// [`CheckpointError::ContextMismatch`] when the fingerprint differs
/// from `context`, and [`CheckpointError::Corrupt`] when the payload
/// hash does not check out.
pub(crate) fn open(buf: &[u8], context: u64) -> Result<Vec<u8>, CheckpointError> {
    let mut r = Reader::with_magic(buf, CHECKPOINT_MAGIC)?;
    let version = r.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Version { found: version });
    }
    let found_context = r.u64()?;
    let payload = r.bytes()?.to_vec();
    let hash = r.u64()?;
    if !r.is_exhausted() {
        return Err(CheckpointError::Wire(WireError::Truncated));
    }
    if hash != fnv64(&payload) {
        return Err(CheckpointError::Corrupt);
    }
    if found_context != context {
        return Err(CheckpointError::ContextMismatch);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_roundtrip() {
        let payload = b"session state bytes".to_vec();
        let sealed = seal(42, &payload);
        assert_eq!(open(&sealed, 42).unwrap(), payload);
    }

    #[test]
    fn wrong_context_is_rejected() {
        let sealed = seal(42, b"x");
        assert_eq!(open(&sealed, 43), Err(CheckpointError::ContextMismatch));
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let mut sealed = seal(7, b"payload-bytes");
        // Flip a bit inside the payload region (past magic+version+context
        // + length prefix).
        sealed[8 + 4 + 8 + 8 + 2] ^= 0x40;
        assert_eq!(open(&sealed, 7), Err(CheckpointError::Corrupt));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut w = Writer::with_magic(CHECKPOINT_MAGIC);
        w.u32(CHECKPOINT_VERSION + 1);
        w.u64(0);
        w.bytes(b"");
        w.u64(fnv64(b""));
        let buf = w.into_bytes();
        assert_eq!(
            open(&buf, 0),
            Err(CheckpointError::Version { found: CHECKPOINT_VERSION + 1 })
        );
    }

    #[test]
    fn truncation_and_foreign_magic_are_wire_errors() {
        let sealed = seal(1, b"abc");
        assert!(matches!(open(&sealed[..10], 1), Err(CheckpointError::Wire(_))));
        assert!(matches!(open(b"NOTMAGIC", 1), Err(CheckpointError::Wire(_))));
    }

    #[test]
    fn fingerprint_is_stable() {
        assert_eq!(context_fingerprint("abc"), context_fingerprint("abc"));
        assert_ne!(context_fingerprint("abc"), context_fingerprint("abd"));
    }
}
