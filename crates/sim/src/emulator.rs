//! The software instruction-level-emulation cost model behind Figure 2.
//!
//! The paper's Figure 2 shows that executing an ILR-randomized binary
//! under an instruction-level machine emulator costs hundreds of times
//! native speed. Rather than assuming a ratio, this module *accounts* for
//! the work an ILR interpreter does per guest instruction — the same
//! structure as Hiser et al.'s VM: fetch the rewrite rule for the current
//! (randomized) PC from a hash table, decode the guest instruction,
//! dispatch to a handler, interpret operands, emulate flags/memory, and
//! update the PC map — and charges each phase with host-operation counts.
//!
//! Costs are per *phase* so ablations can vary them; defaults correspond
//! to a threaded interpreter on a core with the same 1.6 GHz clock.

use vcfr_isa::{ExecError, Image, Machine};

/// Host-cycle cost of each interpreter phase, per guest instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmulatorCostModel {
    /// Looking up the rewrite rule / instruction descriptor for the
    /// current randomized PC (hash + probable cache miss on the rule
    /// table).
    pub rule_fetch: u64,
    /// Decoding one guest instruction byte.
    pub decode_per_byte: u64,
    /// Indirect dispatch to the semantic handler.
    pub dispatch: u64,
    /// Interpreting the handler body (register file in memory, flag
    /// materialisation).
    pub execute: u64,
    /// Extra work per guest *memory* access (address translation into
    /// the emulator's guest-memory map).
    pub per_mem_access: u64,
    /// Extra work per guest *control transfer* (target remap through the
    /// randomization tables, next-rule chain update).
    pub per_control_transfer: u64,
}

impl Default for EmulatorCostModel {
    fn default() -> EmulatorCostModel {
        EmulatorCostModel {
            rule_fetch: 52,
            decode_per_byte: 6,
            dispatch: 18,
            execute: 26,
            per_mem_access: 42,
            per_control_transfer: 90,
        }
    }
}

/// The emulation-cost account of one program run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmulationReport {
    /// Guest instructions interpreted.
    pub guest_instructions: u64,
    /// Host cycles charged.
    pub host_cycles: u64,
    /// Guest control transfers interpreted.
    pub control_transfers: u64,
    /// Guest memory accesses interpreted.
    pub mem_accesses: u64,
}

impl EmulationReport {
    /// Host cycles per guest instruction.
    pub fn cycles_per_instruction(&self) -> f64 {
        if self.guest_instructions == 0 {
            0.0
        } else {
            self.host_cycles as f64 / self.guest_instructions as f64
        }
    }

    /// The slowdown factor versus a native run that took `native_cycles`
    /// for the same instruction window — the Y axis of Figure 2.
    pub fn slowdown_vs(&self, native_cycles: u64) -> f64 {
        if native_cycles == 0 {
            0.0
        } else {
            self.host_cycles as f64 / native_cycles as f64
        }
    }
}

/// Interprets `image` for up to `max_insts` guest instructions, charging
/// the cost model for every phase.
///
/// # Errors
///
/// Propagates architectural faults from the guest program.
pub fn emulate(
    image: &Image,
    cost: &EmulatorCostModel,
    max_insts: u64,
) -> Result<EmulationReport, ExecError> {
    let mut machine = Machine::new(image);
    let mut report = EmulationReport::default();
    while report.guest_instructions < max_insts {
        let Some(info) = machine.step()? else { break };
        report.guest_instructions += 1;
        report.host_cycles += cost.rule_fetch
            + cost.decode_per_byte * info.len as u64
            + cost.dispatch
            + cost.execute;
        let mem = info.mem_accesses().count() as u64;
        report.mem_accesses += mem;
        report.host_cycles += cost.per_mem_access * mem;
        if info.inst.is_control() {
            report.control_transfers += 1;
            report.host_cycles += cost.per_control_transfer;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_isa::{AluOp, Asm, Cond, Reg};

    fn looped() -> Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 1000);
        let top = a.here();
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn costs_accumulate_per_phase() {
        let img = looped();
        let r = emulate(&img, &EmulatorCostModel::default(), 1_000_000).unwrap();
        assert!(r.guest_instructions > 3000);
        assert_eq!(r.control_transfers, 1000);
        // Per-instruction cost sits in the plausible interpreter band.
        let cpi = r.cycles_per_instruction();
        assert!(cpi > 80.0 && cpi < 400.0, "cpi = {cpi}");
    }

    #[test]
    fn slowdown_is_hundreds_fold_vs_ipc_one() {
        let img = looped();
        let r = emulate(&img, &EmulatorCostModel::default(), 1_000_000).unwrap();
        // Against a native core at IPC ≈ 1 (cycles ≈ instructions).
        let slowdown = r.slowdown_vs(r.guest_instructions);
        assert!(slowdown > 100.0, "slowdown {slowdown}");
    }

    #[test]
    fn truncates_at_budget() {
        let img = looped();
        let r = emulate(&img, &EmulatorCostModel::default(), 10).unwrap();
        assert_eq!(r.guest_instructions, 10);
    }

    #[test]
    fn zero_native_cycles_yield_zero_slowdown() {
        let r = EmulationReport::default();
        assert_eq!(r.slowdown_vs(0), 0.0);
        assert_eq!(r.cycles_per_instruction(), 0.0);
    }
}
