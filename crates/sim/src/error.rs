//! The unified error hierarchy of the simulation stack.
//!
//! Everything the facade ([`crate::Session`]) can fail with funnels into
//! [`VcfrError`]: invalid configurations are rejected at construction,
//! architectural/security faults surface as [`SimError`], and checkpoint
//! problems as [`CheckpointError`]. All variants implement
//! [`std::error::Error`] with `source()` chains, so callers (bench, cli,
//! the service) render and classify them uniformly instead of matching on
//! strings.

use crate::checkpoint::CheckpointError;
use crate::engine::SimError;
use std::fmt;

/// Any failure of the simulation stack.
#[derive(Clone, Debug)]
pub enum VcfrError {
    /// The requested configuration is internally inconsistent and was
    /// rejected before the run started.
    Config(String),
    /// The simulated program faulted (execution error or an injected
    /// fault that escaped containment).
    Sim(SimError),
    /// A checkpoint could not be decoded or does not belong to this run.
    Checkpoint(CheckpointError),
}

impl fmt::Display for VcfrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VcfrError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            VcfrError::Sim(e) => write!(f, "{e}"),
            VcfrError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VcfrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VcfrError::Config(_) => None,
            VcfrError::Sim(e) => Some(e),
            VcfrError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<SimError> for VcfrError {
    fn from(e: SimError) -> VcfrError {
        VcfrError::Sim(e)
    }
}

impl From<CheckpointError> for VcfrError {
    fn from(e: CheckpointError) -> VcfrError {
        VcfrError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let e = VcfrError::Config("rerand without a DRC".into());
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.source().is_none());

        let e = VcfrError::Checkpoint(CheckpointError::Version { found: 9 });
        assert!(e.to_string().contains("version"));
        assert!(e.source().is_some());
    }
}
