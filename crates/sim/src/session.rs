//! The unified run facade: one [`Session`] type behind every way the
//! workspace executes a simulation — the CLI's `simulate`, the bench
//! harness's experiment matrix, the fault-injection campaign, and the
//! `vcfr serve` daemon all construct a `Session` and drive it.
//!
//! A session owns the functional machine(s) and the timing engine
//! together, validates the configuration against the mode before the
//! first cycle, and — unlike the old free-function entry points — can
//! stop at an instruction budget ([`Session::run_for`]), serialize its
//! complete state into a versioned checkpoint ([`Session::checkpoint`])
//! and resume bit-identically in a fresh process ([`Session::restore`]).
//!
//! The session is *engine-generic*: [`crate::EngineKind`] on the config
//! selects the in-order core (default), the wide out-of-order core, or
//! N in-order cores over a shared L2 ([`crate::EngineKind::Multicore`]),
//! and all three route through the same sampling, telemetry, manifest
//! and checkpoint paths. Boundaries are instruction counts (aggregate
//! across cores for multicore), so results stay bit-deterministic per
//! kind. Fault injection and superblock replay remain in-order-only:
//! plans are rejected at [`Session::run_for`] on other kinds, and the
//! fast path silently falls back to per-instruction stepping.

use crate::checkpoint::{self, CheckpointError, PAYLOAD_MAGIC};
use crate::config::{EngineKind, SimConfig};
use crate::engine::{
    exec_extra_cycles, Engine, IntervalSample, Mode, ReplayInst, SimError, SimOutput,
};
use crate::error::VcfrError;
use crate::faults::{FaultPlan, FaultRecord, FaultStats};
use crate::multicore::{MultiCore, MultiCoreOutput};
use crate::ooo::{OooConfig, OooEngine};
use crate::stats::SimStats;
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::{
    Addr, Machine, RunOutcome, SectionKind, StopReason, SuperblockCache, SuperblockLookup,
    SUPERBLOCK_MAX_INSTS,
};
use vcfr_obs::ProgressEvent;
use vcfr_rewriter::RandomizedProgram;

/// A telemetry callback receiving [`ProgressEvent`]s as the run crosses
/// instruction-count boundaries (see [`Session::with_progress`]).
pub type ProgressSink<'a> = Box<dyn FnMut(&ProgressEvent) + Send + 'a>;

/// Everything a finished session produced.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// Timing statistics plus the architectural result. For multicore
    /// sessions the stats are the aggregate (see
    /// [`MultiCoreOutput::stats`]) and the outcome is core 0's.
    pub output: SimOutput,
    /// One entry per sampling interval (empty unless
    /// [`Session::with_sampling`] was used).
    pub samples: Vec<IntervalSample>,
    /// Aggregate fault counters (all zero without a fault plan).
    pub faults: FaultStats,
    /// Per-fault resolutions, in injection order.
    pub records: Vec<FaultRecord>,
    /// The full per-core breakdown when the session ran on
    /// [`crate::EngineKind::Multicore`]; `None` on single-core kinds.
    pub multicore: Option<MultiCoreOutput>,
}

/// What [`Session::run_for`] came back with.
#[derive(Clone, Debug)]
pub enum SessionStatus {
    /// The budget ran out first; call [`Session::run_for`] again (and
    /// perhaps [`Session::checkpoint`] in between).
    Running,
    /// The program finished (halt, exit, or `max_insts` truncation).
    Done(Box<SessionOutcome>),
}

/// The timing machinery behind a session: which engine kind executes
/// the run, together with its functional machine(s).
enum Backend<'a> {
    /// The paper's single-issue in-order core.
    InOrder { machine: Machine, engine: Engine },
    /// The wide out-of-order core.
    Ooo { machine: Machine, engine: OooEngine },
    /// N in-order cores over a shared L2/DRAM.
    Multicore(MultiCore<'a>),
}

impl Backend<'_> {
    /// Committed instructions (aggregate across cores for multicore).
    fn instructions(&self) -> u64 {
        match self {
            Backend::InOrder { engine, .. } => engine.instructions,
            Backend::Ooo { engine, .. } => engine.instructions,
            Backend::Multicore(mc) => mc.instructions(),
        }
    }

    /// Counter snapshot (the multicore aggregate for multicore runs).
    fn stats_now(&self) -> SimStats {
        match self {
            Backend::InOrder { engine, .. } => engine.stats_now(),
            Backend::Ooo { engine, .. } => engine.stats_now(),
            Backend::Multicore(mc) => mc.stats_now(),
        }
    }

    /// The architectural result as it stands right now (used when the
    /// instruction window truncates the run).
    fn current_outcome(&self) -> RunOutcome {
        match self {
            Backend::InOrder { machine, .. } | Backend::Ooo { machine, .. } => RunOutcome {
                output: machine.output().to_vec(),
                steps: machine.steps(),
                stop: machine.stop_reason().unwrap_or(StopReason::Halt),
            },
            Backend::Multicore(mc) => mc
                .output()
                .outcomes
                .into_iter()
                .next()
                .expect("a multicore session has at least one core"),
        }
    }
}

/// One simulation run: machine(s) + engine + sampling and fault cursors,
/// drivable to completion or in bounded slices.
///
/// # Example
///
/// ```
/// use vcfr_isa::{Asm, Reg};
/// use vcfr_sim::{Mode, Session, SimConfig};
///
/// let mut a = Asm::new(0x1000);
/// a.mov_ri(Reg::Rax, 7);
/// a.emit_output(Reg::Rax);
/// a.halt();
/// let img = a.finish().unwrap();
/// let out = Session::new(Mode::Baseline(&img), &SimConfig::default(), 1_000)
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(out.output.outcome.output, vec![7]);
/// ```
pub struct Session<'a> {
    mode: Mode<'a>,
    /// Per-core modes. One entry for the single-core kinds (aliasing
    /// `mode`); one per core for multicore (see
    /// [`Session::new_heterogeneous`]).
    modes: Vec<Mode<'a>>,
    cfg: SimConfig,
    max_insts: u64,
    backend: Backend<'a>,
    plan: Option<FaultPlan>,
    fault_idx: usize,
    samples: Vec<IntervalSample>,
    last: SimStats,
    stride: u64,
    next_sample: u64,
    finished: Option<SessionOutcome>,
    /// Whether the superblock fast path is enabled (default on; see
    /// [`Session::with_superblocks`]). Deliberately *not* part of the
    /// checkpoint context: on/off runs are bit-identical by construction
    /// and their checkpoints interchange freely. A no-op off the
    /// in-order engine.
    superblocks: bool,
    /// Formed superblocks keyed by entry pc. A pure function of the
    /// image text, so never serialized — rebuilt lazily after restore.
    sb_cache: SuperblockCache,
    /// Per-block engine timing precompute, parallel to the cache's
    /// block ids.
    sb_timing: Vec<Vec<ReplayInst>>,
    /// Progress-event interval in instructions (0 = telemetry off). Like
    /// the superblock toggle, deliberately *not* part of the checkpoint
    /// context or payload: the tap observes the run, it never shapes it,
    /// so checkpoints interchange freely between tapped and untapped
    /// sessions.
    progress_every: u64,
    /// The next instruction boundary at which to emit a progress event
    /// (`u64::MAX` when telemetry is off). Always an exact multiple of
    /// `progress_every`; recomputed — never serialized — on restore.
    next_progress: u64,
    /// Ordinal of the next progress event.
    progress_seq: u64,
    /// Where progress events go.
    progress_sink: Option<ProgressSink<'a>>,
    /// Superblock batches replayed so far (telemetry only).
    sb_batches: u64,
    /// Instructions retired via superblock replay so far (telemetry
    /// only).
    sb_insts: u64,
}

/// The context-fingerprint description of one mode.
fn describe_mode(m: &Mode<'_>) -> String {
    match m {
        Mode::Baseline(_) => "baseline".to_string(),
        Mode::NaiveIlr(_) => "naive-ilr".to_string(),
        Mode::Vcfr { drc, .. } => format!("vcfr drc={drc:?}"),
    }
}

impl<'a> Session<'a> {
    /// Builds a session, rejecting configurations the engine cannot
    /// honour under `mode` before any state is constructed. The engine
    /// kind comes from `cfg.engine`; a multicore kind runs `mode` on
    /// every core (use [`Session::new_heterogeneous`] for mixed fleets).
    ///
    /// # Errors
    ///
    /// [`VcfrError::Config`] on an inconsistent request — re-randomization
    /// outside VCFR mode, a zero-entry DRC, or a zero-instruction epoch.
    pub fn new(mode: Mode<'a>, cfg: &SimConfig, max_insts: u64) -> Result<Session<'a>, VcfrError> {
        if let EngineKind::Multicore { cores } = cfg.engine {
            let modes = vec![mode; cores as usize];
            return Session::new_heterogeneous(&modes, cfg, max_insts);
        }
        Session::validate(std::slice::from_ref(&mode), cfg)?;
        let machine = Machine::new(mode.image_ref());
        let drc_cfg = match &mode {
            Mode::Vcfr { drc, .. } => Some(*drc),
            _ => None,
        };
        let table_base = match &mode {
            Mode::Vcfr { program, .. } => Some(program.table.base()),
            _ => None,
        };
        let backend = match cfg.engine {
            EngineKind::InOrder => {
                let mut engine = Engine::new(cfg, drc_cfg);
                // Hide the translation-table pages from user space (TLB
                // page-visibility bit).
                if let Some(base) = table_base {
                    for page in 0..64u32 {
                        engine.hier.dtlb.set_invisible(base + page * 4096);
                    }
                }
                Backend::InOrder { machine, engine }
            }
            EngineKind::Ooo => {
                let mut engine = OooEngine::new(cfg, OooConfig::default(), drc_cfg);
                if let Some(base) = table_base {
                    for page in 0..64u32 {
                        engine.hier.dtlb.set_invisible(base + page * 4096);
                    }
                }
                Backend::Ooo { machine, engine }
            }
            EngineKind::Multicore { .. } => unreachable!("routed to new_heterogeneous above"),
        };
        Ok(Session::assemble(mode, vec![mode], cfg, max_insts, backend))
    }

    /// Builds a multicore session running a *different* mode on each
    /// core (the `repro multicore` cell runs a VCFR core beside a
    /// baseline core this way). `cfg.engine` must be
    /// [`EngineKind::Multicore`] with `cores == modes.len()`.
    ///
    /// # Errors
    ///
    /// [`VcfrError::Config`] when the engine kind is not multicore, the
    /// core count disagrees with `modes`, or a per-mode validation fails
    /// (same rules as [`Session::new`]).
    pub fn new_heterogeneous(
        modes: &[Mode<'a>],
        cfg: &SimConfig,
        max_insts: u64,
    ) -> Result<Session<'a>, VcfrError> {
        let EngineKind::Multicore { cores } = cfg.engine else {
            return Err(VcfrError::Config(
                "a heterogeneous session needs EngineKind::Multicore in the config".into(),
            ));
        };
        if cores == 0 || cores as usize != modes.len() {
            return Err(VcfrError::Config(format!(
                "the engine kind declares {cores} cores but {} modes were given",
                modes.len()
            )));
        }
        Session::validate(modes, cfg)?;
        let mc = MultiCore::new(modes, cfg, max_insts);
        Ok(Session::assemble(modes[0], modes.to_vec(), cfg, max_insts, Backend::Multicore(mc)))
    }

    /// The mode/config consistency rules shared by both constructors.
    /// For multicore, `rerand_epoch` needs at least one VCFR core (the
    /// in-order engines only swap tables under VCFR).
    fn validate(modes: &[Mode<'a>], cfg: &SimConfig) -> Result<(), VcfrError> {
        if cfg.rerand_epoch == Some(0) {
            return Err(VcfrError::Config(
                "rerand_epoch must be positive (use None to disable re-randomization) (got 0)"
                    .into(),
            ));
        }
        if cfg.rerand_epoch.is_some() && !modes.iter().any(|m| matches!(m, Mode::Vcfr { .. })) {
            return Err(VcfrError::Config(
                "rerand_epoch requires a VCFR run (live table swaps flush the DRC)".into(),
            ));
        }
        for mode in modes {
            if let Mode::Vcfr { drc, .. } = mode {
                if drc.entries == 0 {
                    return Err(VcfrError::Config(
                        "DRC entries must be positive for a VCFR mode (got 0)".into(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Wires the common session fields around a constructed backend.
    fn assemble(
        mode: Mode<'a>,
        modes: Vec<Mode<'a>>,
        cfg: &SimConfig,
        max_insts: u64,
        backend: Backend<'a>,
    ) -> Session<'a> {
        let last = backend.stats_now();
        let mut sb_cache = SuperblockCache::new();
        if matches!(backend, Backend::InOrder { .. }) {
            for s in &mode.image_ref().sections {
                if s.kind == SectionKind::Text {
                    sb_cache.add_range(s.base, s.end());
                }
            }
        }
        Session {
            mode,
            modes,
            cfg: *cfg,
            max_insts,
            backend,
            plan: None,
            fault_idx: 0,
            samples: Vec::new(),
            last,
            stride: 0,
            next_sample: u64::MAX,
            finished: None,
            superblocks: true,
            sb_cache,
            sb_timing: Vec::new(),
            progress_every: 0,
            next_progress: u64::MAX,
            progress_seq: 0,
            progress_sink: None,
            sb_batches: 0,
            sb_insts: 0,
        }
    }

    /// Enables interval sampling: one [`IntervalSample`] per `interval`
    /// committed instructions (clamped to 1).
    pub fn with_sampling(mut self, interval: u64) -> Session<'a> {
        let interval = interval.max(1);
        self.stride = interval;
        self.next_sample = interval;
        self
    }

    /// Schedules the faults of `plan` for injection. Fault injection is
    /// modeled on the in-order engine only; on other kinds the plan is
    /// rejected when the session runs.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Session<'a> {
        self.plan = Some(plan.clone());
        self
    }

    /// Attaches a telemetry tap: `sink` receives a [`ProgressEvent`]
    /// each time the run crosses a multiple of `every` committed
    /// instructions (clamped to 1), plus one final event when the run
    /// finishes. Boundaries are *instruction counts* (aggregate across
    /// cores for multicore), not wall-clock, so the simulated results —
    /// stats, samples, fault records, manifests, checkpoint bytes — are
    /// byte-identical with the tap attached or not, and the
    /// deterministic event fields are a pure function of the run.
    /// Wall-clock belongs to whoever consumes the events (the daemon
    /// timestamps them at emission), never inside them.
    pub fn with_progress(
        mut self,
        every: u64,
        sink: impl FnMut(&ProgressEvent) + Send + 'a,
    ) -> Session<'a> {
        let every = every.max(1);
        self.progress_every = every;
        let done = self.backend.instructions();
        self.next_progress = (done / every + 1).saturating_mul(every);
        self.progress_seq = done / every;
        self.progress_sink = Some(Box::new(sink));
        self
    }

    /// Enables or disables the superblock fast path (on by default).
    ///
    /// The setting changes throughput only, never results: stats,
    /// samples, fault records, trace events and checkpoint bytes are
    /// bit-identical either way (`tests/superblock_equiv.rs` enforces
    /// this). Disabling is useful for differential debugging and for
    /// timing the per-instruction path. A no-op off the in-order engine
    /// (the out-of-order and multicore backends always step
    /// per-instruction).
    pub fn with_superblocks(mut self, enabled: bool) -> Session<'a> {
        self.superblocks = enabled;
        self
    }

    /// Committed instructions so far (aggregate across cores for
    /// multicore sessions).
    pub fn instructions(&self) -> u64 {
        self.backend.instructions()
    }

    /// A snapshot of the counters at this point of the run (the
    /// aggregate for multicore sessions).
    pub fn stats_now(&self) -> SimStats {
        self.backend.stats_now()
    }

    /// The engine's post-mortem trace ring, oldest event first (empty
    /// when `SimConfig::trace_events` is 0, and always empty off the
    /// in-order engine — the other kinds do not keep a ring).
    pub fn trace_events(&self) -> Vec<crate::TraceEvent> {
        match &self.backend {
            Backend::InOrder { engine, .. } => engine.trace.to_vec(),
            _ => Vec::new(),
        }
    }

    /// Aggregate fault counters so far (zero off the in-order engine).
    fn fault_stats(&self) -> FaultStats {
        match &self.backend {
            Backend::InOrder { engine, .. } => engine.fstats,
            _ => FaultStats::default(),
        }
    }

    /// Per-fault records so far (empty off the in-order engine).
    fn fault_records(&self) -> Vec<FaultRecord> {
        match &self.backend {
            Backend::InOrder { engine, .. } => engine.frecords.clone(),
            _ => Vec::new(),
        }
    }

    /// The progress reading the telemetry tap would emit right now
    /// (deterministic fields only). Useful for a final reading without
    /// waiting for the next boundary; does not consume a sequence
    /// number.
    pub fn progress_now(&self) -> ProgressEvent {
        let s = self.backend.stats_now();
        let f = self.fault_stats();
        ProgressEvent {
            seq: self.progress_seq,
            instructions: s.instructions,
            cycles: s.cycles,
            fetch_stall_cycles: s.fetch_stall_cycles,
            load_stall_cycles: s.load_stall_cycles,
            redirect_stall_cycles: s.redirect_stall_cycles,
            rerand_stall_cycles: s.rerand_stall_cycles,
            sb_batches: self.sb_batches,
            sb_insts: self.sb_insts,
            faults_injected: f.injected,
            faults_detected: f.detected(),
            rerand_epochs: s.rerand_epochs,
        }
    }

    /// Builds the event for the current boundary and hands it to the
    /// sink (when attached), advancing the sequence number.
    fn emit_progress(&mut self) {
        if self.progress_sink.is_none() {
            return;
        }
        let ev = self.progress_now();
        self.progress_seq += 1;
        if let Some(sink) = self.progress_sink.as_mut() {
            sink(&ev);
        }
    }

    /// Runs to completion (or `max_insts`).
    ///
    /// # Errors
    ///
    /// [`VcfrError::Sim`] when the program faults architecturally or an
    /// injected sticky fault halts the machine; [`VcfrError::Config`]
    /// when a fault plan is attached off the in-order engine.
    pub fn run(&mut self) -> Result<SessionOutcome, VcfrError> {
        match self.run_for(u64::MAX)? {
            SessionStatus::Done(out) => Ok(*out),
            SessionStatus::Running => unreachable!("an unbounded budget always finishes"),
        }
    }

    /// Runs at most `budget` more instructions; returns
    /// [`SessionStatus::Running`] when the budget ran out first. Calling
    /// again after completion returns the same [`SessionStatus::Done`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Session::run`].
    pub fn run_for(&mut self, budget: u64) -> Result<SessionStatus, VcfrError> {
        if let Some(out) = &self.finished {
            return Ok(SessionStatus::Done(Box::new(out.clone())));
        }
        if self.plan.is_some() && !matches!(self.backend, Backend::InOrder { .. }) {
            return Err(VcfrError::Config(
                "fault injection is only modeled on the in-order engine \
                 (run with EngineKind::InOrder)"
                    .into(),
            ));
        }
        let stop_at = self.backend.instructions().saturating_add(budget.max(1));
        loop {
            // The instruction window. The multicore event loop enforces
            // its per-core window internally (the aggregate count would
            // truncate an N-core fleet N times too early).
            if !matches!(self.backend, Backend::Multicore(_))
                && self.backend.instructions() >= self.max_insts
            {
                let outcome = self.backend.current_outcome();
                return Ok(SessionStatus::Done(Box::new(self.finish(outcome))));
            }
            if self.superblocks && self.try_superblock(stop_at) {
                self.post_step()?;
                if self.backend.instructions() >= stop_at {
                    return Ok(SessionStatus::Running);
                }
                continue;
            }
            if let Some(outcome) = self.step_once()? {
                return Ok(SessionStatus::Done(Box::new(self.finish(outcome))));
            }
            self.post_step()?;
            if self.backend.instructions() >= stop_at {
                return Ok(SessionStatus::Running);
            }
        }
    }

    /// Advances the run by one instruction on whichever engine backs it.
    /// Returns the architectural outcome when the run just finished.
    fn step_once(&mut self) -> Result<Option<RunOutcome>, VcfrError> {
        let identity = |a: Addr| a;
        match &mut self.backend {
            Backend::InOrder { machine, engine } => {
                let step = machine.step();
                let Some(info) = step.map_err(|e| VcfrError::Sim(engine.fault(e)))? else {
                    return Ok(Some(RunOutcome {
                        output: machine.output().to_vec(),
                        steps: machine.steps(),
                        stop: machine.stop_reason().expect("stopped machine has a reason"),
                    }));
                };
                match &self.mode {
                    Mode::Baseline(_) => engine.step(&info, info.pc, &identity, None),
                    Mode::NaiveIlr(rp) => {
                        let key = |a: Addr| rp.rand_or_orig(a);
                        engine.step(&info, rp.rand_or_orig(info.pc), &key, None);
                    }
                    Mode::Vcfr { program, .. } => {
                        engine.step(&info, info.pc, &identity, Some(program));
                    }
                }
                Ok(None)
            }
            Backend::Ooo { machine, engine } => {
                let step = machine.step();
                let Some(info) = step.map_err(|e| VcfrError::Sim(SimError::from(e)))? else {
                    return Ok(Some(RunOutcome {
                        output: machine.output().to_vec(),
                        steps: machine.steps(),
                        stop: machine.stop_reason().expect("stopped machine has a reason"),
                    }));
                };
                let stepped = match &self.mode {
                    Mode::Baseline(_) => engine.step(&info, info.pc, &identity, None),
                    Mode::NaiveIlr(rp) => {
                        let key = |a: Addr| rp.rand_or_orig(a);
                        engine.step(&info, rp.rand_or_orig(info.pc), &key, None)
                    }
                    Mode::Vcfr { program, .. } => {
                        engine.step(&info, info.pc, &identity, Some(program))
                    }
                };
                stepped.map_err(VcfrError::Sim)?;
                Ok(None)
            }
            Backend::Multicore(mc) => {
                if mc.step_next().map_err(VcfrError::Sim)? {
                    Ok(None)
                } else {
                    Ok(Some(
                        mc.output()
                            .outcomes
                            .into_iter()
                            .next()
                            .expect("a multicore session has at least one core"),
                    ))
                }
            }
        }
    }

    /// Attempts to advance the run through a superblock replay. Returns
    /// `false` when the slow path must handle the next instruction: the
    /// backend is not the in-order engine, the mode is ineligible
    /// (NaiveIlr fetches from scattered addresses), the machine is
    /// stopped, no block starts at the current pc, or the admissible
    /// batch length is zero because the very next instruction carries a
    /// boundary event (sample, scheduled fault, DRC flush, rerand epoch,
    /// budget edge).
    ///
    /// The batch length is capped so that no observability or
    /// dependability hook can fall *inside* a batch — every hook in
    /// [`Session::run_for`]'s bookkeeping fires on exactly the same
    /// instruction boundary the per-instruction path would fire it on.
    fn try_superblock(&mut self, stop_at: u64) -> bool {
        let Backend::InOrder { machine, engine } = &mut self.backend else {
            return false;
        };
        let vcfr = match &self.mode {
            Mode::Baseline(_) => false,
            Mode::Vcfr { .. } => true,
            // Naive ILR fetches every instruction from its scattered
            // randomized address: the fast path's pc-contiguity premise
            // does not hold.
            Mode::NaiveIlr(_) => return false,
        };
        if machine.stop_reason().is_some() {
            return false;
        }
        let pc = machine.pc();
        let id = match self.sb_cache.lookup(pc) {
            SuperblockLookup::Block(id) => id,
            SuperblockLookup::NoBlock => return false,
            SuperblockLookup::Untried => {
                let formed = machine.form_superblock(pc, SUPERBLOCK_MAX_INSTS);
                match self.sb_cache.record(pc, formed) {
                    Some(id) => {
                        let sb = self.sb_cache.get(id);
                        self.sb_timing.push(
                            sb.insts
                                .iter()
                                .map(|s| ReplayInst {
                                    pc: s.pc,
                                    last: s.pc + s.len as Addr - 1,
                                    extra: exec_extra_cycles(&s.inst),
                                })
                                .collect(),
                        );
                        id
                    }
                    None => return false,
                }
            }
        };

        // Cap the batch at the nearest boundary. All of these are
        // strictly ahead of the current instruction count (loop/run_for
        // invariants), so the subtractions cannot wrap — saturating_sub
        // merely turns a violated invariant into a slow-path fallback.
        let i = engine.instructions;
        let sb = self.sb_cache.get(id);
        let mut n = (sb.len() as u64)
            .min(self.max_insts - i)
            .min(stop_at - i)
            .min(self.next_sample.saturating_sub(i))
            .min(self.next_progress.saturating_sub(i));
        if let Some(p) = &self.plan {
            if let Some(f) = p.faults.get(self.fault_idx) {
                n = n.min(f.at_inst.saturating_sub(i));
            }
        }
        if vcfr {
            // The instruction landing exactly on a flush/epoch multiple
            // must take the slow path: `Engine::step` performs the flush
            // or table swap *before* that instruction's fetch.
            if let Some(q) = self.cfg.drc_flush_interval.and_then(|v| i.checked_div(v)) {
                let interval = self.cfg.drc_flush_interval.expect("division succeeded");
                n = n.min((q + 1) * interval - i - 1);
            }
            if let Some(q) = self.cfg.rerand_epoch.and_then(|v| i.checked_div(v)) {
                let epoch = self.cfg.rerand_epoch.expect("division succeeded");
                n = n.min((q + 1) * epoch - i - 1);
            }
        }
        if n == 0 {
            return false;
        }
        let n = n as usize;
        machine.replay_superblock(self.sb_cache.get(id), n);
        engine.replay_block(&self.sb_timing[id as usize][..n]);
        self.sb_batches += 1;
        self.sb_insts += n as u64;
        true
    }

    /// Bookkeeping shared by the per-instruction and superblock paths:
    /// injects any faults now due and folds a sample when the interval
    /// boundary was reached. Both paths land on identical instruction
    /// boundaries, so the records and samples are identical too.
    fn post_step(&mut self) -> Result<(), VcfrError> {
        if let Some(p) = &self.plan {
            let Backend::InOrder { engine, .. } = &mut self.backend else {
                unreachable!("run_for rejects fault plans off the in-order engine");
            };
            let image = self.mode.image_ref();
            let fault_rp: Option<&RandomizedProgram> = match &self.mode {
                Mode::Vcfr { program, .. } => Some(program),
                _ => None,
            };
            while let Some(f) = p.faults.get(self.fault_idx) {
                if f.at_inst > engine.instructions {
                    break;
                }
                let outcome =
                    engine.inject_fault(f, image, fault_rp, p.policy).map_err(VcfrError::Sim)?;
                engine.fstats.record(outcome);
                engine.frecords.push(FaultRecord {
                    at_inst: engine.instructions,
                    target: f.target,
                    persistence: f.persistence,
                    outcome,
                });
                self.fault_idx += 1;
            }
        }
        if self.backend.instructions() >= self.next_sample {
            self.take_sample();
            self.next_sample += self.stride;
        }
        if self.backend.instructions() >= self.next_progress {
            self.emit_progress();
            // Re-anchor to the next exact multiple (the superblock
            // clamp and single-stepping both land exactly on the
            // boundary, but re-deriving keeps the invariant explicit).
            self.next_progress = (self.backend.instructions() / self.progress_every + 1)
                .saturating_mul(self.progress_every);
        }
        Ok(())
    }

    /// Folds the interval since the last sample into `self.samples`.
    fn take_sample(&mut self) {
        let now = self.backend.stats_now();
        let last = &mut self.last;
        let insts = now.instructions - last.instructions;
        if insts == 0 {
            return;
        }
        let cycles = now.cycles.saturating_sub(last.cycles).max(1);
        let il1_acc = (now.il1.accesses - last.il1.accesses).max(1);
        let il1_miss = now.il1.misses - last.il1.misses;
        let (drc_l, drc_m) = match (now.drc, last.drc) {
            (Some(n), Some(l)) => (n.lookups - l.lookups, n.misses - l.misses),
            _ => (0, 0),
        };
        self.samples.push(IntervalSample {
            first_inst: last.instructions,
            instructions: insts,
            cycles,
            ipc: insts as f64 / cycles as f64,
            il1_miss_rate: il1_miss as f64 / il1_acc as f64,
            drc_miss_rate: if drc_l == 0 { 0.0 } else { drc_m as f64 / drc_l as f64 },
        });
        *last = now;
    }

    fn finish(&mut self, outcome: RunOutcome) -> SessionOutcome {
        if self.stride > 0 {
            self.take_sample();
        }
        // One final reading at the (deterministic) end-of-run
        // instruction count, so short runs that never cross a boundary
        // still report.
        self.emit_progress();
        let multicore = match &self.backend {
            Backend::Multicore(mc) => Some(mc.output()),
            _ => None,
        };
        let out = SessionOutcome {
            output: SimOutput { stats: self.backend.stats_now(), outcome },
            samples: self.samples.clone(),
            faults: self.fault_stats(),
            records: self.fault_records(),
            multicore,
        };
        self.finished = Some(out.clone());
        out
    }

    /// The FNV-1a 64 fingerprint of everything that determines this run:
    /// configuration (including the engine kind), per-core modes (with
    /// DRC geometry), instruction window, sampling stride and fault
    /// plan. Stored in the checkpoint envelope; [`Session::restore`]
    /// refuses bytes taken under a different one — including a
    /// checkpoint of the same program on a different engine kind.
    pub fn context(&self) -> u64 {
        let mode_desc =
            self.modes.iter().map(describe_mode).collect::<Vec<_>>().join(" + ");
        checkpoint::context_fingerprint(&format!(
            "{:?} | mode={} | max_insts={} | stride={} | plan={:?}",
            self.cfg, mode_desc, self.max_insts, self.stride, self.plan
        ))
    }

    /// Serialises the live session into a self-validating, versioned
    /// checkpoint (see [`crate::checkpoint`] for the format and version
    /// policy). Restoring it with [`Session::restore`] and running on
    /// produces bit-identical results to never having stopped. Every
    /// engine kind checkpoints: the payload carries the in-order
    /// machine+engine, the out-of-order engine (window geometry
    /// included), or the whole multicore fleet plus the shared level.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = Writer::with_magic(PAYLOAD_MAGIC);
        match &self.backend {
            Backend::InOrder { machine, engine } => {
                machine.save(&mut w);
                engine.save(&mut w);
            }
            Backend::Ooo { machine, engine } => {
                machine.save(&mut w);
                engine.save(&mut w);
            }
            Backend::Multicore(mc) => mc.save(&mut w),
        }
        w.u64(self.fault_idx as u64);
        w.u64(self.samples.len() as u64);
        for s in &self.samples {
            w.u64(s.first_inst);
            w.u64(s.instructions);
            w.u64(s.cycles);
            w.u64(s.ipc.to_bits());
            w.u64(s.il1_miss_rate.to_bits());
            w.u64(s.drc_miss_rate.to_bits());
        }
        self.last.save(&mut w);
        w.u64(self.next_sample);
        checkpoint::seal(self.context(), &w.into_bytes())
    }

    /// Replaces this session's state with a checkpoint taken by an
    /// identically-configured session (same mode(s), config — engine
    /// kind included — window, sampling and plan, enforced via the
    /// context fingerprint).
    ///
    /// # Errors
    ///
    /// [`VcfrError::Checkpoint`] when the bytes are corrupt, truncated,
    /// from a different format version, or from a different run
    /// configuration.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), VcfrError> {
        let payload = checkpoint::open(bytes, self.context())?;
        let wire = |e: WireError| VcfrError::Checkpoint(CheckpointError::Wire(e));
        let mut r = Reader::with_magic(&payload, PAYLOAD_MAGIC).map_err(wire)?;
        let drc_cfg = match &self.mode {
            Mode::Vcfr { drc, .. } => Some(*drc),
            _ => None,
        };
        let backend = match self.cfg.engine {
            EngineKind::InOrder => {
                let machine = Machine::restore(self.mode.image_ref(), &mut r).map_err(wire)?;
                let engine = Engine::restore(&self.cfg, drc_cfg, &mut r).map_err(wire)?;
                Backend::InOrder { machine, engine }
            }
            EngineKind::Ooo => {
                let machine = Machine::restore(self.mode.image_ref(), &mut r).map_err(wire)?;
                let engine = OooEngine::restore(&self.cfg, drc_cfg, &mut r).map_err(wire)?;
                Backend::Ooo { machine, engine }
            }
            EngineKind::Multicore { .. } => Backend::Multicore(
                MultiCore::restore(&self.modes, &self.cfg, self.max_insts, &mut r)
                    .map_err(wire)?,
            ),
        };
        let fault_idx = r.u64().map_err(wire)? as usize;
        if let Some(p) = &self.plan {
            if fault_idx > p.faults.len() {
                return Err(VcfrError::Checkpoint(CheckpointError::Corrupt));
            }
        } else if fault_idx > 0 {
            return Err(VcfrError::Checkpoint(CheckpointError::Corrupt));
        }
        let n_samples = r.u64().map_err(wire)?;
        if n_samples > 1 << 32 {
            return Err(wire(WireError::LengthOutOfRange { len: n_samples }));
        }
        let mut samples = Vec::with_capacity(n_samples as usize);
        for _ in 0..n_samples {
            samples.push(IntervalSample {
                first_inst: r.u64().map_err(wire)?,
                instructions: r.u64().map_err(wire)?,
                cycles: r.u64().map_err(wire)?,
                ipc: f64::from_bits(r.u64().map_err(wire)?),
                il1_miss_rate: f64::from_bits(r.u64().map_err(wire)?),
                drc_miss_rate: f64::from_bits(r.u64().map_err(wire)?),
            });
        }
        let last = SimStats::restore(&mut r).map_err(wire)?;
        let next_sample = r.u64().map_err(wire)?;
        if !r.is_exhausted() {
            return Err(wire(WireError::Truncated));
        }
        self.backend = backend;
        self.fault_idx = fault_idx;
        self.samples = samples;
        self.last = last;
        self.next_sample = next_sample;
        self.finished = None;
        // The telemetry cursor is never serialized (the tap is outside
        // the checkpoint context); re-derive it so events keep firing
        // at the same exact multiples of `progress_every`.
        if let Some(seq) = self.backend.instructions().checked_div(self.progress_every) {
            self.next_progress = (seq + 1).saturating_mul(self.progress_every);
            self.progress_seq = seq;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use vcfr_core::DrcConfig;
    use vcfr_isa::{AluOp, Asm, Cond, Reg};
    use vcfr_rewriter::{randomize, RandomizeConfig};

    fn workload() -> vcfr_isa::Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 200);
        a.mov_ri(Reg::Rax, 0);
        let top = a.here();
        for i in 0..12 {
            a.call_named(&format!("f{i}"));
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        for i in 0..12 {
            a.func(&format!("f{i}"));
            a.alu_ri(AluOp::Add, Reg::Rax, 1);
            a.ret();
        }
        a.finish().unwrap()
    }

    #[test]
    fn session_matches_legacy_simulate() {
        let img = workload();
        let cfg = SimConfig::default();
        let legacy = crate::simulate(Mode::Baseline(&img), &cfg, 100_000).unwrap();
        let out =
            Session::new(Mode::Baseline(&img), &cfg, 100_000).unwrap().run().unwrap();
        assert_eq!(out.output.outcome.output, legacy.outcome.output);
        assert_eq!(out.output.stats, legacy.stats);
    }

    #[test]
    fn chunked_run_equals_one_shot() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig { rerand_epoch: Some(3_000), ..SimConfig::default() };
        let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(64) };
        let one = Session::new(mode(), &cfg, 50_000).unwrap().run().unwrap();
        let mut s = Session::new(mode(), &cfg, 50_000).unwrap();
        let mut chunks = 0;
        let chunked = loop {
            match s.run_for(1_234).unwrap() {
                SessionStatus::Running => chunks += 1,
                SessionStatus::Done(out) => break *out,
            }
        };
        assert!(chunks > 2, "the budget actually sliced the run");
        assert_eq!(chunked.output.stats, one.output.stats);
        assert_eq!(chunked.output.outcome, one.output.outcome);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(2)).unwrap();
        let cfg = SimConfig { rerand_epoch: Some(2_500), ..SimConfig::default() };
        let mode = || Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(64) };
        let plan = FaultPlan::generate(2015, 16, 8_000);
        let straight = Session::new(mode(), &cfg, 30_000)
            .unwrap()
            .with_sampling(1_000)
            .with_faults(&plan)
            .run()
            .unwrap();

        let mut first =
            Session::new(mode(), &cfg, 30_000).unwrap().with_sampling(1_000).with_faults(&plan);
        assert!(matches!(first.run_for(7_000).unwrap(), SessionStatus::Running));
        let snap = first.checkpoint();
        drop(first);

        let mut resumed =
            Session::new(mode(), &cfg, 30_000).unwrap().with_sampling(1_000).with_faults(&plan);
        resumed.restore(&snap).unwrap();
        let out = resumed.run().unwrap();
        assert_eq!(out.output.stats, straight.output.stats);
        assert_eq!(out.output.outcome, straight.output.outcome);
        assert_eq!(out.samples, straight.samples);
        assert_eq!(out.records, straight.records);
        assert_eq!(out.faults, straight.faults);
        // And the post-resume checkpoint stream stays stable too.
        let again = resumed.checkpoint();
        resumed.restore(&again).unwrap();
    }

    #[test]
    fn restore_rejects_foreign_and_corrupt_checkpoints() {
        let img = workload();
        let cfg = SimConfig::default();
        let mut s = Session::new(Mode::Baseline(&img), &cfg, 10_000).unwrap();
        s.run_for(2_000).unwrap();
        let snap = s.checkpoint();

        // Different window → different context.
        let mut other = Session::new(Mode::Baseline(&img), &cfg, 20_000).unwrap();
        assert!(matches!(
            other.restore(&snap),
            Err(VcfrError::Checkpoint(CheckpointError::ContextMismatch))
        ));

        // Flipped payload byte → corrupt.
        let mut bad = snap.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        let mut same = Session::new(Mode::Baseline(&img), &cfg, 10_000).unwrap();
        assert!(matches!(
            same.restore(&bad),
            Err(VcfrError::Checkpoint(CheckpointError::Corrupt))
        ));
    }

    /// A loop of straight-line ALU work long enough for superblocks to
    /// form (the call-heavy [`workload`] never replays a batch).
    fn alu_workload() -> vcfr_isa::Image {
        let mut a = Asm::new(0x1000);
        a.mov_ri(Reg::Rcx, 500);
        a.mov_ri(Reg::Rax, 0);
        let top = a.here();
        for _ in 0..64 {
            a.alu_ri(AluOp::Add, Reg::Rax, 1);
        }
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        a.finish().unwrap()
    }

    /// Runs `f` with a tap at `every` insts, collecting the events.
    fn collect_events(
        build: impl Fn() -> vcfr_isa::Image,
        every: u64,
        superblocks: bool,
        chunk: Option<u64>,
    ) -> (Vec<vcfr_obs::ProgressEvent>, SessionOutcome) {
        let img = build();
        let events = std::sync::Mutex::new(Vec::new());
        let mut s = Session::new(Mode::Baseline(&img), &SimConfig::default(), 50_000)
            .unwrap()
            .with_superblocks(superblocks)
            .with_progress(every, |e| events.lock().unwrap().push(*e));
        let out = match chunk {
            None => s.run().unwrap(),
            Some(budget) => loop {
                if let SessionStatus::Done(out) = s.run_for(budget).unwrap() {
                    break *out;
                }
            },
        };
        drop(s);
        (events.into_inner().unwrap(), out)
    }

    #[test]
    fn progress_events_fire_at_exact_boundaries() {
        let (events, out) = collect_events(alu_workload, 1_000, true, None);
        assert!(events.len() >= 2, "expected several events, got {}", events.len());
        let (final_ev, boundary) = events.split_last().unwrap();
        for (i, e) in boundary.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.instructions, (i as u64 + 1) * 1_000, "event {i} off-boundary");
        }
        // The final event reads the end-of-run state.
        assert_eq!(final_ev.instructions, out.output.stats.instructions);
        assert_eq!(final_ev.cycles, out.output.stats.cycles);
        // Monotone counters throughout.
        for w in events.windows(2) {
            assert!(w[0].instructions <= w[1].instructions);
            assert!(w[0].cycles <= w[1].cycles);
        }
        // The fast path actually ran and the hit rate is visible.
        assert!(final_ev.sb_batches > 0);
        assert!(final_ev.sb_hit_rate() > 0.0);
    }

    #[test]
    fn progress_stream_is_identical_chunked_or_straight() {
        let (straight, out_a) = collect_events(workload, 777, true, None);
        let (chunked, out_b) = collect_events(workload, 777, true, Some(1_234));
        assert_eq!(straight, chunked);
        assert_eq!(out_a.output.stats, out_b.output.stats);
    }

    #[test]
    fn results_identical_with_tap_on_or_off() {
        let img = workload();
        let cfg = SimConfig::default();
        let plain =
            Session::new(Mode::Baseline(&img), &cfg, 50_000).unwrap().run().unwrap();
        let mut n = 0u64;
        let tapped = Session::new(Mode::Baseline(&img), &cfg, 50_000)
            .unwrap()
            .with_progress(500, |_| n += 1)
            .run()
            .unwrap();
        assert!(n > 0);
        assert_eq!(plain.output.stats, tapped.output.stats);
        assert_eq!(plain.output.outcome, tapped.output.outcome);
    }

    #[test]
    fn checkpoints_interchange_between_tapped_and_untapped_sessions() {
        let img = workload();
        let cfg = SimConfig::default();
        let mut tapped = Session::new(Mode::Baseline(&img), &cfg, 30_000)
            .unwrap()
            .with_progress(1_000, |_| {});
        assert!(matches!(tapped.run_for(5_000).unwrap(), SessionStatus::Running));
        let snap = tapped.checkpoint();

        let mut untapped = Session::new(Mode::Baseline(&img), &cfg, 30_000).unwrap();
        assert!(matches!(untapped.run_for(5_000).unwrap(), SessionStatus::Running));
        // The tap leaves no trace in the checkpoint: bytes interchange.
        assert_eq!(snap, untapped.checkpoint());
        untapped.restore(&snap).unwrap();

        // And a restored tapped session resumes events on the same
        // exact multiples, with seq picking up where the boundary
        // count stands.
        let events = std::sync::Mutex::new(Vec::new());
        let mut resumed = Session::new(Mode::Baseline(&img), &cfg, 30_000)
            .unwrap()
            .with_progress(1_000, |e: &vcfr_obs::ProgressEvent| {
                events.lock().unwrap().push(*e)
            });
        resumed.restore(&snap).unwrap();
        resumed.run().unwrap();
        drop(resumed);
        let events = events.into_inner().unwrap();
        assert_eq!(events[0].seq, 5, "5 boundaries lie before inst 5000");
        assert_eq!(events[0].instructions, 6_000);
    }

    #[test]
    fn trace_ring_readable_after_successful_run() {
        let img = workload();
        let cfg = SimConfig::default();
        let mut s = Session::new(Mode::Baseline(&img), &cfg, 10_000).unwrap();
        s.run().unwrap();
        let trace = s.trace_events();
        assert!(!trace.is_empty(), "default trace_events retains the tail");
        assert!(trace.len() <= cfg.trace_events);

        let off = SimConfig { trace_events: 0, ..cfg };
        let mut s = Session::new(Mode::Baseline(&img), &off, 10_000).unwrap();
        s.run().unwrap();
        assert!(s.trace_events().is_empty());
    }

    #[test]
    fn new_rejects_inconsistent_mode_config_combos() {
        let img = workload();
        let rp = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let cfg = SimConfig { rerand_epoch: Some(1_000), ..SimConfig::default() };
        let err = Session::new(Mode::Baseline(&img), &cfg, 1_000).err().unwrap();
        assert!(err.to_string().contains("VCFR"), "{err}");
        let err = Session::new(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(0) },
            &SimConfig::default(),
            1_000,
        )
        .err()
        .unwrap();
        assert!(err.to_string().contains("DRC"), "{err}");
        let zero = SimConfig { rerand_epoch: Some(0), ..SimConfig::default() };
        assert!(Session::new(
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(64) },
            &zero,
            1_000
        )
        .is_err());
    }

    #[test]
    fn ooo_session_matches_the_free_function() {
        let img = workload();
        let cfg = SimConfig::builder().engine(EngineKind::Ooo).build().unwrap();
        let legacy = crate::simulate_ooo(
            Mode::Baseline(&img),
            &cfg,
            OooConfig::default(),
            100_000,
        )
        .unwrap();
        let out =
            Session::new(Mode::Baseline(&img), &cfg, 100_000).unwrap().run().unwrap();
        assert_eq!(out.output.stats, legacy.stats);
        assert_eq!(out.output.outcome, legacy.outcome);
        assert!(out.multicore.is_none());
    }

    #[test]
    fn multicore_session_aggregates_per_core_results() {
        let img = workload();
        let cfg = SimConfig::builder()
            .engine(EngineKind::Multicore { cores: 2 })
            .build()
            .unwrap();
        let out =
            Session::new(Mode::Baseline(&img), &cfg, 100_000).unwrap().run().unwrap();
        let mc = out.multicore.expect("multicore sessions report per-core results");
        assert_eq!(mc.per_core.len(), 2);
        assert_eq!(out.output.stats, mc.stats);
        assert_eq!(out.output.outcome.output, mc.outcomes[0].output);
        assert_eq!(
            out.output.stats.instructions,
            mc.per_core[0].instructions + mc.per_core[1].instructions
        );
    }

    #[test]
    fn heterogeneous_session_needs_matching_core_count() {
        let img = workload();
        let cfg = SimConfig::builder()
            .engine(EngineKind::Multicore { cores: 3 })
            .build()
            .unwrap();
        let err = Session::new_heterogeneous(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            10_000,
        )
        .err()
        .expect("2 modes for 3 declared cores");
        assert!(err.to_string().contains("3 cores"), "{err}");
        let err = Session::new_heterogeneous(&[Mode::Baseline(&img)], &SimConfig::default(), 1_000)
            .err()
            .expect("heterogeneous needs the multicore kind");
        assert!(err.to_string().contains("Multicore"), "{err}");
    }

    #[test]
    fn fault_plans_are_rejected_off_the_inorder_engine() {
        let img = workload();
        let plan = FaultPlan::generate(1, 4, 8_000);
        for kind in [EngineKind::Ooo, EngineKind::Multicore { cores: 2 }] {
            let cfg = SimConfig::builder().engine(kind).build().unwrap();
            let err = Session::new(Mode::Baseline(&img), &cfg, 10_000)
                .unwrap()
                .with_faults(&plan)
                .run()
                .expect_err("fault plans need the in-order engine");
            assert!(err.to_string().contains("in-order"), "{err}");
        }
    }
}
