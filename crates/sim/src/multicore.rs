//! Multi-core demonstration (§IV-D): "since our approach only randomizes
//! instruction address space, which contains read-only data, it can be
//! applied to multi-core or multi-processor based systems with ease."
//!
//! Two (or more) cores, each with private L1s/TLBs/predictors/DRC, share
//! the unified L2 and DRAM — including the randomization-table walks, so
//! table traffic from one core competes with the other core's code and
//! data exactly as the single-core design's shared-L2 argument implies.
//!
//! Cores are advanced by a global event loop that always steps the core
//! with the smallest local backend time, so shared-resource state (L2
//! contents, DRAM bank timing) is touched in approximately global time
//! order.

use crate::cache::Cache;
use crate::config::{DrcBacking, SimConfig};
use crate::dram::Dram;
use crate::engine::{exec_extra_cycles, Mode, SimError};
use crate::predict::{BranchStats, Btb, Gshare, Ras};
use crate::stats::SimStats;
use crate::tlb::Tlb;
use vcfr_core::{Drc, OrigAddr, RandAddr};
use vcfr_isa::{Addr, ControlFlow, Machine, StepInfo};
use vcfr_rewriter::RandomizedProgram;

/// Per-core results of a multi-core run.
#[derive(Clone, Debug)]
pub struct MultiCoreOutput {
    /// Statistics per core (L2/DRAM counters are shared and reported in
    /// [`MultiCoreOutput::shared_l2`]).
    pub per_core: Vec<SimStats>,
    /// The shared L2's counters.
    pub shared_l2: crate::cache::CacheStats,
    /// Wall-clock cycles (the slowest core's finish time).
    pub cycles: u64,
}

struct Shared {
    l2: Cache,
    dram: Dram,
}

impl Shared {
    fn access(&mut self, addr: Addr, now: u64, l2_latency: u64) -> u64 {
        let r = self.l2.access(addr, false);
        if r.hit {
            l2_latency
        } else {
            let done = self.dram.access(addr, now + l2_latency);
            done - now
        }
    }
}

struct Core<'a> {
    machine: Machine,
    rp: Option<&'a RandomizedProgram>,
    naive: bool,
    il1: Cache,
    dl1: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    gshare: Gshare,
    btb: Btb,
    ras: Ras,
    bstats: BranchStats,
    drc: Option<Drc>,
    fetch_time: u64,
    backend_time: u64,
    redirect_at: u64,
    window_line: Option<Addr>,
    instructions: u64,
    fetch_stall: u64,
    load_stall: u64,
    drc_walk: u64,
    exec_extra: u64,
    done: bool,
}

impl<'a> Core<'a> {
    fn new(cfg: &SimConfig, mode: &Mode<'a>) -> Core<'a> {
        let (machine, rp, naive, drc) = match mode {
            Mode::Baseline(img) => (Machine::new(img), None, false, None),
            Mode::NaiveIlr(rp) => (Machine::new(&rp.original), Some(*rp), true, None),
            Mode::Vcfr { program, drc } => {
                (Machine::new(&program.original), Some(*program), false, Some(Drc::new(*drc)))
            }
        };
        Core {
            machine,
            rp,
            naive,
            il1: Cache::new(cfg.il1),
            dl1: Cache::new(cfg.dl1),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            gshare: Gshare::new(cfg.gshare),
            btb: Btb::new(cfg.btb),
            ras: Ras::new(cfg.ras_entries),
            bstats: BranchStats::default(),
            drc,
            fetch_time: 0,
            backend_time: 0,
            redirect_at: 0,
            window_line: None,
            instructions: 0,
            fetch_stall: 0,
            load_stall: 0,
            drc_walk: 0,
            exec_extra: 0,
            done: false,
        }
    }

    fn fetch_addr(&self, pc: Addr) -> Addr {
        match (self.naive, self.rp) {
            (true, Some(rp)) => rp.rand_or_orig(pc),
            _ => pc,
        }
    }

    fn key(&self, a: Addr) -> Addr {
        match (self.naive, self.rp) {
            (true, Some(rp)) => rp.rand_or_orig(a),
            _ => a,
        }
    }

    fn derand_walk(
        &mut self,
        target: Addr,
        shared: &mut Shared,
        cfg: &SimConfig,
        now: u64,
    ) -> u64 {
        let (Some(drc), Some(rp)) = (self.drc.as_mut(), self.rp) else { return 0 };
        let rand = rp.rand_or_orig(target);
        match drc.derandomize(RandAddr(rand), &rp.table) {
            Ok(l) if !l.hit => {
                let w = match cfg.drc_backing {
                    DrcBacking::SharedL2 => shared.access(l.entry_addr, now, cfg.l2.latency),
                    DrcBacking::Dedicated { latency } => latency,
                };
                self.drc_walk += w;
                w
            }
            _ => 0,
        }
    }

    /// Steps one instruction; returns `Err` on an architectural fault.
    fn step(&mut self, shared: &mut Shared, cfg: &SimConfig) -> Result<(), SimError> {
        let Some(info) = self.machine.step()? else {
            self.done = true;
            return Ok(());
        };
        let info: StepInfo = info;
        self.instructions += 1;

        // ---- fetch ----------------------------------------------------
        let fetch_pc = self.fetch_addr(info.pc);
        let start = self.fetch_time.max(self.redirect_at);
        let line_bytes = cfg.il1.line_bytes as Addr;
        let first = fetch_pc & !(line_bytes - 1);
        let last = (fetch_pc + info.len as Addr - 1) & !(line_bytes - 1);
        let mut stall = 0;
        let mut line = first;
        loop {
            if self.window_line != Some(line) {
                if !self.itlb.access(line, true) {
                    stall += cfg.tlb_walk_cycles;
                }
                let r = self.il1.access(line, false);
                if !r.hit {
                    stall += shared.access(line, start, cfg.l2.latency);
                }
                self.window_line = Some(line);
            }
            if line == last {
                break;
            }
            line += line_bytes;
        }
        let fetch_done = start + 1 + stall;
        self.fetch_stall += stall;
        self.fetch_time = fetch_done;

        // ---- backend --------------------------------------------------
        let exec_start = (self.backend_time + 1).max(fetch_done + 3);
        let extra = exec_extra_cycles(&info.inst);
        self.exec_extra += extra;
        let mut exec_end = exec_start + extra;
        for acc in info.mem_accesses() {
            if !self.dtlb.access(acc.addr, true) {
                exec_end += cfg.tlb_walk_cycles;
            }
            let r = self.dl1.access(acc.addr, acc.write);
            if !r.hit && !acc.write {
                let l = shared.access(acc.addr, exec_start, cfg.l2.latency);
                self.load_stall += l;
                exec_end += l;
            }
        }
        // ---- VCFR call-side randomization lookup ------------------------
        if let (Some(rp), Some(_)) = (self.rp, self.drc.as_ref()) {
            if !self.naive {
                if let Some(
                    ControlFlow::Call { ret_addr, .. } | ControlFlow::IndirectCall { ret_addr, .. },
                ) = info.control
                {
                    let drc = self.drc.as_mut().expect("checked");
                    if let Ok(l) = drc.randomize(OrigAddr(ret_addr), &rp.table) {
                        if !l.hit {
                            let w = match cfg.drc_backing {
                                DrcBacking::SharedL2 => {
                                    shared.access(l.entry_addr, exec_start, cfg.l2.latency)
                                }
                                DrcBacking::Dedicated { latency } => latency,
                            };
                            self.drc_walk += w;
                        }
                    }
                }
            }
        }

        // ---- control flow -----------------------------------------------
        if let Some(cf) = info.control {
            let kpc = self.key(info.pc);
            let vcfr_active = self.drc.is_some() && !self.naive;
            match cf {
                ControlFlow::Branch { taken, target } => {
                    self.bstats.predictions += 1;
                    let predicted = self.gshare.predict(kpc);
                    self.gshare.update(kpc, taken);
                    if predicted != taken {
                        self.bstats.mispredictions += 1;
                        let w = if taken && vcfr_active {
                            self.derand_walk(target, shared, cfg, exec_end)
                        } else {
                            0
                        };
                        self.redirect_at =
                            self.redirect_at.max(exec_end + cfg.mispredict_penalty + w);
                    }
                }
                ControlFlow::Jump { target }
                | ControlFlow::Call { target, .. } => {
                    let ktarget = self.key(target);
                    self.bstats.btb_lookups += 1;
                    if self.btb.lookup(kpc) != Some(ktarget) {
                        self.bstats.btb_misses += 1;
                        let w = if vcfr_active {
                            self.derand_walk(target, shared, cfg, exec_end)
                        } else {
                            0
                        };
                        self.redirect_at =
                            self.redirect_at.max(fetch_done + cfg.btb_miss_penalty + w);
                        self.btb.update(kpc, ktarget);
                    }
                    if let ControlFlow::Call { ret_addr, .. } = cf {
                        self.ras.push(self.key(ret_addr));
                    }
                }
                ControlFlow::IndirectJump { target }
                | ControlFlow::IndirectCall { target, .. } => {
                    let ktarget = self.key(target);
                    self.bstats.btb_lookups += 1;
                    let w = if vcfr_active {
                        self.derand_walk(target, shared, cfg, exec_end)
                    } else {
                        0
                    };
                    if self.btb.lookup(kpc) != Some(ktarget) {
                        self.bstats.btb_misses += 1;
                        self.redirect_at =
                            self.redirect_at.max(exec_end + cfg.mispredict_penalty + w);
                        self.btb.update(kpc, ktarget);
                    }
                    if let ControlFlow::IndirectCall { ret_addr, .. } = cf {
                        self.ras.push(self.key(ret_addr));
                    }
                }
                ControlFlow::Return { target } => {
                    self.bstats.ras_predictions += 1;
                    let w = if vcfr_active {
                        self.derand_walk(target, shared, cfg, exec_end)
                    } else {
                        0
                    };
                    match self.ras.pop() {
                        Some(p) if p == self.key(target) => {}
                        _ => {
                            self.bstats.ras_mispredictions += 1;
                            self.redirect_at =
                                self.redirect_at.max(exec_end + cfg.mispredict_penalty + w);
                        }
                    }
                }
            }
            if cf.taken_target().is_some() {
                self.window_line = None;
            }
        }
        self.backend_time = exec_end;
        Ok(())
    }

    fn stats(&self) -> SimStats {
        SimStats {
            instructions: self.instructions,
            cycles: self.backend_time.max(self.fetch_time),
            il1: self.il1.stats(),
            dl1: self.dl1.stats(),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
            branch: self.bstats,
            drc: self.drc.as_ref().map(|d| d.stats()),
            drc_walk_cycles: self.drc_walk,
            fetch_stall_cycles: self.fetch_stall,
            load_stall_cycles: self.load_stall,
            exec_extra_cycles: self.exec_extra,
            ..SimStats::default()
        }
    }
}

/// Runs several programs concurrently on private cores over a shared
/// L2 + DRAM, up to `max_insts` instructions per core.
///
/// # Errors
///
/// Returns [`SimError::Exec`] if any core's program faults.
///
/// # Example
///
/// See the `multicore` integration tests.
pub fn simulate_multicore(
    modes: &[Mode<'_>],
    cfg: &SimConfig,
    max_insts: u64,
) -> Result<MultiCoreOutput, SimError> {
    let mut shared = Shared { l2: Cache::new(cfg.l2), dram: Dram::new(cfg.dram) };
    let mut cores: Vec<Core<'_>> = modes.iter().map(|m| Core::new(cfg, m)).collect();

    loop {
        // Advance the live core with the smallest local time.
        let next = cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.done && c.instructions < max_insts)
            .min_by_key(|(_, c)| c.backend_time)
            .map(|(i, _)| i);
        let Some(i) = next else { break };
        cores[i].step(&mut shared, cfg)?;
    }

    let per_core: Vec<SimStats> = cores.iter().map(Core::stats).collect();
    let cycles = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
    Ok(MultiCoreOutput { per_core, shared_l2: shared.l2.stats(), cycles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcfr_core::DrcConfig;
    use vcfr_rewriter::{randomize, RandomizeConfig};

    fn program() -> vcfr_isa::Image {
        vcfr_workloads_stub()
    }

    // A local stand-in so this crate does not depend on vcfr-workloads:
    // a call-heavy loop with data accesses.
    fn vcfr_workloads_stub() -> vcfr_isa::Image {
        use vcfr_isa::{AluOp, Asm, Cond, Reg};
        let mut a = Asm::new(0x1000);
        let buf = a.data_zeroed(4096);
        a.mov_ri(Reg::Rbx, buf.0 as i64);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        a.call_named("work");
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("work");
        a.load(Reg::Rax, Reg::Rbx, 0);
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.store(Reg::Rbx, 0, Reg::Rax);
        a.ret();
        a.finish().unwrap()
    }

    #[test]
    fn two_baseline_cores_both_finish_correctly() {
        let img = program();
        let cfg = SimConfig::default();
        let out = simulate_multicore(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            1_000_000,
        )
        .unwrap();
        assert_eq!(out.per_core.len(), 2);
        for s in &out.per_core {
            assert!(s.instructions > 10_000);
            assert!(s.ipc() > 0.5);
        }
        assert!(out.shared_l2.accesses > 0);
    }

    #[test]
    fn two_vcfr_cores_share_the_l2_with_small_overhead() {
        let img = program();
        let cfg = SimConfig::default();
        let rp1 = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let rp2 = randomize(&img, &RandomizeConfig::with_seed(2)).unwrap();
        let solo = simulate_multicore(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            500_000,
        )
        .unwrap();
        let vcfr = simulate_multicore(
            &[
                Mode::Vcfr { program: &rp1, drc: DrcConfig::direct_mapped(128) },
                Mode::Vcfr { program: &rp2, drc: DrcConfig::direct_mapped(128) },
            ],
            &cfg,
            500_000,
        )
        .unwrap();
        for (b, v) in solo.per_core.iter().zip(&vcfr.per_core) {
            assert!(
                v.ipc() > 0.9 * b.ipc(),
                "vcfr core too slow: {} vs {}",
                v.ipc(),
                b.ipc()
            );
            assert!(v.drc.unwrap().lookups > 0);
        }
    }

    #[test]
    fn cores_can_run_different_modes() {
        let img = program();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(3)).unwrap();
        let out = simulate_multicore(
            &[Mode::Baseline(&img), Mode::NaiveIlr(&rp)],
            &cfg,
            200_000,
        )
        .unwrap();
        // The naive core suffers; the baseline core shares the L2 but
        // keeps most of its performance.
        assert!(out.per_core[1].ipc() <= out.per_core[0].ipc());
        assert!(out.cycles >= out.per_core[0].cycles);
    }
}
