//! Multi-core demonstration (§IV-D): "since our approach only randomizes
//! instruction address space, which contains read-only data, it can be
//! applied to multi-core or multi-processor based systems with ease."
//!
//! N cores, each a full in-order [`Engine`] with private L1s, TLBs,
//! predictors, DRC, stack hygiene and re-randomization state, share the
//! unified L2 and DRAM behind a single-ported [`SharedPort`]: a demand
//! access (fetch-line miss, data-load miss, table walk) issued while the
//! port is busy with a *different* core's request queues, and the wait is
//! charged both to the delayed access's stall category and to the core's
//! `sim.stall.contention` counter. Same-core requests pipeline freely, so
//! a one-core multicore run is bit-identical to the single-core engine.
//!
//! Rather than reimplementing the pipeline, each step temporarily
//! `mem::swap`s the shared L2/DRAM/port into the stepping core's private
//! [`crate::MemoryHierarchy`] — the cores inherit every in-order engine
//! feature (redirect-stall accounting, epoch re-randomization, trace
//! rings, checkpointing) by construction.
//!
//! Cores advance under a deterministic global event loop: always step
//! the live core with the smallest local time (`max(backend, fetch)`),
//! ties broken by core index, so shared-resource state is touched in a
//! reproducible global order regardless of host threading.

use crate::cache::{Cache, CacheStats};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::engine::{Engine, Mode, SimError};
use crate::hierarchy::SharedPort;
use crate::stats::SimStats;
use std::mem;
use vcfr_core::DrcStats;
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::{Machine, RunOutcome, StopReason};

/// Results of a multi-core run.
#[derive(Clone, Debug)]
pub struct MultiCoreOutput {
    /// Statistics per core (L2/DRAM counters are shared across cores and
    /// reported in [`MultiCoreOutput::shared_l2`] and the aggregate, not
    /// per core).
    pub per_core: Vec<SimStats>,
    /// The shared L2's counters.
    pub shared_l2: CacheStats,
    /// Wall-clock makespan (the slowest core's finish time).
    pub cycles: u64,
    /// Aggregate statistics: field-wise sum over the cores (so the
    /// in-order cycle-accounting identities, summed, still hold —
    /// `cycles` here is total core-cycles, not wall clock) with the
    /// shared L2/DRAM counted once.
    pub stats: SimStats,
    /// Each core's architectural outcome.
    pub outcomes: Vec<RunOutcome>,
}

/// The shared memory-system state, swapped into whichever core is
/// currently stepping.
pub(crate) struct SharedLevel {
    pub(crate) l2: Cache,
    pub(crate) dram: Dram,
    pub(crate) port: SharedPort,
}

/// N in-order cores over a shared L2/DRAM, stepped one instruction at a
/// time by the deterministic event loop ([`MultiCore::step_next`]).
pub(crate) struct MultiCore<'a> {
    modes: Vec<Mode<'a>>,
    machines: Vec<Machine>,
    engines: Vec<Engine>,
    done: Vec<bool>,
    shared: SharedLevel,
    max_insts: u64,
}

impl<'a> MultiCore<'a> {
    pub(crate) fn new(modes: &[Mode<'a>], cfg: &SimConfig, max_insts: u64) -> MultiCore<'a> {
        let machines = modes.iter().map(|m| Machine::new(m.image_ref())).collect();
        let engines = modes
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let drc = match m {
                    Mode::Vcfr { drc, .. } => Some(*drc),
                    _ => None,
                };
                let mut e = Engine::new(cfg, drc);
                e.hier.core_id = i as u8;
                // Hide the translation-table pages from user space (TLB
                // page-visibility bit), as Session does for the
                // single-core engines.
                if let Mode::Vcfr { program, .. } = m {
                    let base = program.table.base();
                    for page in 0..64u32 {
                        e.hier.dtlb.set_invisible(base + page * 4096);
                    }
                }
                e
            })
            .collect();
        MultiCore {
            modes: modes.to_vec(),
            machines,
            engines,
            done: vec![false; modes.len()],
            shared: SharedLevel {
                l2: Cache::new(cfg.l2),
                dram: Dram::new(cfg.dram),
                port: SharedPort::default(),
            },
            max_insts,
        }
    }

    /// Swaps the shared L2/DRAM/port with core `i`'s private hierarchy
    /// slots (self-inverse: call before and after the step).
    fn swap_shared(&mut self, i: usize) {
        let h = &mut self.engines[i].hier;
        mem::swap(&mut h.l2, &mut self.shared.l2);
        mem::swap(&mut h.dram, &mut self.shared.dram);
        mem::swap(&mut h.shared_port, &mut self.shared.port);
    }

    fn step_core(&mut self, i: usize) -> Result<(), SimError> {
        let info = match self.machines[i].step() {
            Ok(Some(info)) => info,
            Ok(None) => {
                self.done[i] = true;
                return Ok(());
            }
            Err(e) => return Err(self.engines[i].fault(e)),
        };
        let engine = &mut self.engines[i];
        match &self.modes[i] {
            Mode::Baseline(_) => engine.step(&info, info.pc, &|a| a, None),
            Mode::NaiveIlr(rp) => {
                engine.step(&info, rp.rand_or_orig(info.pc), &|a| rp.rand_or_orig(a), None);
            }
            Mode::Vcfr { program, .. } => engine.step(&info, info.pc, &|a| a, Some(program)),
        }
        Ok(())
    }

    /// Advances the live core with the smallest local time by one
    /// instruction. Returns `false` when every core has finished (or hit
    /// its instruction budget).
    ///
    /// # Errors
    ///
    /// [`SimError::Exec`] when the stepped core's program faults.
    pub(crate) fn step_next(&mut self) -> Result<bool, SimError> {
        let next = (0..self.engines.len())
            .filter(|&i| !self.done[i] && self.engines[i].instructions < self.max_insts)
            .min_by_key(|&i| {
                let e = &self.engines[i];
                (e.backend_time.max(e.fetch_time), i)
            });
        let Some(i) = next else { return Ok(false) };
        self.swap_shared(i);
        let result = self.step_core(i);
        self.swap_shared(i);
        result?;
        Ok(true)
    }

    /// Total instructions committed across all cores (the Session's
    /// sampling/progress clock for multicore runs).
    pub(crate) fn instructions(&self) -> u64 {
        self.engines.iter().map(|e| e.instructions).sum()
    }

    /// Per-core statistics (L2/DRAM zeroed: those live in the shared
    /// level and are reported once).
    pub(crate) fn per_core_stats(&self) -> Vec<SimStats> {
        self.engines.iter().map(Engine::stats_now).collect()
    }

    /// The aggregate counters at this point of the run (the Session's
    /// sampling/progress snapshot for multicore runs).
    pub(crate) fn stats_now(&self) -> SimStats {
        aggregate(&self.per_core_stats(), &self.shared)
    }

    /// The finished run, packaged: per-core stats, shared counters, the
    /// wall-clock makespan, the aggregate, and each core's outcome.
    pub(crate) fn output(&self) -> MultiCoreOutput {
        let per_core = self.per_core_stats();
        let cycles = per_core.iter().map(|s| s.cycles).max().unwrap_or(0);
        let stats = aggregate(&per_core, &self.shared);
        let outcomes = self
            .machines
            .iter()
            .map(|m| RunOutcome {
                output: m.output().to_vec(),
                steps: m.steps(),
                stop: m.stop_reason().unwrap_or(StopReason::Halt),
            })
            .collect();
        MultiCoreOutput { per_core, shared_l2: self.shared.l2.stats(), cycles, stats, outcomes }
    }

    /// Serialises every core (machine + engine + done flag) and the
    /// shared level, in core order (checkpoint support).
    pub(crate) fn save(&self, w: &mut Writer) {
        w.u64(self.machines.len() as u64);
        for i in 0..self.machines.len() {
            self.machines[i].save(w);
            self.engines[i].save(w);
            w.u8(u8::from(self.done[i]));
        }
        self.shared.l2.save(w);
        self.shared.dram.save(w);
        self.shared.port.save(w);
    }

    /// Rebuilds a multicore run from [`MultiCore::save`] output. `modes`
    /// and `cfg` must match the saved run (the checkpoint envelope's
    /// context fingerprint enforces this before the bytes get here).
    pub(crate) fn restore(
        modes: &[Mode<'a>],
        cfg: &SimConfig,
        max_insts: u64,
        r: &mut Reader<'_>,
    ) -> Result<MultiCore<'a>, WireError> {
        let n = r.u64()?;
        if n as usize != modes.len() {
            return Err(WireError::LengthOutOfRange { len: n });
        }
        let mut machines = Vec::with_capacity(modes.len());
        let mut engines = Vec::with_capacity(modes.len());
        let mut done = Vec::with_capacity(modes.len());
        for m in modes {
            machines.push(Machine::restore(m.image_ref(), r)?);
            let drc = match m {
                Mode::Vcfr { drc, .. } => Some(*drc),
                _ => None,
            };
            engines.push(Engine::restore(cfg, drc, r)?);
            done.push(match r.u8()? {
                0 => false,
                1 => true,
                tag => return Err(WireError::BadTag { tag }),
            });
        }
        let shared = SharedLevel {
            l2: Cache::restore(cfg.l2, r)?,
            dram: Dram::restore(cfg.dram, r)?,
            port: SharedPort::restore(r)?,
        };
        Ok(MultiCore { modes: modes.to_vec(), machines, engines, done, shared, max_insts })
    }
}

/// Field-wise sum of the per-core statistics, with the shared L2/DRAM
/// counted once. `cycles` is total core-cycles (Σ per-core), so the
/// summed in-order accounting identities still audit cleanly.
fn aggregate(per_core: &[SimStats], shared: &SharedLevel) -> SimStats {
    let mut agg = SimStats::default();
    for s in per_core {
        agg.instructions += s.instructions;
        agg.cycles += s.cycles;
        add_cache(&mut agg.il1, &s.il1);
        add_cache(&mut agg.dl1, &s.dl1);
        add_tlb(&mut agg.itlb, &s.itlb);
        add_tlb(&mut agg.dtlb, &s.dtlb);
        let b = &mut agg.branch;
        b.predictions += s.branch.predictions;
        b.mispredictions += s.branch.mispredictions;
        b.btb_lookups += s.branch.btb_lookups;
        b.btb_misses += s.branch.btb_misses;
        b.btb_wrong_target += s.branch.btb_wrong_target;
        b.ras_predictions += s.branch.ras_predictions;
        b.ras_mispredictions += s.branch.ras_mispredictions;
        agg.drc = match (agg.drc, s.drc) {
            (None, d) => d,
            (Some(a), None) => Some(a),
            (Some(a), Some(d)) => Some(DrcStats {
                lookups: a.lookups + d.lookups,
                misses: a.misses + d.misses,
                derand_lookups: a.derand_lookups + d.derand_lookups,
                rand_lookups: a.rand_lookups + d.rand_lookups,
            }),
        };
        agg.drc_walk_cycles += s.drc_walk_cycles;
        agg.fetch_stall_cycles += s.fetch_stall_cycles;
        agg.load_stall_cycles += s.load_stall_cycles;
        agg.redirect_stall_cycles += s.redirect_stall_cycles;
        agg.l2_reads_from_l1 += s.l2_reads_from_l1;
        agg.exec_extra_cycles += s.exec_extra_cycles;
        agg.rerand_epochs += s.rerand_epochs;
        agg.rerand_stall_cycles += s.rerand_stall_cycles;
        agg.contention_stall_cycles += s.contention_stall_cycles;
    }
    agg.l2 = shared.l2.stats();
    agg.dram = shared.dram.stats();
    agg
}

fn add_cache(a: &mut CacheStats, b: &CacheStats) {
    a.accesses += b.accesses;
    a.misses += b.misses;
    a.writes += b.writes;
    a.writebacks += b.writebacks;
    a.prefetches_issued += b.prefetches_issued;
    a.prefetch_hits += b.prefetch_hits;
    a.prefetch_unused_evictions += b.prefetch_unused_evictions;
}

fn add_tlb(a: &mut crate::tlb::TlbStats, b: &crate::tlb::TlbStats) {
    a.accesses += b.accesses;
    a.misses += b.misses;
    a.visibility_faults += b.visibility_faults;
}

/// Runs several programs concurrently on private in-order cores over a
/// shared L2 + DRAM, up to `max_insts` instructions per core.
///
/// # Errors
///
/// Returns [`SimError::Exec`] if any core's program faults.
///
/// # Example
///
/// See the `multicore` module tests.
pub fn simulate_multicore(
    modes: &[Mode<'_>],
    cfg: &SimConfig,
    max_insts: u64,
) -> Result<MultiCoreOutput, SimError> {
    let mut mc = MultiCore::new(modes, cfg, max_insts);
    while mc.step_next()? {}
    Ok(mc.output())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use vcfr_core::DrcConfig;
    use vcfr_rewriter::{randomize, RandomizeConfig};

    fn program() -> vcfr_isa::Image {
        vcfr_workloads_stub()
    }

    // A local stand-in so this crate does not depend on vcfr-workloads:
    // a call-heavy loop with data accesses.
    fn vcfr_workloads_stub() -> vcfr_isa::Image {
        use vcfr_isa::{AluOp, Asm, Cond, Reg};
        let mut a = Asm::new(0x1000);
        let buf = a.data_zeroed(4096);
        a.mov_ri(Reg::Rbx, buf.0 as i64);
        a.mov_ri(Reg::Rcx, 2_000);
        let top = a.here();
        a.call_named("work");
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.emit_output(Reg::Rax);
        a.halt();
        a.func("work");
        a.load(Reg::Rax, Reg::Rbx, 0);
        a.alu_ri(AluOp::Add, Reg::Rax, 1);
        a.store(Reg::Rbx, 0, Reg::Rax);
        a.ret();
        a.finish().unwrap()
    }

    /// A wide-striding load loop that misses in the private L1s and
    /// keeps the shared port busy.
    fn memory_workload() -> vcfr_isa::Image {
        use vcfr_isa::{AluOp, Asm, Cond, Reg};
        let mut a = Asm::new(0x1000);
        let buf = a.data_zeroed(1 << 16);
        a.mov_ri(Reg::Rbx, buf.0 as i64);
        a.mov_ri(Reg::Rcx, 4_000);
        a.mov_ri(Reg::Rdx, 0);
        let top = a.here();
        a.load_idx(Reg::Rax, Reg::Rbx, Reg::Rdx, 3, 0);
        a.alu_ri(AluOp::Add, Reg::Rdx, 251);
        a.alu_ri(AluOp::And, Reg::Rdx, 0x1fff);
        a.alu_ri(AluOp::Sub, Reg::Rcx, 1);
        a.cmp_i(Reg::Rcx, 0);
        a.jcc(Cond::Ne, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn two_baseline_cores_both_finish_correctly() {
        let img = program();
        let cfg = SimConfig::default();
        let out = simulate_multicore(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            1_000_000,
        )
        .unwrap();
        assert_eq!(out.per_core.len(), 2);
        for s in &out.per_core {
            assert!(s.instructions > 10_000);
            assert!(s.ipc() > 0.5);
        }
        assert!(out.shared_l2.accesses > 0);
        assert_eq!(out.stats.instructions, out.per_core[0].instructions * 2);
        assert_eq!(out.outcomes[0].output, out.outcomes[1].output);
    }

    #[test]
    fn two_vcfr_cores_share_the_l2_with_small_overhead() {
        let img = program();
        let cfg = SimConfig::default();
        let rp1 = randomize(&img, &RandomizeConfig::with_seed(1)).unwrap();
        let rp2 = randomize(&img, &RandomizeConfig::with_seed(2)).unwrap();
        let solo = simulate_multicore(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            500_000,
        )
        .unwrap();
        let vcfr = simulate_multicore(
            &[
                Mode::Vcfr { program: &rp1, drc: DrcConfig::direct_mapped(128) },
                Mode::Vcfr { program: &rp2, drc: DrcConfig::direct_mapped(128) },
            ],
            &cfg,
            500_000,
        )
        .unwrap();
        for (b, v) in solo.per_core.iter().zip(&vcfr.per_core) {
            assert!(
                v.ipc() > 0.9 * b.ipc(),
                "vcfr core too slow: {} vs {}",
                v.ipc(),
                b.ipc()
            );
            assert!(v.drc.unwrap().lookups > 0);
        }
    }

    #[test]
    fn cores_can_run_different_modes() {
        let img = program();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(3)).unwrap();
        let out = simulate_multicore(
            &[Mode::Baseline(&img), Mode::NaiveIlr(&rp)],
            &cfg,
            200_000,
        )
        .unwrap();
        // The naive core suffers; the baseline core shares the L2 but
        // keeps most of its performance.
        assert!(out.per_core[1].ipc() <= out.per_core[0].ipc());
        assert!(out.cycles >= out.per_core[0].cycles);
    }

    /// The one-core equivalence anchor: a single-core "multicore" run is
    /// bit-identical to the plain in-order engine — the shared port is
    /// invisible without a sibling, so the swap discipline provably adds
    /// nothing.
    #[test]
    fn one_core_multicore_matches_the_inorder_engine_exactly() {
        let img = program();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(7)).unwrap();
        for mode in [
            Mode::Baseline(&img),
            Mode::NaiveIlr(&rp),
            Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
        ] {
            let solo = simulate(mode, &cfg, 100_000).unwrap();
            let multi = simulate_multicore(&[mode], &cfg, 100_000).unwrap();
            assert_eq!(multi.stats, solo.stats, "one-core aggregate diverged");
            assert_eq!(multi.cycles, solo.stats.cycles);
            assert_eq!(multi.outcomes[0].output, solo.outcome.output);
            assert_eq!(multi.stats.contention_stall_cycles, 0);
        }
    }

    /// Cross-core queueing at the shared port is charged to contention —
    /// and stays contained in the access categories it delayed.
    #[test]
    fn sibling_cores_pay_contention_at_the_shared_port() {
        let img = memory_workload();
        let cfg = SimConfig::default();
        let duo = simulate_multicore(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            200_000,
        )
        .unwrap();
        assert!(
            duo.stats.contention_stall_cycles > 0,
            "two memory-bound cores never queued: {:?}",
            duo.stats
        );
        // Containment identity: every contention cycle delayed exactly
        // one fetch, load, or walk access.
        assert!(
            duo.stats.contention_stall_cycles
                <= duo.stats.fetch_stall_cycles
                    + duo.stats.load_stall_cycles
                    + duo.stats.drc_walk_cycles,
            "contention not contained: {:?}",
            duo.stats
        );
        // A lone core on the same workload never waits for itself.
        let solo = simulate_multicore(&[Mode::Baseline(&img)], &cfg, 200_000).unwrap();
        assert_eq!(solo.stats.contention_stall_cycles, 0);
    }

    /// The redirect-stall regression (PR 6's in-order fix, now inherited
    /// by the multicore cores): mispredict-heavy runs report redirect
    /// cycles, and the per-core floor identity still holds — a wrapped
    /// subtraction would blow both up by orders of magnitude.
    #[test]
    fn multicore_cores_track_redirect_stall_without_underflow() {
        let img = program();
        let cfg = SimConfig::default();
        let out = simulate_multicore(
            &[Mode::Baseline(&img), Mode::Baseline(&img)],
            &cfg,
            200_000,
        )
        .unwrap();
        for s in &out.per_core {
            assert!(s.redirect_stall_cycles > 0, "redirects untracked: {s:?}");
            assert!(
                s.redirect_stall_cycles < s.cycles,
                "redirect stall exceeds wall clock (underflow?): {s:?}"
            );
            assert!(
                s.cycles >= s.busy_cycles() + s.load_stall_cycles + s.rerand_stall_cycles,
                "floor identity violated: {s:?}"
            );
        }
    }

    /// Epoch re-randomization fires on the VCFR core while the sibling
    /// baseline core streams on, unaffected except through shared-L2
    /// timing.
    #[test]
    fn rerand_fires_on_one_core_while_the_sibling_streams() {
        let img = program();
        let cfg = SimConfig::builder()
            .rerand_epoch(Some(4_000))
            .drc_entries(Some(128))
            .build()
            .unwrap();
        let rp = randomize(&img, &RandomizeConfig::with_seed(5)).unwrap();
        let out = simulate_multicore(
            &[
                Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(128) },
                Mode::Baseline(&img),
            ],
            &cfg,
            100_000,
        )
        .unwrap();
        assert!(out.per_core[0].rerand_epochs >= 3, "{:?}", out.per_core[0].rerand_epochs);
        assert!(out.per_core[0].rerand_stall_cycles > 0);
        assert_eq!(out.per_core[1].rerand_epochs, 0, "baseline core must not swap");
        assert_eq!(out.per_core[1].rerand_stall_cycles, 0);
        // Both cores still compute the right answers.
        assert_eq!(out.outcomes[0].output, out.outcomes[1].output);
    }

    /// Serialise mid-run, restore, and finish: the restored fleet must be
    /// bit-identical to the uninterrupted one.
    #[test]
    fn save_restore_roundtrip_is_bit_identical() {
        let img = program();
        let cfg = SimConfig::default();
        let rp = randomize(&img, &RandomizeConfig::with_seed(9)).unwrap();
        let modes =
            [Mode::Vcfr { program: &rp, drc: DrcConfig::direct_mapped(64) }, Mode::Baseline(&img)];
        let split = 20_000u64;
        const MAGIC: [u8; 8] = *b"MCORTST1";

        let run = |resume: bool| {
            let mut mc = MultiCore::new(&modes, &cfg, 100_000);
            let mut saved: Option<Vec<u8>> = None;
            loop {
                if saved.is_none() && mc.instructions() >= split {
                    let mut w = Writer::with_magic(MAGIC);
                    mc.save(&mut w);
                    saved = Some(w.into_bytes());
                    if resume {
                        let bytes = saved.clone().unwrap();
                        let mut r = Reader::with_magic(&bytes, MAGIC).unwrap();
                        mc = MultiCore::restore(&modes, &cfg, 100_000, &mut r).unwrap();
                        assert!(r.is_exhausted(), "trailing bytes after restore");
                    }
                }
                if !mc.step_next().unwrap() {
                    break;
                }
            }
            (mc.output(), saved.unwrap())
        };
        let (straight, bytes_a) = run(false);
        let (resumed, bytes_b) = run(true);
        assert_eq!(bytes_a, bytes_b, "save is deterministic");
        assert_eq!(straight.stats, resumed.stats, "resume diverged");
        assert_eq!(straight.per_core, resumed.per_core);
        assert_eq!(straight.cycles, resumed.cycles);
    }
}
