//! The composed memory hierarchy: split L1s over a shared unified L2 over
//! DRAM, with TLBs and the next-line instruction prefetcher.
//!
//! All latencies returned are *additional stall cycles beyond a pipelined
//! L1 hit* — the standard trace-driven convention: an L1 hit is fully
//! pipelined and costs nothing extra, a miss costs the L2 (and possibly
//! DRAM) round trip.

use crate::cache::Cache;
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::tlb::Tlb;
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::Addr;

/// Arbitration state of the single-ported shared level (L2 + DRAM).
///
/// On a single-core machine every request comes from the same core, so
/// the port never makes anyone wait and the model is exactly the
/// pre-multicore one. On a multicore machine the port travels with the
/// shared L2/DRAM between cores; a demand request from a *different*
/// core that arrives while the port is still serving the previous one
/// queues until it frees, and the wait is charged to the requesting
/// core's `contention_cycles`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedPort {
    /// When the in-flight shared-level access completes.
    pub busy_until: u64,
    /// Which core issued it.
    pub last_core: u8,
}

impl SharedPort {
    /// Cycles core `core_id` must wait before its request at `now` can
    /// enter the shared level (0 when the port is free or held by the
    /// same core — same-core requests pipeline, as on a single core).
    fn wait(&self, core_id: u8, now: u64) -> u64 {
        if self.last_core == core_id {
            0
        } else {
            self.busy_until.saturating_sub(now)
        }
    }

    /// Serialises the port (checkpoint support).
    pub fn save(&self, w: &mut Writer) {
        w.u64(self.busy_until);
        w.u8(self.last_core);
    }

    /// Rebuilds the port from [`SharedPort::save`] output.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input.
    pub fn restore(r: &mut Reader<'_>) -> Result<SharedPort, WireError> {
        Ok(SharedPort { busy_until: r.u64()?, last_core: r.u8()? })
    }
}

/// The full cache/TLB/DRAM stack of one core.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    /// L1 instruction cache.
    pub il1: Cache,
    /// L1 data cache.
    pub dl1: Cache,
    /// Unified L2 (shared by IL1, DL1 and DRC walks, as in the paper).
    /// On a multicore machine the *shared* L2 is swapped in while this
    /// core steps; between steps this slot holds a placeholder.
    pub l2: Cache,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    /// Main memory (shared and swapped like the L2 on multicore).
    pub dram: Dram,
    /// Reads issued from the L1s into the L2 — the paper's "L2 pressure"
    /// metric in Figure 3.
    pub l2_reads_from_l1: u64,
    /// Arbitration state of the shared level (travels with `l2`/`dram`).
    pub shared_port: SharedPort,
    /// This core's index at the shared port (always 0 on single-core
    /// machines, which makes the port a no-op there).
    pub core_id: u8,
    /// Cycles this core's demand accesses queued behind a sibling core
    /// at the shared port. Per-core counter; stays here when the shared
    /// level is swapped out.
    pub contention_cycles: u64,
    cfg: SimConfig,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy from the machine configuration.
    pub fn new(cfg: &SimConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            il1: Cache::new(cfg.il1),
            dl1: Cache::new(cfg.dl1),
            l2: Cache::new(cfg.l2),
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            dram: Dram::new(cfg.dram),
            l2_reads_from_l1: 0,
            shared_port: SharedPort::default(),
            core_id: 0,
            contention_cycles: 0,
            cfg: *cfg,
        }
    }

    /// L2 access that falls through to DRAM on a miss; returns the stall
    /// beyond the requesting level. `demand` accesses (whose latency the
    /// caller charges to a stall category) arbitrate for the shared port
    /// and may queue behind a sibling core; non-demand traffic
    /// (prefetches, store-buffer fills) slips through off the critical
    /// path, exactly as it is charged.
    fn l2_then_dram(&mut self, addr: Addr, now: u64, demand: bool) -> u64 {
        let wait = if demand { self.shared_port.wait(self.core_id, now) } else { 0 };
        self.contention_cycles += wait;
        let start = now + wait;
        let r = self.l2.access(addr, false);
        let service = if r.hit {
            self.cfg.l2.latency
        } else {
            let done = self.dram.access(addr, start + self.cfg.l2.latency);
            done - start
        };
        if demand {
            self.shared_port =
                SharedPort { busy_until: start + service, last_core: self.core_id };
        }
        wait + service
    }

    /// An instruction-fetch access for the line containing `addr`.
    /// Returns extra stall cycles (0 on an IL1 hit). Triggers the
    /// next-line prefetcher on a miss or on first use of a prefetched
    /// line (tagged next-line prefetching).
    pub fn fetch_line(&mut self, addr: Addr, now: u64) -> u64 {
        let mut stall = 0;
        if !self.itlb.access(addr, true) {
            stall += self.cfg.tlb_walk_cycles;
        }
        let pre_hits = self.il1.stats().prefetch_hits;
        let r = self.il1.access(addr, false);
        let first_prefetch_use = self.il1.stats().prefetch_hits > pre_hits;
        if !r.hit {
            self.l2_reads_from_l1 += 1;
            stall += self.l2_then_dram(addr, now, true);
        }
        if self.cfg.prefetch && (!r.hit || first_prefetch_use) {
            let next = self.il1.line_of(addr).wrapping_add(self.cfg.il1.line_bytes as Addr);
            if !self.il1.contains(next) {
                // The prefetch pulls the line through L2 off the critical
                // path: it contributes L2 pressure and DRAM activity but
                // no stall.
                self.l2_reads_from_l1 += 1;
                let _ = self.l2_then_dram(next, now, false);
                if let Some(wb) = self.il1.prefetch_fill(next) {
                    let _ = self.l2.access(wb, true);
                }
            }
        }
        stall
    }

    /// A data access. Returns extra stall cycles (0 on a DL1 hit; stores
    /// are absorbed by the store buffer and never stall, but still move
    /// lines).
    pub fn data_access(&mut self, addr: Addr, write: bool, now: u64) -> u64 {
        let mut stall = 0;
        if !self.dtlb.access(addr, true) {
            stall += self.cfg.tlb_walk_cycles;
        }
        let r = self.dl1.access(addr, write);
        if !r.hit {
            self.l2_reads_from_l1 += 1;
            let miss = self.l2_then_dram(addr, now, !write);
            if !write {
                stall += miss;
            }
        }
        if let Some(wb) = r.writeback {
            let _ = self.l2.access(wb, true);
        }
        if write {
            0
        } else {
            stall
        }
    }

    /// A DRC table walk: goes straight to the unified L2 (the paper's
    /// "DRC can share its second level cache with the unified L2"),
    /// then DRAM. Returns the full walk latency.
    pub fn table_walk(&mut self, entry_addr: Addr, now: u64) -> u64 {
        self.l2_then_dram(entry_addr, now, true)
    }

    /// Serialises every component of the hierarchy (checkpoint support).
    pub fn save(&self, w: &mut Writer) {
        self.il1.save(w);
        self.dl1.save(w);
        self.l2.save(w);
        self.itlb.save(w);
        self.dtlb.save(w);
        self.dram.save(w);
        w.u64(self.l2_reads_from_l1);
        self.shared_port.save(w);
        w.u8(self.core_id);
        w.u64(self.contention_cycles);
    }

    /// Rebuilds a hierarchy from [`MemoryHierarchy::save`] output; `cfg`
    /// must be the configuration the saved hierarchy was built with.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or malformed input.
    pub fn restore(cfg: &SimConfig, r: &mut Reader<'_>) -> Result<MemoryHierarchy, WireError> {
        Ok(MemoryHierarchy {
            il1: Cache::restore(cfg.il1, r)?,
            dl1: Cache::restore(cfg.dl1, r)?,
            l2: Cache::restore(cfg.l2, r)?,
            itlb: Tlb::restore(r)?,
            dtlb: Tlb::restore(r)?,
            dram: Dram::restore(cfg.dram, r)?,
            l2_reads_from_l1: r.u64()?,
            shared_port: SharedPort::restore(r)?,
            core_id: r.u8()?,
            contention_cycles: r.u64()?,
            cfg: *cfg,
        })
    }

    /// Resets every component's counters (contents stay warm).
    pub fn reset_stats(&mut self) {
        self.il1.reset_stats();
        self.dl1.reset_stats();
        self.l2.reset_stats();
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        self.dram.reset_stats();
        self.l2_reads_from_l1 = 0;
        self.contention_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::default())
    }

    #[test]
    fn il1_hit_is_free() {
        let mut h = hierarchy();
        let cold = h.fetch_line(0x1000, 0);
        assert!(cold > 0);
        let warm = h.fetch_line(0x1000, 100);
        assert_eq!(warm, 0);
    }

    #[test]
    fn l2_absorbs_il1_misses() {
        let mut h = hierarchy();
        h.fetch_line(0x1000, 0); // fills L2 + IL1 (+ prefetch of 0x1040)
        // Force IL1 eviction: touch many lines in the same IL1 set.
        // IL1: 256 sets × 64 B → same set every 16 KiB.
        for i in 1..=4u32 {
            h.fetch_line(0x1000 + i * 16 * 1024, i as u64 * 1000);
        }
        let stall = h.fetch_line(0x1000, 100_000);
        // Must come from L2, not DRAM: exactly the L2 latency.
        assert_eq!(stall, SimConfig::default().l2.latency);
    }

    #[test]
    fn prefetcher_hides_the_next_line() {
        let mut h = hierarchy();
        let miss = h.fetch_line(0x1000, 0);
        assert!(miss > 0);
        // Sequential next line was prefetched.
        let next = h.fetch_line(0x1040, miss);
        assert_eq!(next, 0);
        assert!(h.il1.stats().prefetch_hits >= 1);
    }

    #[test]
    fn prefetch_counts_as_l2_pressure() {
        let mut h = hierarchy();
        h.fetch_line(0x1000, 0);
        // Demand read + prefetch read.
        assert_eq!(h.l2_reads_from_l1, 2);
    }

    #[test]
    fn tlb_walk_charged_once_per_page() {
        let mut h = hierarchy();
        let c = SimConfig::default();
        let first = h.data_access(0x9000, false, 0);
        assert!(first >= c.tlb_walk_cycles);
        let second = h.data_access(0x9008, false, 50);
        assert_eq!(second, 0); // same page, same line
    }

    #[test]
    fn stores_never_stall_but_move_lines() {
        let mut h = hierarchy();
        let s = h.data_access(0x4000, true, 0);
        assert_eq!(s, 0);
        assert_eq!(h.dl1.stats().misses, 1);
        // The line is now resident for a subsequent load.
        assert_eq!(h.data_access(0x4000, false, 10), 0);
    }

    #[test]
    fn dirty_eviction_writes_back_to_l2() {
        let mut h = hierarchy();
        h.data_access(0x0000, true, 0);
        // Evict by filling the set: DL1 = 256 sets × 2 ways, same set
        // every 16 KiB.
        h.data_access(16 * 1024, false, 10);
        h.data_access(32 * 1024, false, 20);
        assert_eq!(h.dl1.stats().writebacks, 1);
    }

    #[test]
    fn save_restore_replays_identically() {
        use vcfr_isa::wire::{Reader, Writer};
        let cfg = SimConfig::default();
        let mut h = MemoryHierarchy::new(&cfg);
        let mut now = 0;
        for i in 0..20u32 {
            now += h.fetch_line(0x1000 + i * 64, now);
            now += h.data_access(0x9000 + i * 8, i % 3 == 0, now);
            now += 1;
        }
        let mut w = Writer::with_magic(*b"VCFRTEST");
        h.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let mut back = MemoryHierarchy::restore(&cfg, &mut r).unwrap();
        assert!(r.is_exhausted());
        // Both hierarchies produce the same stalls from here on.
        for i in 0..20u32 {
            let a = h.fetch_line(0x2000 + i * 32, now + i as u64);
            let b = back.fetch_line(0x2000 + i * 32, now + i as u64);
            assert_eq!(a, b, "fetch {i}");
            let a = h.data_access(0x9000 + i * 4, false, now + i as u64);
            let b = back.data_access(0x9000 + i * 4, false, now + i as u64);
            assert_eq!(a, b, "data {i}");
        }
        assert_eq!(back.il1.stats(), h.il1.stats());
        assert_eq!(back.dram.stats(), h.dram.stats());
        assert_eq!(back.l2_reads_from_l1, h.l2_reads_from_l1);
    }

    #[test]
    fn shared_port_is_invisible_to_a_single_core() {
        // Two hierarchies, one probed as core 0 throughout, must behave
        // exactly like the pre-port model: no wait ever, no contention.
        let mut h = hierarchy();
        let mut now = 0;
        for i in 0..50u32 {
            now += h.fetch_line(0x1000 + i * 4096, now);
            now += h.data_access(0x9000 + i * 4096, false, now);
        }
        assert_eq!(h.contention_cycles, 0);
    }

    #[test]
    fn cross_core_demand_misses_queue_at_the_shared_port() {
        // Simulate the multicore swap discipline by hand: one shared
        // L2/DRAM/port, two private front ends.
        let cfg = SimConfig::default();
        let mut a = MemoryHierarchy::new(&cfg);
        let mut b = MemoryHierarchy::new(&cfg);
        b.core_id = 1;
        // Core A misses all the way to DRAM at t=0 and holds the port.
        let a_stall = a.fetch_line(0x1000, 0);
        assert!(a_stall > 0);
        // Hand the shared level to core B, which misses a *different*
        // line one cycle later, while A's access is still in flight.
        b.l2 = a.l2.clone();
        b.dram = a.dram.clone();
        b.shared_port = a.shared_port;
        let b_stall = b.fetch_line(0x8_0000, 1);
        assert!(b.contention_cycles > 0, "core B should have queued");
        assert!(b_stall > b.contention_cycles, "wait is part of the stall");
        // Same-core back-to-back misses pipeline without queueing.
        assert_eq!(a.contention_cycles, 0);
    }

    #[test]
    fn table_walk_uses_l2_then_dram() {
        let mut h = hierarchy();
        let c = SimConfig::default();
        let cold = h.table_walk(0x4000_0000, 0);
        assert!(cold > c.l2.latency); // went to DRAM
        let warm = h.table_walk(0x4000_0000, cold);
        assert_eq!(warm, c.l2.latency); // now in L2
    }
}
