//! Machine configuration, defaulting to the paper's §VI-C parameters.

use crate::error::VcfrError;
use std::fmt;
use std::str::FromStr;
use vcfr_core::RandParams;

/// Geometry and latency of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// DRAM timing in CPU cycles (DDR-style bank model with open-page
/// policy, the behaviour DRAMSim2 provides the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks (across all ranks).
    pub banks: usize,
    /// Bytes per row (row-buffer reach).
    pub row_bytes: usize,
    /// CAS latency: row already open and matching.
    pub t_cas: u64,
    /// RAS-to-CAS: activating a closed row.
    pub t_rcd: u64,
    /// Precharge: closing a conflicting open row.
    pub t_rp: u64,
    /// Cycles between refresh commands (tREFI).
    pub t_refi: u64,
    /// Duration of one refresh (tRFC).
    pub t_rfc: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        // DDR3-ish timings scaled to a 1.6 GHz core clock.
        DramConfig {
            banks: 16,
            row_bytes: 8192,
            t_cas: 18,
            t_rcd: 18,
            t_rp: 18,
            t_refi: 12_480,
            t_rfc: 208,
        }
    }
}

/// Branch-direction predictor (2-level gshare) geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GshareConfig {
    /// Global-history length and PHT index width, in bits.
    pub history_bits: u32,
}

/// Branch target buffer geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

/// Where DRC misses are serviced from (§IV-B ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrcBacking {
    /// The paper's design: walk the in-memory tables through the unified
    /// L2 (falling through to DRAM), sharing capacity with code and data.
    SharedL2,
    /// A dedicated second-level translation store with a fixed access
    /// latency (the alternative the paper rejects as wasteful silicon).
    Dedicated {
        /// Fixed walk latency in cycles.
        latency: u64,
    },
}

/// Which timing engine executes the run (the Session facade routes all
/// three through the same sampling/progress/manifest/checkpoint paths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's single-issue in-order core (the default).
    InOrder,
    /// The wide out-of-order core (§VI-C sensitivity study).
    Ooo,
    /// N in-order cores sharing the unified L2 and DRAM behind a
    /// single-ported shared level (cross-core queueing is charged to
    /// `sim.stall.contention`).
    Multicore {
        /// Number of cores (≥ 1).
        cores: u32,
    },
}

impl EngineKind {
    /// Parses the CLI/wire selector vocabulary: `inorder`, `ooo`, or
    /// `mc<cores>` with 1–64 cores.
    pub fn from_selector(s: &str) -> Result<EngineKind, VcfrError> {
        match s {
            "inorder" => Ok(EngineKind::InOrder),
            "ooo" => Ok(EngineKind::Ooo),
            _ => {
                let cores = s
                    .strip_prefix("mc")
                    .and_then(|n| n.parse::<u32>().ok())
                    .filter(|&n| (1..=64).contains(&n));
                match cores {
                    Some(cores) => Ok(EngineKind::Multicore { cores }),
                    None => Err(VcfrError::Config(format!(
                        "engine must be inorder, ooo, or mc<cores 1..=64> (got {s:?})"
                    ))),
                }
            }
        }
    }
}

impl fmt::Display for EngineKind {
    /// The selector vocabulary, round-tripping [`EngineKind::from_selector`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineKind::InOrder => write!(f, "inorder"),
            EngineKind::Ooo => write!(f, "ooo"),
            EngineKind::Multicore { cores } => write!(f, "mc{cores}"),
        }
    }
}

impl FromStr for EngineKind {
    type Err = VcfrError;

    fn from_str(s: &str) -> Result<EngineKind, VcfrError> {
        EngineKind::from_selector(s)
    }
}

/// Full machine configuration.
///
/// Defaults reproduce the paper's simulated core: a 1.6 GHz single-issue
/// in-order x86-style pipeline; 32 KB 2-way IL1 and DL1 (64-byte lines,
/// 2-cycle); 512 KB 8-way unified L2 (12-cycle); 64-entry
/// fully-associative I/D TLBs; 18-entry instruction queue; 32-entry
/// load/store queue; gshare + BTB + RAS; next-line instruction
/// prefetcher.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Core frequency in GHz (used by the power model).
    pub freq_ghz: f64,
    /// L1 instruction cache.
    pub il1: CacheConfig,
    /// L1 data cache (write-back).
    pub dl1: CacheConfig,
    /// Unified second-level cache (also backs DRC walks).
    pub l2: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Instruction TLB entries (fully associative).
    pub itlb_entries: usize,
    /// Data TLB entries (fully associative).
    pub dtlb_entries: usize,
    /// Page-walk penalty on a TLB miss, in cycles.
    pub tlb_walk_cycles: u64,
    /// Instruction queue capacity (macro-ops).
    pub iq_entries: usize,
    /// Load/store queue capacity.
    pub lsq_entries: usize,
    /// Direction predictor.
    pub gshare: GshareConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return address stack depth.
    pub ras_entries: usize,
    /// Front-end refill penalty on a mispredicted branch.
    pub mispredict_penalty: u64,
    /// Penalty when a taken transfer misses the BTB (target discovered at
    /// decode/execute).
    pub btb_miss_penalty: u64,
    /// Enable the next-line instruction prefetcher.
    pub prefetch: bool,
    /// Where DRC misses are serviced from.
    pub drc_backing: DrcBacking,
    /// Flush the DRC every N instructions, modelling context switches
    /// (None = single-tenant run, the paper's setting).
    pub drc_flush_interval: Option<u64>,
    /// Live re-randomization: every N instructions a VCFR run swaps to a
    /// freshly re-randomized layout (§V-C), paying the DRC-flush and
    /// table-rebuild cycle cost (None = static layout, the default).
    pub rerand_epoch: Option<u64>,
    /// Capacity of the post-mortem trace ring (last N pipeline events,
    /// rounded up to a power of two; 0 disables tracing). The ring is
    /// dumped into [`crate::SimError::Exec`] when a program faults.
    pub trace_events: usize,
    /// Which timing engine executes the run.
    pub engine: EngineKind,
    /// The randomization parameter point of a VCFR run (`None` =
    /// baseline/naive, or the historical fixed configuration). When
    /// set, the params are validated at build time and — being part of
    /// the config's `Debug` form — folded into the VCFRCKP1 context
    /// fingerprint and run manifests.
    pub rand: Option<RandParams>,
}

impl SimConfig {
    /// A validated builder starting from the paper's default machine.
    ///
    /// Prefer this over struct-literal assembly: inconsistent knob
    /// combinations (a re-randomization epoch with no DRC to flush, an
    /// audit that needs the trace ring with tracing disabled, a zero
    /// interval) are rejected at construction instead of surfacing as
    /// mid-run panics.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::from_config(SimConfig::default())
    }
}

/// Builder for [`SimConfig`] (see [`SimConfig::builder`]).
#[derive(Clone, Copy, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
    drc_entries: Option<usize>,
    audit: bool,
}

impl SimConfigBuilder {
    /// A builder starting from an existing configuration (used by the
    /// experiment matrix to derive ablation variants).
    pub fn from_config(cfg: SimConfig) -> SimConfigBuilder {
        SimConfigBuilder { cfg, drc_entries: None, audit: false }
    }

    /// Core frequency in GHz.
    pub fn freq_ghz(mut self, v: f64) -> Self {
        self.cfg.freq_ghz = v;
        self
    }

    /// L1 instruction cache geometry.
    pub fn il1(mut self, v: CacheConfig) -> Self {
        self.cfg.il1 = v;
        self
    }

    /// L1 data cache geometry.
    pub fn dl1(mut self, v: CacheConfig) -> Self {
        self.cfg.dl1 = v;
        self
    }

    /// Unified L2 geometry.
    pub fn l2(mut self, v: CacheConfig) -> Self {
        self.cfg.l2 = v;
        self
    }

    /// Next-line instruction prefetcher on/off.
    pub fn prefetch(mut self, v: bool) -> Self {
        self.cfg.prefetch = v;
        self
    }

    /// Where DRC misses are serviced from.
    pub fn drc_backing(mut self, v: DrcBacking) -> Self {
        self.cfg.drc_backing = v;
        self
    }

    /// Flush the DRC every N instructions (context-switch model).
    pub fn drc_flush_interval(mut self, v: Option<u64>) -> Self {
        self.cfg.drc_flush_interval = v;
        self
    }

    /// Live re-randomization epoch length in instructions.
    pub fn rerand_epoch(mut self, v: Option<u64>) -> Self {
        self.cfg.rerand_epoch = v;
        self
    }

    /// Post-mortem trace ring capacity (0 disables tracing).
    pub fn trace_events(mut self, v: usize) -> Self {
        self.cfg.trace_events = v;
        self
    }

    /// Which timing engine executes the run.
    pub fn engine(mut self, v: EngineKind) -> Self {
        self.cfg.engine = v;
        self
    }

    /// The randomization parameter point of a VCFR run. `Some(params)`
    /// also sets the re-randomization epoch and declared DRC size from
    /// the params, keeping the config a single source of truth; the
    /// params themselves are validated by [`SimConfigBuilder::build`].
    pub fn rand_params(mut self, v: Option<RandParams>) -> Self {
        if let Some(p) = v {
            self.cfg.rerand_epoch = p.rerand_epoch;
            self.drc_entries = Some(p.drc.entries);
        }
        self.cfg.rand = v;
        self
    }

    /// Declares the DRC size this configuration will run against
    /// (validation only — the DRC itself is picked per [`crate::Mode`]).
    /// `Some(0)` means "VCFR mode with a zero-entry DRC", which is
    /// always rejected; `None` means baseline/naive-ILR (no DRC).
    pub fn drc_entries(mut self, v: Option<usize>) -> Self {
        self.drc_entries = v;
        self
    }

    /// Declares that the run will be cycle-audited, which requires the
    /// post-mortem trace ring to be enabled.
    pub fn for_audit(mut self, v: bool) -> Self {
        self.audit = v;
        self
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// [`VcfrError::Config`] describing the first inconsistent knob
    /// combination found.
    pub fn build(self) -> Result<SimConfig, VcfrError> {
        let cfg = self.cfg;
        if let Some(entries) = self.drc_entries {
            if entries == 0 {
                return Err(VcfrError::Config(
                    "drc_entries must be positive for a VCFR run (use None for a run \
                     without a DRC) (got 0)"
                        .into(),
                ));
            }
        }
        if let Some(p) = cfg.rand {
            // The params error already names the field; qualify it with
            // the config field it arrived through.
            p.validate().map_err(|e| VcfrError::Config(format!("rand.{e}")))?;
            if p.rerand_epoch != cfg.rerand_epoch {
                return Err(VcfrError::Config(format!(
                    "rerand_epoch must match rand.rerand_epoch (set it through \
                     rand_params) (got {:?} vs {:?})",
                    cfg.rerand_epoch, p.rerand_epoch
                )));
            }
        }
        if let Some(epoch) = cfg.rerand_epoch {
            if epoch == 0 {
                return Err(VcfrError::Config(
                    "rerand_epoch must be positive (use None to disable re-randomization) (got 0)"
                        .into(),
                ));
            }
            if self.drc_entries.is_none() {
                return Err(VcfrError::Config(
                    "rerand_epoch requires a VCFR run with a DRC (live table swaps \
                     flush it) (got drc_entries = None)"
                        .into(),
                ));
            }
        }
        if let Some(interval) = cfg.drc_flush_interval {
            if interval == 0 {
                return Err(VcfrError::Config(
                    "drc_flush_interval must be positive (use None for a single-tenant run) \
                     (got 0)"
                        .into(),
                ));
            }
        }
        if let EngineKind::Multicore { cores } = cfg.engine {
            if cores == 0 {
                return Err(VcfrError::Config(
                    "engine cores must be in 1..=64 for a multicore run (got 0)".into(),
                ));
            }
        }
        if self.audit && cfg.trace_events == 0 {
            return Err(VcfrError::Config(
                "trace_events must be positive for a cycle audit (it fills the \
                 post-mortem trace ring) (got 0)"
                    .into(),
            ));
        }
        Ok(cfg)
    }
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            freq_ghz: 1.6,
            il1: CacheConfig { size_bytes: 32 * 1024, ways: 2, line_bytes: 64, latency: 2 },
            dl1: CacheConfig { size_bytes: 32 * 1024, ways: 2, line_bytes: 64, latency: 2 },
            l2: CacheConfig { size_bytes: 512 * 1024, ways: 8, line_bytes: 64, latency: 12 },
            dram: DramConfig::default(),
            itlb_entries: 64,
            dtlb_entries: 64,
            tlb_walk_cycles: 24,
            iq_entries: 18,
            lsq_entries: 32,
            gshare: GshareConfig { history_bits: 12 },
            btb: BtbConfig { entries: 512, ways: 4 },
            ras_entries: 16,
            mispredict_penalty: 9,
            btb_miss_penalty: 3,
            prefetch: true,
            drc_backing: DrcBacking::SharedL2,
            drc_flush_interval: None,
            rerand_epoch: None,
            trace_events: 64,
            engine: EngineKind::InOrder,
            rand: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = SimConfig::default();
        assert_eq!(c.il1.size_bytes, 32 * 1024);
        assert_eq!(c.il1.ways, 2);
        assert_eq!(c.il1.latency, 2);
        assert_eq!(c.l2.size_bytes, 512 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 12);
        assert_eq!(c.iq_entries, 18);
        assert_eq!(c.lsq_entries, 32);
        assert_eq!(c.itlb_entries, 64);
        assert!((c.freq_ghz - 1.6).abs() < 1e-9);
    }

    #[test]
    fn cache_sets() {
        let c = SimConfig::default();
        assert_eq!(c.il1.sets(), 256);
        assert_eq!(c.l2.sets(), 1024);
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = SimConfig::builder().build().unwrap();
        assert_eq!(built, SimConfig::default());
    }

    #[test]
    fn builder_rejects_inconsistent_combos() {
        assert!(SimConfig::builder().rerand_epoch(Some(0)).build().is_err());
        assert!(SimConfig::builder()
            .rerand_epoch(Some(1000))
            .drc_entries(None)
            .build()
            .is_err());
        assert!(SimConfig::builder()
            .rerand_epoch(Some(1000))
            .drc_entries(Some(0))
            .build()
            .is_err());
        assert!(SimConfig::builder().for_audit(true).trace_events(0).build().is_err());
        assert!(SimConfig::builder().drc_flush_interval(Some(0)).build().is_err());
        assert!(SimConfig::builder()
            .engine(EngineKind::Multicore { cores: 0 })
            .build()
            .is_err());
    }

    #[test]
    fn engine_kind_selects_the_backend_and_defaults_to_inorder() {
        assert_eq!(SimConfig::default().engine, EngineKind::InOrder);
        let cfg = SimConfig::builder().engine(EngineKind::Ooo).build().unwrap();
        assert_eq!(cfg.engine, EngineKind::Ooo);
        let cfg =
            SimConfig::builder().engine(EngineKind::Multicore { cores: 2 }).build().unwrap();
        assert_eq!(cfg.engine, EngineKind::Multicore { cores: 2 });
        // The kind shows up in the Debug form, which is what the Session
        // folds into checkpoint context fingerprints.
        assert!(format!("{cfg:?}").contains("Multicore"));
    }

    #[test]
    fn builder_threads_rand_params() {
        use vcfr_core::DrcConfig;
        let p = RandParams {
            entropy_bits: 16,
            rerand_epoch: Some(10_000),
            drc: DrcConfig::direct_mapped(64),
            ..RandParams::default()
        };
        let cfg = SimConfig::builder().rand_params(Some(p)).build().unwrap();
        assert_eq!(cfg.rand, Some(p));
        // The params flow into the epoch knob and the Debug form (and
        // therefore into the checkpoint context fingerprint).
        assert_eq!(cfg.rerand_epoch, Some(10_000));
        assert!(format!("{cfg:?}").contains("entropy_bits: 16"));

        let bad = RandParams { entropy_bits: 7, ..RandParams::default() };
        let err = SimConfig::builder().rand_params(Some(bad)).build().unwrap_err();
        assert!(err.to_string().contains("rand.entropy_bits"), "{err}");

        // Overriding the epoch after rand_params desynchronizes the two
        // sources and is rejected.
        let err = SimConfig::builder()
            .rand_params(Some(p))
            .rerand_epoch(Some(5))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rand.rerand_epoch"), "{err}");
    }

    #[test]
    fn builder_errors_name_the_field() {
        let cases: [(SimConfigBuilder, &str); 5] = [
            (SimConfig::builder().drc_entries(Some(0)), "drc_entries"),
            (SimConfig::builder().rerand_epoch(Some(0)), "rerand_epoch"),
            (SimConfig::builder().drc_flush_interval(Some(0)), "drc_flush_interval"),
            (SimConfig::builder().engine(EngineKind::Multicore { cores: 0 }), "cores"),
            (SimConfig::builder().for_audit(true).trace_events(0), "trace_events"),
        ];
        for (b, field) in cases {
            let msg = b.build().unwrap_err().to_string();
            assert!(msg.contains(field), "{msg:?} should name {field:?}");
            assert!(msg.contains("(got"), "{msg:?} should quote the rejected value");
        }
    }

    #[test]
    fn engine_selector_round_trips() {
        for kind in [EngineKind::InOrder, EngineKind::Ooo, EngineKind::Multicore { cores: 8 }] {
            assert_eq!(EngineKind::from_selector(&kind.to_string()).unwrap(), kind);
        }
        for bad in ["turbo", "mc0", "mc65", "mc", ""] {
            let err = EngineKind::from_selector(bad).unwrap_err().to_string();
            assert!(err.contains("inorder, ooo, or mc"), "{err}");
        }
    }

    #[test]
    fn builder_accepts_consistent_combos() {
        let cfg = SimConfig::builder()
            .rerand_epoch(Some(50_000))
            .drc_entries(Some(128))
            .for_audit(true)
            .build()
            .unwrap();
        assert_eq!(cfg.rerand_epoch, Some(50_000));
        let cfg = SimConfig::builder()
            .prefetch(false)
            .drc_backing(DrcBacking::Dedicated { latency: 8 })
            .build()
            .unwrap();
        assert!(!cfg.prefetch);
    }
}
