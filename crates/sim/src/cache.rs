//! A generic set-associative cache with LRU replacement, write-back /
//! write-allocate policy and prefetch bookkeeping.

use crate::config::CacheConfig;
use vcfr_isa::wire::{Reader, WireError, Writer};
use vcfr_isa::Addr;

/// Event counters of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (reads + writes; excludes prefetch fills).
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Demand writes.
    pub writes: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Prefetches issued into this cache.
    pub prefetches_issued: u64,
    /// Demand accesses that hit on a line brought in by the prefetcher.
    pub prefetch_hits: u64,
    /// Prefetched lines evicted without ever being used.
    pub prefetch_unused_evictions: u64,
}

impl CacheStats {
    /// Demand miss rate (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of issued prefetches that were never used — the
    /// "pre-fetch miss rate" axis of the paper's Figure 3.
    pub fn prefetch_useless_rate(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            let used = self.prefetch_hits.min(self.prefetches_issued);
            1.0 - used as f64 / self.prefetches_issued as f64
        }
    }
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// Address of a dirty line that must be written back, if the fill
    /// evicted one.
    pub writeback: Option<Addr>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    tag: Addr,
    dirty: bool,
    prefetched: bool,
    used: bool,
    lru: u64,
}

/// A set-associative cache model (tags only — data never flows through
/// the timing simulator).
///
/// # Example
///
/// ```
/// use vcfr_sim::{Cache, CacheConfig};
/// let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 2 };
/// let mut c = Cache::new(cfg);
/// assert!(!c.access(0x40, false).hit);
/// assert!(c.access(0x40, false).hit);
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is degenerate (zero sets/ways, or a
    /// non-power-of-two set count or line size).
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        assert!(sets > 0 && cfg.ways > 0, "cache must have sets and ways");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        Cache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears the counters but keeps the contents (post-warm-up reset).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The line-aligned address containing `addr`.
    pub fn line_of(&self, addr: Addr) -> Addr {
        addr & !(self.cfg.line_bytes as Addr - 1)
    }

    fn set_of(&self, addr: Addr) -> usize {
        ((addr as usize) / self.cfg.line_bytes) & (self.sets - 1)
    }

    fn probe(&mut self, addr: Addr) -> Option<usize> {
        let tag = self.line_of(addr);
        let base = self.set_of(addr) * self.cfg.ways;
        (0..self.cfg.ways).map(|w| base + w).find(|&i| self.lines[i].valid && self.lines[i].tag == tag)
    }

    fn victim(&self, set_base: usize) -> usize {
        // An invalid way is always preferred; only fall back to the LRU
        // scan when the whole set is valid. (Folding both cases into one
        // keyed min via `lru + 1` overflows when a tick reaches u64::MAX.)
        if let Some(free) =
            (0..self.cfg.ways).map(|w| set_base + w).find(|&i| !self.lines[i].valid)
        {
            return free;
        }
        (0..self.cfg.ways)
            .map(|w| set_base + w)
            .min_by_key(|&i| self.lines[i].lru)
            .expect("ways > 0")
    }

    /// Fills the line containing `addr`, returning the slot it landed in
    /// and the evicted dirty line's address, if any.
    fn fill(&mut self, addr: Addr, prefetched: bool) -> (usize, Option<Addr>) {
        let tag = self.line_of(addr);
        let base = self.set_of(addr) * self.cfg.ways;
        let v = self.victim(base);
        let old = self.lines[v];
        let mut writeback = None;
        if old.valid {
            if old.dirty {
                self.stats.writebacks += 1;
                writeback = Some(old.tag);
            }
            if old.prefetched && !old.used {
                self.stats.prefetch_unused_evictions += 1;
            }
        }
        self.lines[v] =
            Line { valid: true, tag, dirty: false, prefetched, used: false, lru: self.tick };
        (v, writeback)
    }

    /// A demand access. On a miss the line is filled (the caller charges
    /// the next-level latency and forwards any write-back).
    pub fn access(&mut self, addr: Addr, write: bool) -> AccessResult {
        self.tick += 1;
        self.stats.accesses += 1;
        if write {
            self.stats.writes += 1;
        }
        if let Some(i) = self.probe(addr) {
            let line = &mut self.lines[i];
            line.lru = self.tick;
            if line.prefetched && !line.used {
                self.stats.prefetch_hits += 1;
            }
            line.used = true;
            if write {
                line.dirty = true;
            }
            return AccessResult { hit: true, writeback: None };
        }
        self.stats.misses += 1;
        let (slot, writeback) = self.fill(addr, false);
        if write {
            self.lines[slot].dirty = true;
        }
        AccessResult { hit: false, writeback }
    }

    /// Whether the line containing `addr` is resident (no state change).
    pub fn contains(&self, addr: Addr) -> bool {
        let tag = self.line_of(addr);
        let base = self.set_of(addr) * self.cfg.ways;
        (0..self.cfg.ways).any(|w| {
            let l = &self.lines[base + w];
            l.valid && l.tag == tag
        })
    }

    /// Inserts a line on behalf of the prefetcher. Returns the evicted
    /// dirty line, if any. No demand counters change except
    /// `prefetches_issued`.
    pub fn prefetch_fill(&mut self, addr: Addr) -> Option<Addr> {
        if self.contains(addr) {
            return None;
        }
        self.tick += 1;
        self.stats.prefetches_issued += 1;
        self.fill(addr, true).1
    }

    /// Invalidates everything (keeps counters).
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
    }

    /// Serialises the full cache state — lines, counters and the LRU
    /// tick — so a restored cache replays hits and evictions identically
    /// (checkpoint support).
    pub fn save(&self, w: &mut Writer) {
        for line in &self.lines {
            let flags = u8::from(line.valid)
                | u8::from(line.dirty) << 1
                | u8::from(line.prefetched) << 2
                | u8::from(line.used) << 3;
            w.u8(flags);
            w.u32(line.tag);
            w.u64(line.lru);
        }
        w.u64(self.stats.accesses);
        w.u64(self.stats.misses);
        w.u64(self.stats.writes);
        w.u64(self.stats.writebacks);
        w.u64(self.stats.prefetches_issued);
        w.u64(self.stats.prefetch_hits);
        w.u64(self.stats.prefetch_unused_evictions);
        w.u64(self.tick);
    }

    /// Rebuilds a cache from [`Cache::save`] output; the caller supplies
    /// the same geometry the saved cache was built with.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated input or malformed flag bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` itself is degenerate (see [`Cache::new`]).
    pub fn restore(cfg: CacheConfig, r: &mut Reader<'_>) -> Result<Cache, WireError> {
        let mut c = Cache::new(cfg);
        for line in &mut c.lines {
            let flags = r.u8()?;
            if flags > 0b1111 {
                return Err(WireError::BadTag { tag: flags });
            }
            let tag = r.u32()?;
            let lru = r.u64()?;
            *line = Line {
                valid: flags & 1 != 0,
                tag,
                dirty: flags & 2 != 0,
                prefetched: flags & 4 != 0,
                used: flags & 8 != 0,
                lru,
            };
        }
        c.stats.accesses = r.u64()?;
        c.stats.misses = r.u64()?;
        c.stats.writes = r.u64()?;
        c.stats.writebacks = r.u64()?;
        c.stats.prefetches_issued = r.u64()?;
        c.stats.prefetch_hits = r.u64()?;
        c.stats.prefetch_unused_evictions = r.u64()?;
        c.tick = r.u64()?;
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets × 2 ways × 64 B lines.
        Cache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64, latency: 1 })
    }

    #[test]
    fn lru_within_a_set() {
        let mut c = tiny();
        // Set 0 holds lines 0x000, 0x080, 0x100 (all map to set 0).
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // refresh 0x000
        c.access(0x100, false); // evicts 0x080 (LRU)
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
        assert!(c.contains(0x100));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let r = c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = tiny();
        c.access(0x40, false);
        assert!(c.access(0x7f, false).hit);
        assert!(!c.access(0x80, false).hit);
        assert_eq!(c.line_of(0x7f), 0x40);
    }

    #[test]
    fn prefetch_accounting() {
        let mut c = tiny();
        c.prefetch_fill(0x000);
        assert_eq!(c.stats().prefetches_issued, 1);
        // Demand hit on the prefetched line counts once.
        assert!(c.access(0x000, false).hit);
        assert!(c.access(0x010, false).hit);
        assert_eq!(c.stats().prefetch_hits, 1);
        assert!((c.stats().prefetch_useless_rate() - 0.0).abs() < 1e-12);

        // An unused prefetch evicted counts as useless.
        c.prefetch_fill(0x200); // set 0
        c.access(0x080, false);
        c.access(0x100, false); // set 0 pressure evicts something
        c.access(0x180, false); // set 0 again
        assert!(c.stats().prefetch_unused_evictions <= c.stats().prefetches_issued);
    }

    #[test]
    fn prefetch_of_resident_line_is_a_no_op() {
        let mut c = tiny();
        c.access(0x40, false);
        c.prefetch_fill(0x40);
        assert_eq!(c.stats().prefetches_issued, 0);
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x000, false);
        c.access(0x040, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flush_empties_but_keeps_stats() {
        let mut c = tiny();
        c.access(0x000, false);
        c.flush();
        assert!(!c.contains(0x000));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0x40, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x40, false).hit, "contents survive a stats reset");
    }

    #[test]
    fn prefetch_useless_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().prefetch_useless_rate(), 0.0);
        c.prefetch_fill(0x000);
        assert_eq!(c.stats().prefetch_useless_rate(), 1.0); // issued, unused
        c.access(0x000, false);
        assert_eq!(c.stats().prefetch_useless_rate(), 0.0); // now used
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn degenerate_geometry_panics() {
        let _ = Cache::new(CacheConfig { size_bytes: 192, ways: 1, line_bytes: 64, latency: 1 });
    }

    #[test]
    fn victim_survives_a_saturated_lru_tick() {
        // Regression: the old victim scan computed `lru + 1` to rank
        // invalid ways first, which overflowed in debug builds when a
        // line's tick was u64::MAX.
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false); // set 0 now full
        let base = c.set_of(0x000) * c.cfg.ways;
        c.lines[base].lru = u64::MAX;
        // Filling a third line into set 0 must evict the *other* way
        // (lower tick), not panic.
        c.access(0x100, false);
        assert!(c.contains(0x000), "the most recently used line survives");
        assert!(!c.contains(0x080));
        assert!(c.contains(0x100));
    }

    #[test]
    fn victim_prefers_an_invalid_way_over_any_lru() {
        let mut c = tiny();
        c.access(0x000, false); // one way of set 0 valid, one free
        let base = c.set_of(0x000) * c.cfg.ways;
        c.lines[base].lru = u64::MAX; // even a stale-looking tick loses to a free way
        c.access(0x080, false);
        assert!(c.contains(0x000), "a free way absorbed the fill");
        assert!(c.contains(0x080));
    }

    #[test]
    fn save_restore_replays_identically() {
        use vcfr_isa::wire::{Reader, Writer};
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        c.prefetch_fill(0x200);
        let mut w = Writer::with_magic(*b"VCFRTEST");
        c.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        let mut back = Cache::restore(c.config(), &mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(back.stats(), c.stats());
        // Both copies evolve identically (same LRU victims, writebacks).
        for (addr, write) in [(0x100u32, false), (0x000, false), (0x180, true), (0x080, false)] {
            assert_eq!(back.access(addr, write), c.access(addr, write), "addr {addr:#x}");
        }
        assert_eq!(back.stats(), c.stats());
    }

    #[test]
    fn restore_rejects_bad_flag_byte() {
        use vcfr_isa::wire::{Reader, Writer};
        let c = tiny();
        let mut w = Writer::with_magic(*b"VCFRTEST");
        c.save(&mut w);
        let mut buf = w.into_bytes();
        buf[8] = 0xf0; // first line's flag byte
        let mut r = Reader::with_magic(&buf, *b"VCFRTEST").unwrap();
        assert!(Cache::restore(c.config(), &mut r).is_err());
    }

    #[test]
    fn write_miss_marks_the_filled_line_dirty() {
        let mut c = tiny();
        let r = c.access(0x000, true);
        assert!(!r.hit);
        // The freshly filled line is dirty: evicting it must write back.
        c.access(0x080, false);
        let r = c.access(0x100, false);
        assert_eq!(r.writeback, Some(0x000));
    }
}
